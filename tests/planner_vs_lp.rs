//! The provisioning+prioritization heuristics against the Appendix-A LP
//! lower bounds: the LP must lower-bound the heuristic, and the heuristic
//! must land close (the paper reports 3% batch / 15% online; we allow
//! modest slack since workloads are random).

use corral::core::latency::{LatencyModel, ResponseOptions};
use corral::core::lp::{batch_lower_bound, online_lower_bound};
use corral::core::provision::provision;
use corral::prelude::*;
use corral::workloads::{assign_uniform_arrivals, w1, w3, Scale};

fn tables(jobs: &[JobSpec], cfg: &ClusterConfig) -> (Vec<LatencyModel>, Vec<Vec<f64>>) {
    let opts = ResponseOptions::default();
    let models: Vec<LatencyModel> = jobs
        .iter()
        .map(|j| LatencyModel::build(&j.profile, cfg, &opts))
        .collect();
    let t = models
        .iter()
        .map(|m| (1..=cfg.racks).map(|r| m.latency(r).as_secs()).collect())
        .collect();
    (models, t)
}

#[test]
fn batch_heuristic_within_modest_gap_of_lp() {
    let cfg = ClusterConfig::testbed_210();
    for seed in [1u64, 2, 3] {
        let jobs = w1::generate(
            &w1::W1Params {
                jobs: 25,
                ..w1::W1Params::with_seed(seed)
            },
            Scale::bench_default(),
        );
        let (models, tabs) = tables(&jobs, &cfg);
        let meta: Vec<_> = jobs.iter().map(|j| (j.id, SimTime::ZERO)).collect();
        let heur = provision(&models, &meta, cfg.racks, Objective::Makespan).objective_value;
        let lp = batch_lower_bound(&tabs, cfg.racks).expect("lp solves");
        assert!(lp > 0.0);
        assert!(heur >= lp - 1e-6, "LP must lower-bound: {heur} vs {lp}");
        assert!(
            heur <= lp * 1.25,
            "seed {seed}: heuristic {heur} too far above LP {lp}"
        );
    }
}

#[test]
fn online_heuristic_bounded_by_time_indexed_lp() {
    let cfg = ClusterConfig::testbed_210();
    let mut jobs = w3::generate(
        &w3::W3Params {
            jobs: 15,
            ..Default::default()
        },
        Scale::bench_default(),
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(10.0), 9);
    let (models, tabs) = tables(&jobs, &cfg);
    let meta: Vec<_> = jobs.iter().map(|j| (j.id, j.arrival)).collect();
    let out = provision(&models, &meta, cfg.racks, Objective::AvgCompletionTime);
    let horizon = out
        .schedule
        .iter()
        .map(|s| s.finish.as_secs())
        .fold(0.0, f64::max)
        * 1.1;
    let arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival.as_secs()).collect();
    let lp = online_lower_bound(&tabs, &arrivals, cfg.racks, horizon, 80).expect("lp solves");
    assert!(lp > 0.0);
    assert!(
        out.objective_value >= lp - 1e-6,
        "LP must lower-bound: {} vs {lp}",
        out.objective_value
    );
    // The time-indexed grid is coarse; still expect same order of magnitude.
    assert!(out.objective_value <= lp * 2.0);
}

#[test]
fn lp_bound_tight_when_capacity_binds() {
    // R identical 1-rack-best jobs on R racks: both the heuristic and the
    // LP hit exactly the per-rack serialization bound.
    let cfg = ClusterConfig::testbed_210();
    let jobs: Vec<JobSpec> = (0..cfg.racks as u32 * 2)
        .map(|i| {
            JobSpec::map_reduce(
                JobId(i),
                "same",
                MapReduceProfile {
                    input: Bytes::gb(4.0),
                    shuffle: Bytes::gb(4.0),
                    output: Bytes::gb(0.4),
                    maps: 30,
                    reduces: 20,
                    map_rate: Bandwidth::mbytes_per_sec(100.0),
                    reduce_rate: Bandwidth::mbytes_per_sec(100.0),
                },
            )
        })
        .collect();
    let (models, tabs) = tables(&jobs, &cfg);
    let meta: Vec<_> = jobs.iter().map(|j| (j.id, SimTime::ZERO)).collect();
    let heur = provision(&models, &meta, cfg.racks, Objective::Makespan).objective_value;
    let lp = batch_lower_bound(&tabs, cfg.racks).expect("lp solves");
    // Two identical jobs per rack, narrow is optimal: heuristic == 2·L(1)
    // and the LP capacity constraint forces the same value.
    let two_l1 = 2.0 * models[0].latency(1).as_secs();
    assert!((heur - two_l1).abs() < 1e-6, "heur={heur} vs {two_l1}");
    assert!(heur <= lp * 1.05, "gap should be tiny here: {heur} vs {lp}");
}
