//! §4.5 / §6.2.1 data balance: Corral's placement (imbalance penalty in the
//! planner + least-loaded replica targets) keeps per-rack input bytes at
//! least as balanced as stock HDFS random placement.

use corral::cluster::config::DataPlacement;
use corral::prelude::*;
use corral::workloads::w1;

fn run_cov(placement: DataPlacement, with_plan: bool) -> f64 {
    let cfg = ClusterConfig::testbed_210();
    let jobs = w1::generate(
        &w1::W1Params {
            jobs: 30,
            ..w1::W1Params::with_seed(77)
        },
        Scale {
            task_divisor: 10.0,
            data_divisor: 4.0,
        },
    );
    let plan = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
    let empty = Plan::default();
    let params = SimParams {
        cluster: cfg,
        placement,
        horizon: SimTime::hours(20.0),
        ..SimParams::testbed()
    };
    let kind = if with_plan {
        SchedulerKind::Planned
    } else {
        SchedulerKind::Capacity
    };
    let report = Engine::new(params, jobs, if with_plan { &plan } else { &empty }, kind).run();
    assert_eq!(report.unfinished, 0);
    report.input_balance_cov
}

#[test]
fn corral_balance_not_worse_than_hdfs() {
    let hdfs = run_cov(DataPlacement::HdfsRandom, false);
    let corral = run_cov(DataPlacement::PerPlan, true);
    assert!(hdfs > 0.0, "random placement has some imbalance");
    // The paper reports Corral ≤ 0.004 vs HDFS ≈ 0.014 over its full
    // workloads. On a 30-job sample, Corral's primaries concentrate a
    // little more (the plan pins one replica of each chunk inside Rj), so
    // the meaningful invariant is the §4.5 one: the imbalance penalty plus
    // least-loaded secondaries keep the distribution *fairly balanced* —
    // the same order as HDFS and nowhere near the 1.0+ CoV that naive
    // "all replicas in Rj" placement would produce.
    assert!(
        corral <= (hdfs * 4.0).max(0.1),
        "corral CoV {corral} should stay in HDFS's ballpark ({hdfs})"
    );
    assert!(corral < 0.15, "absolute balance should be tight: {corral}");
}

#[test]
fn direct_dfs_policy_comparison() {
    use corral::dfs::{CorralPlacement, Dfs, HdfsDefault};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let cfg = ClusterConfig::testbed_210();
    let mut rng = StdRng::seed_from_u64(4);

    // Stock HDFS: write 70 files of 2 GB.
    let mut d_hdfs = Dfs::new(cfg.clone());
    for i in 0..70 {
        d_hdfs.write_file(format!("h{i}"), Bytes::gb(2.0), &HdfsDefault, &mut rng);
    }

    // Corral: the same volume, planned round-robin over single racks with
    // least-loaded secondary replicas.
    let mut d_corral = Dfs::new(cfg.clone());
    for i in 0..70u32 {
        let policy = CorralPlacement::new(vec![RackId(i % cfg.racks as u32)]);
        d_corral.write_file(format!("c{i}"), Bytes::gb(2.0), &policy, &mut rng);
    }

    let hdfs_cov = d_hdfs.rack_balance_cov();
    let corral_cov = d_corral.rack_balance_cov();
    assert!(
        corral_cov <= hdfs_cov,
        "corral {corral_cov} must balance at least as well as hdfs {hdfs_cov}"
    );
    assert!(
        corral_cov < 0.01,
        "near-perfect balance expected: {corral_cov}"
    );
}
