//! Plan conformance: when a job is planned onto a rack set `Rj` and its
//! data is placed per the plan, its observable traffic stays rack-local —
//! only the DFS output's off-rack replica crosses the core (§3.1).

use corral::cluster::config::DataPlacement;
use corral::core::plan::{Plan, PlanEntry};
use corral::prelude::*;

fn shuffle_heavy_job(id: u32, racks_hint: f64) -> JobSpec {
    JobSpec::map_reduce(
        JobId(id),
        format!("conf-{id}"),
        MapReduceProfile {
            input: Bytes::gb(2.0 * racks_hint),
            shuffle: Bytes::gb(6.0),
            output: Bytes::gb(0.5),
            maps: 10,
            reduces: 8,
            map_rate: Bandwidth::mbytes_per_sec(100.0),
            reduce_rate: Bandwidth::mbytes_per_sec(100.0),
        },
    )
}

fn manual_plan(entries: &[(u32, Vec<u32>)]) -> Plan {
    let mut plan = Plan::default();
    for (i, (job, racks)) in entries.iter().enumerate() {
        plan.entries.insert(
            JobId(*job),
            PlanEntry {
                job: JobId(*job),
                racks: racks.iter().map(|&r| RackId(r)).collect(),
                priority: i as u32,
                planned_start: SimTime::ZERO,
                planned_finish: SimTime(1e4),
                predicted_latency: SimTime(1e4),
            },
        );
    }
    plan
}

#[test]
fn single_rack_job_keeps_shuffle_off_the_core() {
    let cfg = ClusterConfig::testbed_210();
    let jobs = vec![shuffle_heavy_job(0, 1.0)];
    let plan = manual_plan(&[(0, vec![3])]);
    let params = SimParams {
        cluster: cfg,
        placement: DataPlacement::PerPlan,
        horizon: SimTime::hours(10.0),
        ..SimParams::testbed()
    };
    let report = Engine::new(params.clone(), jobs, &plan, SchedulerKind::Planned).run();
    assert_eq!(report.unfinished, 0);
    let m = &report.jobs[&JobId(0)];
    // 6 GB of shuffle + 2 GB of input stayed inside rack 3; only the 0.5 GB
    // off-rack output replica crossed the core.
    assert!(
        m.cross_rack_bytes.as_gb() < 0.6,
        "cross-rack should be ~the output replica: {}",
        m.cross_rack_bytes
    );
    // Task-log conformance: every attempt ran on a rack-3 machine.
    assert_eq!(report.task_log.len(), 18);
    for t in &report.task_log {
        assert_eq!(
            params.cluster.rack_of(t.machine),
            RackId(3),
            "task {}:{} escaped its planned rack",
            t.stage,
            t.index
        );
        assert!(t.finished >= t.scheduled);
        assert!(!t.killed);
    }
    // Timeline CSV renders one line per attempt plus a header.
    let csv = report.timeline_csv();
    assert_eq!(csv.lines().count(), 19);
    assert!(csv.starts_with("job,stage,index,machine"));
}

#[test]
fn disjoint_rack_sets_isolate_jobs() {
    let cfg = ClusterConfig::testbed_210();
    let jobs = vec![shuffle_heavy_job(0, 1.0), shuffle_heavy_job(1, 1.0)];
    let plan = manual_plan(&[(0, vec![0]), (1, vec![5])]);
    let params = SimParams {
        cluster: cfg,
        placement: DataPlacement::PerPlan,
        horizon: SimTime::hours(10.0),
        ..SimParams::testbed()
    };
    let report = Engine::new(params, jobs, &plan, SchedulerKind::Planned).run();
    assert_eq!(report.unfinished, 0);
    // Both jobs rack-local; with disjoint racks they run concurrently and
    // independently — completion times should be nearly identical.
    let t0 = report.jobs[&JobId(0)].completion_time().unwrap().as_secs();
    let t1 = report.jobs[&JobId(1)].completion_time().unwrap().as_secs();
    assert!((t0 - t1).abs() / t0.max(t1) < 0.2, "t0={t0} t1={t1}");
}

#[test]
fn unplanned_jobs_run_unconstrained_under_planned_scheduler() {
    let cfg = ClusterConfig::testbed_210();
    let planned = shuffle_heavy_job(0, 1.0);
    let adhoc = shuffle_heavy_job(1, 1.0).ad_hoc();
    let plan = manual_plan(&[(0, vec![2])]);
    let params = SimParams {
        cluster: cfg,
        placement: DataPlacement::PerPlan,
        horizon: SimTime::hours(10.0),
        ..SimParams::testbed()
    };
    let report = Engine::new(params, vec![planned, adhoc], &plan, SchedulerKind::Planned).run();
    assert_eq!(report.unfinished, 0, "ad hoc job must still be scheduled");
    // The ad hoc job ran with HDFS placement and unconstrained tasks, so it
    // almost surely moved data across racks.
    assert!(report.jobs[&JobId(1)].cross_rack_bytes.0 > 0.0);
}
