//! Tracing and run-summary integration tests: the trace pipeline is
//! deterministic (same seed → byte-identical JSONL), the event stream
//! covers the task/flow/job lifecycle, and the end-of-run summary's
//! numbers are internally consistent.

use corral::cluster::config::DataPlacement;
use corral::prelude::*;
use corral::trace::{JsonlTracer, MemTracer, TraceEvent, Tracer};
use corral::workloads::w1;
use std::sync::Arc;

fn jobs() -> Vec<JobSpec> {
    w1::generate(
        &w1::W1Params {
            jobs: 8,
            ..w1::W1Params::with_seed(11)
        },
        Scale {
            task_divisor: 10.0,
            data_divisor: 4.0,
        },
    )
}

fn params(cfg: &ClusterConfig) -> SimParams {
    SimParams {
        cluster: cfg.clone(),
        background: BackgroundModel::Constant {
            per_rack: cfg.rack_core_bandwidth() * 0.5,
        },
        horizon: SimTime::hours(20.0),
        placement: DataPlacement::PerPlan,
        ..SimParams::testbed()
    }
}

/// One full run with a JSONL tracer writing into memory; returns the
/// trace bytes and the report.
fn traced_run() -> (Vec<u8>, RunReport) {
    let cfg = ClusterConfig::testbed_210();
    let jobs = jobs();
    let plan = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
    let tracer = Arc::new(JsonlTracer::new(Vec::new()));
    let mut engine = Engine::new(params(&cfg), jobs, &plan, SchedulerKind::Planned);
    engine.set_tracer(tracer.clone());
    let report = engine.run();
    let bytes = Arc::try_unwrap(tracer)
        .ok()
        .expect("engine dropped its tracer handle")
        .into_inner();
    (bytes, report)
}

#[test]
fn same_seed_runs_produce_identical_traces() {
    let (a, ra) = traced_run();
    let (b, rb) = traced_run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed traces must be byte-identical");
    assert_eq!(ra.makespan, rb.makespan);
    assert_eq!(ra.summary, rb.summary);
}

#[test]
fn trace_covers_the_lifecycle_and_is_valid_jsonl() {
    let (bytes, report) = traced_run();
    let text = String::from_utf8(bytes).expect("trace is utf-8");
    for needle in [
        "\"ev\":\"job_arrived\"",
        "\"ev\":\"task_scheduled\"",
        "\"ev\":\"task_finished\"",
        "\"ev\":\"flow_started\"",
        "\"ev\":\"flow_finished\"",
        "\"ev\":\"job_finished\"",
    ] {
        assert!(text.contains(needle), "trace missing {needle}");
    }
    let mut last_t = 0.0;
    for line in text.lines() {
        assert!(
            line.starts_with("{\"t\":") && line.ends_with('}'),
            "malformed trace line: {line}"
        );
        // Timestamps are non-decreasing: events are emitted in sim order.
        let t: f64 = line["{\"t\":".len()..line.find(',').unwrap()]
            .parse()
            .expect("numeric timestamp");
        assert!(t >= last_t, "trace went backwards: {t} after {last_t}");
        last_t = t;
    }
    let finishes = text.matches("\"ev\":\"task_finished\"").count() as u64;
    assert_eq!(finishes, report.summary.tasks_finished);
}

#[test]
fn summary_numbers_are_consistent() {
    let (_, report) = traced_run();
    let s = &report.summary;
    assert_eq!(s.scheduler, report.scheduler);
    assert_eq!(s.jobs, 8);
    assert_eq!(s.jobs_finished, 8);
    assert!(s.tasks_finished > 0);
    assert!(s.slot_utilization > 0.0 && s.slot_utilization <= 1.0);
    assert!((s.makespan_s - report.makespan.as_secs()).abs() < 1e-9);
    assert!(s.flows_completed <= s.flows_started);
    assert!(s.cross_rack_fraction >= 0.0 && s.cross_rack_fraction <= 1.0);
    assert!((s.network_bytes - report.network_bytes.0).abs() < 1e-6);
    let l = &s.locality;
    assert_eq!(
        l.machine + l.rack + l.remote + l.unconstrained,
        s.tasks_finished,
        "every first attempt lands in exactly one locality bucket"
    );
    assert!(s.task_duration_s.is_some());
    let p = s.task_duration_s.unwrap();
    assert!(p.p50 <= p.p90 && p.p90 <= p.p99);
}

#[test]
fn untraced_run_matches_traced_run() {
    // Tracing is observability only: switching the sink on must not
    // change the simulation.
    let cfg = ClusterConfig::testbed_210();
    let jobs_v = jobs();
    let plan = plan_jobs(
        &cfg,
        &jobs_v,
        Objective::Makespan,
        &PlannerConfig::default(),
    );
    let silent = Engine::new(params(&cfg), jobs_v, &plan, SchedulerKind::Planned).run();
    let (_, traced) = traced_run();
    assert_eq!(silent.makespan, traced.makespan);
    assert_eq!(silent.cross_rack_bytes, traced.cross_rack_bytes);
    assert_eq!(silent.summary.tasks_finished, traced.summary.tasks_finished);
}

#[test]
fn mem_tracer_feeds_gantt_rendering() {
    // The viz crate can render a Gantt straight from trace events.
    let cfg = ClusterConfig::testbed_210();
    let jobs_v = jobs();
    let plan = plan_jobs(
        &cfg,
        &jobs_v,
        Objective::Makespan,
        &PlannerConfig::default(),
    );
    let mem = Arc::new(MemTracer::new(1_000_000));
    let mut engine = Engine::new(params(&cfg), jobs_v, &plan, SchedulerKind::Planned);
    engine.set_tracer(mem.clone());
    let report = engine.run();
    assert_eq!(mem.dropped(), 0);

    // Round-trip through JSONL text, as `--trace` output would be.
    let jsonl = Arc::new(JsonlTracer::new(Vec::new()));
    for e in mem.events() {
        jsonl.record(e.t, e.ev);
    }
    let text = String::from_utf8(Arc::try_unwrap(jsonl).ok().unwrap().into_inner()).unwrap();
    let tasks = corral_viz::parse_trace_jsonl(&text);
    assert_eq!(tasks.len() as u64, report.summary.tasks_finished);
    let frame = corral_viz::chart::Frame::new("trace gantt", "time (s)", "machine");
    let svg = corral_viz::gantt_chart(&frame, &tasks, 210, 30);
    assert!(svg.contains("<svg"));
    assert!(svg.contains("rect"));
}

#[test]
fn scheduler_wait_events_fire_under_capacity_scheduler() {
    let cfg = ClusterConfig::testbed_210();
    let jobs_v = jobs();
    let mut p = params(&cfg);
    p.placement = DataPlacement::HdfsRandom;
    let mem = Arc::new(MemTracer::new(1_000_000));
    let mut engine = Engine::new(p, jobs_v, &Plan::default(), SchedulerKind::Capacity);
    engine.set_tracer(mem.clone());
    engine.run();
    let waits = mem
        .events()
        .iter()
        .filter(|e| matches!(e.ev, TraceEvent::SchedulerWait { .. }))
        .count();
    assert!(waits > 0, "delay scheduling never waited — suspicious");
}
