//! §7 failure handling: machine/rack failures kill running attempts, the
//! DFS loses replicas but data survives (off-rack copies), and Corral's
//! fallback lifts placement constraints when a job's racks are gutted.

use corral::cluster::config::{DataPlacement, FailureSpec};
use corral::core::plan::{Plan, PlanEntry};
use corral::model::MachineId;
use corral::prelude::*;

fn job(id: u32) -> JobSpec {
    JobSpec::map_reduce(
        JobId(id),
        format!("f{id}"),
        MapReduceProfile {
            input: Bytes::gb(4.0),
            shuffle: Bytes::gb(2.0),
            output: Bytes::gb(0.4),
            maps: 16,
            reduces: 8,
            map_rate: Bandwidth::mbytes_per_sec(50.0),
            reduce_rate: Bandwidth::mbytes_per_sec(50.0),
        },
    )
}

fn plan_on_rack(job: u32, rack: u32) -> Plan {
    let mut plan = Plan::default();
    plan.entries.insert(
        JobId(job),
        PlanEntry {
            job: JobId(job),
            racks: vec![RackId(rack)],
            priority: 0,
            planned_start: SimTime::ZERO,
            planned_finish: SimTime(1e4),
            predicted_latency: SimTime(1e4),
        },
    );
    plan
}

fn params_with_failures(failures: Vec<FailureSpec>, threshold: f64) -> SimParams {
    SimParams {
        cluster: ClusterConfig::testbed_210(),
        placement: DataPlacement::PerPlan,
        horizon: SimTime::hours(2.0),
        failure_fallback_threshold: threshold,
        failures,
        ..SimParams::testbed()
    }
}

#[test]
fn rack_failure_with_fallback_completes() {
    let failures = vec![FailureSpec::Rack {
        at: SimTime(5.0),
        rack: RackId(2),
    }];
    let params = params_with_failures(failures, 0.5);
    let report = Engine::new(
        params,
        vec![job(0)],
        &plan_on_rack(0, 2),
        SchedulerKind::Planned,
    )
    .run();
    assert_eq!(report.unfinished, 0, "fallback must rescue the job");
    let m = &report.jobs[&JobId(0)];
    assert!(
        m.tasks_killed > 0,
        "attempts on the dead rack must be killed"
    );
    assert!(m.finished.is_some());
}

#[test]
fn without_fallback_the_job_stalls() {
    // Threshold > 1 means fallback can never trigger; with its only rack
    // dead the job cannot be placed and hits the horizon.
    let failures = vec![FailureSpec::Rack {
        at: SimTime(5.0),
        rack: RackId(2),
    }];
    let params = params_with_failures(failures, 2.0);
    let report = Engine::new(
        params,
        vec![job(0)],
        &plan_on_rack(0, 2),
        SchedulerKind::Planned,
    )
    .run();
    assert_eq!(report.unfinished, 1, "no fallback, no placement, no finish");
}

#[test]
fn single_machine_failure_is_retried_in_place() {
    // One machine of the planned rack dies; the rest of the rack absorbs
    // the re-queued work without any fallback.
    let failures = vec![FailureSpec::Machine {
        at: SimTime(3.0),
        machine: MachineId(60),
    }];
    let params = params_with_failures(failures, 0.5);
    let report = Engine::new(
        params,
        vec![job(0)],
        &plan_on_rack(0, 2),
        SchedulerKind::Planned,
    )
    .run();
    assert_eq!(report.unfinished, 0);
}

#[test]
fn failures_also_handled_under_capacity_scheduler() {
    let failures = vec![
        FailureSpec::Machine {
            at: SimTime(2.0),
            machine: MachineId(0),
        },
        FailureSpec::Machine {
            at: SimTime(4.0),
            machine: MachineId(1),
        },
        FailureSpec::Rack {
            at: SimTime(6.0),
            rack: RackId(6),
        },
    ];
    let mut params = params_with_failures(failures, 0.5);
    params.placement = DataPlacement::HdfsRandom;
    let jobs = vec![job(0), job(1).arriving_at(SimTime(10.0))];
    let report = Engine::new(params, jobs, &Plan::default(), SchedulerKind::Capacity).run();
    assert_eq!(report.unfinished, 0);
}

#[test]
fn machine_id_type_guard() {
    // Compile-time sanity for the test setup helpers above.
    let m = MachineId(60);
    assert_eq!(ClusterConfig::testbed_210().rack_of(m), RackId(2));
}
