//! Whole-system determinism: identical inputs produce bit-identical runs;
//! different seeds genuinely change placement.

use corral::cluster::config::DataPlacement;
use corral::prelude::*;
use corral::workloads::{w1, w3};

fn run_once(seed: u64, kind: SchedulerKind, placement: DataPlacement) -> Vec<u64> {
    let cfg = ClusterConfig::tiny_test();
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 8,
            ..w1::W1Params::with_seed(17)
        },
        Scale {
            task_divisor: 10.0,
            data_divisor: 10.0,
        },
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(5.0), 17);
    let plan = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
    let params = SimParams {
        cluster: cfg,
        placement,
        seed,
        horizon: SimTime::hours(10.0),
        ..SimParams::testbed()
    };
    let r = Engine::new(params, jobs, &plan, kind).run();
    let mut bits = vec![
        r.makespan.0.to_bits(),
        r.cross_rack_bytes.0.to_bits(),
        r.network_bytes.0.to_bits(),
    ];
    for m in r.jobs.values() {
        bits.push(m.finished.unwrap().0.to_bits());
        bits.push(m.task_seconds.to_bits());
    }
    bits
}

#[test]
fn identical_inputs_bit_identical_outputs() {
    for kind in [
        SchedulerKind::Capacity,
        SchedulerKind::Planned,
        SchedulerKind::ShuffleWatcher,
    ] {
        let a = run_once(7, kind, DataPlacement::PerPlan);
        let b = run_once(7, kind, DataPlacement::PerPlan);
        assert_eq!(a, b, "{kind:?} must be deterministic");
    }
}

#[test]
fn seed_changes_placement_and_outcome() {
    let a = run_once(7, SchedulerKind::Capacity, DataPlacement::HdfsRandom);
    let b = run_once(8, SchedulerKind::Capacity, DataPlacement::HdfsRandom);
    assert_ne!(a, b, "different seeds must alter DFS placement outcomes");
}

#[test]
fn planner_is_deterministic() {
    let cfg = ClusterConfig::testbed_210();
    let jobs = w3::generate(
        &w3::W3Params {
            jobs: 30,
            ..Default::default()
        },
        Scale::bench_default(),
    );
    let p1 = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
    let p2 = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
    assert_eq!(p1, p2);
}
