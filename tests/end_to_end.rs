//! End-to-end pipeline test: workload generation → offline planning →
//! simulated execution, across all four systems of the paper.

use corral::cluster::config::DataPlacement;
use corral::prelude::*;
use corral::workloads::w1;

fn scale() -> Scale {
    Scale {
        task_divisor: 10.0,
        data_divisor: 4.0,
    }
}

fn base_params(cfg: &ClusterConfig) -> SimParams {
    SimParams {
        cluster: cfg.clone(),
        background: BackgroundModel::Constant {
            per_rack: cfg.rack_core_bandwidth() * 0.5,
        },
        horizon: SimTime::hours(20.0),
        ..SimParams::testbed()
    }
}

#[test]
fn full_pipeline_all_variants() {
    let cfg = ClusterConfig::testbed_210();
    let jobs = w1::generate(
        &w1::W1Params {
            jobs: 30,
            ..w1::W1Params::with_seed(5)
        },
        Scale {
            task_divisor: 10.0,
            data_divisor: 1.5,
        },
    );
    let plan = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
    assert_eq!(plan.len(), jobs.len());

    let mut reports = Vec::new();
    for (kind, placement, with_plan) in [
        (SchedulerKind::Capacity, DataPlacement::HdfsRandom, false),
        (SchedulerKind::Planned, DataPlacement::PerPlan, true),
        (SchedulerKind::Planned, DataPlacement::HdfsRandom, true),
        (
            SchedulerKind::ShuffleWatcher,
            DataPlacement::HdfsRandom,
            false,
        ),
    ] {
        let mut params = base_params(&cfg);
        params.placement = placement;
        let empty = Plan::default();
        let p = if with_plan { &plan } else { &empty };
        let report = Engine::new(params, jobs.clone(), p, kind).run();
        assert_eq!(
            report.unfinished, 0,
            "{}: unfinished jobs",
            report.scheduler
        );
        assert_eq!(report.jobs.len(), jobs.len());
        // Sanity of metrics.
        for m in report.jobs.values() {
            assert!(m.finished.unwrap() >= m.started.unwrap());
            assert!(m.task_seconds > 0.0);
            assert!(m.tasks_completed > 0);
        }
        reports.push(report);
    }

    let yarn = &reports[0];
    let corral = &reports[1];
    // The paper's headline mechanisms, in order: less cross-rack traffic...
    assert!(
        corral.cross_rack_bytes.0 < yarn.cross_rack_bytes.0,
        "corral cross-rack {} must beat yarn {}",
        corral.cross_rack_bytes,
        yarn.cross_rack_bytes
    );
    // ...and a makespan at least competitive. (The decisive wins show up
    // under the experiment suite's contention levels; at this small scale
    // we assert Corral is in Yarn's ballpark or better.)
    assert!(
        corral.makespan.as_secs() < yarn.makespan.as_secs() * 1.15,
        "corral makespan {} vs yarn {}",
        corral.makespan,
        yarn.makespan
    );
}

#[test]
fn online_pipeline_with_arrivals() {
    let cfg = ClusterConfig::testbed_210();
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 10,
            ..w1::W1Params::with_seed(6)
        },
        scale(),
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(10.0), 6);
    let plan = plan_jobs(
        &cfg,
        &jobs,
        Objective::AvgCompletionTime,
        &PlannerConfig::default(),
    );

    let mut params = base_params(&cfg);
    params.placement = DataPlacement::PerPlan;
    let report = Engine::new(params, jobs.clone(), &plan, SchedulerKind::Planned).run();
    assert_eq!(report.unfinished, 0);
    for j in &jobs {
        let m = &report.jobs[&j.id];
        assert!(
            m.started.unwrap() >= j.arrival,
            "job {} started before its arrival",
            j.id
        );
    }
    assert!(report.avg_completion_time() > 0.0);
}

#[test]
fn dag_jobs_full_pipeline() {
    use corral::workloads::tpch;
    let cfg = ClusterConfig::testbed_210();
    let jobs = tpch::generate(
        20e9,
        Scale {
            task_divisor: 4.0,
            data_divisor: 1.0,
        },
    );
    let plan = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
    let mut params = base_params(&cfg);
    params.placement = DataPlacement::PerPlan;
    let report = Engine::new(params, jobs.clone(), &plan, SchedulerKind::Planned).run();
    assert_eq!(report.unfinished, 0);
    // Every query completed all of its stages' tasks.
    for j in &jobs {
        let m = &report.jobs[&j.id];
        assert_eq!(
            m.tasks_completed as usize,
            j.profile.total_tasks(),
            "{}",
            j.name
        );
    }
}
