//! Probe-neutrality test: `corral-probe` is host-side observability
//! *only*. Turning it on must not perturb the simulation in any way —
//! the sim-trace JSONL stays byte-identical, the planner emits the same
//! `Plan`, and the run summary matches, for the same seed.
//!
//! Kept as a single `#[test]` in its own binary: the probe's
//! enabled flag and merge accumulator are process-global, so sharing a
//! binary with concurrently-running tests (cargo's default) would race
//! on them.

use corral::cluster::config::DataPlacement;
use corral::prelude::*;
use corral::trace::probe;
use corral::trace::JsonlTracer;
use corral::workloads::w1;
use std::sync::Arc;

fn jobs() -> Vec<JobSpec> {
    w1::generate(
        &w1::W1Params {
            jobs: 8,
            ..w1::W1Params::with_seed(11)
        },
        Scale {
            task_divisor: 10.0,
            data_divisor: 4.0,
        },
    )
}

fn params(cfg: &ClusterConfig) -> SimParams {
    SimParams {
        cluster: cfg.clone(),
        background: BackgroundModel::Constant {
            per_rack: cfg.rack_core_bandwidth() * 0.5,
        },
        horizon: SimTime::hours(20.0),
        placement: DataPlacement::PerPlan,
        ..SimParams::testbed()
    }
}

/// Plans and runs the fixed workload with a JSONL tracer; returns the
/// plan, the trace bytes, and the report.
fn traced_run() -> (Plan, Vec<u8>, RunReport) {
    let cfg = ClusterConfig::testbed_210();
    let jobs = jobs();
    let plan = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
    let tracer = Arc::new(JsonlTracer::new(Vec::new()));
    let mut engine = Engine::new(params(&cfg), jobs, &plan, SchedulerKind::Planned);
    engine.set_tracer(tracer.clone());
    let report = engine.run();
    let bytes = Arc::try_unwrap(tracer)
        .ok()
        .expect("engine dropped its tracer handle")
        .into_inner();
    (plan, bytes, report)
}

#[test]
fn probes_do_not_perturb_the_simulation() {
    // Baseline: probes off (the default, but make it explicit).
    probe::set_enabled(false);
    probe::reset();
    let (plan_off, trace_off, report_off) = traced_run();
    assert!(
        probe::report().is_empty(),
        "disabled probes must record nothing"
    );

    // Probed: same seed, probes on.
    probe::set_enabled(true);
    probe::reset();
    let (plan_on, trace_on, report_on) = traced_run();
    let pr = probe::report();
    probe::set_enabled(false);

    // The probes actually observed the run — otherwise this test would
    // pass vacuously with broken wiring.
    for kind in [
        probe::SpanKind::EngineEvent,
        probe::SpanKind::FabricRecompute,
        probe::SpanKind::PlanDecision,
    ] {
        let stat = pr
            .span_stat(kind)
            .unwrap_or_else(|| panic!("no `{}` spans recorded", kind.label()));
        assert!(stat.count > 0);
        assert!(stat.p50_s <= stat.p99_s);
    }

    // ...and observed nothing the simulation could see.
    assert!(!trace_off.is_empty());
    assert_eq!(
        trace_off, trace_on,
        "sim trace must be byte-identical with probes on"
    );
    assert_eq!(plan_off, plan_on, "plan must be unchanged with probes on");
    assert_eq!(report_off.makespan, report_on.makespan);
    assert_eq!(report_off.summary, report_on.summary);
}
