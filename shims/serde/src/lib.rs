//! Offline stand-in for `serde`. The workspace derives
//! `Serialize`/`Deserialize` on its model types for downstream consumers
//! but never serializes through serde at runtime (all output formats are
//! hand-rolled CSV/JSON), so marker traits with blanket impls are
//! sufficient: every `T: Serialize` bound is satisfied and the derive
//! attribute (including `#[serde(transparent)]` etc.) parses and expands
//! to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
