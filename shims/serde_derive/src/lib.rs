//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The shim's traits are marker traits with blanket impls, so the derives
//! only need to exist (and accept `#[serde(...)]` attributes) — they
//! expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; expands
/// to nothing (the shim blanket-implements the trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; expands
/// to nothing (the shim blanket-implements the trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
