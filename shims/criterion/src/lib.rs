//! Offline stand-in for `criterion`: a thin wall-clock benchmarking
//! harness exposing the API surface the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`).
//!
//! Each benchmark runs one warmup iteration then `sample_size` timed
//! iterations and prints min / mean / max per-iteration wall time. Set
//! `CRITERION_SAMPLES` to override the sample count globally (handy for
//! quick smoke runs).

#![forbid(unsafe_code)]

use std::time::Instant;

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `maxmin/1000`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for single-function parameter sweeps.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: usize,
    timings_ns: Vec<u128>,
}

impl Bencher {
    /// Runs `routine` once for warmup, then `samples` timed iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.timings_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.timings_ns.push(t0.elapsed().as_nanos());
        }
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        timings_ns: Vec::new(),
    };
    f(&mut b);
    if b.timings_ns.is_empty() {
        println!("{full_id:<40} (no samples)");
        return;
    }
    let min = *b.timings_ns.iter().min().unwrap() as f64;
    let max = *b.timings_ns.iter().max().unwrap() as f64;
    let mean = b.timings_ns.iter().sum::<u128>() as f64 / b.timings_ns.len() as f64;
    println!(
        "{full_id:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: env_samples(10),
        }
    }
}

impl Criterion {
    /// Sets the default per-benchmark sample count (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = env_samples(n);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = env_samples(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro
/// (both the simple and the `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("f", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("with", 7), &3usize, |b, x| {
                b.iter(|| calls += *x)
            });
            g.finish();
        }
        // warmup + 2 samples each; second bench adds 3 per call.
        assert_eq!(calls, 3 + 3 * 3);
    }
}
