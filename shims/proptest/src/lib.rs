//! Offline stand-in for `proptest`: randomized property testing without
//! shrinking. Covers the surface this workspace uses — the `proptest!`
//! macro (with `#![proptest_config]` headers), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, range and tuple strategies,
//! `collection::vec`, `option::of`, `any::<T>()`, `prop_map` /
//! `prop_flat_map`, and `ProptestConfig::with_cases`.
//!
//! Each property runs `cases` times with values drawn from a
//! deterministic per-test rng (seeded from the test's name), so failures
//! are reproducible run to run. On failure the offending case is
//! reported via panic; there is no shrinking, so the printed values are
//! the raw failing sample.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Controls how many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count.
    Reject(String),
    /// A `prop_assert!`-style check failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection (from `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Builds a failure (from `prop_assert!` and friends).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a seeded sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// from the result (for dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen::<bool>(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::Rng::gen::<$t>(rng)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rand::Rng::gen::<f64>(rng)
    }
}

/// Strategy for the full domain of `A` (via [`Arbitrary`]).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<A>(core::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).
    use super::{StdRng, Strategy};

    /// A size specification: exact, half-open, or inclusive.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi_incl);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use super::{StdRng, Strategy};

    /// `Option<S::Value>`, `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rand::Rng::gen_bool(rng, 0.75) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Deterministic per-test rng (FNV-1a of the test name). Macro plumbing;
/// not part of the public proptest API.
#[doc(hidden)]
pub fn __new_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ 0x1234_5678_9abc_def0)
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::__new_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).saturating_add(100) {
                    panic!(
                        "proptest {}: too many rejected cases ({} attempts for {} passes)",
                        stringify!($name),
                        attempts,
                        passed
                    );
                }
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed (case {} of {}): {}",
                            stringify!($name),
                            passed + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs,
                rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                lhs,
                rhs
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Vetoes the current case (it is regenerated, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pairs() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 0u32..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and maps compose.
        #[test]
        fn ranges_in_bounds((a, b) in pairs(), f in 0.5f64..2.0) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!((0.5..2.0).contains(&f));
        }

        /// Assume rejects without failing.
        #[test]
        fn assume_filters(v in 0usize..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        /// Vectors honour their size range; flat_map sees dependent sizes.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0i32..5, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }

        /// option::of produces both variants across a run.
        #[test]
        fn option_of_mixes(vs in crate::collection::vec(crate::option::of(0u64..5), 64)) {
            prop_assert!(vs.iter().any(|o| o.is_some()));
            prop_assert!(vs.iter().any(|o| o.is_none()));
        }
    }

    proptest! {
        /// Default config (no header) also compiles and runs.
        #[test]
        fn flat_map_dependent(pair in (2usize..8).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn starved_assume_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unreachable_code)]
            fn inner(v in 0usize..10) {
                prop_assume!(v > 100);
                let _ = v;
            }
        }
        inner();
    }
}
