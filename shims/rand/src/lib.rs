//! Offline stand-in for the `rand` crate covering the surface this
//! workspace uses: `StdRng` seeded via `seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}` over float/integer ranges, and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and fully deterministic for a given seed. Streams do NOT
//! match upstream `rand`; everything in this repo that depends on
//! reproducibility seeds its own rng, so only self-consistency matters.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type (32 bytes for [`rngs::StdRng`], like upstream).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from a bounded range (mirrors upstream's
/// `SampleUniform` so range impls can be blanket impls — important for
/// type inference on float literals).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics when `lo >= hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`. Panics when `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + f64::sample_standard(rng) * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let v = lo + f32::sample_standard(rng) * (hi - lo);
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's full domain
    /// (for floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(1..=4);
            assert!((1..=4).contains(&w));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice untouched");
    }
}
