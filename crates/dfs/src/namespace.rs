//! The DFS namespace: files, chunks, replica locations, load accounting.

use crate::placement::{LoadView, PlacementPolicy};
use corral_model::{Bytes, ChunkId, ClusterConfig, FileId, MachineId, RackId};
use rand::rngs::StdRng;

/// A stored chunk and its replica set.
#[derive(Debug, Clone)]
pub struct ChunkInfo {
    /// Chunk id (global, dense).
    pub id: ChunkId,
    /// Owning file.
    pub file: FileId,
    /// Chunk size (the last chunk of a file may be short).
    pub size: Bytes,
    /// Machines holding a replica, primary first.
    pub replicas: Vec<MachineId>,
}

impl ChunkInfo {
    /// Replicas on machines that are still alive.
    pub fn live_replicas<'a>(&'a self, dead: &'a [bool]) -> impl Iterator<Item = MachineId> + 'a {
        self.replicas.iter().copied().filter(|m| !dead[m.index()])
    }
}

/// A stored file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// File id.
    pub id: FileId,
    /// Human-readable name (e.g. "input/j42").
    pub name: String,
    /// Total bytes.
    pub bytes: Bytes,
    /// Dense chunk-id range `[first, first + count)`.
    pub first_chunk: ChunkId,
    /// Number of chunks.
    pub chunk_count: u64,
}

/// The distributed filesystem model: a namespace plus replica-location and
/// load-accounting state. Chunk placement is delegated to a
/// [`PlacementPolicy`] chosen per file (stock HDFS for ad hoc jobs, Corral's
/// rack-pinned policy for planned jobs).
///
/// ```
/// use corral_dfs::{CorralPlacement, Dfs};
/// use corral_model::{Bytes, ClusterConfig, RackId};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut dfs = Dfs::new(ClusterConfig::tiny_test());
/// let mut rng = StdRng::seed_from_u64(7);
/// let policy = CorralPlacement::new(vec![RackId(1)]);
/// let file = dfs.write_file("job-input", Bytes::mb(256.0), &policy, &mut rng);
/// // One replica of every chunk landed inside the planned rack.
/// assert_eq!(dfs.rack_locality_fractions(file)[1], 1.0);
/// ```
#[derive(Debug)]
pub struct Dfs {
    cfg: ClusterConfig,
    files: Vec<FileInfo>,
    chunks: Vec<ChunkInfo>,
    /// Bytes stored per machine (all replicas).
    machine_bytes: Vec<f64>,
    /// Bytes stored per rack (all replicas).
    rack_bytes: Vec<f64>,
    /// Machine liveness.
    dead: Vec<bool>,
}

impl Dfs {
    /// An empty namespace over `cfg`.
    pub fn new(cfg: ClusterConfig) -> Self {
        let machines = cfg.total_machines();
        let racks = cfg.racks;
        Dfs {
            cfg,
            files: Vec::new(),
            chunks: Vec::new(),
            machine_bytes: vec![0.0; machines],
            rack_bytes: vec![0.0; racks],
            dead: vec![false; machines],
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Writes (registers) a file of `bytes`, placing each chunk's replicas
    /// with `policy`. Returns the new file's id.
    pub fn write_file(
        &mut self,
        name: impl Into<String>,
        bytes: Bytes,
        policy: &dyn PlacementPolicy,
        rng: &mut StdRng,
    ) -> FileId {
        let id = FileId(self.files.len() as u64);
        let chunk_size = self.cfg.chunk_size;
        let count = if bytes.0 <= 0.0 {
            0
        } else {
            (bytes.0 / chunk_size.0).ceil() as u64
        };
        let first_chunk = ChunkId(self.chunks.len() as u64);
        let mut remaining = bytes;
        for _ in 0..count {
            let size = remaining.min(chunk_size);
            remaining -= size;
            let view = LoadView {
                machine_bytes: &self.machine_bytes,
                rack_bytes: &self.rack_bytes,
                dead: &self.dead,
            };
            let replicas = policy.place(&self.cfg, view, rng);
            let cid = ChunkId(self.chunks.len() as u64);
            for &m in &replicas {
                self.machine_bytes[m.index()] += size.0;
                self.rack_bytes[self.cfg.rack_of(m).index()] += size.0;
            }
            self.chunks.push(ChunkInfo {
                id: cid,
                file: id,
                size,
                replicas,
            });
        }
        self.files.push(FileInfo {
            id,
            name: name.into(),
            bytes,
            first_chunk,
            chunk_count: count,
        });
        id
    }

    /// File metadata.
    pub fn file(&self, id: FileId) -> &FileInfo {
        &self.files[id.index()]
    }

    /// Chunk metadata.
    pub fn chunk(&self, id: ChunkId) -> &ChunkInfo {
        &self.chunks[id.index()]
    }

    /// The chunks of a file, in offset order.
    pub fn chunks_of(&self, id: FileId) -> &[ChunkInfo] {
        let f = self.file(id);
        let a = f.first_chunk.index();
        &self.chunks[a..a + f.chunk_count as usize]
    }

    /// Machine liveness table.
    pub fn dead(&self) -> &[bool] {
        &self.dead
    }

    /// Marks a machine failed: its replicas become unavailable (they are
    /// *not* re-replicated — within a single job window the paper's concern
    /// is scheduling around the loss, see §7).
    pub fn kill_machine(&mut self, m: MachineId) {
        self.dead[m.index()] = true;
    }

    /// Marks every machine of `rack` failed.
    pub fn kill_rack(&mut self, r: RackId) {
        for m in self.cfg.machines_in_rack(r).collect::<Vec<_>>() {
            self.kill_machine(m);
        }
    }

    /// Revives a machine.
    pub fn revive_machine(&mut self, m: MachineId) {
        self.dead[m.index()] = false;
    }

    /// Bytes stored on each rack (all replicas counted).
    pub fn rack_bytes(&self) -> &[f64] {
        &self.rack_bytes
    }

    /// Bytes stored on each machine (all replicas counted).
    pub fn machine_bytes(&self) -> &[f64] {
        &self.machine_bytes
    }

    /// Coefficient of variation of per-rack stored bytes — the §6.2.1
    /// data-balance metric.
    pub fn rack_balance_cov(&self) -> f64 {
        crate::balance::coefficient_of_variation(&self.rack_bytes)
    }

    /// Fraction of `file`'s bytes with at least one *live* replica in each
    /// rack. Used by locality-aware schedulers: `fractions[r]` is the share
    /// of the file readable rack-locally from rack `r`.
    pub fn rack_locality_fractions(&self, file: FileId) -> Vec<f64> {
        let mut frac = vec![0.0; self.cfg.racks];
        let f = self.file(file);
        if f.bytes.0 <= 0.0 {
            return frac;
        }
        for c in self.chunks_of(file) {
            let mut seen = vec![false; self.cfg.racks];
            for m in c.live_replicas(&self.dead) {
                let r = self.cfg.rack_of(m).index();
                if !seen[r] {
                    seen[r] = true;
                    frac[r] += c.size.0;
                }
            }
        }
        for v in frac.iter_mut() {
            *v /= f.bytes.0;
        }
        frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{CorralPlacement, HdfsDefault};
    use corral_model::ClusterConfig;
    use rand::SeedableRng;

    fn dfs() -> Dfs {
        Dfs::new(ClusterConfig::tiny_test()) // chunk 64MB, repl 3
    }

    #[test]
    fn write_file_splits_into_chunks() {
        let mut d = dfs();
        let mut rng = StdRng::seed_from_u64(1);
        let f = d.write_file("in", Bytes::mb(200.0), &HdfsDefault, &mut rng);
        let info = d.file(f);
        assert_eq!(info.chunk_count, 4); // 3 x 64 + 8
        let chunks = d.chunks_of(f);
        assert_eq!(chunks.len(), 4);
        let total: Bytes = chunks.iter().map(|c| c.size).sum();
        assert!((total.0 - Bytes::mb(200.0).0).abs() < 1.0);
        assert!((chunks[3].size.0 - Bytes::mb(8.0).0).abs() < 1.0);
        for c in chunks {
            assert_eq!(c.replicas.len(), 3);
        }
    }

    #[test]
    fn load_accounting_counts_all_replicas() {
        let mut d = dfs();
        let mut rng = StdRng::seed_from_u64(2);
        d.write_file("in", Bytes::mb(128.0), &HdfsDefault, &mut rng);
        let total_machine: f64 = d.machine_bytes().iter().sum();
        let total_rack: f64 = d.rack_bytes().iter().sum();
        assert!((total_machine - 3.0 * Bytes::mb(128.0).0).abs() < 1.0);
        assert!((total_rack - total_machine).abs() < 1.0);
    }

    #[test]
    fn empty_file_has_no_chunks() {
        let mut d = dfs();
        let mut rng = StdRng::seed_from_u64(3);
        let f = d.write_file("empty", Bytes::ZERO, &HdfsDefault, &mut rng);
        assert_eq!(d.file(f).chunk_count, 0);
        assert!(d.chunks_of(f).is_empty());
        assert_eq!(d.rack_locality_fractions(f), vec![0.0; 3]);
    }

    #[test]
    fn corral_placement_gives_full_locality_in_planned_rack() {
        let mut d = dfs();
        let mut rng = StdRng::seed_from_u64(4);
        let policy = CorralPlacement::new(vec![RackId(2)]);
        let f = d.write_file("in", Bytes::mb(640.0), &policy, &mut rng);
        let frac = d.rack_locality_fractions(f);
        assert!((frac[2] - 1.0).abs() < 1e-9, "frac={frac:?}");
    }

    #[test]
    fn killing_machines_removes_live_replicas() {
        let mut d = dfs();
        let mut rng = StdRng::seed_from_u64(5);
        let policy = CorralPlacement::new(vec![RackId(0)]);
        let f = d.write_file("in", Bytes::mb(128.0), &policy, &mut rng);
        d.kill_rack(RackId(0));
        let frac = d.rack_locality_fractions(f);
        assert_eq!(frac[0], 0.0, "dead rack cannot serve replicas");
        // Remaining replicas still cover the file somewhere.
        assert!(frac.iter().any(|&x| x > 0.0));
        for c in d.chunks_of(f) {
            assert!(c.live_replicas(d.dead()).count() >= 1);
        }
        // Revive and locality returns.
        for m in 0..4 {
            d.revive_machine(MachineId(m));
        }
        let frac = d.rack_locality_fractions(f);
        assert!((frac[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_files_have_disjoint_chunk_ranges() {
        let mut d = dfs();
        let mut rng = StdRng::seed_from_u64(6);
        let a = d.write_file("a", Bytes::mb(100.0), &HdfsDefault, &mut rng);
        let b = d.write_file("b", Bytes::mb(100.0), &HdfsDefault, &mut rng);
        let ids_a: Vec<u64> = d.chunks_of(a).iter().map(|c| c.id.0).collect();
        let ids_b: Vec<u64> = d.chunks_of(b).iter().map(|c| c.id.0).collect();
        assert!(ids_a.iter().all(|i| !ids_b.contains(i)));
        assert!(d.chunks_of(b).iter().all(|c| c.file == b));
    }
}
