//! # corral-dfs
//!
//! An HDFS-like distributed-filesystem *model* for the Corral reproduction:
//! files are split into fixed-size chunks, each chunk is replicated across
//! machines under a pluggable [`PlacementPolicy`], and the namespace answers
//! the locality queries schedulers care about ("which machines hold a
//! replica of this chunk?", "what fraction of this file lives in rack r?").
//!
//! No data moves through this crate — actual transfer times are simulated by
//! `corral-simnet` flows created by the cluster engine. What matters here is
//! *where replicas land*, because that is the entire lever Corral pulls:
//!
//! * [`placement::HdfsDefault`] reproduces stock HDFS: first replica on a
//!   random machine, the remaining two together on a different random rack
//!   ("two of the chunks reside on the same rack, while the third one is on
//!   a different rack", §2).
//! * [`placement::CorralPlacement`] reproduces Corral's modified `create()`
//!   (§3.1, §5): one replica lands inside the job's planned rack set `Rj`;
//!   the others land elsewhere in the cluster, greedily on the least-loaded
//!   racks (§4.5) while respecting the same fault-tolerance shape.
//!
//! The namespace also maintains per-rack byte totals so the data-balance
//! claim of §6.2.1 (coefficient of variation ≤ 0.004 for Corral vs ≈ 0.014
//! for HDFS) can be measured directly ([`Dfs::rack_balance_cov`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod namespace;
pub mod placement;

pub use balance::coefficient_of_variation;
pub use namespace::{ChunkInfo, Dfs, FileInfo};
pub use placement::{CorralPlacement, HdfsDefault, LoadView, PlacementPolicy};
