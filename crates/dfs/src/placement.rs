//! Chunk replica placement policies.

use corral_model::{ClusterConfig, MachineId, RackId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A read-only view of current DFS load and machine liveness, handed to
/// policies so they can balance and avoid dead machines.
#[derive(Debug, Clone, Copy)]
pub struct LoadView<'a> {
    /// Bytes stored per machine (all replicas counted).
    pub machine_bytes: &'a [f64],
    /// Bytes stored per rack (all replicas counted).
    pub rack_bytes: &'a [f64],
    /// Liveness per machine (`false` = failed, ineligible for placement).
    pub dead: &'a [bool],
}

impl<'a> LoadView<'a> {
    /// Live machines of `rack`, in id order.
    pub fn live_machines_in<'b>(
        &'b self,
        cfg: &'b ClusterConfig,
        rack: RackId,
    ) -> impl Iterator<Item = MachineId> + 'b {
        let dead = self.dead;
        cfg.machines_in_rack(rack).filter(move |m| !dead[m.index()])
    }

    /// True if `rack` has at least `n` live machines.
    pub fn rack_has_live(&self, cfg: &ClusterConfig, rack: RackId, n: usize) -> bool {
        self.live_machines_in(cfg, rack).take(n).count() == n
    }
}

/// Chooses the machines that will hold the replicas of one chunk.
pub trait PlacementPolicy {
    /// Returns `cfg.replication` machine ids (fewer only if the cluster has
    /// fewer live machines). Implementations must never return a dead
    /// machine and should avoid duplicate machines.
    fn place(&self, cfg: &ClusterConfig, view: LoadView<'_>, rng: &mut StdRng) -> Vec<MachineId>;

    /// Policy name for tracing.
    fn name(&self) -> &'static str;
}

/// Picks `n` distinct live machines from `rack`, uniformly at random.
fn pick_in_rack(
    cfg: &ClusterConfig,
    view: &LoadView<'_>,
    rack: RackId,
    n: usize,
    exclude: &[MachineId],
    rng: &mut StdRng,
) -> Vec<MachineId> {
    let mut candidates: Vec<MachineId> = view
        .live_machines_in(cfg, rack)
        .filter(|m| !exclude.contains(m))
        .collect();
    candidates.shuffle(rng);
    candidates.truncate(n);
    candidates
}

/// Racks with at least one live machine, ascending id.
fn live_racks(cfg: &ClusterConfig, view: &LoadView<'_>) -> Vec<RackId> {
    cfg.all_racks()
        .filter(|&r| view.live_machines_in(cfg, r).next().is_some())
        .collect()
}

/// Stock HDFS block placement (as described in §2 of the paper): the first
/// replica on a random machine; the remaining replicas together on one
/// *different* random rack (so two replicas share a rack and one is remote).
#[derive(Debug, Default, Clone)]
pub struct HdfsDefault;

impl PlacementPolicy for HdfsDefault {
    fn place(&self, cfg: &ClusterConfig, view: LoadView<'_>, rng: &mut StdRng) -> Vec<MachineId> {
        let racks = live_racks(cfg, &view);
        if racks.is_empty() {
            return Vec::new();
        }
        // First replica: uniform over live machines.
        let first_rack = racks[rng.gen_range(0..racks.len())];
        let mut out = pick_in_rack(cfg, &view, first_rack, 1, &[], rng);
        if out.is_empty() {
            return out;
        }
        let remaining = cfg.replication.saturating_sub(1);
        if remaining == 0 {
            return out;
        }
        // Remaining replicas: one different rack, distinct machines.
        let others: Vec<RackId> = racks.iter().copied().filter(|&r| r != first_rack).collect();
        let second_rack = if others.is_empty() {
            first_rack // single-rack cluster: degrade gracefully
        } else {
            others[rng.gen_range(0..others.len())]
        };
        out.extend(pick_in_rack(cfg, &view, second_rack, remaining, &out, rng));
        out
    }

    fn name(&self) -> &'static str {
        "hdfs-default"
    }
}

/// Corral's placement (§3.1): one replica of each chunk on a random rack
/// drawn from the job's planned rack set `Rj`; the remaining replicas
/// together on another rack — chosen, per §4.5, as the *least-loaded* rack
/// outside the first ("we supplement this approach by greedily placing the
/// last two data replicas on the least loaded rack"). The shape (two
/// replicas on one rack, one on another) matches the HDFS fault-tolerance
/// policy.
#[derive(Debug, Clone)]
pub struct CorralPlacement {
    /// The planned rack set `Rj` for the job whose input is being written.
    pub planned_racks: Vec<RackId>,
}

impl CorralPlacement {
    /// Builds the policy from a plan's rack set.
    pub fn new(mut planned_racks: Vec<RackId>) -> Self {
        planned_racks.sort_unstable();
        planned_racks.dedup();
        CorralPlacement { planned_racks }
    }
}

impl PlacementPolicy for CorralPlacement {
    fn place(&self, cfg: &ClusterConfig, view: LoadView<'_>, rng: &mut StdRng) -> Vec<MachineId> {
        let live = live_racks(cfg, &view);
        if live.is_empty() {
            return Vec::new();
        }
        // Primary replica: the least-loaded live rack from Rj (ties by rack
        // id) — §3.1 places it "in a randomly chosen rack from Rj", and
        // §4.5 supplements the scheme greedily toward balance; choosing the
        // lightest planned rack keeps per-chunk locality identical while
        // matching the paper's measured CoV ≤ 0.004. If the whole planned
        // set is dead, fall back to any live rack (the runtime scheduler
        // will likewise ignore the guidelines, §3.1).
        let planned_live: Vec<RackId> = self
            .planned_racks
            .iter()
            .copied()
            .filter(|r| live.contains(r))
            .collect();
        let primary_rack = if planned_live.is_empty() {
            live[rng.gen_range(0..live.len())]
        } else {
            planned_live
                .iter()
                .copied()
                .min_by(|a, b| {
                    view.rack_bytes[a.index()]
                        .total_cmp(&view.rack_bytes[b.index()])
                        .then(a.cmp(b))
                })
                .unwrap()
        };
        let mut out = pick_in_rack(cfg, &view, primary_rack, 1, &[], rng);
        if out.is_empty() {
            return out;
        }
        let remaining = cfg.replication.saturating_sub(1);
        if remaining == 0 {
            return out;
        }
        // Remaining replicas: the least-loaded live rack other than the
        // primary (ties broken by rack id for determinism).
        let secondary = live
            .iter()
            .copied()
            .filter(|&r| r != primary_rack)
            .min_by(|a, b| {
                view.rack_bytes[a.index()]
                    .total_cmp(&view.rack_bytes[b.index()])
                    .then(a.cmp(b))
            })
            .unwrap_or(primary_rack);
        out.extend(pick_in_rack(cfg, &view, secondary, remaining, &out, rng));
        out
    }

    fn name(&self) -> &'static str {
        "corral"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> ClusterConfig {
        ClusterConfig::tiny_test() // 3 racks x 4 machines, replication 3
    }

    fn no_load(cfg: &ClusterConfig) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
        (
            vec![0.0; cfg.total_machines()],
            vec![0.0; cfg.racks],
            vec![false; cfg.total_machines()],
        )
    }

    fn view<'a>(m: &'a [f64], r: &'a [f64], d: &'a [bool]) -> LoadView<'a> {
        LoadView {
            machine_bytes: m,
            rack_bytes: r,
            dead: d,
        }
    }

    #[test]
    fn hdfs_default_shape_two_plus_one() {
        let cfg = cfg();
        let (m, r, d) = no_load(&cfg);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let placed = HdfsDefault.place(&cfg, view(&m, &r, &d), &mut rng);
            assert_eq!(placed.len(), 3);
            // No duplicate machines.
            let mut uniq = placed.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3);
            // Exactly two racks: one with 1 replica, one with 2.
            let mut racks: Vec<RackId> = placed.iter().map(|&mm| cfg.rack_of(mm)).collect();
            racks.sort();
            racks.dedup();
            assert_eq!(racks.len(), 2, "placement {placed:?}");
        }
    }

    #[test]
    fn corral_places_primary_in_planned_racks() {
        let cfg = cfg();
        let (m, r, d) = no_load(&cfg);
        let policy = CorralPlacement::new(vec![RackId(1)]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let placed = policy.place(&cfg, view(&m, &r, &d), &mut rng);
            assert_eq!(placed.len(), 3);
            assert_eq!(cfg.rack_of(placed[0]), RackId(1));
            // Secondary replicas on a different rack.
            assert_ne!(cfg.rack_of(placed[1]), RackId(1));
            assert_eq!(cfg.rack_of(placed[1]), cfg.rack_of(placed[2]));
        }
    }

    #[test]
    fn corral_secondary_prefers_least_loaded_rack() {
        let cfg = cfg();
        let (m, mut r, d) = no_load(&cfg);
        r[0] = 1e12; // rack 0 heavily loaded
        r[2] = 1e6; // rack 2 lightly loaded
        let policy = CorralPlacement::new(vec![RackId(1)]);
        let mut rng = StdRng::seed_from_u64(11);
        let placed = policy.place(&cfg, view(&m, &r, &d), &mut rng);
        assert_eq!(cfg.rack_of(placed[1]), RackId(2));
    }

    #[test]
    fn dead_machines_are_never_chosen() {
        let cfg = cfg();
        let (m, r, mut d) = no_load(&cfg);
        // Kill all of rack 0 and half of rack 1.
        d[0..4].fill(true);
        d[4] = true;
        d[5] = true;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            for placed in [
                HdfsDefault.place(&cfg, view(&m, &r, &d), &mut rng),
                CorralPlacement::new(vec![RackId(0)]).place(&cfg, view(&m, &r, &d), &mut rng),
            ] {
                assert!(!placed.is_empty());
                for mm in &placed {
                    assert!(!d[mm.index()], "dead machine chosen: {mm}");
                }
            }
        }
    }

    #[test]
    fn corral_falls_back_when_planned_racks_dead() {
        let cfg = cfg();
        let (m, r, mut d) = no_load(&cfg);
        d[0..4].fill(true); // rack 0 fully dead
        let policy = CorralPlacement::new(vec![RackId(0)]);
        let mut rng = StdRng::seed_from_u64(9);
        let placed = policy.place(&cfg, view(&m, &r, &d), &mut rng);
        assert_eq!(placed.len(), 3);
        assert!(placed.iter().all(|mm| cfg.rack_of(*mm) != RackId(0)));
    }

    #[test]
    fn single_rack_cluster_degrades_gracefully() {
        let mut cfg = cfg();
        cfg.racks = 1;
        cfg.machines_per_rack = 4;
        cfg.replication = 3;
        let m = vec![0.0; 4];
        let r = vec![0.0; 1];
        let d = vec![false; 4];
        let mut rng = StdRng::seed_from_u64(2);
        let placed = HdfsDefault.place(&cfg, view(&m, &r, &d), &mut rng);
        assert_eq!(placed.len(), 3);
    }
}
