//! Data-balance statistics.
//!
//! §6.2.1 measures "the coefficient of variation (CoV) of the size of input
//! data stored on each rack": Corral achieves CoV ≤ 0.004 while stock HDFS
//! random placement sits around 0.014. (A perfectly uniform distribution
//! has CoV 0; random placement is slightly above it.)

/// Coefficient of variation (population standard deviation over mean) of a
/// sample. Returns `0.0` for empty input or zero mean.
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean.abs() < f64::EPSILON {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_zero_cov() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn empty_and_zero_mean_are_zero() {
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn known_value() {
        // mean 2, deviations (-1, +1), population std = 1, CoV = 0.5.
        let cov = coefficient_of_variation(&[1.0, 3.0]);
        assert!((cov - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skew_increases_cov() {
        let balanced = coefficient_of_variation(&[10.0, 10.0, 10.0, 10.0]);
        let skewed = coefficient_of_variation(&[40.0, 0.0, 0.0, 0.0]);
        assert!(skewed > balanced);
        assert!((skewed - 3.0_f64.sqrt()).abs() < 1e-12);
    }
}
