//! Property tests: replica-placement invariants hold for every policy
//! under arbitrary liveness patterns and load histories.

use corral_dfs::{CorralPlacement, Dfs, HdfsDefault, LoadView, PlacementPolicy};
use corral_model::{Bytes, ClusterConfig, MachineId, RackId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg() -> ClusterConfig {
    ClusterConfig::tiny_test() // 3 racks x 4 machines, replication 3
}

fn check_placement_invariants(
    cfg: &ClusterConfig,
    placed: &[MachineId],
    dead: &[bool],
) -> Result<(), TestCaseError> {
    // No dead machines, no duplicates.
    for m in placed {
        prop_assert!(!dead[m.index()], "dead machine chosen");
    }
    let mut uniq: Vec<_> = placed.to_vec();
    uniq.sort();
    uniq.dedup();
    prop_assert_eq!(uniq.len(), placed.len(), "duplicate machines");
    // HDFS fault-tolerance shape: replicas span at least 2 racks when the
    // cluster still has 2 live racks and we placed ≥ 2 replicas.
    let live_racks: std::collections::BTreeSet<_> = cfg
        .all_machines()
        .filter(|m| !dead[m.index()])
        .map(|m| cfg.rack_of(m))
        .collect();
    let used_racks: std::collections::BTreeSet<_> =
        placed.iter().map(|&m| cfg.rack_of(m)).collect();
    if placed.len() >= 2 && live_racks.len() >= 2 {
        prop_assert!(
            used_racks.len() >= 2,
            "replicas must span racks: {placed:?}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn policies_respect_invariants(
        seed in 0u64..1000,
        dead_mask in proptest::collection::vec(any::<bool>(), 12),
        planned_rack in 0u32..3,
        load in proptest::collection::vec(0.0f64..1e12, 12),
    ) {
        let cfg = cfg();
        // Keep at least 4 machines alive so placement can succeed.
        let mut dead = dead_mask.clone();
        if dead.iter().filter(|d| !**d).count() < 4 {
            for d in dead.iter_mut().take(6) {
                *d = false;
            }
        }
        let mut rack_bytes = vec![0.0; cfg.racks];
        for (i, l) in load.iter().enumerate() {
            rack_bytes[cfg.rack_of(MachineId(i as u32)).index()] += l;
        }
        let view = LoadView {
            machine_bytes: &load,
            rack_bytes: &rack_bytes,
            dead: &dead,
        };
        let mut rng = StdRng::seed_from_u64(seed);

        let h = HdfsDefault.place(&cfg, view, &mut rng);
        prop_assert!(!h.is_empty());
        check_placement_invariants(&cfg, &h, &dead)?;

        let c = CorralPlacement::new(vec![RackId(planned_rack)]).place(&cfg, view, &mut rng);
        prop_assert!(!c.is_empty());
        check_placement_invariants(&cfg, &c, &dead)?;
        // Corral primary lands in the planned rack when it is live.
        if cfg
            .machines_in_rack(RackId(planned_rack))
            .any(|m| !dead[m.index()])
        {
            prop_assert_eq!(cfg.rack_of(c[0]), RackId(planned_rack));
        }
    }

    /// Namespace-level conservation: stored bytes (all replicas) equal
    /// file bytes × replication, regardless of file size mix.
    #[test]
    fn namespace_byte_conservation(sizes in proptest::collection::vec(1e6f64..5e9, 1..10)) {
        let cfg = cfg();
        let mut dfs = Dfs::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(42);
        let mut expected = 0.0;
        for (i, s) in sizes.iter().enumerate() {
            dfs.write_file(format!("f{i}"), Bytes(*s), &HdfsDefault, &mut rng);
            expected += s * cfg.replication as f64;
        }
        let stored: f64 = dfs.machine_bytes().iter().sum();
        prop_assert!((stored - expected).abs() < 1.0 + 1e-9 * expected);
        let per_rack: f64 = dfs.rack_bytes().iter().sum();
        prop_assert!((per_rack - stored).abs() < 1.0);
    }

    /// Locality fractions are valid probabilities and cover the file when
    /// everything is alive.
    #[test]
    fn locality_fractions_valid(size in 1e6f64..2e10, seed in 0u64..100) {
        let cfg = cfg();
        let mut dfs = Dfs::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let f = dfs.write_file("x", Bytes(size), &HdfsDefault, &mut rng);
        let frac = dfs.rack_locality_fractions(f);
        for v in &frac {
            prop_assert!((0.0..=1.0 + 1e-9).contains(v));
        }
        // Each chunk has replicas in exactly 2 racks => fractions sum to 2.
        let sum: f64 = frac.iter().sum();
        prop_assert!((sum - 2.0).abs() < 1e-6, "sum={sum}");
    }
}
