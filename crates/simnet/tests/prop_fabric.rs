//! Property tests for the fluid fabric: allocation invariants and
//! end-to-end conservation.

use corral_model::{Bandwidth, Bytes, ClusterConfig, MachineId};
use corral_simnet::allocator::{FlowView, RateAllocator};
use corral_simnet::maxmin::{link_loads, max_min_rates};
use corral_simnet::{
    CoflowId, Fabric, FairShare, FlowKind, FlowSpec, FlowTag, LinkId, Topology, VarysSebf,
};
use proptest::prelude::*;

fn cfg() -> ClusterConfig {
    ClusterConfig::tiny_test()
}

/// Strategy: a set of random flows on the tiny topology.
fn flows(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(u32, u32, f64, Option<u64>)>> {
    proptest::collection::vec(
        (
            0u32..12,
            0u32..12,
            1e3f64..1e10,
            proptest::option::of(0u64..5),
        ),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-min rates are always feasible and Pareto-bottlenecked.
    #[test]
    fn maxmin_feasible_and_bottlenecked(specs in flows(1..24)) {
        let topo = Topology::new(cfg());
        let caps: Vec<f64> = topo.links().iter().map(|l| l.effective_capacity().0).collect();
        let paths_own: Vec<Vec<LinkId>> = specs
            .iter()
            .filter(|(s, d, _, _)| s != d)
            .map(|(s, d, _, _)| topo.path(MachineId(*s), MachineId(*d)).as_slice().to_vec())
            .collect();
        prop_assume!(!paths_own.is_empty());
        let paths: Vec<&[LinkId]> = paths_own.iter().map(|p| p.as_slice()).collect();
        let rates = max_min_rates(&caps, &paths);
        let loads = link_loads(caps.len(), &paths, &rates);
        for (l, &load) in loads.iter().enumerate() {
            prop_assert!(load <= caps[l] * (1.0 + 1e-6) + 1e-6, "link {l} overloaded");
        }
        // Every flow is capped by a saturated link it crosses.
        for (f, p) in paths.iter().enumerate() {
            let bottleneck = p.iter().any(|l| loads[l.index()] >= caps[l.index()] - 1e-6 * caps[l.index()].max(1.0));
            prop_assert!(bottleneck, "flow {f} has headroom everywhere");
        }
    }

    /// Varys allocations are feasible too, and never starve every flow.
    #[test]
    fn varys_feasible(specs in flows(1..24)) {
        let topo = Topology::new(cfg());
        let filtered: Vec<_> = specs.iter().filter(|(s, d, _, _)| s != d).collect();
        prop_assume!(!filtered.is_empty());
        let paths_own: Vec<Vec<LinkId>> = filtered
            .iter()
            .map(|(s, d, _, _)| topo.path(MachineId(*s), MachineId(*d)).as_slice().to_vec())
            .collect();
        let views: Vec<FlowView<'_>> = filtered
            .iter()
            .zip(&paths_own)
            .map(|((_, _, bytes, cf), p)| FlowView {
                path: p.as_slice(),
                remaining: Bytes(*bytes),
                coflow: cf.map(CoflowId),
            })
            .collect();
        let mut rates = vec![Bandwidth::ZERO; views.len()];
        VarysSebf.allocate(topo.links(), &views, &mut rates);

        let caps: Vec<f64> = topo.links().iter().map(|l| l.effective_capacity().0).collect();
        let mut loads = vec![0.0; caps.len()];
        for (v, r) in views.iter().zip(&rates) {
            for l in v.path {
                loads[l.index()] += r.0;
            }
        }
        for (l, &load) in loads.iter().enumerate() {
            prop_assert!(load <= caps[l] * (1.0 + 1e-6) + 1e-6, "link {l} overloaded");
        }
        // Work conservation: at least one flow gets positive rate.
        prop_assert!(rates.iter().any(|r| r.0 > 0.0));
    }

    /// End-to-end conservation: draining random flows transfers exactly
    /// their byte volumes, and stats account for every byte.
    #[test]
    fn fabric_conserves_bytes(specs in flows(1..16)) {
        let mut fabric = Fabric::new(cfg(), Box::new(FairShare));
        let mut total = 0.0;
        let mut n = 0;
        for (s, d, bytes, cf) in &specs {
            fabric.start_flow(FlowSpec {
                src: MachineId(*s),
                dst: MachineId(*d),
                bytes: Bytes(*bytes),
                tag: FlowTag::infrastructure(FlowKind::Shuffle),
                coflow: cf.map(CoflowId),
            });
            total += bytes;
            n += 1;
        }
        let done = fabric.drain();
        prop_assert_eq!(done.len(), n);
        let accounted = fabric.stats().network_bytes.0 + fabric.stats().local_bytes.0;
        prop_assert!((accounted - total).abs() <= 1e-6 * total + n as f64,
            "accounted {accounted} vs injected {total}");
        // Completion times are non-decreasing.
        for w in done.windows(2) {
            prop_assert!(w[1].finished.0 >= w[0].finished.0 - 1e-9);
        }
    }

    /// Determinism under the Varys allocator as well.
    #[test]
    fn varys_drain_deterministic(specs in flows(1..12)) {
        let run = |specs: &[(u32, u32, f64, Option<u64>)]| {
            let mut fabric = Fabric::new(cfg(), Box::new(VarysSebf));
            for (s, d, bytes, cf) in specs {
                fabric.start_flow(FlowSpec {
                    src: MachineId(*s),
                    dst: MachineId(*d),
                    bytes: Bytes(*bytes),
                    tag: FlowTag::infrastructure(FlowKind::Shuffle),
                    coflow: cf.map(CoflowId),
                });
            }
            fabric
                .drain()
                .into_iter()
                .map(|c| (c.id, c.finished.0.to_bits()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&specs), run(&specs));
    }
}
