//! Property tests for the incremental fabric path and the calendar-queue
//! event scheduler.
//!
//! The incremental max-min path (memoryless allocators) and the
//! coflow-incremental Varys/SEBF path must each be *bit-identical* to a
//! from-scratch solve at every recompute: the fabric carries a
//! same-process oracle (`Fabric::set_full_oracle`) that re-derives the
//! full solution from scratch on dedicated scratch buffers and asserts
//! `rate.to_bits()` equality per flow. These tests drive the fabric
//! through random churn scripts — flow starts (coflow-tagged and
//! singleton), partial advances, cancels, background changes — with the
//! oracle armed, and additionally assert the oracle itself is invisible
//! (oracle-on and oracle-off runs produce byte-identical completion
//! streams and `FabricStats`).
//!
//! The calendar queue must preserve the `BinaryHeap` scheduler's exact
//! `(time, insertion order)` pop order, including equal-time ties and
//! `+inf` deadlines; `HeapEventQueue` is kept verbatim as that oracle.

use corral_model::{Bandwidth, Bytes, ClusterConfig, MachineId, RackId, SimTime};
use corral_simnet::{
    CoflowId, EventQueue, Fabric, FairShare, FlowKind, FlowSpec, FlowTag, HeapEventQueue,
    RateAllocator, ReferenceFairShare, VarysSebf,
};
use proptest::prelude::*;

fn cfg() -> ClusterConfig {
    ClusterConfig::tiny_test()
}

/// One step of a churn script. Encoded as a flat tuple so the strategy
/// stays shrinkable: `(op, a, b, x, cf)` where `op` selects the action
/// and the rest are reinterpreted per action.
type Step = (u8, u32, u32, f64, Option<u64>);

fn steps(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (
            0u8..6,
            0u32..12,
            0u32..12,
            1e3f64..3e9,
            proptest::option::of(0u64..4),
        ),
        n,
    )
}

/// Replays `script` against a fresh fabric and returns the completion
/// stream (id, finished-time bits, byte bits) plus the final stats
/// rendered via `Debug` (`FabricStats` has no `PartialEq`; the render is
/// exact for the integer counters and prints the float fields with enough
/// digits to catch real divergence).
fn run_script(
    script: &[Step],
    allocator: Box<dyn RateAllocator>,
    oracle: bool,
) -> (Vec<(u64, u64, u64)>, String) {
    let mut fabric = Fabric::new(cfg(), allocator);
    fabric.set_full_oracle(oracle);
    let mut live = Vec::new();
    let mut done = Vec::new();
    let collect = |completed: Vec<corral_simnet::CompletedFlow>,
                   live: &mut Vec<corral_model::FlowId>,
                   done: &mut Vec<(u64, u64, u64)>| {
        for c in completed {
            live.retain(|&id| id != c.id);
            done.push((c.id.0, c.finished.0.to_bits(), c.bytes.0.to_bits()));
        }
    };
    for &(op, a, b, x, cf) in script {
        match op {
            // Flow starts dominate the mix so scripts build up real
            // contention before churning it.
            0 | 1 => {
                let id = fabric.start_flow(FlowSpec {
                    src: MachineId(a),
                    dst: MachineId(b),
                    bytes: Bytes(x),
                    tag: FlowTag::infrastructure(FlowKind::Shuffle),
                    coflow: cf.map(CoflowId),
                });
                live.push(id);
            }
            2 => {
                // Advance by a script-derived fraction of a second; long
                // enough to complete small flows, short enough to leave
                // big ones in flight.
                let dt = (x / 3e9).max(1e-4);
                let t = SimTime(fabric.now().0 + dt);
                collect(fabric.advance_to(t), &mut live, &mut done);
            }
            3 => {
                if !live.is_empty() {
                    let id = live[a as usize % live.len()];
                    fabric.cancel_flow(id);
                    live.retain(|&l| l != id);
                }
            }
            4 => {
                let frac = (x / 3e9).clamp(0.0, 0.8);
                fabric.set_rack_background(RackId(a % 3), Bandwidth(frac * 1.25e9));
            }
            _ => {
                // Step to the next completion boundary exactly (the case
                // most likely to expose stale-deadline bugs).
                if let Some(t) = fabric.next_completion() {
                    collect(fabric.advance_to(t), &mut live, &mut done);
                }
            }
        }
    }
    collect(fabric.drain(), &mut live, &mut done);
    assert!(live.is_empty(), "drain left live flows behind");
    fabric.flush_accounting();
    (done, format!("{:?}", fabric.stats()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random churn with the from-scratch oracle armed: every incremental
    /// recompute is asserted bit-identical to a full re-solve (the oracle
    /// panics inside the fabric on any mismatch), and every injected flow
    /// is either completed or cancelled by the final drain.
    #[test]
    fn incremental_matches_full_solve_under_churn(script in steps(1..40)) {
        let (done, _) = run_script(&script, Box::new(FairShare), true);
        // Completion times never go backwards.
        for w in done.windows(2) {
            prop_assert!(f64::from_bits(w[1].1) >= f64::from_bits(w[0].1) - 1e-9);
        }
    }

    /// The oracle is observation-only: arming it changes no completion
    /// time, no byte count, and no stats counter.
    #[test]
    fn oracle_is_invisible(script in steps(1..32)) {
        let (done_on, stats_on) = run_script(&script, Box::new(FairShare), true);
        let (done_off, stats_off) = run_script(&script, Box::new(FairShare), false);
        prop_assert_eq!(done_on, done_off);
        prop_assert_eq!(stats_on, stats_off);
    }

    /// The CSR kernel and the reference (per-component re-solve) kernel
    /// ride the same incremental decomposition and must agree bit-for-bit
    /// on every completion and on the byte accounting.
    #[test]
    fn csr_and_reference_kernels_agree(script in steps(1..32)) {
        let (done_csr, _) = run_script(&script, Box::new(FairShare), true);
        let (done_ref, _) = run_script(&script, Box::new(ReferenceFairShare), true);
        prop_assert_eq!(done_csr, done_ref);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Varys/SEBF churn with the from-scratch oracle armed: on *every*
    /// coflow-incremental recompute the fabric re-solves the entire CSR
    /// through `allocate_from_scratch` (canonical SEBF + MADD +
    /// per-component backfill, no cached state) and panics unless each
    /// flow's `rate.to_bits()` matches the incrementally maintained
    /// table. Scripts interleave coflow-tagged and singleton starts,
    /// cancels, exact completion boundaries, and background (capacity
    /// epoch) changes — the capacity changes force full-boundary rebuilds
    /// mid-script, so cache rebuild + re-dirty transitions are covered
    /// too.
    #[test]
    fn varys_incremental_matches_full_solve_under_churn(script in steps(1..40)) {
        let (done, _) = run_script(&script, Box::new(VarysSebf), true);
        // Completion times never go backwards.
        for w in done.windows(2) {
            prop_assert!(f64::from_bits(w[1].1) >= f64::from_bits(w[0].1) - 1e-9);
        }
    }

    /// The coflow-mode oracle is observation-only, exactly like the
    /// memoryless one: arming it changes no completion time, no byte
    /// count, and no stats counter.
    #[test]
    fn varys_oracle_is_invisible(script in steps(1..32)) {
        let (done_on, stats_on) = run_script(&script, Box::new(VarysSebf), true);
        let (done_off, stats_off) = run_script(&script, Box::new(VarysSebf), false);
        prop_assert_eq!(done_on, done_off);
        prop_assert_eq!(stats_on, stats_off);
    }
}

/// One step of a queue script: `Push(time_bucket, inf)` or `Pop`.
fn queue_steps(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(bool, u8, bool)>> {
    // `0u8..10` + equality below gives a ~10% chance of an `+inf` push.
    proptest::collection::vec((any::<bool>(), 0u8..6, (0u8..10).prop_map(|v| v == 0)), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The calendar queue pops in exactly the heap's order: equal-time
    /// events in insertion order, `+inf` deadlines last (also in
    /// insertion order), under arbitrary push/pop interleavings.
    #[test]
    fn calendar_queue_matches_heap_order(script in queue_steps(1..64)) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut next = 0u32;
        for (push, bucket, inf) in script {
            if push {
                // Coarse buckets force heavy equal-time collisions; the
                // offset keeps schedules legal (never before `now`).
                let at = if inf {
                    SimTime(f64::INFINITY)
                } else {
                    SimTime(cal.now().0 + bucket as f64 * 0.25)
                };
                cal.schedule(at, next);
                heap.schedule(at, next);
                next += 1;
            } else {
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
                prop_assert_eq!(cal.now(), heap.now());
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
