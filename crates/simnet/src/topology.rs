//! Folded-CLOS topology: link table construction and path lookup.
//!
//! Link table layout (for `M` machines and `R` racks):
//!
//! ```text
//! [0,        M)    MachineUp   (machine i transmit)
//! [M,       2M)    MachineDown (machine i receive)
//! [2M,    2M+R)    RackUp      (rack r to core)
//! [2M+R, 2M+2R)    RackDown    (core to rack r)
//! ```
//!
//! The core itself is non-blocking and carries no explicit links, matching
//! the paper's model ("full bisection bandwidth within a rack and
//! oversubscribed links from the racks to the core").

use crate::link::{Link, LinkClass, LinkId};
use corral_model::{ClusterConfig, MachineId, RackId};

/// The static link table of a cluster fabric plus path computation.
#[derive(Debug, Clone)]
pub struct Topology {
    cfg: ClusterConfig,
    links: Vec<Link>,
}

/// A flow's path: at most 4 directed links (empty for machine-local
/// transfers, which bypass the network).
pub type Path = arrayvec::ArrayVec4;

/// Tiny fixed-capacity vector for link paths, avoiding a heap allocation per
/// flow. (A hand-rolled 4-slot array; the workspace deliberately does not
/// depend on the `arrayvec` crate.)
pub mod arrayvec {
    use crate::link::LinkId;

    /// Up to four `LinkId`s, inline.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct ArrayVec4 {
        items: [LinkId; 4],
        len: u8,
    }

    impl ArrayVec4 {
        /// Empty path.
        pub fn new() -> Self {
            ArrayVec4 {
                items: [LinkId(0); 4],
                len: 0,
            }
        }

        /// Appends a link.
        ///
        /// # Panics
        /// Panics if the path already holds four links.
        pub fn push(&mut self, l: LinkId) {
            assert!(self.len < 4, "path longer than 4 links");
            self.items[self.len as usize] = l;
            self.len += 1;
        }

        /// The links as a slice.
        pub fn as_slice(&self) -> &[LinkId] {
            &self.items[..self.len as usize]
        }

        /// Number of links.
        pub fn len(&self) -> usize {
            self.len as usize
        }

        /// True if the path has no links (machine-local transfer).
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl<'a> IntoIterator for &'a ArrayVec4 {
        type Item = LinkId;
        type IntoIter = std::iter::Copied<std::slice::Iter<'a, LinkId>>;
        fn into_iter(self) -> Self::IntoIter {
            self.as_slice().iter().copied()
        }
    }
}

impl Topology {
    /// Builds the link table for `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`ClusterConfig::validate`].
    pub fn new(cfg: ClusterConfig) -> Self {
        cfg.validate().expect("invalid cluster config");
        let m = cfg.total_machines();
        let r = cfg.racks;
        let rack_bw = cfg.rack_core_bandwidth();
        let mut links = Vec::with_capacity(2 * m + 2 * r);
        for i in 0..m {
            links.push(Link::new(LinkClass::MachineUp, i, cfg.nic_bandwidth));
        }
        for i in 0..m {
            links.push(Link::new(LinkClass::MachineDown, i, cfg.nic_bandwidth));
        }
        for i in 0..r {
            links.push(Link::new(LinkClass::RackUp, i, rack_bw));
        }
        for i in 0..r {
            links.push(Link::new(LinkClass::RackDown, i, rack_bw));
        }
        Topology { cfg, links }
    }

    /// The cluster configuration the topology was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Immutable link table.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Mutable link table (used by the fabric for accounting and background
    /// reservations).
    pub fn links_mut(&mut self) -> &mut [Link] {
        &mut self.links
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The transmit link of machine `m`.
    pub fn machine_up(&self, m: MachineId) -> LinkId {
        LinkId(m.0)
    }

    /// The receive link of machine `m`.
    pub fn machine_down(&self, m: MachineId) -> LinkId {
        LinkId(self.cfg.total_machines() as u32 + m.0)
    }

    /// The core uplink of rack `r`.
    pub fn rack_up(&self, r: RackId) -> LinkId {
        LinkId(2 * self.cfg.total_machines() as u32 + r.0)
    }

    /// The core downlink of rack `r`.
    pub fn rack_down(&self, r: RackId) -> LinkId {
        LinkId(2 * self.cfg.total_machines() as u32 + self.cfg.racks as u32 + r.0)
    }

    /// The directed link path from machine `src` to machine `dst`:
    /// empty (same machine), 2 links (same rack) or 4 links (cross rack).
    pub fn path(&self, src: MachineId, dst: MachineId) -> Path {
        let mut p = Path::new();
        if src == dst {
            return p;
        }
        let sr = self.cfg.rack_of(src);
        let dr = self.cfg.rack_of(dst);
        p.push(self.machine_up(src));
        if sr != dr {
            p.push(self.rack_up(sr));
            p.push(self.rack_down(dr));
        }
        p.push(self.machine_down(dst));
        p
    }

    /// True if the `src → dst` path crosses the core (different racks).
    pub fn crosses_core(&self, src: MachineId, dst: MachineId) -> bool {
        self.cfg.rack_of(src) != self.cfg.rack_of(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corral_model::Bandwidth;

    fn topo() -> Topology {
        Topology::new(ClusterConfig::tiny_test()) // 3 racks x 4 machines
    }

    #[test]
    fn link_count_and_classes() {
        let t = topo();
        assert_eq!(t.link_count(), 2 * 12 + 2 * 3);
        assert_eq!(t.links()[0].class, LinkClass::MachineUp);
        assert_eq!(t.links()[12].class, LinkClass::MachineDown);
        assert_eq!(t.links()[24].class, LinkClass::RackUp);
        assert_eq!(t.links()[27].class, LinkClass::RackDown);
    }

    #[test]
    fn rack_links_are_oversubscribed() {
        let t = topo();
        let up = &t.links()[t.rack_up(RackId(0)).index()];
        // 4 machines x 10G / 4:1 oversub = 10 Gbps.
        assert!((up.capacity.as_gbps() - 10.0).abs() < 1e-9);
        let nic = &t.links()[t.machine_up(MachineId(0)).index()];
        assert_eq!(nic.capacity, Bandwidth::gbps(10.0));
    }

    #[test]
    fn same_machine_path_is_empty() {
        let t = topo();
        assert!(t.path(MachineId(5), MachineId(5)).is_empty());
    }

    #[test]
    fn intra_rack_path_has_two_links() {
        let t = topo();
        let p = t.path(MachineId(0), MachineId(3)); // both rack 0
        assert_eq!(p.len(), 2);
        assert_eq!(p.as_slice()[0], t.machine_up(MachineId(0)));
        assert_eq!(p.as_slice()[1], t.machine_down(MachineId(3)));
        assert!(!t.crosses_core(MachineId(0), MachineId(3)));
    }

    #[test]
    fn cross_rack_path_has_four_links() {
        let t = topo();
        let p = t.path(MachineId(0), MachineId(11)); // rack 0 -> rack 2
        assert_eq!(p.len(), 4);
        assert_eq!(p.as_slice()[1], t.rack_up(RackId(0)));
        assert_eq!(p.as_slice()[2], t.rack_down(RackId(2)));
        assert!(t.crosses_core(MachineId(0), MachineId(11)));
    }

    #[test]
    fn link_ids_are_disjoint() {
        let t = topo();
        let mut seen = std::collections::HashSet::new();
        for m in t.config().all_machines() {
            assert!(seen.insert(t.machine_up(m)));
            assert!(seen.insert(t.machine_down(m)));
        }
        for r in t.config().all_racks() {
            assert!(seen.insert(t.rack_up(r)));
            assert!(seen.insert(t.rack_down(r)));
        }
        assert_eq!(seen.len(), t.link_count());
        assert!(seen.iter().all(|l| l.index() < t.link_count()));
    }

    #[test]
    fn arrayvec_basics() {
        let mut p = Path::new();
        assert!(p.is_empty());
        p.push(LinkId(1));
        p.push(LinkId(2));
        assert_eq!(p.len(), 2);
        let collected: Vec<_> = (&p).into_iter().collect();
        assert_eq!(collected, vec![LinkId(1), LinkId(2)]);
    }

    #[test]
    #[should_panic(expected = "path longer than 4")]
    fn arrayvec_overflow_panics() {
        let mut p = Path::new();
        for i in 0..5 {
            p.push(LinkId(i));
        }
    }
}
