//! The network fabric: flow lifecycle, event-driven advancement, accounting.
//!
//! [`Fabric`] is co-simulated with the cluster engine: the engine starts
//! flows as tasks need data, asks the fabric for the time of the next flow
//! completion, and advances the fabric clock alongside its own event queue.
//! Between flow-set/capacity changes the fluid system evolves linearly, so
//! "advance" moves exact byte amounts and completions are computed in
//! closed form.
//!
//! ## Three recompute modes
//!
//! The fabric picks one of three rate-maintenance strategies at
//! construction, keyed off [`RateAllocator::memoryless`] and
//! [`RateAllocator::coflow_incremental`]:
//!
//! * **Eager** (stateful policies with no incremental form): every dirty
//!   event rebuilds the full CSR flow table and re-solves every flow —
//!   the original path, kept verbatim.
//! * **Incremental** (max-min fair sharing): rates of a memoryless policy
//!   depend only on flow paths and effective capacities, so the link↔flow
//!   bipartite graph decomposes into connected components that solve
//!   independently. A flow start/completion/cancel or a background change
//!   dirties only its endpoint links; the recompute dissolves just the
//!   components owning those links, re-runs waterfilling over the affected
//!   flows, and splices the rates back. Everything else keeps its rate,
//!   its completion deadline stays queued in a calendar queue
//!   ([`CalendarQueue`]), and its byte accounting is materialized lazily
//!   (at re-solve, completion, cancellation, or [`Fabric::flush_accounting`]).
//! * **CoflowIncremental** (Varys/SEBF): the policy couples flows across
//!   components through a priority order, but that order depends only on
//!   per-coflow *scheduling* bytes, which this fabric freezes at admission
//!   (clairvoyant SEBF, as in the Varys paper — the coflow's size is known
//!   up front and does not shrink as it transfers). The fabric hands the
//!   allocator the full CSR each recompute plus the event delta (added /
//!   departed coflow members, dirtied links, capacity epoch) through
//!   [`RateAllocator::allocate_dirty`]; the allocator re-ranks only the
//!   touched coflows and re-solves only the dirtied bottleneck
//!   components, and the fabric splices back exactly the rates whose bits
//!   changed. Byte accounting, deadlines, and the completion calendar are
//!   shared with the Incremental mode. Coflow identity uses stable keys:
//!   the coflow id when present, else a synthetic per-slot singleton key
//!   (bit 63 set), so group membership never shifts as rows come and go.
//!
//! Both decompositions — incremental and from-scratch — produce the same
//! canonical per-component subproblem (members ascending by flow slot,
//! links ascending by id, compact ids by rank), so the per-flow rates are
//! bit-identical pure functions of the alive flow set. That invariant is
//! enforced by a shadow oracle ([`Fabric::recompute_full`]): armed by
//! default in debug builds, it re-solves *every* component from scratch
//! after each incremental recompute and panics on any rate-bit divergence.
//! (In CoflowIncremental mode the oracle is
//! [`RateAllocator::allocate_from_scratch`] over the same CSR — the
//! canonical SEBF + MADD + per-component backfill with no cached state.)
//! The oracle never drives simulation state, so runs with it on and off
//! produce byte-identical event streams and statistics.

use crate::allocator::{AllocScratch, DirtyCtx, DirtyOutcome, FlowTable, RateAllocator};
use crate::engine::CalendarQueue;
use crate::flow::{CoflowId, FlowKind, FlowSpec, FlowState, FlowTag};
use crate::link::LinkId;
use crate::stats::FabricStats;
use crate::topology::Topology;
use corral_model::{Bandwidth, Bytes, ClusterConfig, FlowId, RackId, SimTime};
use corral_trace::{probe, FlowClass, NullTracer, SharedTracer, TraceEvent};

/// Maps the fabric's [`FlowKind`] onto the dependency-free trace
/// vocabulary's [`FlowClass`].
fn flow_class(kind: FlowKind) -> FlowClass {
    match kind {
        FlowKind::InputRead => FlowClass::InputRead,
        FlowKind::Shuffle => FlowClass::Shuffle,
        FlowKind::OutputWrite => FlowClass::OutputWrite,
        FlowKind::Ingest => FlowClass::Ingest,
        FlowKind::Background => FlowClass::Background,
    }
}

/// A finished flow, reported by [`Fabric::advance_to`].
#[derive(Debug, Clone, Copy)]
pub struct CompletedFlow {
    /// The flow's id.
    pub id: FlowId,
    /// Its tracing tag.
    pub tag: FlowTag,
    /// Total bytes it carried.
    pub bytes: Bytes,
    /// Completion time.
    pub finished: SimTime,
}

/// Which rate-maintenance strategy the fabric runs (fixed at construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full CSR rebuild + full solve on every dirty event (stateful
    /// allocators: rates depend on remaining bytes / coflow ordering).
    Eager,
    /// Dirty-set component re-solve with lazy byte accounting (memoryless
    /// allocators: rates depend only on paths and capacities).
    Incremental,
    /// Coflow-local dirty re-solve with lazy byte accounting (stateful
    /// allocators advertising [`RateAllocator::coflow_incremental`]: the
    /// allocator owns the dirty decomposition, the fabric owns deltas,
    /// deadlines, and splice-back).
    CoflowIncremental,
}

/// Stable coflow group key: the coflow id when present, else a synthetic
/// per-slot singleton key with bit 63 set. Unlike the eager path's
/// row-index sentinel this never shifts as rows come and go, which is
/// what lets the allocator cache per-coflow state across recomputes.
#[inline]
fn stable_coflow_key(coflow: Option<CoflowId>, slot: usize) -> u64 {
    coflow.map(|c| c.0).unwrap_or((1u64 << 63) | slot as u64)
}

/// Sentinel for "no component" in the per-flow/per-link component maps.
const NO_COMP: u32 = u32::MAX;

/// Closed-form completion deadline of a flow with `rem` bytes left moving
/// at `rate` from time `now` — the same three-way split the eager
/// next-completion fold uses.
#[inline]
fn deadline_for(now: f64, rem: f64, rate: f64) -> f64 {
    if Bytes(rem).is_negligible() {
        now
    } else if Bandwidth(rate).is_negligible() {
        f64::INFINITY
    } else {
        now + rem / rate
    }
}

/// Union-find `find` with path halving.
#[inline]
fn find(uf: &mut [u32], mut x: u32) -> u32 {
    while uf[x as usize] != x {
        let p = uf[x as usize];
        uf[x as usize] = uf[p as usize];
        x = uf[x as usize];
    }
    x
}

/// Union by **minimum root**, so every set's representative is its smallest
/// member index — the canonical ordering both decompositions share.
#[inline]
fn union(uf: &mut [u32], a: u32, b: u32) {
    let ra = find(uf, a);
    let rb = find(uf, b);
    if ra == rb {
        return;
    }
    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
    uf[hi as usize] = lo;
}

/// Persistent buffers for [`Fabric::recompute`]: the CSR flow table handed
/// to the allocator plus its companion arrays. Cleared and refilled each
/// recompute; never shrunk, so the steady state performs no allocation.
#[derive(Debug, Default)]
struct RecomputeScratch {
    /// CSR prefix offsets (one per network flow, plus a trailing total).
    flow_off: Vec<u32>,
    /// Concatenated per-flow link paths.
    flow_links: Vec<LinkId>,
    /// Remaining bytes per network flow.
    remaining: Vec<f64>,
    /// Coflow membership per network flow.
    coflow: Vec<Option<CoflowId>>,
    /// `FlowId` of each network flow (row → id mapping).
    view_ids: Vec<FlowId>,
    /// Remaining bytes of the machine-local (empty-path) flows, in
    /// `active` order; lets the next-completion fold run entirely on
    /// dense arrays.
    local_remaining: Vec<f64>,
    /// Allocator output, one rate per network flow.
    rates: Vec<f64>,
    /// Allocator-side workspaces (max-min CSR, Varys grouping).
    alloc: AllocScratch,
}

impl RecomputeScratch {
    /// Total reserved capacity across every buffer, in elements. A flat
    /// reading across recomputes certifies the steady state allocates
    /// nothing (tracked by [`FabricStats::scratch_grows`]).
    fn footprint(&self) -> usize {
        self.flow_off.capacity()
            + self.flow_links.capacity()
            + self.remaining.capacity()
            + self.coflow.capacity()
            + self.view_ids.capacity()
            + self.local_remaining.capacity()
            + self.rates.capacity()
            + self.alloc.footprint()
    }
}

/// Buffers private to the shadow oracle's from-scratch decomposition.
/// Kept fully separate from the incremental scratch (and excluded from
/// footprint accounting) so arming the oracle cannot perturb
/// [`FabricStats`] — oracle-on and oracle-off runs stay byte-identical.
#[derive(Debug, Default)]
struct OracleScratch {
    /// Alive network flow slots, ascending.
    cand: Vec<u32>,
    /// Group id per candidate (first-seen ascending order).
    grp: Vec<u32>,
    /// Counting-sort prefix offsets per group.
    off: Vec<u32>,
    /// Counting-sort placement cursors.
    cursor: Vec<u32>,
    /// Candidates grouped by component, members ascending within each.
    members: Vec<u32>,
    /// Union-find parents over candidate indices.
    uf: Vec<u32>,
    /// Root index → group id.
    root: Vec<u32>,
    /// One component's links, deduped and sorted ascending.
    links: Vec<LinkId>,
    /// Effective capacities of `links`, compact order.
    caps: Vec<f64>,
    /// Compact CSR offsets for the component's members.
    csr_off: Vec<u32>,
    /// Compact CSR link ids.
    csr_links: Vec<LinkId>,
    /// Remaining bytes per member (ignored by memoryless policies).
    rem: Vec<f64>,
    /// Coflow membership per member.
    coflow: Vec<Option<CoflowId>>,
    /// Solver output to compare against the cached incremental rates.
    rates: Vec<f64>,
    /// The oracle's own allocator workspaces (never shared with the
    /// incremental path's, so oracle runs cannot grow live scratch).
    alloc: AllocScratch,
}

/// All state backing the incremental recompute mode.
///
/// Per-flow arrays are indexed by flow slot (= `FlowId`) and grow
/// monotonically with the flow id space; per-link arrays are fixed at
/// construction. Components are integer ids into `comp_flows`/`comp_stamp`
/// with a LIFO free list.
#[derive(Debug, Default)]
struct IncState {
    // -- per-flow (parallel to `Fabric::flows`) --
    /// Current rate (bytes/s); `local_rate` for machine-local flows, 0
    /// until first solved.
    rate: Vec<f64>,
    /// Time at which `rem` was last materialized.
    epoch: Vec<f64>,
    /// Remaining bytes as of `epoch`.
    rem: Vec<f64>,
    /// Completion deadline under the current rate (`+inf` if pinned).
    deadline: Vec<f64>,
    /// Generation stamp; calendar entries carry the generation they were
    /// pushed with and are skipped as stale once it moves on.
    gen: Vec<u32>,
    /// Component membership (`NO_COMP` for local / dead / pending flows).
    comp_of: Vec<u32>,
    // -- per-link --
    /// Component currently owning each link (`NO_COMP` if idle).
    link_comp: Vec<u32>,
    /// Round-stamped: first candidate index seen on the link (union seed).
    link_first: Vec<u32>,
    /// Round-stamped: compact link id within the component being built.
    link_local: Vec<u32>,
    /// Validity stamps for `link_first` / `link_local`.
    link_stamp: Vec<u64>,
    // -- components --
    /// Member flow slots per component, ascending.
    comp_flows: Vec<Vec<u32>>,
    /// Round stamp deduping "affected component" collection.
    comp_stamp: Vec<u64>,
    /// Recyclable component ids (LIFO ⇒ deterministic id reuse).
    free_comps: Vec<u32>,
    // -- pending dirt --
    /// Links touched since the last recompute (endpoint links of started /
    /// completed / cancelled flows, background changes).
    pending_links: Vec<LinkId>,
    /// Newly started network flows not yet in any component.
    pending_new: Vec<u32>,
    /// Coflow mode: network flows departed (completed or cancelled) since
    /// the last recompute, `(stable group key, slot)` in event order.
    pending_departed: Vec<(u64, u32)>,
    /// Coflow mode: effective capacities changed since the last recompute
    /// (background-traffic epoch) — invalidates the allocator's caches.
    caps_dirty: bool,
    // -- coflow-mode CSR mapping --
    /// Fabric slot of each CSR row from the last coflow recompute,
    /// ascending (parallel to the rate scratch).
    csr_slots: Vec<u32>,
    /// Row index per fabric slot (`u32::MAX` when absent). Reset sparsely
    /// via `csr_slots`, so maintenance is O(rows), not O(all slots ever).
    row_of: Vec<u32>,
    /// `(stable group key, slot)` of flows admitted since the last coflow
    /// recompute, ascending slot order, dead-filtered.
    added: Vec<(u64, u32)>,
    /// Completion calendar: `(flow slot, generation)` at the deadline.
    queue: CalendarQueue<(u32, u32)>,
    // -- recompute scratch --
    /// Monotone round counter for the stamp arrays.
    round: u64,
    /// Candidate flows of the current recompute, ascending.
    cand: Vec<u32>,
    /// Union-find parents over candidate indices.
    uf: Vec<u32>,
    /// Root candidate index → new component id.
    root_comp: Vec<u32>,
    /// Components formed this round, ascending-min-member order.
    new_comps: Vec<u32>,
    /// One component's links, deduped and sorted ascending.
    comp_links: Vec<LinkId>,
    /// Effective capacities of `comp_links`, compact order.
    sub_caps: Vec<f64>,
    /// Compact CSR offsets for the component's members.
    sub_off: Vec<u32>,
    /// Compact CSR link ids.
    sub_links: Vec<LinkId>,
    /// Remaining bytes per member (ignored by memoryless policies).
    sub_remaining: Vec<f64>,
    /// Coflow membership per member.
    sub_coflow: Vec<Option<CoflowId>>,
    /// Solver output per member.
    sub_rates: Vec<f64>,
    /// Shadow-oracle buffers (see [`OracleScratch`]).
    oracle: OracleScratch,
    /// Dead (`None`) slots still lingering in `Fabric::active`; drives the
    /// amortized purge.
    dead: usize,
}

impl IncState {
    /// Fresh state sized for `nlinks` directed links.
    fn new(nlinks: usize) -> Self {
        IncState {
            link_comp: vec![NO_COMP; nlinks],
            link_first: vec![0; nlinks],
            link_local: vec![0; nlinks],
            link_stamp: vec![0; nlinks],
            ..IncState::default()
        }
    }

    /// Allocates a component id, recycling freed ids LIFO.
    fn alloc_comp(&mut self) -> u32 {
        if let Some(c) = self.free_comps.pop() {
            c
        } else {
            self.comp_flows.push(Vec::new());
            self.comp_stamp.push(0);
            (self.comp_flows.len() - 1) as u32
        }
    }

    /// Reserved capacity of the *steady-state-bounded* buffers, in
    /// elements. Deliberately O(1) to compute — an O(live flows) walk per
    /// recompute would defeat the incremental path's point. Excluded by
    /// design: the per-flow arrays including `row_of` (they grow with the
    /// flow id space, not with leaks), the calendar queue (its bucket
    /// count tracks pending entries), `comp_flows` inner vectors, and the
    /// oracle scratch (arming the oracle must not perturb stats).
    fn footprint(&self) -> usize {
        self.link_comp.capacity()
            + self.link_first.capacity()
            + self.link_local.capacity()
            + self.link_stamp.capacity()
            + self.comp_flows.capacity()
            + self.comp_stamp.capacity()
            + self.free_comps.capacity()
            + self.pending_links.capacity()
            + self.pending_new.capacity()
            + self.pending_departed.capacity()
            + self.csr_slots.capacity()
            + self.added.capacity()
            + self.cand.capacity()
            + self.uf.capacity()
            + self.root_comp.capacity()
            + self.new_comps.capacity()
            + self.comp_links.capacity()
            + self.sub_caps.capacity()
            + self.sub_off.capacity()
            + self.sub_links.capacity()
            + self.sub_remaining.capacity()
            + self.sub_coflow.capacity()
            + self.sub_rates.capacity()
    }
}

/// Flow-level network simulator for one cluster fabric.
pub struct Fabric {
    topo: Topology,
    allocator: Box<dyn RateAllocator>,
    /// Flow table indexed by `FlowId`; completed/cancelled slots are `None`.
    flows: Vec<Option<FlowState>>,
    /// Active flow ids, ascending (ids are allocated monotonically).
    /// Cancelled flows may linger as `None` slots until the next
    /// [`Fabric::recompute`] purges them in one `retain` pass (eager mode)
    /// or the amortized purge fires (incremental mode).
    active: Vec<FlowId>,
    now: SimTime,
    /// Set when the flow set or link capacities changed since the last rate
    /// computation.
    dirty: bool,
    /// Cached next completion time (eager mode only; the incremental mode
    /// reads its calendar queue instead).
    next_completion: SimTime,
    stats: FabricStats,
    /// Rate granted to machine-local (empty-path) transfers.
    local_rate: Bandwidth,
    /// Optional utilization sampling: bucket width and per-bucket core
    /// bytes (cross-rack traffic, counted once per flow).
    sampling: Option<(f64, Vec<f64>)>,
    /// Structured event sink (flow lifecycle).
    tracer: SharedTracer,
    /// Cached `tracer.enabled()` so the hot path is one branch.
    trace_on: bool,
    /// Reused recompute buffers (CSR table, rates, allocator workspaces).
    scratch: RecomputeScratch,
    /// Footprint after the previous recompute, to detect growth.
    scratch_footprint: usize,
    /// Last Varys workspace footprint pushed to the
    /// `fabric.varys_scratch_elems` gauge (coflow mode only).
    last_varys_footprint: usize,
    /// Rate-maintenance strategy, fixed at construction from
    /// [`RateAllocator::memoryless`].
    mode: Mode,
    /// Whether the shadow full-recompute oracle runs after every
    /// incremental recompute (default: debug builds only).
    oracle: bool,
    /// Incremental-mode state (empty in eager mode).
    inc: IncState,
}

impl Fabric {
    /// Builds a fabric for `cfg` with the given allocation policy.
    /// Memoryless policies run `Mode::Incremental`, policies advertising a
    /// coflow-granular dirty entry point run `Mode::CoflowIncremental`,
    /// and everything else runs the eager full-recompute path.
    pub fn new(cfg: ClusterConfig, allocator: Box<dyn RateAllocator>) -> Self {
        let mode = if allocator.memoryless() {
            Mode::Incremental
        } else if allocator.coflow_incremental() {
            Mode::CoflowIncremental
        } else {
            Mode::Eager
        };
        Self::with_mode(cfg, allocator, mode)
    }

    /// Builds a fabric that *forces* the eager full-recompute path even
    /// for allocators with an incremental form. Benchmark baselines use
    /// this to measure the incremental speedup against the verbatim
    /// original path; simulation results are identical either way (the
    /// armed oracle is the proof obligation).
    pub fn new_eager(cfg: ClusterConfig, allocator: Box<dyn RateAllocator>) -> Self {
        Self::with_mode(cfg, allocator, Mode::Eager)
    }

    fn with_mode(cfg: ClusterConfig, allocator: Box<dyn RateAllocator>, mode: Mode) -> Self {
        let local_rate = cfg.nic_bandwidth * 2.0; // loopback: faster than NIC
        let topo = Topology::new(cfg);
        let nlinks = if mode == Mode::Eager {
            0
        } else {
            topo.links().len()
        };
        Fabric {
            topo,
            allocator,
            flows: Vec::new(),
            active: Vec::new(),
            now: SimTime::ZERO,
            dirty: false,
            next_completion: SimTime::INFINITY,
            stats: FabricStats::default(),
            local_rate,
            sampling: None,
            tracer: std::sync::Arc::new(NullTracer),
            trace_on: false,
            scratch: RecomputeScratch::default(),
            scratch_footprint: 0,
            last_varys_footprint: 0,
            mode,
            oracle: cfg!(debug_assertions),
            inc: IncState::new(nlinks),
        }
    }

    /// Routes `FlowStarted` / `FlowFinished` events into `tracer`. The
    /// default [`NullTracer`] keeps the untraced path free.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.trace_on = tracer.enabled();
        self.tracer = tracer;
    }

    /// Arms or disarms the shadow full-recompute oracle (incremental mode
    /// only; a no-op for eager allocators). When armed, every incremental
    /// recompute is followed by a from-scratch decomposition + solve of the
    /// *entire* alive flow set, panicking if any flow's rate bits diverge
    /// from the incrementally maintained table. The oracle reads but never
    /// writes simulation state and keeps its own scratch, so toggling it
    /// cannot change results or statistics — only wall-clock time. Defaults
    /// to on in debug builds (so every test doubles as a tripwire) and off
    /// in release builds.
    pub fn set_full_oracle(&mut self, on: bool) {
        self.oracle = on;
    }

    /// Enables per-bucket sampling of cross-rack (core) traffic; see
    /// [`Fabric::core_utilization_series`].
    pub fn enable_utilization_sampling(&mut self, bucket: SimTime) {
        assert!(bucket.0 > 0.0, "bucket must be positive");
        self.sampling = Some((bucket.0, Vec::new()));
    }

    /// The sampled core-utilization time series: `(bucket_start_s,
    /// fraction_of_aggregate_uplink_capacity)`. Empty unless
    /// [`Fabric::enable_utilization_sampling`] was called.
    ///
    /// Incremental mode accounts bytes lazily — call
    /// [`Fabric::flush_accounting`] first when flows are still in flight.
    pub fn core_utilization_series(&self) -> Vec<(f64, f64)> {
        let Some((bucket, ref bytes)) = self.sampling else {
            return Vec::new();
        };
        let cfg = self.topo.config();
        let cap = cfg.rack_core_bandwidth().0 * cfg.racks as f64 * bucket;
        bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * bucket, b / cap))
            .collect()
    }

    /// The topology the fabric runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current fabric clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic accounting so far.
    ///
    /// Incremental mode materializes byte movement lazily; mid-run (with
    /// flows still in flight) call [`Fabric::flush_accounting`] first to
    /// settle the counters up to [`Fabric::now`]. Counts of events
    /// (starts, completions, recomputes) are always current.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Settles all lazy byte accounting up to the current clock: every
    /// in-flight flow's transferred bytes are pushed into the link
    /// counters, [`FabricStats`], and the utilization sampler. A no-op in
    /// eager mode (which accounts continuously) and on quiesced fabrics;
    /// safe to call at any point.
    pub fn flush_accounting(&mut self) {
        if self.mode == Mode::Eager {
            return;
        }
        let now = self.now.0;
        for i in 0..self.active.len() {
            let id = self.active[i];
            if self.flows[id.index()].is_some() {
                self.materialize_flow(id.index(), now);
            }
        }
    }

    /// Time-averaged utilization (carried bytes / capacity·elapsed) of each
    /// link class, as fractions in [0, 1]: `(machine links, rack core
    /// links)`. Returns zeros before any time has passed.
    ///
    /// Incremental mode accounts bytes lazily — call
    /// [`Fabric::flush_accounting`] first when flows are still in flight.
    pub fn class_utilization(&self) -> (f64, f64) {
        let elapsed = self.now.as_secs();
        if elapsed <= 0.0 {
            return (0.0, 0.0);
        }
        let mut edge_carried = 0.0;
        let mut edge_cap = 0.0;
        let mut core_carried = 0.0;
        let mut core_cap = 0.0;
        for l in self.topo.links() {
            if l.class.is_core() {
                core_carried += l.carried.0;
                core_cap += l.capacity.0;
            } else {
                edge_carried += l.carried.0;
                edge_cap += l.capacity.0;
            }
        }
        (
            edge_carried / (edge_cap * elapsed),
            core_carried / (core_cap * elapsed),
        )
    }

    /// Bytes carried so far by one directed link (utilization drill-down).
    pub fn link_carried(&self, link: LinkId) -> Bytes {
        self.topo.links()[link.index()].carried
    }

    /// The active allocation policy's name.
    pub fn allocator_name(&self) -> &'static str {
        self.allocator.name()
    }

    /// Number of in-flight flows.
    pub fn active_flow_count(&self) -> usize {
        // `active` may still hold flows cancelled since the last recompute
        // (they are purged lazily); count only live slots.
        self.active
            .iter()
            .filter(|id| self.flows[id.index()].is_some())
            .count()
    }

    /// Remaining bytes of a flow, or `None` if it already finished.
    pub fn flow_remaining(&self, id: FlowId) -> Option<Bytes> {
        let f = self.flows.get(id.index()).and_then(|f| f.as_ref())?;
        match self.mode {
            Mode::Eager => Some(f.remaining),
            Mode::Incremental | Mode::CoflowIncremental => {
                // Virtual read: project the materialized remainder forward
                // at the flow's current rate (rates stay valid through
                // `now`; dirt only accrues at the current instant).
                let s = id.index();
                let dt = (self.now.0 - self.inc.epoch[s]).max(0.0);
                let moved = (self.inc.rate[s] * dt).min(self.inc.rem[s]);
                Some(Bytes((self.inc.rem[s] - moved).max(0.0)))
            }
        }
    }

    /// Starts an *ingress* flow: data arriving from outside the cluster
    /// (front-end upload feeds, a remote storage tier — §2 of the paper).
    /// The flow consumes only the destination-side links (the rack
    /// downlink and the destination NIC); the external source is assumed
    /// unconstrained. Ingress traffic is accounted separately
    /// ([`FabricStats::ingest_bytes`]) and does not count as cross-rack job
    /// traffic.
    pub fn start_ingress_flow(
        &mut self,
        dst: corral_model::MachineId,
        bytes: Bytes,
        tag: FlowTag,
        coflow: Option<crate::flow::CoflowId>,
    ) -> FlowId {
        let mut path = crate::topology::Path::new();
        path.push(self.topo.rack_down(self.topo.config().rack_of(dst)));
        path.push(self.topo.machine_down(dst));
        let id = FlowId(self.flows.len() as u64);
        self.flows.push(Some(FlowState {
            spec: FlowSpec {
                src: dst, // nominal; the source is external
                dst,
                bytes,
                tag,
                coflow,
            },
            path,
            remaining: bytes.clamp_non_negative(),
            cross_rack: false,
        }));
        self.active.push(id);
        self.stats.flows_started += 1;
        self.mark_dirty(probe::ProbeCounter::RecomputeFlowStart);
        if self.mode != Mode::Eager {
            self.register_started(id);
        }
        if self.trace_on {
            self.tracer.record(
                self.now.as_secs(),
                TraceEvent::FlowStarted {
                    flow: id.0,
                    src: dst.0, // nominal: the external source has no id
                    dst: dst.0,
                    bytes: bytes.clamp_non_negative().0,
                    class: flow_class(tag.kind),
                    job: tag.job.map(|j| j.0),
                },
            );
        }
        id
    }

    /// Starts a flow; returns its id. Zero-byte flows are legal and complete
    /// at the next `advance_to` call.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        debug_assert!(spec.bytes.0 >= 0.0, "negative flow size");
        let path = self.topo.path(spec.src, spec.dst);
        let cross_rack = self.topo.crosses_core(spec.src, spec.dst);
        let id = FlowId(self.flows.len() as u64);
        self.flows.push(Some(FlowState {
            spec,
            path,
            remaining: spec.bytes.clamp_non_negative(),
            cross_rack,
        }));
        self.active.push(id);
        self.stats.flows_started += 1;
        self.mark_dirty(probe::ProbeCounter::RecomputeFlowStart);
        if self.mode != Mode::Eager {
            self.register_started(id);
        }
        if self.trace_on {
            self.tracer.record(
                self.now.as_secs(),
                TraceEvent::FlowStarted {
                    flow: id.0,
                    src: spec.src.0,
                    dst: spec.dst.0,
                    bytes: spec.bytes.clamp_non_negative().0,
                    class: flow_class(spec.tag.kind),
                    job: spec.tag.job.map(|j| j.0),
                },
            );
        }
        id
    }

    /// Cancels an in-flight flow (no completion is reported). Cancelling a
    /// flow that already finished is a no-op.
    ///
    /// Removal from the active list is deferred: the slot is emptied here
    /// and the id is dropped by the next [`Fabric::recompute`]'s single
    /// `retain` pass (eager mode) or the amortized purge (incremental
    /// mode), so a batch of cancellations (e.g. speculation kills) costs
    /// one O(n) sweep instead of one O(n) `remove` each.
    pub fn cancel_flow(&mut self, id: FlowId) {
        match self.mode {
            Mode::Eager => {
                if let Some(slot) = self.flows.get_mut(id.index()) {
                    if slot.take().is_some() {
                        self.mark_dirty(probe::ProbeCounter::RecomputeFlowCancel);
                    }
                }
            }
            Mode::Incremental | Mode::CoflowIncremental => {
                let s = id.index();
                if !matches!(self.flows.get(s), Some(Some(_))) {
                    return;
                }
                // Settle the bytes it moved so far, then drop it and seed
                // the dirty set with the links it frees.
                self.materialize_flow(s, self.now.0);
                let f = self.flows[s].take().unwrap();
                let inc = &mut self.inc;
                if self.mode == Mode::CoflowIncremental && !f.path.is_empty() {
                    inc.pending_departed
                        .push((stable_coflow_key(f.spec.coflow, s), s as u32));
                }
                inc.gen[s] = inc.gen[s].wrapping_add(1);
                inc.dead += 1;
                for &l in f.path.as_slice() {
                    inc.pending_links.push(l);
                }
                self.mark_dirty(probe::ProbeCounter::RecomputeFlowCancel);
                self.maybe_purge_active();
            }
        }
    }

    /// Sets the background reservation on one directed link.
    pub fn set_background(&mut self, link: LinkId, bw: Bandwidth) {
        self.topo.links_mut()[link.index()].background = bw;
        if self.mode != Mode::Eager {
            self.inc.pending_links.push(link);
            // Coflow mode: a capacity epoch invalidates every cached Γ
            // and residual on the allocator side.
            self.inc.caps_dirty = true;
        }
        self.mark_dirty(probe::ProbeCounter::RecomputeBackground);
    }

    /// Sets the background reservation on both core links of `rack`.
    pub fn set_rack_background(&mut self, rack: RackId, bw: Bandwidth) {
        let up = self.topo.rack_up(rack);
        let down = self.topo.rack_down(rack);
        self.set_background(up, bw);
        self.set_background(down, bw);
    }

    /// Time of the next flow completion, if any flow will ever complete
    /// under current rates.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        match self.mode {
            Mode::Eager => {
                if self.dirty {
                    self.recompute();
                }
                self.next_completion
                    .is_finite()
                    .then_some(self.next_completion)
            }
            Mode::Incremental | Mode::CoflowIncremental => {
                if self.dirty {
                    self.recompute_lazy();
                }
                let now = self.now;
                self.peek_fresh().map(|t| SimTime(t).max(now))
            }
        }
    }

    /// Advances the fabric clock to `t`, transferring bytes and collecting
    /// every flow that completes at or before `t` (in completion order).
    ///
    /// Convenience wrapper over [`Fabric::advance_collect`] that allocates
    /// a fresh `Vec` per call; hot loops should hold their own buffer and
    /// call `advance_collect` directly.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current fabric time.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<CompletedFlow> {
        let mut completed = Vec::new();
        self.advance_collect(t, &mut completed);
        completed
    }

    /// Allocation-free variant of [`Fabric::advance_to`]: completions are
    /// *appended* to `out` (which is not cleared), so a caller-owned buffer
    /// can be reused across events.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current fabric time.
    pub fn advance_collect(&mut self, t: SimTime, out: &mut Vec<CompletedFlow>) {
        assert!(
            t.0 >= self.now.0 - 1e-9,
            "fabric cannot move backwards: {} < {}",
            t,
            self.now
        );
        let t = t.max(self.now);
        match self.mode {
            Mode::Eager => self.advance_collect_eager(t, out),
            Mode::Incremental | Mode::CoflowIncremental => {
                self.advance_collect_incremental(t, out)
            }
        }
    }

    /// Runs the fabric until every active flow with a positive rate has
    /// completed; returns all completions. Flows pinned at rate zero (fully
    /// backgrounded links) are left in place.
    pub fn drain(&mut self) -> Vec<CompletedFlow> {
        let mut out = Vec::new();
        self.drain_collect(&mut out);
        out
    }

    /// Allocation-free variant of [`Fabric::drain`]: completions are
    /// appended to `out`.
    pub fn drain_collect(&mut self, out: &mut Vec<CompletedFlow>) {
        while let Some(tc) = self.next_completion() {
            self.advance_collect(tc, out);
        }
    }

    /// Runs the shadow oracle now: a from-scratch component decomposition
    /// and solve of the entire alive flow set, asserting bit-equality with
    /// the incrementally maintained rate table (panicking on divergence).
    /// This *is* the retained full solver — same canonical subproblems,
    /// same kernel — kept in-process as a tripwire rather than a dead code
    /// path. No-op in eager mode (the full solve is already the live path).
    /// Recomputes first if the fabric is dirty; reads but never writes
    /// simulation state or statistics.
    pub fn recompute_full(&mut self) {
        match self.mode {
            Mode::Eager => {}
            Mode::Incremental => {
                if self.dirty {
                    self.recompute_incremental();
                }
                self.oracle_check();
            }
            Mode::CoflowIncremental => {
                if self.dirty {
                    self.recompute_coflow();
                }
                self.oracle_check_coflow();
            }
        }
    }

    /// Dispatches to the lazy recompute of the active non-eager mode.
    #[inline]
    fn recompute_lazy(&mut self) {
        match self.mode {
            Mode::Incremental => self.recompute_incremental(),
            Mode::CoflowIncremental => self.recompute_coflow(),
            Mode::Eager => unreachable!("eager mode recomputes inline"),
        }
    }

    // -- eager internals -----------------------------------------------------

    /// The eager advance loop: recompute on dirt, step completion by
    /// completion, then move the residual interval's bytes.
    fn advance_collect_eager(&mut self, t: SimTime, out: &mut Vec<CompletedFlow>) {
        loop {
            if self.dirty {
                self.recompute();
            }
            if self.next_completion.0 <= t.0 {
                let tc = self.next_completion.max(self.now);
                self.step_to_completion(tc, out);
            } else {
                self.move_bytes(t - self.now);
                self.now = t;
                break;
            }
        }
    }

    /// Recomputes flow rates via the allocator and caches the next
    /// completion time. Steady-state allocation-free: the flow table is
    /// rebuilt into persistent CSR buffers and the allocator works out of
    /// reusable scratch (growth is tracked by
    /// [`FabricStats::scratch_grows`]).
    fn recompute(&mut self) {
        let _probe = probe::span(probe::SpanKind::FabricRecompute);
        self.dirty = false;
        self.stats.recomputes += 1;
        self.stats.recomputes_full += 1;
        probe::count(probe::ProbeCounter::RecomputeFullEager, 1);

        // One pass over `active`: purge flows cancelled since the last
        // recompute (preserving the ascending-FlowId order determinism
        // relies on) while building the CSR table of network flows in that
        // same order — the order the legacy `Vec<FlowView>` slice used.
        // Machine-local (empty-path) flows stay active but are the
        // fabric's problem, not the allocator's.
        let flows = &self.flows;
        let scratch = &mut self.scratch;
        scratch.flow_off.clear();
        scratch.flow_links.clear();
        scratch.remaining.clear();
        scratch.coflow.clear();
        scratch.view_ids.clear();
        scratch.local_remaining.clear();
        scratch.flow_off.push(0);
        self.active.retain(|&id| {
            let Some(f) = flows[id.index()].as_ref() else {
                return false;
            };
            if !f.path.is_empty() {
                scratch.flow_links.extend_from_slice(f.path.as_slice());
                scratch.flow_off.push(scratch.flow_links.len() as u32);
                scratch.remaining.push(f.remaining.0);
                scratch.coflow.push(f.spec.coflow);
                scratch.view_ids.push(id);
            } else {
                scratch.local_remaining.push(f.remaining.0);
            }
            true
        });
        scratch.rates.clear();
        scratch.rates.resize(scratch.view_ids.len(), 0.0);
        let table = FlowTable {
            flow_off: &scratch.flow_off,
            flow_links: &scratch.flow_links,
            remaining: &scratch.remaining,
            coflow: &scratch.coflow,
        };
        {
            let _probe = probe::span(probe::SpanKind::FabricMaxMin);
            self.allocator.allocate_table(
                self.topo.links(),
                &table,
                &mut scratch.rates,
                &mut scratch.alloc,
            );
        }
        let rounds = scratch.alloc.last_rounds();
        self.stats.maxmin_rounds += rounds;
        probe::count(probe::ProbeCounter::MaxMinRounds, rounds);
        let footprint = scratch.footprint();
        if footprint != self.scratch_footprint {
            self.scratch_footprint = footprint;
            self.stats.scratch_grows += 1;
            probe::count(probe::ProbeCounter::FabricScratchGrow, 1);
        }

        // Fold the next completion time straight from the dense scratch
        // arrays — rates are *not* written back to the scattered flow
        // table; `move_bytes` / `step_to_completion` read them through a
        // running cursor instead (`active` cannot change between a
        // recompute and the next byte movement without setting `dirty`).
        // Each flow's `tc` uses the same expressions as the old
        // per-flow-table pass, and a `min` fold over the same values is
        // order-insensitive (no NaNs arise), so the cached
        // `next_completion` is bit-identical.
        let local_rate = self.local_rate;
        let mut next = SimTime::INFINITY;
        let scratch = &self.scratch;
        for (vi, &raw) in scratch.rates.iter().enumerate() {
            let remaining = Bytes(scratch.remaining[vi]);
            let rate = Bandwidth(raw);
            let tc = if remaining.is_negligible() {
                self.now
            } else if rate.is_negligible() {
                SimTime::INFINITY
            } else {
                self.now + remaining / rate
            };
            next = next.min(tc);
        }
        for &rem in &scratch.local_remaining {
            let remaining = Bytes(rem);
            let tc = if remaining.is_negligible() {
                self.now
            } else if local_rate.is_negligible() {
                SimTime::INFINITY
            } else {
                self.now + remaining / local_rate
            };
            next = next.min(tc);
        }
        self.next_completion = next;
    }

    /// Transfers `dt` worth of bytes on every active flow and accounts them.
    ///
    /// Flow rates are read from the recompute scratch through a running
    /// cursor: non-local flows appear in `active` order there, and the
    /// active list cannot have changed since the last recompute (any
    /// mutation sets `dirty`, and every caller recomputes first).
    fn move_bytes(&mut self, dt: SimTime) {
        if dt.0 <= 0.0 {
            return;
        }
        let local_rate = self.local_rate;
        let mut vi = 0usize;
        for &id in &self.active {
            let f = self.flows[id.index()].as_mut().unwrap();
            let rate = if f.path.is_empty() {
                local_rate
            } else {
                let r = Bandwidth(self.scratch.rates[vi]);
                vi += 1;
                r
            };
            let delta = (rate * dt).min(f.remaining);
            if delta.0 <= 0.0 {
                continue;
            }
            f.remaining = (f.remaining - delta).clamp_non_negative();
            let local = f.path.is_empty();
            let cross = f.cross_rack;
            let job = f.spec.tag.job;
            let ingest = f.spec.tag.kind == crate::flow::FlowKind::Ingest;
            // Link byte accounting (per directed link).
            for l in f.path.as_slice() {
                self.topo.links_mut()[l.index()].carried += delta;
            }
            if ingest {
                self.stats.record_ingest(delta);
            } else {
                self.stats.record_transfer(job, delta, cross, local);
            }
            if cross && !ingest {
                if let Some((bucket, ref mut series)) = self.sampling {
                    // Spread the transferred bytes across every bucket the
                    // interval [now, now + dt) overlaps.
                    let t0 = self.now.0;
                    let t1 = t0 + dt.0;
                    let first = (t0 / bucket) as usize;
                    let last = (t1 / bucket) as usize;
                    if series.len() <= last {
                        series.resize(last + 1, 0.0);
                    }
                    for (b, slot) in series.iter_mut().enumerate().take(last + 1).skip(first) {
                        let lo = (b as f64 * bucket).max(t0);
                        let hi = ((b + 1) as f64 * bucket).min(t1);
                        if hi > lo {
                            *slot += delta.0 * (hi - lo) / dt.0;
                        }
                    }
                }
            }
        }
    }

    /// Emits one completion: empties the flow's slot, traces, accounts, and
    /// appends to `out`. The caller removes the id from `active`.
    fn emit_completion(&mut self, id: FlowId, now: SimTime, out: &mut Vec<CompletedFlow>) {
        let f = self.flows[id.index()].take().unwrap();
        self.stats.flows_completed += 1;
        if self.trace_on {
            self.tracer.record(
                now.as_secs(),
                TraceEvent::FlowFinished {
                    flow: id.0,
                    bytes: f.spec.bytes.clamp_non_negative().0,
                },
            );
        }
        out.push(CompletedFlow {
            id,
            tag: f.spec.tag,
            bytes: f.spec.bytes,
            finished: now,
        });
    }

    /// One completion step: advances the clock to `tc`, transferring bytes
    /// and removing flows whose remaining volume is then negligible
    /// (reported as completed at `tc`). Byte movement and harvesting each
    /// visit every active flow, so they are fused into a single `retain`
    /// pass (no per-removal O(n) shifts) — halving the scattered flow-table
    /// reads per event. Per-flow transfer amounts use the same expressions
    /// as [`Fabric::move_bytes`], the accounting totals are order-free
    /// sums, and the ascending-FlowId scan order — and hence the completion
    /// order — is identical to the old move-then-harvest pair of passes.
    fn step_to_completion(&mut self, tc: SimTime, out: &mut Vec<CompletedFlow>) {
        let dt = tc - self.now;
        let move_dt = (dt.0 > 0.0).then_some(dt);
        let before = out.len();
        let local_rate = self.local_rate;
        let mut vi = 0usize;
        let mut active = std::mem::take(&mut self.active);
        active.retain(|&id| {
            let Some(f) = self.flows[id.index()].as_mut() else {
                // Cancelled since the last recompute; drop silently. (A
                // cancelled flow was never in the rate scratch either, so
                // the cursor stays aligned.)
                return false;
            };
            // Rates live in the recompute scratch (see `move_bytes`); the
            // cursor must advance for every non-local flow even when no
            // bytes move.
            let rate = if f.path.is_empty() {
                local_rate
            } else {
                let r = Bandwidth(self.scratch.rates[vi]);
                vi += 1;
                r
            };
            if let Some(dt) = move_dt {
                let delta = (rate * dt).min(f.remaining);
                if delta.0 > 0.0 {
                    f.remaining = (f.remaining - delta).clamp_non_negative();
                    let local = f.path.is_empty();
                    let cross = f.cross_rack;
                    let job = f.spec.tag.job;
                    let ingest = f.spec.tag.kind == crate::flow::FlowKind::Ingest;
                    // Link byte accounting (per directed link).
                    for l in f.path.as_slice() {
                        self.topo.links_mut()[l.index()].carried += delta;
                    }
                    if ingest {
                        self.stats.record_ingest(delta);
                    } else {
                        self.stats.record_transfer(job, delta, cross, local);
                    }
                    if cross && !ingest {
                        if let Some((bucket, ref mut series)) = self.sampling {
                            // Spread the transferred bytes across every
                            // bucket the interval [now, now + dt) overlaps.
                            let t0 = self.now.0;
                            let t1 = t0 + dt.0;
                            let first = (t0 / bucket) as usize;
                            let last = (t1 / bucket) as usize;
                            if series.len() <= last {
                                series.resize(last + 1, 0.0);
                            }
                            for (b, slot) in
                                series.iter_mut().enumerate().take(last + 1).skip(first)
                            {
                                let lo = (b as f64 * bucket).max(t0);
                                let hi = ((b + 1) as f64 * bucket).min(t1);
                                if hi > lo {
                                    *slot += delta.0 * (hi - lo) / dt.0;
                                }
                            }
                        }
                    }
                }
            }
            if !self.flows[id.index()]
                .as_ref()
                .unwrap()
                .remaining
                .is_negligible()
            {
                return true;
            }
            self.emit_completion(id, tc, out);
            false
        });
        self.active = active;
        self.now = tc;
        let now = tc;
        if out.len() == before {
            // We were called because next_completion fired, yet no flow hit
            // zero — pure floating point drift. Force-complete the closest
            // flow to guarantee progress. (`min_by` keeps the *last* minimal
            // element, matching the previous implementation.)
            if let Some(&id) = self.active.iter().min_by(|a, b| {
                let fa = self.flows[a.index()].as_ref().unwrap().remaining.0;
                let fb = self.flows[b.index()].as_ref().unwrap().remaining.0;
                fa.total_cmp(&fb)
            }) {
                self.emit_completion(id, now, out);
                self.active.retain(|&x| x != id);
            }
        }
        self.stats.debug_validate();
        self.mark_dirty(probe::ProbeCounter::RecomputeCompletion);
    }

    /// Marks the rate table stale, attributing the *first* cause since
    /// the last recompute to a probe counter (observability only; with
    /// probes disabled this is exactly `self.dirty = true`).
    #[inline]
    fn mark_dirty(&mut self, cause: probe::ProbeCounter) {
        if !self.dirty {
            probe::count(cause, 1);
        }
        self.dirty = true;
    }

    // -- incremental internals -----------------------------------------------

    /// Registers a just-started flow with the incremental state: local
    /// flows get their (constant) rate and deadline immediately; network
    /// flows join the pending set and dirty their endpoint links so the
    /// next recompute folds them into the affected components.
    fn register_started(&mut self, id: FlowId) {
        let s = id.index();
        let now = self.now.0;
        let f = self.flows[s].as_ref().unwrap();
        let rem = f.remaining.0;
        let local = f.path.is_empty();
        let path = f.path;
        let inc = &mut self.inc;
        debug_assert_eq!(inc.rate.len(), s, "flow slots must register in order");
        inc.epoch.push(now);
        inc.rem.push(rem);
        inc.gen.push(0);
        inc.comp_of.push(NO_COMP);
        if local {
            let rate = self.local_rate.0;
            let d = deadline_for(now, rem, rate);
            inc.rate.push(rate);
            inc.deadline.push(d);
            if d.is_finite() {
                inc.queue.push(d, (s as u32, 0));
            }
        } else {
            inc.rate.push(0.0);
            inc.deadline.push(f64::INFINITY);
            inc.pending_new.push(s as u32);
            for &l in path.as_slice() {
                inc.pending_links.push(l);
            }
        }
    }

    /// Settles one flow's lazy byte accounting up to `up_to`: moves
    /// `rate · (up_to − epoch)` bytes (clamped to the remainder) into the
    /// link counters, [`FabricStats`], and the utilization sampler, then
    /// advances the flow's epoch. Uses the same per-flow expressions as
    /// the eager [`Fabric::move_bytes`], just over a longer interval.
    fn materialize_flow(&mut self, slot: usize, up_to: f64) {
        let epoch = self.inc.epoch[slot];
        let dt = up_to - epoch;
        if dt <= 0.0 {
            return;
        }
        self.inc.epoch[slot] = up_to;
        let rate = self.inc.rate[slot];
        let rem = self.inc.rem[slot];
        let delta = (rate * dt).min(rem);
        if delta <= 0.0 {
            return;
        }
        let new_rem = (rem - delta).max(0.0);
        self.inc.rem[slot] = new_rem;
        let (path, cross, job, ingest, local) = {
            let f = self.flows[slot].as_mut().unwrap();
            f.remaining = Bytes(new_rem);
            (
                f.path,
                f.cross_rack,
                f.spec.tag.job,
                f.spec.tag.kind == FlowKind::Ingest,
                f.path.is_empty(),
            )
        };
        let delta = Bytes(delta);
        for l in path.as_slice() {
            self.topo.links_mut()[l.index()].carried += delta;
        }
        if ingest {
            self.stats.record_ingest(delta);
        } else {
            self.stats.record_transfer(job, delta, cross, local);
        }
        if cross && !ingest {
            if let Some((bucket, ref mut series)) = self.sampling {
                // Spread the transferred bytes across every bucket the
                // interval [epoch, up_to) overlaps.
                let t0 = epoch;
                let t1 = up_to;
                let span = t1 - t0;
                let first = (t0 / bucket) as usize;
                let last = (t1 / bucket) as usize;
                if series.len() <= last {
                    series.resize(last + 1, 0.0);
                }
                for (b, cell) in series.iter_mut().enumerate().take(last + 1).skip(first) {
                    let lo = (b as f64 * bucket).max(t0);
                    let hi = ((b + 1) as f64 * bucket).min(t1);
                    if hi > lo {
                        *cell += delta.0 * (hi - lo) / span;
                    }
                }
            }
        }
    }

    /// Skims stale calendar entries (dead slot or superseded generation)
    /// off the top of the completion queue and returns the next *fresh*
    /// deadline, leaving its entry queued.
    fn peek_fresh(&mut self) -> Option<f64> {
        loop {
            let (t, slot, gen) = {
                let (t, &(slot, gen)) = self.inc.queue.peek()?;
                (t, slot as usize, gen)
            };
            if self.flows[slot].is_some() && self.inc.gen[slot] == gen {
                return Some(t);
            }
            self.inc.queue.pop();
        }
    }

    /// Amortized compaction of the active list: once dead slots dominate,
    /// one `retain` pass drops them all.
    fn maybe_purge_active(&mut self) {
        if self.inc.dead > 64 && self.inc.dead * 2 > self.active.len() {
            let flows = &self.flows;
            self.active.retain(|id| flows[id.index()].is_some());
            self.inc.dead = 0;
        }
    }

    /// The incremental advance loop: recompute the dirty components, pop
    /// fresh completion deadlines up to `t`, settle each completed flow's
    /// accounting, and mark its freed links dirty for the next round.
    fn advance_collect_incremental(&mut self, t: SimTime, out: &mut Vec<CompletedFlow>) {
        loop {
            if self.dirty {
                self.recompute_lazy();
            }
            match self.peek_fresh() {
                Some(tc) if tc <= t.0 => {
                    let (time, (slot, _gen)) = self.inc.queue.pop().unwrap();
                    let tc = SimTime(time).max(self.now);
                    self.now = tc;
                    self.complete_incremental(slot as usize, tc, out);
                    // Coflow mode: drain the *exact*-equal-time batch
                    // before recomputing. Every such entry's remaining
                    // hits zero at `time` under the current rates, so
                    // completing them together is byte-identical to
                    // interleaving recomputes (which would re-queue each
                    // at the same instant) — and it restores the fused
                    // batching the eager step has, instead of paying one
                    // full MADD replay per same-time completion.
                    if self.mode == Mode::CoflowIncremental {
                        while self.peek_fresh() == Some(time) {
                            let (_, (s2, _g2)) = self.inc.queue.pop().unwrap();
                            self.complete_incremental(s2 as usize, tc, out);
                        }
                    }
                }
                _ => {
                    self.now = t;
                    return;
                }
            }
        }
    }

    /// Completes one calendar-popped flow at `tc`: settles its lazy byte
    /// accounting over `[epoch, deadline)` (the solved deadline is exact,
    /// so the flow completes here unconditionally — the sub-byte residual
    /// closed-form arithmetic may leave is dropped, as in eager mode),
    /// records its departure, dirties its freed links, and emits the
    /// completion.
    fn complete_incremental(&mut self, s: usize, tc: SimTime, out: &mut Vec<CompletedFlow>) {
        self.materialize_flow(s, tc.0);
        {
            let f = self.flows[s].as_ref().unwrap();
            let path = f.path;
            let key = stable_coflow_key(f.spec.coflow, s);
            let inc = &mut self.inc;
            if self.mode == Mode::CoflowIncremental && !path.is_empty() {
                inc.pending_departed.push((key, s as u32));
            }
            inc.gen[s] = inc.gen[s].wrapping_add(1);
            inc.dead += 1;
            for &l in path.as_slice() {
                inc.pending_links.push(l);
            }
        }
        self.emit_completion(FlowId(s as u64), tc, out);
        self.stats.debug_validate();
        self.mark_dirty(probe::ProbeCounter::RecomputeCompletion);
        self.maybe_purge_active();
    }

    /// Incremental rate maintenance: dissolve only the components owning a
    /// dirtied link, re-solve the affected flows on canonical compacted
    /// subproblems, and splice rates + deadlines back. Every other flow's
    /// rate, deadline, and queued calendar entry stay untouched.
    fn recompute_incremental(&mut self) {
        let _probe = probe::span(probe::SpanKind::FabricRecompute);
        self.dirty = false;
        self.stats.recomputes += 1;
        self.stats.recomputes_incremental += 1;
        probe::count(probe::ProbeCounter::RecomputeIncremental, 1);

        let now = self.now.0;

        // Phase 1: dissolve every component touching a pending link; its
        // alive members plus the pending new flows form the candidate set.
        // Components are disjoint and new flows are component-less, so no
        // dedup is needed; the final sort restores ascending-slot order.
        {
            let flows = &self.flows;
            let inc = &mut self.inc;
            inc.round += 1;
            let round = inc.round;
            inc.cand.clear();
            for pi in 0..inc.pending_links.len() {
                let l = inc.pending_links[pi];
                let c = inc.link_comp[l.index()];
                if c == NO_COMP {
                    continue;
                }
                let c = c as usize;
                if inc.comp_stamp[c] == round {
                    continue;
                }
                inc.comp_stamp[c] = round;
                let mut members = std::mem::take(&mut inc.comp_flows[c]);
                for &s in &members {
                    if flows[s as usize].is_some() {
                        inc.cand.push(s);
                    }
                }
                members.clear();
                inc.comp_flows[c] = members;
                inc.free_comps.push(c as u32);
            }
            for pi in 0..inc.pending_new.len() {
                let s = inc.pending_new[pi];
                if flows[s as usize].is_some() {
                    inc.cand.push(s);
                }
            }
            inc.pending_new.clear();
            inc.cand.sort_unstable();
        }

        // Phase 2: settle every candidate's lazy accounting at `now`, so
        // the upcoming rate change applies from a clean epoch.
        for ci in 0..self.inc.cand.len() {
            let s = self.inc.cand[ci] as usize;
            self.materialize_flow(s, now);
        }

        // Phase 3: clear link ownership across the dissolved region. Dead
        // members' links always ride in `pending_links` (pushed at their
        // completion/cancellation), so candidate paths ∪ pending links
        // covers every link of every dissolved component.
        {
            let flows = &self.flows;
            let inc = &mut self.inc;
            for pi in 0..inc.pending_links.len() {
                let l = inc.pending_links[pi];
                inc.link_comp[l.index()] = NO_COMP;
            }
            inc.pending_links.clear();
            for ci in 0..inc.cand.len() {
                let s = inc.cand[ci] as usize;
                let f = flows[s].as_ref().unwrap();
                for &l in f.path.as_slice() {
                    inc.link_comp[l.index()] = NO_COMP;
                }
            }
        }

        // Phase 4 + 5: union-find the candidates through shared links
        // (union by min root ⇒ canonical representatives), then form the
        // new components in ascending-min-member order with members
        // ascending inside each.
        {
            let flows = &self.flows;
            let inc = &mut self.inc;
            inc.round += 1;
            let round = inc.round;
            let n = inc.cand.len();
            inc.uf.clear();
            inc.uf.extend(0..n as u32);
            for i in 0..n {
                let s = inc.cand[i] as usize;
                let f = flows[s].as_ref().unwrap();
                for &l in f.path.as_slice() {
                    let li = l.index();
                    if inc.link_stamp[li] != round {
                        inc.link_stamp[li] = round;
                        inc.link_first[li] = i as u32;
                    } else {
                        let j = inc.link_first[li];
                        union(&mut inc.uf, i as u32, j);
                    }
                }
            }
            inc.root_comp.clear();
            inc.root_comp.resize(n, NO_COMP);
            inc.new_comps.clear();
            for i in 0..n {
                let r = find(&mut inc.uf, i as u32) as usize;
                let mut c = inc.root_comp[r];
                if c == NO_COMP {
                    c = inc.alloc_comp();
                    inc.root_comp[r] = c;
                    inc.new_comps.push(c);
                }
                let s = inc.cand[i];
                inc.comp_flows[c as usize].push(s);
                inc.comp_of[s as usize] = c;
            }
        }

        // Phase 6: solve each new component on its canonical compacted
        // subproblem (links deduped + sorted ascending, compact ids by
        // rank, members ascending) and splice rates, deadlines, and fresh
        // calendar entries back.
        let mut rounds_total: u64 = 0;
        let dirtied = self.inc.cand.len() as u64;
        {
            let _mm = probe::span(probe::SpanKind::FabricMaxMin);
            let flows = &self.flows;
            let topo = &self.topo;
            let allocator = &mut *self.allocator;
            let alloc = &mut self.scratch.alloc;
            let inc = &mut self.inc;
            for nci in 0..inc.new_comps.len() {
                let c = inc.new_comps[nci] as usize;
                inc.round += 1;
                let round = inc.round;
                inc.comp_links.clear();
                for mi in 0..inc.comp_flows[c].len() {
                    let s = inc.comp_flows[c][mi] as usize;
                    let f = flows[s].as_ref().unwrap();
                    for &l in f.path.as_slice() {
                        let li = l.index();
                        if inc.link_stamp[li] != round {
                            inc.link_stamp[li] = round;
                            inc.comp_links.push(l);
                        }
                    }
                }
                inc.comp_links.sort_unstable_by_key(|l| l.index());
                inc.sub_caps.clear();
                for j in 0..inc.comp_links.len() {
                    let l = inc.comp_links[j];
                    inc.link_local[l.index()] = j as u32;
                    inc.link_comp[l.index()] = c as u32;
                    inc.sub_caps
                        .push(topo.links()[l.index()].effective_capacity().0);
                }
                inc.sub_off.clear();
                inc.sub_links.clear();
                inc.sub_remaining.clear();
                inc.sub_coflow.clear();
                inc.sub_off.push(0);
                let nmem = inc.comp_flows[c].len();
                for mi in 0..nmem {
                    let s = inc.comp_flows[c][mi] as usize;
                    let f = flows[s].as_ref().unwrap();
                    for &l in f.path.as_slice() {
                        inc.sub_links.push(LinkId(inc.link_local[l.index()]));
                    }
                    inc.sub_off.push(inc.sub_links.len() as u32);
                    inc.sub_remaining.push(inc.rem[s]);
                    inc.sub_coflow.push(f.spec.coflow);
                }
                inc.sub_rates.clear();
                inc.sub_rates.resize(nmem, 0.0);
                alloc.maxmin.reset_rounds();
                {
                    let table = FlowTable {
                        flow_off: &inc.sub_off,
                        flow_links: &inc.sub_links,
                        remaining: &inc.sub_remaining,
                        coflow: &inc.sub_coflow,
                    };
                    allocator.allocate_component(&inc.sub_caps, &table, &mut inc.sub_rates, alloc);
                }
                rounds_total += alloc.maxmin.last_rounds();
                for mi in 0..nmem {
                    let s = inc.comp_flows[c][mi] as usize;
                    let rate = inc.sub_rates[mi];
                    inc.rate[s] = rate;
                    // Epoch is `now` from phase 2's materialization.
                    let d = deadline_for(now, inc.rem[s], rate);
                    inc.deadline[s] = d;
                    inc.gen[s] = inc.gen[s].wrapping_add(1);
                    if d.is_finite() {
                        inc.queue.push(d, (s as u32, inc.gen[s]));
                    }
                }
            }
        }
        self.stats.maxmin_rounds += rounds_total;
        probe::count(probe::ProbeCounter::MaxMinRounds, rounds_total);
        self.stats.dirty_flows += dirtied;
        probe::count(probe::ProbeCounter::FabricDirtyFlowsSum, dirtied);
        probe::count(probe::ProbeCounter::FabricDirtyFlowsSamples, 1);
        let footprint = self.inc.footprint() + self.scratch.alloc.footprint();
        if footprint != self.scratch_footprint {
            self.scratch_footprint = footprint;
            self.stats.scratch_grows += 1;
            probe::count(probe::ProbeCounter::FabricScratchGrow, 1);
        }
        // Calendar hygiene: once stale entries dominate the live flows,
        // vacuum them in one deterministic pass.
        let alive = self.active.len().saturating_sub(self.inc.dead);
        if self.inc.queue.len() > 4 * alive + 1024 {
            let IncState {
                queue, gen: gens, ..
            } = &mut self.inc;
            let flows = &self.flows;
            queue.retain(|&(s, g)| flows[s as usize].is_some() && gens[s as usize] == g);
        }
        if self.oracle {
            self.oracle_check();
        }
    }

    /// Coflow-local rate maintenance: rebuild the CSR over the alive
    /// network flows (O(alive) — cheap; the expense eager mode pays is
    /// the O(alive·links) *solve*), hand the allocator the event delta,
    /// and splice back exactly the rates whose bits changed. Unchanged
    /// flows keep their rate, deadline, queued calendar entry, and lazy
    /// byte accounting epoch.
    ///
    /// The CSR's `remaining` column carries the *frozen-at-admission*
    /// scheduling bytes (`spec.bytes`), not the live remainder: SEBF here
    /// is clairvoyant (the Varys paper's setting — coflow sizes are known
    /// up front), which is precisely what makes the priority order a pure
    /// function of the alive set rather than of elapsed time. True byte
    /// accounting stays lazy in `inc.rem`/`inc.epoch`; completions are
    /// exact because deadlines are computed from the true remainder.
    fn recompute_coflow(&mut self) {
        let _probe = probe::span(probe::SpanKind::FabricRecompute);
        self.dirty = false;
        self.stats.recomputes += 1;
        let now = self.now.0;

        // CSR build over `active`, purging dead slots in the same retain
        // pass as eager mode (the walk is O(alive) either way). The
        // `row_of` map is reset sparsely through the previous round's
        // `csr_slots` so maintenance never touches retired slots.
        {
            let flows = &self.flows;
            let scratch = &mut self.scratch;
            let inc = &mut self.inc;
            for i in 0..inc.csr_slots.len() {
                inc.row_of[inc.csr_slots[i] as usize] = u32::MAX;
            }
            inc.row_of.resize(flows.len(), u32::MAX);
            inc.csr_slots.clear();
            scratch.flow_off.clear();
            scratch.flow_links.clear();
            scratch.remaining.clear();
            scratch.coflow.clear();
            scratch.view_ids.clear();
            scratch.flow_off.push(0);
            self.active.retain(|&id| {
                let Some(f) = flows[id.index()].as_ref() else {
                    return false;
                };
                if !f.path.is_empty() {
                    let s = id.index();
                    scratch.flow_links.extend_from_slice(f.path.as_slice());
                    scratch.flow_off.push(scratch.flow_links.len() as u32);
                    scratch
                        .remaining
                        .push(f.spec.bytes.clamp_non_negative().0);
                    scratch
                        .coflow
                        .push(Some(CoflowId(stable_coflow_key(f.spec.coflow, s))));
                    scratch.view_ids.push(id);
                    inc.row_of[s] = inc.csr_slots.len() as u32;
                    inc.csr_slots.push(s as u32);
                }
                true
            });
            inc.dead = 0;
            // Keep the departure log sized to the row high-water mark so
            // the first completions after a growth spurt don't allocate.
            let add = inc
                .csr_slots
                .len()
                .saturating_sub(inc.pending_departed.len());
            inc.pending_departed.reserve(add);
            // Admissions since the last recompute, dead-filtered.
            // `pending_new` holds network flows in start (= ascending
            // slot) order, which is the order `added` promises.
            inc.added.clear();
            for pi in 0..inc.pending_new.len() {
                let s = inc.pending_new[pi] as usize;
                if let Some(f) = flows[s].as_ref() {
                    inc.added
                        .push((stable_coflow_key(f.spec.coflow, s), s as u32));
                }
            }
            inc.pending_new.clear();
        }

        // Solve: the allocator sees the full table plus the delta and
        // decides whether the event admits a coflow-local pass.
        let nrows = self.inc.csr_slots.len();
        let outcome = {
            let _mm = probe::span(probe::SpanKind::FabricMaxMin);
            let scratch = &mut self.scratch;
            scratch.rates.clear();
            scratch.rates.resize(nrows, 0.0);
            let RecomputeScratch {
                flow_off,
                flow_links,
                remaining,
                coflow,
                rates,
                alloc,
                ..
            } = scratch;
            let table = FlowTable {
                flow_off,
                flow_links,
                remaining,
                coflow,
            };
            let inc = &self.inc;
            let ctx = DirtyCtx {
                slots: &inc.csr_slots,
                row_of: &inc.row_of,
                added: &inc.added,
                departed: &inc.pending_departed,
                dirty_links: &inc.pending_links,
                caps_changed: inc.caps_dirty,
            };
            self.allocator
                .allocate_dirty(self.topo.links(), &table, rates, alloc, &ctx)
        };
        self.inc.pending_departed.clear();
        self.inc.pending_links.clear();
        self.inc.caps_dirty = false;
        let (rounds, dirtied) = match outcome {
            DirtyOutcome::Unsupported => {
                self.stats.recomputes_full += 1;
                probe::count(probe::ProbeCounter::RecomputeFullEager, 1);
                (self.scratch.alloc.last_rounds(), nrows as u64)
            }
            DirtyOutcome::Full { rounds } => {
                self.stats.recomputes_full += 1;
                self.stats.recomputes_full_boundary += 1;
                probe::count(probe::ProbeCounter::RecomputeFullBoundary, 1);
                (rounds, nrows as u64)
            }
            DirtyOutcome::Incremental { dirty_flows, rounds } => {
                self.stats.recomputes_incremental += 1;
                probe::count(probe::ProbeCounter::RecomputeIncremental, 1);
                (rounds, dirty_flows)
            }
        };
        self.stats.maxmin_rounds += rounds;
        probe::count(probe::ProbeCounter::MaxMinRounds, rounds);
        self.stats.dirty_flows += dirtied;
        probe::count(probe::ProbeCounter::FabricDirtyFlowsSum, dirtied);
        probe::count(probe::ProbeCounter::FabricDirtyFlowsSamples, 1);

        // Splice: settle accounting and refresh deadline + calendar entry
        // for exactly the flows whose rate bits moved.
        for row in 0..nrows {
            let s = self.inc.csr_slots[row] as usize;
            let rate = self.scratch.rates[row];
            if rate.to_bits() == self.inc.rate[s].to_bits() {
                continue;
            }
            self.materialize_flow(s, now);
            let inc = &mut self.inc;
            inc.rate[s] = rate;
            let d = deadline_for(now, inc.rem[s], rate);
            inc.deadline[s] = d;
            inc.gen[s] = inc.gen[s].wrapping_add(1);
            if d.is_finite() {
                inc.queue.push(d, (s as u32, inc.gen[s]));
            }
        }
        // New flows whose solved rate equals the registration default
        // (0.0) never hit the splice above; zero-byte ones still complete
        // *now* (matching the eager fold), so force their deadline in.
        for ai in 0..self.inc.added.len() {
            let s = self.inc.added[ai].1 as usize;
            let inc = &mut self.inc;
            if inc.deadline[s].is_infinite() {
                let d = deadline_for(now, inc.rem[s], inc.rate[s]);
                if d.is_finite() {
                    inc.deadline[s] = d;
                    inc.gen[s] = inc.gen[s].wrapping_add(1);
                    inc.queue.push(d, (s as u32, inc.gen[s]));
                }
            }
        }

        // Footprint + gauges, mirroring the memoryless path's bookkeeping.
        let footprint = self.inc.footprint() + self.scratch.footprint();
        if footprint != self.scratch_footprint {
            self.scratch_footprint = footprint;
            self.stats.scratch_grows += 1;
            probe::count(probe::ProbeCounter::FabricScratchGrow, 1);
        }
        let varys_fp = self.scratch.alloc.varys.footprint();
        if varys_fp > self.last_varys_footprint {
            probe::count(
                probe::ProbeCounter::VarysScratchElems,
                (varys_fp - self.last_varys_footprint) as u64,
            );
            self.last_varys_footprint = varys_fp;
        }
        // Calendar hygiene: once stale entries dominate the live flows,
        // vacuum them in one deterministic pass.
        let alive = self.active.len();
        if self.inc.queue.len() > 4 * alive + 1024 {
            let IncState {
                queue, gen: gens, ..
            } = &mut self.inc;
            let flows = &self.flows;
            queue.retain(|&(s, g)| flows[s as usize].is_some() && gens[s as usize] == g);
        }
        if self.oracle {
            self.oracle_check_coflow();
        }
    }

    /// The coflow-mode shadow oracle: re-solves the *entire* CSR through
    /// [`RateAllocator::allocate_from_scratch`] — canonical SEBF + MADD +
    /// per-component backfill with no cached state, on the oracle's own
    /// workspaces — and asserts per-flow rate bits match the spliced
    /// table. Reads but never writes simulation state, stats, or the live
    /// allocator cache, so arming it cannot change any observable result.
    ///
    /// Reuses the CSR left by the last [`Fabric::recompute_coflow`]: the
    /// fabric is clean here (any flow/capacity event since that build
    /// would have set `dirty` and forced a recompute first).
    fn oracle_check_coflow(&mut self) {
        if self.mode != Mode::CoflowIncremental {
            return;
        }
        debug_assert!(!self.dirty, "oracle ran on a dirty fabric");
        let scratch = &self.scratch;
        let inc = &mut self.inc;
        let orc = &mut inc.oracle;
        let table = FlowTable {
            flow_off: &scratch.flow_off,
            flow_links: &scratch.flow_links,
            remaining: &scratch.remaining,
            coflow: &scratch.coflow,
        };
        let nrows = inc.csr_slots.len();
        orc.rates.clear();
        orc.rates.resize(nrows, 0.0);
        self.allocator.allocate_from_scratch(
            self.topo.links(),
            &table,
            &mut orc.rates,
            &mut orc.alloc,
        );
        for row in 0..nrows {
            let s = inc.csr_slots[row] as usize;
            let got = inc.rate[s];
            let want = orc.rates[row];
            assert!(
                got.to_bits() == want.to_bits(),
                "coflow-incremental/full rate divergence on flow {s}: \
                 incremental {got} ({:#x}) vs full {want} ({:#x})",
                got.to_bits(),
                want.to_bits()
            );
        }
    }

    /// The shadow oracle: re-derives every component of the alive flow set
    /// from scratch, solves each on the same canonical compacted
    /// subproblem the incremental path builds, and asserts per-flow rate
    /// bits match the cached incremental table. Reads but never writes
    /// simulation state, stats, or probe counters, and works out of its
    /// own scratch — so arming it cannot change any observable result.
    fn oracle_check(&mut self) {
        if self.mode != Mode::Incremental {
            return;
        }
        let flows = &self.flows;
        let topo = &self.topo;
        let allocator = &mut *self.allocator;
        let inc = &mut self.inc;
        let orc = &mut inc.oracle;
        // Alive network flows, ascending (active is ascending by
        // construction and `retain` preserves order).
        orc.cand.clear();
        for idx in 0..self.active.len() {
            let s = self.active[idx].index();
            if let Some(f) = flows.get(s).and_then(|x| x.as_ref()) {
                if !f.path.is_empty() {
                    orc.cand.push(s as u32);
                }
            }
        }
        let n = orc.cand.len();
        orc.uf.clear();
        orc.uf.extend(0..n as u32);
        inc.round += 1;
        let round = inc.round;
        for i in 0..n {
            let s = orc.cand[i] as usize;
            let f = flows[s].as_ref().unwrap();
            for &l in f.path.as_slice() {
                let li = l.index();
                if inc.link_stamp[li] != round {
                    inc.link_stamp[li] = round;
                    inc.link_first[li] = i as u32;
                } else {
                    let j = inc.link_first[li];
                    union(&mut orc.uf, i as u32, j);
                }
            }
        }
        orc.root.clear();
        orc.root.resize(n, NO_COMP);
        orc.grp.clear();
        let mut ngroups: u32 = 0;
        for i in 0..n {
            let r = find(&mut orc.uf, i as u32) as usize;
            if orc.root[r] == NO_COMP {
                orc.root[r] = ngroups;
                ngroups += 1;
            }
            orc.grp.push(orc.root[r]);
        }
        // Counting sort by group (stable ⇒ members ascending per group,
        // groups in first-seen = ascending-min-member order).
        orc.off.clear();
        orc.off.resize(ngroups as usize + 1, 0);
        for i in 0..n {
            orc.off[orc.grp[i] as usize + 1] += 1;
        }
        for g in 1..=ngroups as usize {
            orc.off[g] += orc.off[g - 1];
        }
        orc.cursor.clear();
        orc.cursor.extend_from_slice(&orc.off[..ngroups as usize]);
        orc.members.clear();
        orc.members.resize(n, 0);
        for i in 0..n {
            let g = orc.grp[i] as usize;
            let pos = orc.cursor[g] as usize;
            orc.cursor[g] += 1;
            orc.members[pos] = orc.cand[i];
        }
        for g in 0..ngroups as usize {
            let lo = orc.off[g] as usize;
            let hi = orc.off[g + 1] as usize;
            inc.round += 1;
            let r2 = inc.round;
            orc.links.clear();
            for k in lo..hi {
                let s = orc.members[k] as usize;
                let f = flows[s].as_ref().unwrap();
                for &l in f.path.as_slice() {
                    let li = l.index();
                    if inc.link_stamp[li] != r2 {
                        inc.link_stamp[li] = r2;
                        orc.links.push(l);
                    }
                }
            }
            orc.links.sort_unstable_by_key(|l| l.index());
            orc.caps.clear();
            for j in 0..orc.links.len() {
                let l = orc.links[j];
                inc.link_local[l.index()] = j as u32;
                orc.caps
                    .push(topo.links()[l.index()].effective_capacity().0);
            }
            orc.csr_off.clear();
            orc.csr_links.clear();
            orc.rem.clear();
            orc.coflow.clear();
            orc.csr_off.push(0);
            for k in lo..hi {
                let s = orc.members[k] as usize;
                let f = flows[s].as_ref().unwrap();
                for &l in f.path.as_slice() {
                    orc.csr_links.push(LinkId(inc.link_local[l.index()]));
                }
                orc.csr_off.push(orc.csr_links.len() as u32);
                orc.rem.push(inc.rem[s]);
                orc.coflow.push(f.spec.coflow);
            }
            orc.rates.clear();
            orc.rates.resize(hi - lo, 0.0);
            orc.alloc.maxmin.reset_rounds();
            {
                let table = FlowTable {
                    flow_off: &orc.csr_off,
                    flow_links: &orc.csr_links,
                    remaining: &orc.rem,
                    coflow: &orc.coflow,
                };
                allocator.allocate_component(&orc.caps, &table, &mut orc.rates, &mut orc.alloc);
            }
            for k in lo..hi {
                let s = orc.members[k] as usize;
                let got = inc.rate[s];
                let want = orc.rates[k - lo];
                assert!(
                    got.to_bits() == want.to_bits(),
                    "incremental/full rate divergence on flow {s}: \
                     incremental {got} ({:#x}) vs full {want} ({:#x})",
                    got.to_bits(),
                    want.to_bits()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::FairShare;
    use crate::flow::{FlowKind, FlowTag};
    use corral_model::MachineId;

    fn fabric() -> Fabric {
        // tiny_test: 3 racks x 4 machines, 10G NICs, 4:1 oversub
        // => rack core links 10 Gbps (= 1.25 GB/s).
        Fabric::new(ClusterConfig::tiny_test(), Box::new(FairShare))
    }

    fn spec(src: u32, dst: u32, gb: f64) -> FlowSpec {
        FlowSpec {
            src: MachineId(src),
            dst: MachineId(dst),
            bytes: Bytes::gb(gb),
            tag: FlowTag::infrastructure(FlowKind::Shuffle),
            coflow: None,
        }
    }

    #[test]
    fn single_intra_rack_flow_runs_at_nic_speed() {
        let mut f = fabric();
        f.start_flow(spec(0, 1, 1.25)); // 1.25 GB over 1.25 GB/s = 1 s
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs() - 1.0).abs() < 1e-6);
        assert_eq!(f.active_flow_count(), 0);
    }

    #[test]
    fn two_flows_share_a_nic() {
        let mut f = fabric();
        // Both flows leave machine 0: share its 1.25 GB/s uplink.
        f.start_flow(spec(0, 1, 1.25));
        f.start_flow(spec(0, 2, 1.25));
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 2);
        assert!((done[0].finished.as_secs() - 2.0).abs() < 1e-6);
        assert!((done[1].finished.as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_rack_flows_bottleneck_on_rack_uplink() {
        let mut f = fabric();
        // 4 flows from 4 distinct machines in rack 0 to 4 machines in rack 1.
        // Each NIC could do 1.25 GB/s but the rack uplink is 1.25 GB/s total
        // => each flow gets 0.3125 GB/s.
        for i in 0..4 {
            f.start_flow(spec(i, 4 + i, 0.3125));
        }
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 4);
        for c in &done {
            assert!((c.finished.as_secs() - 1.0).abs() < 1e-6);
        }
        // All bytes crossed the core.
        assert!((f.stats().cross_rack_bytes.as_gb() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn completion_frees_bandwidth_for_remaining_flows() {
        let mut f = fabric();
        // Two flows share machine 0's NIC; the short one finishes, then the
        // long one speeds up. 1.25+2.5 GB total on a 1.25 GB/s link:
        // short: 1.25 GB at 0.625 => 2 s. long: 1.25 GB by t=2 (0.625 rate),
        // remaining 1.25 GB at full 1.25 GB/s => done at t=3.
        f.start_flow(spec(0, 1, 1.25));
        f.start_flow(spec(0, 2, 2.5));
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 2);
        assert!((done[0].finished.as_secs() - 2.0).abs() < 1e-6);
        assert!((done[1].finished.as_secs() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn background_reduces_core_capacity() {
        let mut f = fabric();
        // Reserve 50% of rack 0's uplink.
        f.set_rack_background(RackId(0), Bandwidth::gbps(5.0));
        f.start_flow(spec(0, 4, 0.625)); // cross-rack, 0.625 GB
        let done = f.advance_to(SimTime::secs(10.0));
        // 5 Gbps left = 0.625 GB/s => 1 s.
        assert!((done[0].finished.as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn machine_local_flow_completes_fast_and_counts_local() {
        let mut f = fabric();
        f.start_flow(spec(3, 3, 2.5)); // local: 2x NIC = 2.5 GB/s => 1 s
        let done = f.advance_to(SimTime::secs(5.0));
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs() - 1.0).abs() < 1e-6);
        assert_eq!(f.stats().network_bytes, Bytes::ZERO);
        assert!((f.stats().local_bytes.as_gb() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut f = fabric();
        f.start_flow(spec(0, 1, 0.0));
        let done = f.advance_to(SimTime::secs(0.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished, SimTime::ZERO);
    }

    #[test]
    fn cancel_removes_flow_and_frees_bandwidth() {
        let mut f = fabric();
        let a = f.start_flow(spec(0, 1, 1.25));
        f.start_flow(spec(0, 2, 1.25));
        // Let them run 1 s at 0.625 GB/s each.
        let done = f.advance_to(SimTime::secs(1.0));
        assert!(done.is_empty());
        f.cancel_flow(a);
        // Flow b has 0.625 GB left, now at full rate: 0.5 s more.
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs() - 1.5).abs() < 1e-6);
        // Cancelling again (or a finished flow) is a no-op.
        f.cancel_flow(a);
    }

    #[test]
    fn drain_finishes_everything() {
        let mut f = fabric();
        for i in 0..3 {
            f.start_flow(spec(i, i + 4, 1.0));
        }
        let done = f.drain();
        assert_eq!(done.len(), 3);
        assert_eq!(f.active_flow_count(), 0);
        assert!(f.next_completion().is_none());
    }

    #[test]
    fn partial_advance_preserves_bytes() {
        let mut f = fabric();
        let id = f.start_flow(spec(0, 1, 1.25));
        f.advance_to(SimTime::secs(0.5));
        let rem = f.flow_remaining(id).unwrap();
        assert!((rem.as_gb() - 0.625).abs() < 1e-6);
    }

    #[test]
    fn class_utilization_tracks_core_usage() {
        let mut f = fabric();
        assert_eq!(f.class_utilization(), (0.0, 0.0));
        // One cross-rack flow at full rack-uplink speed for 1 s.
        f.start_flow(spec(0, 4, 1.25)); // rack uplink is 1.25 GB/s
        f.drain();
        let (edge, core) = f.class_utilization();
        assert!(core > 0.0 && core <= 1.0, "core={core}");
        assert!(
            edge > 0.0 && edge < core,
            "one of many NICs used: {edge} vs {core}"
        );
        // Drill-down: the uplink of rack 0 carried all 1.25 GB.
        let up = f.topology().rack_up(RackId(0));
        assert!((f.link_carried(up).as_gb() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn utilization_sampling_buckets_core_traffic() {
        let mut f = fabric();
        f.enable_utilization_sampling(SimTime::secs(0.5));
        // One cross-rack flow saturating the 1.25 GB/s uplink for 1 s,
        // then nothing.
        f.start_flow(spec(0, 4, 1.25));
        f.advance_to(SimTime::secs(2.0));
        let series = f.core_utilization_series();
        assert!(series.len() >= 2);
        // Total capacity = 3 racks x 1.25 GB/s; one uplink saturated
        // => 1/3 utilization during the first two buckets.
        assert!((series[0].1 - 1.0 / 3.0).abs() < 0.02, "{series:?}");
        assert!((series[1].1 - 1.0 / 3.0).abs() < 0.02);
        // Intra-rack traffic does not count.
        let mut g = fabric();
        g.enable_utilization_sampling(SimTime::secs(0.5));
        g.start_flow(spec(0, 1, 1.25));
        g.drain();
        assert!(g.core_utilization_series().iter().all(|&(_, u)| u == 0.0));
    }

    #[test]
    fn deterministic_repeat() {
        let run = || {
            let mut f = fabric();
            for i in 0..6 {
                f.start_flow(spec(i % 4, 4 + (i % 8), 0.7 + i as f64 * 0.13));
            }
            f.drain()
                .into_iter()
                .map(|c| (c.id, c.finished.0.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "bit-identical completion traces");
    }

    #[test]
    fn tracer_sees_flow_lifecycle() {
        use corral_trace::{MemTracer, TraceEvent};
        use std::sync::Arc;

        let mem = Arc::new(MemTracer::new(64));
        let mut f = fabric();
        f.set_tracer(mem.clone());
        f.start_flow(spec(0, 1, 0.5));
        f.start_ingress_flow(
            MachineId(2),
            Bytes::gb(0.25),
            FlowTag::infrastructure(FlowKind::Ingest),
            None,
        );
        f.drain();

        let evs = mem.events();
        let started: Vec<_> = evs
            .iter()
            .filter_map(|e| match &e.ev {
                TraceEvent::FlowStarted { class, .. } => Some(*class),
                _ => None,
            })
            .collect();
        let finished = evs
            .iter()
            .filter(|e| matches!(e.ev, TraceEvent::FlowFinished { .. }))
            .count();
        assert_eq!(
            started,
            vec![
                corral_trace::FlowClass::Shuffle,
                corral_trace::FlowClass::Ingest
            ]
        );
        assert_eq!(finished, 2);
    }

    #[test]
    fn stats_invariants_hold_with_cancellation() {
        let mut f = fabric();
        let a = f.start_flow(spec(0, 1, 0.5));
        f.start_flow(spec(0, 2, 0.5));
        f.advance_to(SimTime::secs(0.1));
        f.cancel_flow(a); // cancelled flows never complete
        f.drain(); // runs debug_validate internally on each harvest
        let s = f.stats();
        assert_eq!(s.flows_started, 2);
        assert_eq!(s.flows_completed, 1);
        assert!(s.flows_completed <= s.flows_started);
        assert!(s.cross_rack_bytes.0 <= s.network_bytes.0 + 1e-6);
        assert!(s.network_bytes.0 >= 0.0 && s.local_bytes.0 >= 0.0);
    }

    #[test]
    fn incremental_path_drives_fair_share() {
        let mut f = fabric();
        for i in 0..4 {
            f.start_flow(spec(i, 4 + i, 0.5));
        }
        f.drain();
        let s = f.stats();
        assert!(s.recomputes_incremental > 0, "{s:?}");
        assert_eq!(s.recomputes_full, 0, "{s:?}");
        assert_eq!(s.recomputes, s.recomputes_incremental, "{s:?}");
        assert!(s.dirty_flows > 0, "{s:?}");
    }

    #[test]
    fn varys_drives_the_coflow_incremental_path() {
        use crate::varys::VarysSebf;
        let mut f = Fabric::new(ClusterConfig::tiny_test(), Box::new(VarysSebf));
        for i in 0..3 {
            f.start_flow(spec(i, 4 + i, 0.4));
        }
        f.recompute_full(); // armed mid-run oracle pass
        f.drain();
        let s = f.stats();
        // First recompute is a cold-cache full (attributed to the
        // boundary counter); completions then ride the coflow-local path.
        assert!(s.recomputes_full_boundary >= 1, "{s:?}");
        assert_eq!(s.recomputes_full, s.recomputes_full_boundary, "{s:?}");
        assert!(s.recomputes_incremental > 0, "{s:?}");
        assert_eq!(
            s.recomputes,
            s.recomputes_full + s.recomputes_incremental,
            "{s:?}"
        );
        assert_eq!(s.flows_completed, 3, "{s:?}");
    }

    #[test]
    fn varys_background_change_forces_boundary_full() {
        use crate::varys::VarysSebf;
        let mut f = Fabric::new(ClusterConfig::tiny_test(), Box::new(VarysSebf));
        for i in 0..4 {
            f.start_flow(spec(i, 4 + i, 0.6));
        }
        f.advance_to(SimTime::secs(0.1));
        let before = f.stats().recomputes_full_boundary;
        f.set_rack_background(RackId(0), Bandwidth::gbps(4.0));
        f.drain();
        assert!(f.stats().recomputes_full_boundary > before, "{:?}", f.stats());
    }

    #[test]
    fn new_eager_forces_full_recomputes_with_identical_results() {
        use crate::varys::VarysSebf;
        let run = |eager: bool| {
            let mut f = if eager {
                Fabric::new_eager(ClusterConfig::tiny_test(), Box::new(VarysSebf))
            } else {
                Fabric::new(ClusterConfig::tiny_test(), Box::new(VarysSebf))
            };
            for i in 0..6 {
                let mut sp = spec(i % 4, 4 + (i % 8), 0.3 + 0.07 * i as f64);
                sp.coflow = Some(crate::flow::CoflowId((i % 2) as u64));
                f.start_flow(sp);
            }
            let done = f
                .drain()
                .into_iter()
                .map(|c| (c.id, c.finished.0.to_bits()))
                .collect::<Vec<_>>();
            (done, f.stats().recomputes_full, f.stats().recomputes_incremental)
        };
        let (done_e, full_e, inc_e) = run(true);
        let (done_i, _full_i, inc_i) = run(false);
        assert_eq!(done_e, done_i, "eager and coflow-incremental must agree");
        assert!(full_e > 0 && inc_e == 0, "forced-eager ran eager");
        assert!(inc_i > 0, "default mode ran incrementally");
    }

    #[test]
    fn varys_incremental_scratch_settles() {
        use crate::varys::VarysSebf;
        let mut f = Fabric::new(ClusterConfig::tiny_test(), Box::new(VarysSebf));
        // All flows admitted up front: the first (cold-cache) recompute
        // sizes every buffer; the completion churn that follows must not
        // allocate again.
        for i in 0..24 {
            let mut sp = spec(i % 4, 4 + (i % 8), 0.2 + 0.01 * i as f64);
            sp.coflow = Some(crate::flow::CoflowId((i % 4) as u64));
            f.start_flow(sp);
        }
        f.drain();
        let s = f.stats();
        assert!(s.recomputes_incremental > 0, "{s:?}");
        assert_eq!(s.scratch_grows, 1, "steady state must not allocate: {s:?}");
        assert_eq!(s.flows_completed, 24, "{s:?}");
    }

    #[test]
    fn oracle_validates_under_churn() {
        let mut f = fabric();
        f.set_full_oracle(true); // force on even in release builds
        let mut ids = Vec::new();
        for i in 0..8 {
            ids.push(f.start_flow(spec(i % 4, 4 + (i % 8), 0.4 + 0.1 * i as f64)));
        }
        f.advance_to(SimTime::secs(0.3));
        f.cancel_flow(ids[2]);
        f.set_rack_background(RackId(1), Bandwidth::gbps(3.0));
        f.advance_to(SimTime::secs(0.9));
        f.start_flow(spec(1, 9, 0.3));
        f.recompute_full(); // explicit mid-run oracle pass
        f.drain();
        // Reaching here without the oracle's bit-equality assert firing is
        // the test; sanity-check the path taken.
        assert!(f.stats().recomputes_incremental > 0);
    }

    #[test]
    fn flush_accounting_settles_partial_transfers() {
        let mut f = fabric();
        f.start_flow(spec(0, 4, 1.25)); // cross-rack at the 1.25 GB/s uplink
        f.advance_to(SimTime::secs(0.4));
        f.flush_accounting();
        let s = f.stats();
        assert!((s.network_bytes.as_gb() - 0.5).abs() < 1e-6, "{s:?}");
        assert!((s.cross_rack_bytes.as_gb() - 0.5).abs() < 1e-6, "{s:?}");
        // Flushing again moves nothing further.
        f.flush_accounting();
        assert!((f.stats().network_bytes.as_gb() - 0.5).abs() < 1e-6);
    }
}
