//! The network fabric: flow lifecycle, event-driven advancement, accounting.
//!
//! [`Fabric`] is co-simulated with the cluster engine: the engine starts
//! flows as tasks need data, asks the fabric for the time of the next flow
//! completion, and advances the fabric clock alongside its own event queue.
//! Between flow-set/capacity changes the fluid system evolves linearly, so
//! "advance" moves exact byte amounts and completions are computed in
//! closed form.

use crate::allocator::{AllocScratch, FlowTable, RateAllocator};
use crate::flow::{CoflowId, FlowKind, FlowSpec, FlowState, FlowTag};
use crate::link::LinkId;
use crate::stats::FabricStats;
use crate::topology::Topology;
use corral_model::{Bandwidth, Bytes, ClusterConfig, FlowId, RackId, SimTime};
use corral_trace::{probe, FlowClass, NullTracer, SharedTracer, TraceEvent};

/// Maps the fabric's [`FlowKind`] onto the dependency-free trace
/// vocabulary's [`FlowClass`].
fn flow_class(kind: FlowKind) -> FlowClass {
    match kind {
        FlowKind::InputRead => FlowClass::InputRead,
        FlowKind::Shuffle => FlowClass::Shuffle,
        FlowKind::OutputWrite => FlowClass::OutputWrite,
        FlowKind::Ingest => FlowClass::Ingest,
        FlowKind::Background => FlowClass::Background,
    }
}

/// A finished flow, reported by [`Fabric::advance_to`].
#[derive(Debug, Clone, Copy)]
pub struct CompletedFlow {
    /// The flow's id.
    pub id: FlowId,
    /// Its tracing tag.
    pub tag: FlowTag,
    /// Total bytes it carried.
    pub bytes: Bytes,
    /// Completion time.
    pub finished: SimTime,
}

/// Persistent buffers for [`Fabric::recompute`]: the CSR flow table handed
/// to the allocator plus its companion arrays. Cleared and refilled each
/// recompute; never shrunk, so the steady state performs no allocation.
#[derive(Debug, Default)]
struct RecomputeScratch {
    /// CSR prefix offsets (one per network flow, plus a trailing total).
    flow_off: Vec<u32>,
    /// Concatenated per-flow link paths.
    flow_links: Vec<LinkId>,
    /// Remaining bytes per network flow.
    remaining: Vec<f64>,
    /// Coflow membership per network flow.
    coflow: Vec<Option<CoflowId>>,
    /// `FlowId` of each network flow (row → id mapping).
    view_ids: Vec<FlowId>,
    /// Remaining bytes of the machine-local (empty-path) flows, in
    /// `active` order; lets the next-completion fold run entirely on
    /// dense arrays.
    local_remaining: Vec<f64>,
    /// Allocator output, one rate per network flow.
    rates: Vec<f64>,
    /// Allocator-side workspaces (max-min CSR, Varys grouping).
    alloc: AllocScratch,
}

impl RecomputeScratch {
    /// Total reserved capacity across every buffer, in elements. A flat
    /// reading across recomputes certifies the steady state allocates
    /// nothing (tracked by [`FabricStats::scratch_grows`]).
    fn footprint(&self) -> usize {
        self.flow_off.capacity()
            + self.flow_links.capacity()
            + self.remaining.capacity()
            + self.coflow.capacity()
            + self.view_ids.capacity()
            + self.local_remaining.capacity()
            + self.rates.capacity()
            + self.alloc.footprint()
    }
}

/// Flow-level network simulator for one cluster fabric.
pub struct Fabric {
    topo: Topology,
    allocator: Box<dyn RateAllocator>,
    /// Flow table indexed by `FlowId`; completed/cancelled slots are `None`.
    flows: Vec<Option<FlowState>>,
    /// Active flow ids, ascending (ids are allocated monotonically).
    /// Cancelled flows may linger as `None` slots until the next
    /// [`Fabric::recompute`] purges them in one `retain` pass.
    active: Vec<FlowId>,
    now: SimTime,
    /// Set when the flow set or link capacities changed since the last rate
    /// computation.
    dirty: bool,
    next_completion: SimTime,
    stats: FabricStats,
    /// Rate granted to machine-local (empty-path) transfers.
    local_rate: Bandwidth,
    /// Optional utilization sampling: bucket width and per-bucket core
    /// bytes (cross-rack traffic, counted once per flow).
    sampling: Option<(f64, Vec<f64>)>,
    /// Structured event sink (flow lifecycle).
    tracer: SharedTracer,
    /// Cached `tracer.enabled()` so the hot path is one branch.
    trace_on: bool,
    /// Reused recompute buffers (CSR table, rates, allocator workspaces).
    scratch: RecomputeScratch,
    /// `scratch.footprint()` after the previous recompute, to detect growth.
    scratch_footprint: usize,
}

impl Fabric {
    /// Builds a fabric for `cfg` with the given allocation policy.
    pub fn new(cfg: ClusterConfig, allocator: Box<dyn RateAllocator>) -> Self {
        let local_rate = cfg.nic_bandwidth * 2.0; // loopback: faster than NIC
        Fabric {
            topo: Topology::new(cfg),
            allocator,
            flows: Vec::new(),
            active: Vec::new(),
            now: SimTime::ZERO,
            dirty: false,
            next_completion: SimTime::INFINITY,
            stats: FabricStats::default(),
            local_rate,
            sampling: None,
            tracer: std::sync::Arc::new(NullTracer),
            trace_on: false,
            scratch: RecomputeScratch::default(),
            scratch_footprint: 0,
        }
    }

    /// Routes `FlowStarted` / `FlowFinished` events into `tracer`. The
    /// default [`NullTracer`] keeps the untraced path free.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.trace_on = tracer.enabled();
        self.tracer = tracer;
    }

    /// Enables per-bucket sampling of cross-rack (core) traffic; see
    /// [`Fabric::core_utilization_series`].
    pub fn enable_utilization_sampling(&mut self, bucket: SimTime) {
        assert!(bucket.0 > 0.0, "bucket must be positive");
        self.sampling = Some((bucket.0, Vec::new()));
    }

    /// The sampled core-utilization time series: `(bucket_start_s,
    /// fraction_of_aggregate_uplink_capacity)`. Empty unless
    /// [`Fabric::enable_utilization_sampling`] was called.
    pub fn core_utilization_series(&self) -> Vec<(f64, f64)> {
        let Some((bucket, ref bytes)) = self.sampling else {
            return Vec::new();
        };
        let cfg = self.topo.config();
        let cap = cfg.rack_core_bandwidth().0 * cfg.racks as f64 * bucket;
        bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * bucket, b / cap))
            .collect()
    }

    /// The topology the fabric runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current fabric clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic accounting so far.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Time-averaged utilization (carried bytes / capacity·elapsed) of each
    /// link class, as fractions in [0, 1]: `(machine links, rack core
    /// links)`. Returns zeros before any time has passed.
    pub fn class_utilization(&self) -> (f64, f64) {
        let elapsed = self.now.as_secs();
        if elapsed <= 0.0 {
            return (0.0, 0.0);
        }
        let mut edge_carried = 0.0;
        let mut edge_cap = 0.0;
        let mut core_carried = 0.0;
        let mut core_cap = 0.0;
        for l in self.topo.links() {
            if l.class.is_core() {
                core_carried += l.carried.0;
                core_cap += l.capacity.0;
            } else {
                edge_carried += l.carried.0;
                edge_cap += l.capacity.0;
            }
        }
        (
            edge_carried / (edge_cap * elapsed),
            core_carried / (core_cap * elapsed),
        )
    }

    /// Bytes carried so far by one directed link (utilization drill-down).
    pub fn link_carried(&self, link: LinkId) -> Bytes {
        self.topo.links()[link.index()].carried
    }

    /// The active allocation policy's name.
    pub fn allocator_name(&self) -> &'static str {
        self.allocator.name()
    }

    /// Number of in-flight flows.
    pub fn active_flow_count(&self) -> usize {
        // `active` may still hold flows cancelled since the last recompute
        // (they are purged lazily); count only live slots.
        self.active
            .iter()
            .filter(|id| self.flows[id.index()].is_some())
            .count()
    }

    /// Remaining bytes of a flow, or `None` if it already finished.
    pub fn flow_remaining(&self, id: FlowId) -> Option<Bytes> {
        self.flows
            .get(id.index())
            .and_then(|f| f.as_ref())
            .map(|f| f.remaining)
    }

    /// Starts an *ingress* flow: data arriving from outside the cluster
    /// (front-end upload feeds, a remote storage tier — §2 of the paper).
    /// The flow consumes only the destination-side links (the rack
    /// downlink and the destination NIC); the external source is assumed
    /// unconstrained. Ingress traffic is accounted separately
    /// ([`FabricStats::ingest_bytes`]) and does not count as cross-rack job
    /// traffic.
    pub fn start_ingress_flow(
        &mut self,
        dst: corral_model::MachineId,
        bytes: Bytes,
        tag: FlowTag,
        coflow: Option<crate::flow::CoflowId>,
    ) -> FlowId {
        let mut path = crate::topology::Path::new();
        path.push(self.topo.rack_down(self.topo.config().rack_of(dst)));
        path.push(self.topo.machine_down(dst));
        let id = FlowId(self.flows.len() as u64);
        self.flows.push(Some(FlowState {
            spec: FlowSpec {
                src: dst, // nominal; the source is external
                dst,
                bytes,
                tag,
                coflow,
            },
            path,
            remaining: bytes.clamp_non_negative(),
            cross_rack: false,
        }));
        self.active.push(id);
        self.stats.flows_started += 1;
        self.mark_dirty(probe::ProbeCounter::RecomputeFlowStart);
        if self.trace_on {
            self.tracer.record(
                self.now.as_secs(),
                TraceEvent::FlowStarted {
                    flow: id.0,
                    src: dst.0, // nominal: the external source has no id
                    dst: dst.0,
                    bytes: bytes.clamp_non_negative().0,
                    class: flow_class(tag.kind),
                    job: tag.job.map(|j| j.0),
                },
            );
        }
        id
    }

    /// Starts a flow; returns its id. Zero-byte flows are legal and complete
    /// at the next `advance_to` call.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        debug_assert!(spec.bytes.0 >= 0.0, "negative flow size");
        let path = self.topo.path(spec.src, spec.dst);
        let cross_rack = self.topo.crosses_core(spec.src, spec.dst);
        let id = FlowId(self.flows.len() as u64);
        self.flows.push(Some(FlowState {
            spec,
            path,
            remaining: spec.bytes.clamp_non_negative(),
            cross_rack,
        }));
        self.active.push(id);
        self.stats.flows_started += 1;
        self.mark_dirty(probe::ProbeCounter::RecomputeFlowStart);
        if self.trace_on {
            self.tracer.record(
                self.now.as_secs(),
                TraceEvent::FlowStarted {
                    flow: id.0,
                    src: spec.src.0,
                    dst: spec.dst.0,
                    bytes: spec.bytes.clamp_non_negative().0,
                    class: flow_class(spec.tag.kind),
                    job: spec.tag.job.map(|j| j.0),
                },
            );
        }
        id
    }

    /// Cancels an in-flight flow (no completion is reported). Cancelling a
    /// flow that already finished is a no-op.
    ///
    /// Removal from the active list is deferred: the slot is emptied here
    /// and the id is dropped by the next [`Fabric::recompute`]'s single
    /// `retain` pass, so a batch of cancellations (e.g. speculation kills)
    /// costs one O(n) sweep instead of one O(n) `remove` each.
    pub fn cancel_flow(&mut self, id: FlowId) {
        if let Some(slot) = self.flows.get_mut(id.index()) {
            if slot.take().is_some() {
                self.mark_dirty(probe::ProbeCounter::RecomputeFlowCancel);
            }
        }
    }

    /// Sets the background reservation on one directed link.
    pub fn set_background(&mut self, link: LinkId, bw: Bandwidth) {
        self.topo.links_mut()[link.index()].background = bw;
        self.mark_dirty(probe::ProbeCounter::RecomputeBackground);
    }

    /// Sets the background reservation on both core links of `rack`.
    pub fn set_rack_background(&mut self, rack: RackId, bw: Bandwidth) {
        let up = self.topo.rack_up(rack);
        let down = self.topo.rack_down(rack);
        self.set_background(up, bw);
        self.set_background(down, bw);
    }

    /// Time of the next flow completion, if any flow will ever complete
    /// under current rates.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        if self.dirty {
            self.recompute();
        }
        self.next_completion
            .is_finite()
            .then_some(self.next_completion)
    }

    /// Advances the fabric clock to `t`, transferring bytes and collecting
    /// every flow that completes at or before `t` (in completion order).
    ///
    /// Convenience wrapper over [`Fabric::advance_collect`] that allocates
    /// a fresh `Vec` per call; hot loops should hold their own buffer and
    /// call `advance_collect` directly.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current fabric time.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<CompletedFlow> {
        let mut completed = Vec::new();
        self.advance_collect(t, &mut completed);
        completed
    }

    /// Allocation-free variant of [`Fabric::advance_to`]: completions are
    /// *appended* to `out` (which is not cleared), so a caller-owned buffer
    /// can be reused across events.
    ///
    /// # Panics
    /// Panics if `t` is earlier than the current fabric time.
    pub fn advance_collect(&mut self, t: SimTime, out: &mut Vec<CompletedFlow>) {
        assert!(
            t.0 >= self.now.0 - 1e-9,
            "fabric cannot move backwards: {} < {}",
            t,
            self.now
        );
        let t = t.max(self.now);
        loop {
            if self.dirty {
                self.recompute();
            }
            if self.next_completion.0 <= t.0 {
                let tc = self.next_completion.max(self.now);
                self.step_to_completion(tc, out);
            } else {
                self.move_bytes(t - self.now);
                self.now = t;
                break;
            }
        }
    }

    /// Runs the fabric until every active flow with a positive rate has
    /// completed; returns all completions. Flows pinned at rate zero (fully
    /// backgrounded links) are left in place.
    pub fn drain(&mut self) -> Vec<CompletedFlow> {
        let mut out = Vec::new();
        self.drain_collect(&mut out);
        out
    }

    /// Allocation-free variant of [`Fabric::drain`]: completions are
    /// appended to `out`.
    pub fn drain_collect(&mut self, out: &mut Vec<CompletedFlow>) {
        while let Some(tc) = self.next_completion() {
            self.advance_collect(tc, out);
        }
    }

    // -- internals ----------------------------------------------------------

    /// Recomputes flow rates via the allocator and caches the next
    /// completion time. Steady-state allocation-free: the flow table is
    /// rebuilt into persistent CSR buffers and the allocator works out of
    /// reusable scratch (growth is tracked by
    /// [`FabricStats::scratch_grows`]).
    fn recompute(&mut self) {
        let _probe = probe::span(probe::SpanKind::FabricRecompute);
        self.dirty = false;
        self.stats.recomputes += 1;

        // One pass over `active`: purge flows cancelled since the last
        // recompute (preserving the ascending-FlowId order determinism
        // relies on) while building the CSR table of network flows in that
        // same order — the order the legacy `Vec<FlowView>` slice used.
        // Machine-local (empty-path) flows stay active but are the
        // fabric's problem, not the allocator's.
        let flows = &self.flows;
        let scratch = &mut self.scratch;
        scratch.flow_off.clear();
        scratch.flow_links.clear();
        scratch.remaining.clear();
        scratch.coflow.clear();
        scratch.view_ids.clear();
        scratch.local_remaining.clear();
        scratch.flow_off.push(0);
        self.active.retain(|&id| {
            let Some(f) = flows[id.index()].as_ref() else {
                return false;
            };
            if !f.path.is_empty() {
                scratch.flow_links.extend_from_slice(f.path.as_slice());
                scratch.flow_off.push(scratch.flow_links.len() as u32);
                scratch.remaining.push(f.remaining.0);
                scratch.coflow.push(f.spec.coflow);
                scratch.view_ids.push(id);
            } else {
                scratch.local_remaining.push(f.remaining.0);
            }
            true
        });
        scratch.rates.clear();
        scratch.rates.resize(scratch.view_ids.len(), 0.0);
        let table = FlowTable {
            flow_off: &scratch.flow_off,
            flow_links: &scratch.flow_links,
            remaining: &scratch.remaining,
            coflow: &scratch.coflow,
        };
        {
            let _probe = probe::span(probe::SpanKind::FabricMaxMin);
            self.allocator.allocate_table(
                self.topo.links(),
                &table,
                &mut scratch.rates,
                &mut scratch.alloc,
            );
        }
        let rounds = scratch.alloc.last_rounds();
        self.stats.maxmin_rounds += rounds;
        probe::count(probe::ProbeCounter::MaxMinRounds, rounds);
        let footprint = scratch.footprint();
        if footprint != self.scratch_footprint {
            self.scratch_footprint = footprint;
            self.stats.scratch_grows += 1;
            probe::count(probe::ProbeCounter::FabricScratchGrow, 1);
        }

        // Fold the next completion time straight from the dense scratch
        // arrays — rates are *not* written back to the scattered flow
        // table; `move_bytes` / `step_to_completion` read them through a
        // running cursor instead (`active` cannot change between a
        // recompute and the next byte movement without setting `dirty`).
        // Each flow's `tc` uses the same expressions as the old
        // per-flow-table pass, and a `min` fold over the same values is
        // order-insensitive (no NaNs arise), so the cached
        // `next_completion` is bit-identical.
        let local_rate = self.local_rate;
        let mut next = SimTime::INFINITY;
        let scratch = &self.scratch;
        for (vi, &raw) in scratch.rates.iter().enumerate() {
            let remaining = Bytes(scratch.remaining[vi]);
            let rate = Bandwidth(raw);
            let tc = if remaining.is_negligible() {
                self.now
            } else if rate.is_negligible() {
                SimTime::INFINITY
            } else {
                self.now + remaining / rate
            };
            next = next.min(tc);
        }
        for &rem in &scratch.local_remaining {
            let remaining = Bytes(rem);
            let tc = if remaining.is_negligible() {
                self.now
            } else if local_rate.is_negligible() {
                SimTime::INFINITY
            } else {
                self.now + remaining / local_rate
            };
            next = next.min(tc);
        }
        self.next_completion = next;
    }

    /// Transfers `dt` worth of bytes on every active flow and accounts them.
    ///
    /// Flow rates are read from the recompute scratch through a running
    /// cursor: non-local flows appear in `active` order there, and the
    /// active list cannot have changed since the last recompute (any
    /// mutation sets `dirty`, and every caller recomputes first).
    fn move_bytes(&mut self, dt: SimTime) {
        if dt.0 <= 0.0 {
            return;
        }
        let local_rate = self.local_rate;
        let mut vi = 0usize;
        for &id in &self.active {
            let f = self.flows[id.index()].as_mut().unwrap();
            let rate = if f.path.is_empty() {
                local_rate
            } else {
                let r = Bandwidth(self.scratch.rates[vi]);
                vi += 1;
                r
            };
            let delta = (rate * dt).min(f.remaining);
            if delta.0 <= 0.0 {
                continue;
            }
            f.remaining = (f.remaining - delta).clamp_non_negative();
            let local = f.path.is_empty();
            let cross = f.cross_rack;
            let job = f.spec.tag.job;
            let ingest = f.spec.tag.kind == crate::flow::FlowKind::Ingest;
            // Link byte accounting (per directed link).
            for l in f.path.as_slice() {
                self.topo.links_mut()[l.index()].carried += delta;
            }
            if ingest {
                self.stats.record_ingest(delta);
            } else {
                self.stats.record_transfer(job, delta, cross, local);
            }
            if cross && !ingest {
                if let Some((bucket, ref mut series)) = self.sampling {
                    // Spread the transferred bytes across every bucket the
                    // interval [now, now + dt) overlaps.
                    let t0 = self.now.0;
                    let t1 = t0 + dt.0;
                    let first = (t0 / bucket) as usize;
                    let last = (t1 / bucket) as usize;
                    if series.len() <= last {
                        series.resize(last + 1, 0.0);
                    }
                    for (b, slot) in series.iter_mut().enumerate().take(last + 1).skip(first) {
                        let lo = (b as f64 * bucket).max(t0);
                        let hi = ((b + 1) as f64 * bucket).min(t1);
                        if hi > lo {
                            *slot += delta.0 * (hi - lo) / dt.0;
                        }
                    }
                }
            }
        }
    }

    /// Emits one completion: empties the flow's slot, traces, accounts, and
    /// appends to `out`. The caller removes the id from `active`.
    fn emit_completion(&mut self, id: FlowId, now: SimTime, out: &mut Vec<CompletedFlow>) {
        let f = self.flows[id.index()].take().unwrap();
        self.stats.flows_completed += 1;
        if self.trace_on {
            self.tracer.record(
                now.as_secs(),
                TraceEvent::FlowFinished {
                    flow: id.0,
                    bytes: f.spec.bytes.clamp_non_negative().0,
                },
            );
        }
        out.push(CompletedFlow {
            id,
            tag: f.spec.tag,
            bytes: f.spec.bytes,
            finished: now,
        });
    }

    /// One completion step: advances the clock to `tc`, transferring bytes
    /// and removing flows whose remaining volume is then negligible
    /// (reported as completed at `tc`). Byte movement and harvesting each
    /// visit every active flow, so they are fused into a single `retain`
    /// pass (no per-removal O(n) shifts) — halving the scattered flow-table
    /// reads per event. Per-flow transfer amounts use the same expressions
    /// as [`Fabric::move_bytes`], the accounting totals are order-free
    /// sums, and the ascending-FlowId scan order — and hence the completion
    /// order — is identical to the old move-then-harvest pair of passes.
    fn step_to_completion(&mut self, tc: SimTime, out: &mut Vec<CompletedFlow>) {
        let dt = tc - self.now;
        let move_dt = (dt.0 > 0.0).then_some(dt);
        let before = out.len();
        let local_rate = self.local_rate;
        let mut vi = 0usize;
        let mut active = std::mem::take(&mut self.active);
        active.retain(|&id| {
            let Some(f) = self.flows[id.index()].as_mut() else {
                // Cancelled since the last recompute; drop silently. (A
                // cancelled flow was never in the rate scratch either, so
                // the cursor stays aligned.)
                return false;
            };
            // Rates live in the recompute scratch (see `move_bytes`); the
            // cursor must advance for every non-local flow even when no
            // bytes move.
            let rate = if f.path.is_empty() {
                local_rate
            } else {
                let r = Bandwidth(self.scratch.rates[vi]);
                vi += 1;
                r
            };
            if let Some(dt) = move_dt {
                let delta = (rate * dt).min(f.remaining);
                if delta.0 > 0.0 {
                    f.remaining = (f.remaining - delta).clamp_non_negative();
                    let local = f.path.is_empty();
                    let cross = f.cross_rack;
                    let job = f.spec.tag.job;
                    let ingest = f.spec.tag.kind == crate::flow::FlowKind::Ingest;
                    // Link byte accounting (per directed link).
                    for l in f.path.as_slice() {
                        self.topo.links_mut()[l.index()].carried += delta;
                    }
                    if ingest {
                        self.stats.record_ingest(delta);
                    } else {
                        self.stats.record_transfer(job, delta, cross, local);
                    }
                    if cross && !ingest {
                        if let Some((bucket, ref mut series)) = self.sampling {
                            // Spread the transferred bytes across every
                            // bucket the interval [now, now + dt) overlaps.
                            let t0 = self.now.0;
                            let t1 = t0 + dt.0;
                            let first = (t0 / bucket) as usize;
                            let last = (t1 / bucket) as usize;
                            if series.len() <= last {
                                series.resize(last + 1, 0.0);
                            }
                            for (b, slot) in
                                series.iter_mut().enumerate().take(last + 1).skip(first)
                            {
                                let lo = (b as f64 * bucket).max(t0);
                                let hi = ((b + 1) as f64 * bucket).min(t1);
                                if hi > lo {
                                    *slot += delta.0 * (hi - lo) / dt.0;
                                }
                            }
                        }
                    }
                }
            }
            if !self.flows[id.index()]
                .as_ref()
                .unwrap()
                .remaining
                .is_negligible()
            {
                return true;
            }
            self.emit_completion(id, tc, out);
            false
        });
        self.active = active;
        self.now = tc;
        let now = tc;
        if out.len() == before {
            // We were called because next_completion fired, yet no flow hit
            // zero — pure floating point drift. Force-complete the closest
            // flow to guarantee progress. (`min_by` keeps the *last* minimal
            // element, matching the previous implementation.)
            if let Some(&id) = self.active.iter().min_by(|a, b| {
                let fa = self.flows[a.index()].as_ref().unwrap().remaining.0;
                let fb = self.flows[b.index()].as_ref().unwrap().remaining.0;
                fa.total_cmp(&fb)
            }) {
                self.emit_completion(id, now, out);
                self.active.retain(|&x| x != id);
            }
        }
        self.stats.debug_validate();
        self.mark_dirty(probe::ProbeCounter::RecomputeCompletion);
    }

    /// Marks the rate table stale, attributing the *first* cause since
    /// the last recompute to a probe counter (observability only; with
    /// probes disabled this is exactly `self.dirty = true`).
    #[inline]
    fn mark_dirty(&mut self, cause: probe::ProbeCounter) {
        if !self.dirty {
            probe::count(cause, 1);
        }
        self.dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocator::FairShare;
    use crate::flow::{FlowKind, FlowTag};
    use corral_model::MachineId;

    fn fabric() -> Fabric {
        // tiny_test: 3 racks x 4 machines, 10G NICs, 4:1 oversub
        // => rack core links 10 Gbps (= 1.25 GB/s).
        Fabric::new(ClusterConfig::tiny_test(), Box::new(FairShare))
    }

    fn spec(src: u32, dst: u32, gb: f64) -> FlowSpec {
        FlowSpec {
            src: MachineId(src),
            dst: MachineId(dst),
            bytes: Bytes::gb(gb),
            tag: FlowTag::infrastructure(FlowKind::Shuffle),
            coflow: None,
        }
    }

    #[test]
    fn single_intra_rack_flow_runs_at_nic_speed() {
        let mut f = fabric();
        f.start_flow(spec(0, 1, 1.25)); // 1.25 GB over 1.25 GB/s = 1 s
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs() - 1.0).abs() < 1e-6);
        assert_eq!(f.active_flow_count(), 0);
    }

    #[test]
    fn two_flows_share_a_nic() {
        let mut f = fabric();
        // Both flows leave machine 0: share its 1.25 GB/s uplink.
        f.start_flow(spec(0, 1, 1.25));
        f.start_flow(spec(0, 2, 1.25));
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 2);
        assert!((done[0].finished.as_secs() - 2.0).abs() < 1e-6);
        assert!((done[1].finished.as_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_rack_flows_bottleneck_on_rack_uplink() {
        let mut f = fabric();
        // 4 flows from 4 distinct machines in rack 0 to 4 machines in rack 1.
        // Each NIC could do 1.25 GB/s but the rack uplink is 1.25 GB/s total
        // => each flow gets 0.3125 GB/s.
        for i in 0..4 {
            f.start_flow(spec(i, 4 + i, 0.3125));
        }
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 4);
        for c in &done {
            assert!((c.finished.as_secs() - 1.0).abs() < 1e-6);
        }
        // All bytes crossed the core.
        assert!((f.stats().cross_rack_bytes.as_gb() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn completion_frees_bandwidth_for_remaining_flows() {
        let mut f = fabric();
        // Two flows share machine 0's NIC; the short one finishes, then the
        // long one speeds up. 1.25+2.5 GB total on a 1.25 GB/s link:
        // short: 1.25 GB at 0.625 => 2 s. long: 1.25 GB by t=2 (0.625 rate),
        // remaining 1.25 GB at full 1.25 GB/s => done at t=3.
        f.start_flow(spec(0, 1, 1.25));
        f.start_flow(spec(0, 2, 2.5));
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 2);
        assert!((done[0].finished.as_secs() - 2.0).abs() < 1e-6);
        assert!((done[1].finished.as_secs() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn background_reduces_core_capacity() {
        let mut f = fabric();
        // Reserve 50% of rack 0's uplink.
        f.set_rack_background(RackId(0), Bandwidth::gbps(5.0));
        f.start_flow(spec(0, 4, 0.625)); // cross-rack, 0.625 GB
        let done = f.advance_to(SimTime::secs(10.0));
        // 5 Gbps left = 0.625 GB/s => 1 s.
        assert!((done[0].finished.as_secs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn machine_local_flow_completes_fast_and_counts_local() {
        let mut f = fabric();
        f.start_flow(spec(3, 3, 2.5)); // local: 2x NIC = 2.5 GB/s => 1 s
        let done = f.advance_to(SimTime::secs(5.0));
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs() - 1.0).abs() < 1e-6);
        assert_eq!(f.stats().network_bytes, Bytes::ZERO);
        assert!((f.stats().local_bytes.as_gb() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut f = fabric();
        f.start_flow(spec(0, 1, 0.0));
        let done = f.advance_to(SimTime::secs(0.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished, SimTime::ZERO);
    }

    #[test]
    fn cancel_removes_flow_and_frees_bandwidth() {
        let mut f = fabric();
        let a = f.start_flow(spec(0, 1, 1.25));
        f.start_flow(spec(0, 2, 1.25));
        // Let them run 1 s at 0.625 GB/s each.
        let done = f.advance_to(SimTime::secs(1.0));
        assert!(done.is_empty());
        f.cancel_flow(a);
        // Flow b has 0.625 GB left, now at full rate: 0.5 s more.
        let done = f.advance_to(SimTime::secs(10.0));
        assert_eq!(done.len(), 1);
        assert!((done[0].finished.as_secs() - 1.5).abs() < 1e-6);
        // Cancelling again (or a finished flow) is a no-op.
        f.cancel_flow(a);
    }

    #[test]
    fn drain_finishes_everything() {
        let mut f = fabric();
        for i in 0..3 {
            f.start_flow(spec(i, i + 4, 1.0));
        }
        let done = f.drain();
        assert_eq!(done.len(), 3);
        assert_eq!(f.active_flow_count(), 0);
        assert!(f.next_completion().is_none());
    }

    #[test]
    fn partial_advance_preserves_bytes() {
        let mut f = fabric();
        let id = f.start_flow(spec(0, 1, 1.25));
        f.advance_to(SimTime::secs(0.5));
        let rem = f.flow_remaining(id).unwrap();
        assert!((rem.as_gb() - 0.625).abs() < 1e-6);
    }

    #[test]
    fn class_utilization_tracks_core_usage() {
        let mut f = fabric();
        assert_eq!(f.class_utilization(), (0.0, 0.0));
        // One cross-rack flow at full rack-uplink speed for 1 s.
        f.start_flow(spec(0, 4, 1.25)); // rack uplink is 1.25 GB/s
        f.drain();
        let (edge, core) = f.class_utilization();
        assert!(core > 0.0 && core <= 1.0, "core={core}");
        assert!(
            edge > 0.0 && edge < core,
            "one of many NICs used: {edge} vs {core}"
        );
        // Drill-down: the uplink of rack 0 carried all 1.25 GB.
        let up = f.topology().rack_up(RackId(0));
        assert!((f.link_carried(up).as_gb() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn utilization_sampling_buckets_core_traffic() {
        let mut f = fabric();
        f.enable_utilization_sampling(SimTime::secs(0.5));
        // One cross-rack flow saturating the 1.25 GB/s uplink for 1 s,
        // then nothing.
        f.start_flow(spec(0, 4, 1.25));
        f.advance_to(SimTime::secs(2.0));
        let series = f.core_utilization_series();
        assert!(series.len() >= 2);
        // Total capacity = 3 racks x 1.25 GB/s; one uplink saturated
        // => 1/3 utilization during the first two buckets.
        assert!((series[0].1 - 1.0 / 3.0).abs() < 0.02, "{series:?}");
        assert!((series[1].1 - 1.0 / 3.0).abs() < 0.02);
        // Intra-rack traffic does not count.
        let mut g = fabric();
        g.enable_utilization_sampling(SimTime::secs(0.5));
        g.start_flow(spec(0, 1, 1.25));
        g.drain();
        assert!(g.core_utilization_series().iter().all(|&(_, u)| u == 0.0));
    }

    #[test]
    fn deterministic_repeat() {
        let run = || {
            let mut f = fabric();
            for i in 0..6 {
                f.start_flow(spec(i % 4, 4 + (i % 8), 0.7 + i as f64 * 0.13));
            }
            f.drain()
                .into_iter()
                .map(|c| (c.id, c.finished.0.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "bit-identical completion traces");
    }

    #[test]
    fn tracer_sees_flow_lifecycle() {
        use corral_trace::{MemTracer, TraceEvent};
        use std::sync::Arc;

        let mem = Arc::new(MemTracer::new(64));
        let mut f = fabric();
        f.set_tracer(mem.clone());
        f.start_flow(spec(0, 1, 0.5));
        f.start_ingress_flow(
            MachineId(2),
            Bytes::gb(0.25),
            FlowTag::infrastructure(FlowKind::Ingest),
            None,
        );
        f.drain();

        let evs = mem.events();
        let started: Vec<_> = evs
            .iter()
            .filter_map(|e| match &e.ev {
                TraceEvent::FlowStarted { class, .. } => Some(*class),
                _ => None,
            })
            .collect();
        let finished = evs
            .iter()
            .filter(|e| matches!(e.ev, TraceEvent::FlowFinished { .. }))
            .count();
        assert_eq!(
            started,
            vec![
                corral_trace::FlowClass::Shuffle,
                corral_trace::FlowClass::Ingest
            ]
        );
        assert_eq!(finished, 2);
    }

    #[test]
    fn stats_invariants_hold_with_cancellation() {
        let mut f = fabric();
        let a = f.start_flow(spec(0, 1, 0.5));
        f.start_flow(spec(0, 2, 0.5));
        f.advance_to(SimTime::secs(0.1));
        f.cancel_flow(a); // cancelled flows never complete
        f.drain(); // runs debug_validate internally on each harvest
        let s = f.stats();
        assert_eq!(s.flows_started, 2);
        assert_eq!(s.flows_completed, 1);
        assert!(s.flows_completed <= s.flows_started);
        assert!(s.cross_rack_bytes.0 <= s.network_bytes.0 + 1e-6);
        assert!(s.network_bytes.0 >= 0.0 && s.local_bytes.0 >= 0.0);
    }
}
