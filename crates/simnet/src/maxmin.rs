//! Progressive-filling max-min fair rate allocation.
//!
//! This is the textbook water-filling algorithm: all flows' rates grow at a
//! common level λ; when a link saturates, the flows crossing it are frozen
//! at the current level and the rest keep growing. It terminates after at
//! most `L` rounds (each round saturates at least one link) and produces the
//! unique max-min fair allocation. The Corral paper's simulator uses exactly
//! this as its TCP stand-in (§6.6: "a max-min fair bandwidth allocation
//! mechanism to emulate TCP").

use crate::link::LinkId;

/// Relative tolerance used when deciding that a link has saturated.
const EPS: f64 = 1e-9;

/// Reusable workspace for [`max_min_rates_csr`]: flat CSR-style link→flow
/// index arrays plus the per-link/per-flow progressive-filling state.
///
/// All buffers are `clear()`-ed and refilled on every call, so after a few
/// warm-up calls at peak problem size the allocator performs **zero heap
/// allocations** per invocation — the capacities plateau and every call
/// runs entirely inside the retained buffers. [`MaxMinScratch::footprint`]
/// exposes the summed capacities so callers (the fabric) can count
/// steady-state growth events.
#[derive(Debug, Default)]
pub struct MaxMinScratch {
    /// CSR offsets: flows crossing link `l` are
    /// `link_flows[link_off[l]..link_off[l + 1]]`.
    link_off: Vec<u32>,
    /// CSR payload: flow indices, grouped by link, ascending within a link.
    link_flows: Vec<u32>,
    /// Per-link fill cursor used while building the CSR.
    cursor: Vec<u32>,
    /// Number of still-growing flows crossing each link.
    unfrozen_on: Vec<u32>,
    /// Rate already committed to frozen flows on each link.
    frozen_load: Vec<f64>,
    /// Per-flow frozen flag.
    frozen: Vec<bool>,
    /// Links that still carry unfrozen flows.
    active: Vec<u32>,
    /// Freeze rounds taken by the most recent call.
    rounds: u64,
}

impl MaxMinScratch {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Freeze rounds (saturation iterations) of the most recent call.
    pub fn last_rounds(&self) -> u64 {
        self.rounds
    }

    /// Zeroes the round counter. Callers that dispatch to kernels which
    /// may not touch the scratch (the reference path) reset first so
    /// `last_rounds` never reports a stale previous solve.
    pub fn reset_rounds(&mut self) {
        self.rounds = 0;
    }

    /// Summed capacity of all retained buffers, in elements. Constant
    /// across calls once the workspace has warmed up; a change means a
    /// reallocation happened.
    pub fn footprint(&self) -> usize {
        self.link_off.capacity()
            + self.link_flows.capacity()
            + self.cursor.capacity()
            + self.unfrozen_on.capacity()
            + self.frozen_load.capacity()
            + self.frozen.capacity()
            + self.active.capacity()
    }
}

/// Allocation-free variant of [`max_min_rates_into`] over a flattened flow
/// table: flow `f`'s path is `flow_links[flow_off[f]..flow_off[f + 1]]`.
///
/// Produces bit-identical rates to the reference implementation (asserted
/// by the randomized property test below): the progressive-filling rounds
/// visit links and freeze flows in exactly the same order, with the same
/// floating-point operation sequence — only the membership bookkeeping
/// changed from per-link `Vec<Vec<u32>>` lists (allocated and cloned per
/// call) to one retained CSR built with two passes over the flow table.
pub fn max_min_rates_csr(
    capacity: &[f64],
    flow_off: &[u32],
    flow_links: &[LinkId],
    rates: &mut [f64],
    ws: &mut MaxMinScratch,
) {
    let nl = capacity.len();
    let nf = rates.len();
    debug_assert_eq!(flow_off.len(), nf + 1);
    let MaxMinScratch {
        link_off,
        link_flows,
        cursor,
        unfrozen_on,
        frozen_load,
        frozen,
        active,
        rounds,
    } = ws;
    *rounds = 0;

    // Pass 1: per-link degrees (and the empty-path short circuit).
    unfrozen_on.clear();
    unfrozen_on.resize(nl, 0);
    frozen_load.clear();
    frozen_load.resize(nl, 0.0);
    frozen.clear();
    frozen.resize(nf, false);
    let mut n_unfrozen = 0usize;
    for f in 0..nf {
        let path = &flow_links[flow_off[f] as usize..flow_off[f + 1] as usize];
        if path.is_empty() {
            rates[f] = f64::INFINITY;
            frozen[f] = true;
            continue;
        }
        n_unfrozen += 1;
        for l in path {
            debug_assert!(l.index() < nl, "path references unknown link");
            unfrozen_on[l.index()] += 1;
        }
    }

    // Pass 2: prefix-sum offsets, then scatter flow indices. Flows are
    // visited in ascending order, so each link's CSR slice lists its
    // member flows ascending — the same order the reference's per-link
    // membership `Vec`s accumulate.
    link_off.clear();
    link_off.reserve(nl + 1);
    link_off.push(0);
    let mut acc = 0u32;
    for &n in unfrozen_on.iter().take(nl) {
        acc += n;
        link_off.push(acc);
    }
    link_flows.clear();
    link_flows.resize(acc as usize, 0);
    cursor.clear();
    cursor.extend_from_slice(&link_off[..nl]);
    for f in 0..nf {
        if frozen[f] {
            continue; // empty path
        }
        for l in &flow_links[flow_off[f] as usize..flow_off[f + 1] as usize] {
            let c = &mut cursor[l.index()];
            link_flows[*c as usize] = f as u32;
            *c += 1;
        }
    }

    // Only links that actually carry unfrozen flows participate.
    active.clear();
    active.extend((0..nl as u32).filter(|&l| unfrozen_on[l as usize] > 0));

    let mut level = 0.0_f64;
    while n_unfrozen > 0 {
        *rounds += 1;
        // The next saturation point: the smallest level at which some link
        // with unfrozen flows runs out of headroom. Dropping fully-frozen
        // links and scanning for the minimum are fused into one pass; the
        // retained links — and hence the delta min-fold sequence — are the
        // same ascending set the two-pass version visited.
        let mut best = f64::INFINITY;
        active.retain(|&l| {
            let l = l as usize;
            if unfrozen_on[l] == 0 {
                return false;
            }
            let headroom = capacity[l] - frozen_load[l] - unfrozen_on[l] as f64 * level;
            let delta = (headroom / unfrozen_on[l] as f64).max(0.0);
            if delta < best {
                best = delta;
            }
            true
        });
        if !best.is_finite() {
            break;
        }
        level += best;

        // Freeze every unfrozen flow crossing a link that is now saturated.
        // The CSR slice is immutable during the sweep (freezing only mutates
        // the per-link counters), so no membership copy is needed — this is
        // where the reference clones `members[l]` every round.
        let tol = EPS * level.max(1.0);
        let mut froze_any = false;
        for &l in active.iter() {
            let l = l as usize;
            if unfrozen_on[l] == 0 {
                continue;
            }
            let headroom = capacity[l] - frozen_load[l] - unfrozen_on[l] as f64 * level;
            if headroom <= tol {
                for &f in &link_flows[link_off[l] as usize..link_off[l + 1] as usize] {
                    let f = f as usize;
                    if frozen[f] {
                        continue;
                    }
                    frozen[f] = true;
                    froze_any = true;
                    n_unfrozen -= 1;
                    rates[f] = level;
                    for ll in &flow_links[flow_off[f] as usize..flow_off[f + 1] as usize] {
                        let ll = ll.index();
                        unfrozen_on[ll] -= 1;
                        frozen_load[ll] += level;
                    }
                }
            }
        }
        if !froze_any {
            // Numerical stall guard: freeze everything at the current level.
            for f in 0..nf {
                if !frozen[f] {
                    frozen[f] = true;
                    rates[f] = level;
                    n_unfrozen -= 1;
                }
            }
        }
    }
}

/// Computes max-min fair rates.
///
/// * `capacity[l]` — available capacity of link `l` (bytes/sec); must be
///   non-negative (zero-capacity links pin their flows to rate 0).
/// * `paths[f]` — the directed links flow `f` traverses. A flow with an
///   empty path is unconstrained and gets rate `f64::INFINITY`; callers are
///   expected to clamp (the fabric handles machine-local flows separately).
///
/// Returns one rate per flow, in `paths` order.
///
/// ```
/// use corral_simnet::maxmin::max_min_rates;
/// use corral_simnet::LinkId;
///
/// // Two flows share link 0 (cap 10); one continues over link 1 (cap 3).
/// let caps = [10.0, 3.0];
/// let p0 = [LinkId(0), LinkId(1)];
/// let p1 = [LinkId(0)];
/// let rates = max_min_rates(&caps, &[&p0, &p1]);
/// assert!((rates[0] - 3.0).abs() < 1e-9);  // bottlenecked by link 1
/// assert!((rates[1] - 7.0).abs() < 1e-9);  // takes the rest of link 0
/// ```
pub fn max_min_rates(capacity: &[f64], paths: &[&[LinkId]]) -> Vec<f64> {
    let mut rates = vec![0.0; paths.len()];
    max_min_rates_into(capacity, paths, &mut rates);
    rates
}

/// Allocation-reusing variant of [`max_min_rates`]; `rates` must have one
/// entry per flow and is fully overwritten.
///
/// This is the *reference* implementation: it allocates per-link membership
/// `Vec`s on every call and clones them on every freeze round. The fabric's
/// hot path uses [`max_min_rates_csr`] instead; this version is retained as
/// the oracle the randomized property test (and the `fabricbench`
/// before/after measurement via `ReferenceFairShare`) compares against.
pub fn max_min_rates_into(capacity: &[f64], paths: &[&[LinkId]], rates: &mut [f64]) {
    assert_eq!(rates.len(), paths.len());
    let nl = capacity.len();
    let nf = paths.len();

    // Per-link membership lists and unfrozen counts.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); nl];
    let mut unfrozen_on: Vec<u32> = vec![0; nl];
    let mut frozen_load: Vec<f64> = vec![0.0; nl];
    let mut frozen: Vec<bool> = vec![false; nf];
    let mut n_unfrozen = 0usize;

    for (f, path) in paths.iter().enumerate() {
        if path.is_empty() {
            rates[f] = f64::INFINITY;
            frozen[f] = true;
            continue;
        }
        n_unfrozen += 1;
        for l in path.iter() {
            debug_assert!(l.index() < nl, "path references unknown link");
            members[l.index()].push(f as u32);
            unfrozen_on[l.index()] += 1;
        }
    }

    // Only links that actually carry unfrozen flows participate; on large
    // topologies most links are idle and scanning them every round would
    // dominate the cost.
    let mut active: Vec<u32> = (0..nl as u32)
        .filter(|&l| unfrozen_on[l as usize] > 0)
        .collect();

    let mut level = 0.0_f64;
    while n_unfrozen > 0 {
        active.retain(|&l| unfrozen_on[l as usize] > 0);
        // The next saturation point: the smallest level at which some link
        // with unfrozen flows runs out of headroom.
        let mut best = f64::INFINITY;
        for &l in &active {
            let l = l as usize;
            let headroom = capacity[l] - frozen_load[l] - unfrozen_on[l] as f64 * level;
            let delta = (headroom / unfrozen_on[l] as f64).max(0.0);
            if delta < best {
                best = delta;
            }
        }
        if !best.is_finite() {
            // No constraining link (cannot happen with non-empty paths, but
            // guard against inconsistent input).
            break;
        }
        level += best;

        // Freeze every unfrozen flow crossing a link that is now saturated.
        let tol = EPS * level.max(1.0);
        let mut froze_any = false;
        for &l in &active {
            let l = l as usize;
            if unfrozen_on[l] == 0 {
                continue;
            }
            let headroom = capacity[l] - frozen_load[l] - unfrozen_on[l] as f64 * level;
            if headroom <= tol {
                // This link is saturated: freeze its unfrozen flows.
                // Iterate over a copy of the membership list because
                // freezing mutates shared per-link counters.
                let flows_here: Vec<u32> = members[l].clone();
                for f in flows_here {
                    let f = f as usize;
                    if frozen[f] {
                        continue;
                    }
                    frozen[f] = true;
                    froze_any = true;
                    n_unfrozen -= 1;
                    rates[f] = level;
                    for ll in paths[f].iter() {
                        let ll = ll.index();
                        unfrozen_on[ll] -= 1;
                        frozen_load[ll] += level;
                    }
                }
            }
        }
        if !froze_any {
            // Numerical stall guard: freeze everything at the current level.
            // This can only trigger under pathological capacities (e.g. all
            // remaining links have effectively infinite headroom).
            for f in 0..nf {
                if !frozen[f] {
                    frozen[f] = true;
                    rates[f] = level;
                    n_unfrozen -= 1;
                }
            }
        }
    }
}

/// Returns the load each link carries under `rates` — useful for feasibility
/// checks and utilization statistics.
pub fn link_loads(n_links: usize, paths: &[&[LinkId]], rates: &[f64]) -> Vec<f64> {
    let mut loads = vec![0.0; n_links];
    for (f, path) in paths.iter().enumerate() {
        if rates[f].is_finite() {
            for l in path.iter() {
                loads[l.index()] += rates[f];
            }
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<LinkId> {
        v.iter().map(|&i| LinkId(i)).collect()
    }

    #[test]
    fn single_link_shared_equally() {
        let caps = [100.0];
        let p0 = ids(&[0]);
        let p1 = ids(&[0]);
        let paths: Vec<&[LinkId]> = vec![&p0, &p1];
        let r = max_min_rates(&caps, &paths);
        assert!((r[0] - 50.0).abs() < 1e-6);
        assert!((r[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn classic_three_flow_example() {
        // Two links: A (cap 1) and B (cap 2).
        // f0 crosses A and B, f1 crosses A, f2 crosses B.
        // Max-min: f0 = f1 = 0.5 (A saturates first), f2 = 1.5.
        let caps = [1.0, 2.0];
        let p0 = ids(&[0, 1]);
        let p1 = ids(&[0]);
        let p2 = ids(&[1]);
        let paths: Vec<&[LinkId]> = vec![&p0, &p1, &p2];
        let r = max_min_rates(&caps, &paths);
        assert!((r[0] - 0.5).abs() < 1e-6, "r0={}", r[0]);
        assert!((r[1] - 0.5).abs() < 1e-6);
        assert!((r[2] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn empty_path_is_unconstrained() {
        let caps = [1.0];
        let p0: Vec<LinkId> = vec![];
        let p1 = ids(&[0]);
        let paths: Vec<&[LinkId]> = vec![&p0, &p1];
        let r = max_min_rates(&caps, &paths);
        assert!(r[0].is_infinite());
        assert!((r[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_link_pins_rate_to_zero() {
        let caps = [0.0, 10.0];
        let p0 = ids(&[0, 1]);
        let p1 = ids(&[1]);
        let paths: Vec<&[LinkId]> = vec![&p0, &p1];
        let r = max_min_rates(&caps, &paths);
        assert!(r[0].abs() < 1e-9);
        assert!((r[1] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn no_flows_is_fine() {
        let caps = [5.0];
        let paths: Vec<&[LinkId]> = vec![];
        assert!(max_min_rates(&caps, &paths).is_empty());
    }

    /// Runs the CSR implementation over `paths` flattened into a flow
    /// table, reusing `ws` across calls the way the fabric does.
    fn csr_rates(caps: &[f64], paths: &[&[LinkId]], ws: &mut MaxMinScratch) -> Vec<f64> {
        let mut flow_off: Vec<u32> = Vec::with_capacity(paths.len() + 1);
        let mut flow_links: Vec<LinkId> = Vec::new();
        flow_off.push(0);
        for p in paths {
            flow_links.extend_from_slice(p);
            flow_off.push(flow_links.len() as u32);
        }
        let mut rates = vec![0.0; paths.len()];
        max_min_rates_csr(caps, &flow_off, &flow_links, &mut rates, ws);
        rates
    }

    /// Bit-exact equality of two rate vectors (covers ±0.0 and infinities).
    fn assert_rates_identical(reference: &[f64], csr: &[f64], case: usize) {
        assert_eq!(reference.len(), csr.len());
        for (f, (a, b)) in reference.iter().zip(csr).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "case {case} flow {f}: reference {a} vs CSR {b}"
            );
        }
    }

    #[test]
    fn csr_matches_reference_on_degenerate_cases() {
        let mut ws = MaxMinScratch::new();
        // No flows at all.
        assert!(csr_rates(&[5.0], &[], &mut ws).is_empty());
        // Single flow, single link.
        let p = ids(&[0]);
        let paths: Vec<&[LinkId]> = vec![&p];
        assert_rates_identical(
            &max_min_rates(&[7.0], &paths),
            &csr_rates(&[7.0], &paths, &mut ws),
            1001,
        );
        // Empty path: unconstrained (infinite) rate on both sides.
        let empty: Vec<LinkId> = vec![];
        let paths: Vec<&[LinkId]> = vec![&empty, &p];
        assert_rates_identical(
            &max_min_rates(&[3.0], &paths),
            &csr_rates(&[3.0], &paths, &mut ws),
            1002,
        );
        // Zero-capacity link pins its flows to rate 0.
        let p0 = ids(&[0, 1]);
        let p1 = ids(&[1]);
        let paths: Vec<&[LinkId]> = vec![&p0, &p1];
        let caps = [0.0, 10.0];
        assert_rates_identical(
            &max_min_rates(&caps, &paths),
            &csr_rates(&caps, &paths, &mut ws),
            1003,
        );
        // All links zero-capacity.
        let caps = [0.0, 0.0];
        assert_rates_identical(
            &max_min_rates(&caps, &paths),
            &csr_rates(&caps, &paths, &mut ws),
            1004,
        );
    }

    #[test]
    fn feasibility_and_bottleneck_property_random() {
        // Pseudo-random instances (fixed seeds) checked against the max-min
        // characterization: (a) feasible; (b) every flow has a bottleneck
        // link — saturated, and on which the flow's rate is maximal; and
        // (c) the optimized CSR implementation reproduces the reference
        // rates *bit for bit*, reusing one workspace across all instances
        // the way the fabric does.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ws = MaxMinScratch::new();
        for case in 0..200 {
            let nl = 3 + (next() % 8) as usize;
            let nf = 1 + (next() % 20) as usize;
            let caps: Vec<f64> = (0..nl)
                .map(|_| {
                    // ~5% of links have zero capacity, exercising the
                    // rate-0 pinning path.
                    if next() % 20 == 0 {
                        0.0
                    } else {
                        1.0 + (next() % 1000) as f64 / 10.0
                    }
                })
                .collect();
            let paths_own: Vec<Vec<LinkId>> = (0..nf)
                .map(|_| {
                    // ~10% of flows are machine-local (empty path).
                    let len = if next() % 10 == 0 {
                        0
                    } else {
                        1 + (next() % 3) as usize
                    };
                    let mut p: Vec<LinkId> = (0..len)
                        .map(|_| LinkId((next() % nl as u64) as u32))
                        .collect();
                    p.dedup();
                    p
                })
                .collect();
            let paths: Vec<&[LinkId]> = paths_own.iter().map(|p| p.as_slice()).collect();
            let rates = max_min_rates(&caps, &paths);
            assert_rates_identical(&rates, &csr_rates(&caps, &paths, &mut ws), case);
            let loads = link_loads(nl, &paths, &rates);
            for l in 0..nl {
                assert!(loads[l] <= caps[l] + 1e-6, "link {l} overloaded");
            }
            for f in 0..nf {
                if paths[f].is_empty() {
                    // Unconstrained flow: infinite rate, no bottleneck.
                    assert!(rates[f].is_infinite());
                    continue;
                }
                let has_bottleneck = paths[f].iter().any(|l| {
                    let l = l.index();
                    let saturated = loads[l] >= caps[l] - 1e-6 * caps[l].max(1.0) - 1e-9;
                    let max_on_link = paths
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.contains(&LinkId(l as u32)))
                        .map(|(g, _)| rates[g])
                        .fold(0.0f64, f64::max);
                    saturated && rates[f] >= max_on_link - 1e-6 * max_on_link.max(1.0)
                });
                assert!(has_bottleneck, "flow {f} lacks a bottleneck link");
            }
        }
    }
}
