//! Fluid flow state and identification tags.

use crate::topology::Path;
use corral_model::{Bytes, JobId, MachineId, StageId, TaskId};
use serde::{Deserialize, Serialize};

/// Identifies a coflow: the set of flows belonging to one semantic transfer
/// (e.g. the shuffle of one job stage). Used by coflow-aware allocators
/// (Varys SEBF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoflowId(pub u64);

/// What a flow carries — used for byte accounting and tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowKind {
    /// A map (or source-stage) task reading DFS input remotely.
    InputRead,
    /// Intermediate (shuffle / broadcast) data between stages.
    Shuffle,
    /// A sink-stage task writing a DFS output replica remotely.
    OutputWrite,
    /// Input-data ingestion (upload into the cluster).
    Ingest,
    /// Non-job background traffic modeled as explicit flows (rarely used;
    /// the usual background model is a capacity reservation).
    Background,
}

/// Ownership/tracing tag attached to every flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTag {
    /// Owning job, if any.
    pub job: Option<JobId>,
    /// Owning stage within the job.
    pub stage: Option<StageId>,
    /// Owning (destination) task.
    pub task: Option<TaskId>,
    /// Payload class.
    pub kind: FlowKind,
}

impl FlowTag {
    /// A tag with no owner, for background or infrastructure transfers.
    pub fn infrastructure(kind: FlowKind) -> Self {
        FlowTag {
            job: None,
            stage: None,
            task: None,
            kind,
        }
    }

    /// A tag owned by a job task.
    pub fn task(job: JobId, stage: StageId, task: TaskId, kind: FlowKind) -> Self {
        FlowTag {
            job: Some(job),
            stage: Some(stage),
            task: Some(task),
            kind,
        }
    }
}

/// A request to start a flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Source machine.
    pub src: MachineId,
    /// Destination machine.
    pub dst: MachineId,
    /// Bytes to transfer.
    pub bytes: Bytes,
    /// Tracing tag.
    pub tag: FlowTag,
    /// Coflow membership (for coflow-aware allocators).
    pub coflow: Option<CoflowId>,
}

/// Internal per-flow state held by the fabric. Rates are *not* stored
/// here: between recomputes the current rate of every active flow lives
/// in the fabric's dense scratch array (aligned with `active` order), so
/// rate writeback never has to re-walk this scattered table.
#[derive(Debug, Clone)]
pub(crate) struct FlowState {
    pub spec: FlowSpec,
    pub path: Path,
    pub remaining: Bytes,
    /// True if the path crosses the rack/core links.
    pub cross_rack: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags() {
        let t = FlowTag::task(JobId(1), StageId(0), TaskId(9), FlowKind::Shuffle);
        assert_eq!(t.job, Some(JobId(1)));
        assert_eq!(t.kind, FlowKind::Shuffle);
        let i = FlowTag::infrastructure(FlowKind::Ingest);
        assert_eq!(i.job, None);
    }
}
