//! Fabric traffic accounting.
//!
//! Tracks, per job and in aggregate, how many bytes crossed the
//! oversubscribed core links versus stayed inside racks. "Cross-rack data
//! transferred" is the paper's Figure 7a metric; Corral's headline is a
//! 20–90% reduction of it.

use corral_model::{Bytes, JobId};
use serde::Serialize;
use std::collections::BTreeMap;

/// Aggregate and per-job byte counters maintained by the fabric.
#[derive(Debug, Default, Clone, Serialize)]
pub struct FabricStats {
    /// Total bytes that crossed rack/core links (each byte counted once,
    /// on the uplink).
    pub cross_rack_bytes: Bytes,
    /// Total bytes carried by machine NIC links into/out of the network
    /// (each byte counted once, on the source NIC; machine-local transfers
    /// excluded).
    pub network_bytes: Bytes,
    /// Bytes transferred machine-locally (no network involved).
    pub local_bytes: Bytes,
    /// Per-job cross-rack bytes.
    pub cross_rack_by_job: BTreeMap<JobId, Bytes>,
    /// Per-job total network bytes.
    pub network_by_job: BTreeMap<JobId, Bytes>,
    /// Bytes ingested from outside the cluster (upload feeds / remote
    /// storage); kept separate from job network traffic.
    pub ingest_bytes: Bytes,
    /// Number of flows completed.
    pub flows_completed: u64,
    /// Number of flows started.
    pub flows_started: u64,
    /// Number of full rate recomputations (allocator invocations).
    pub recomputes: u64,
    /// Cumulative progressive-filling freeze rounds across all recomputes
    /// (only the CSR max-min path reports rounds; the test-only reference
    /// path leaves this at zero).
    pub maxmin_rounds: u64,
    /// Number of recomputes on which any scratch buffer (re)allocated.
    /// Flat after warm-up ⇒ the steady-state hot path is allocation-free.
    pub scratch_grows: u64,
    /// Recomputes served by the incremental path (only dirty bottleneck
    /// components re-solved). `recomputes` stays the total across both
    /// paths.
    pub recomputes_incremental: u64,
    /// Recomputes served by a full solve. For eager allocators every
    /// recompute lands here; for the coflow-incremental path this counts
    /// the degenerate events where the dirtied priority boundary forced
    /// a full pass (also tallied in `recomputes_full_boundary`).
    pub recomputes_full: u64,
    /// Subset of `recomputes_full` forced by a coflow-local dirty
    /// boundary covering the whole order (capacity change or cold
    /// cache) rather than by the allocator lacking an incremental form.
    pub recomputes_full_boundary: u64,
    /// Cumulative dirty-set size: candidate flows re-solved across all
    /// incremental recomputes (divide by `recomputes_incremental` for
    /// the mean dirty-set size).
    pub dirty_flows: u64,
}

impl FabricStats {
    /// Records `amount` of ingress (external upload) traffic.
    pub(crate) fn record_ingest(&mut self, amount: Bytes) {
        debug_assert!(amount.0 >= 0.0, "negative ingest amount {amount:?}");
        self.ingest_bytes += amount;
    }

    /// Records `amount` transferred by a flow.
    pub(crate) fn record_transfer(
        &mut self,
        job: Option<JobId>,
        amount: Bytes,
        cross_rack: bool,
        local: bool,
    ) {
        debug_assert!(amount.0 >= 0.0, "negative transfer amount {amount:?}");
        if local {
            self.local_bytes += amount;
            return;
        }
        self.network_bytes += amount;
        if cross_rack {
            self.cross_rack_bytes += amount;
        }
        if let Some(j) = job {
            *self.network_by_job.entry(j).or_insert(Bytes::ZERO) += amount;
            if cross_rack {
                *self.cross_rack_by_job.entry(j).or_insert(Bytes::ZERO) += amount;
            }
        }
    }

    /// Cross-rack bytes attributed to `job`.
    pub fn cross_rack_of(&self, job: JobId) -> Bytes {
        self.cross_rack_by_job
            .get(&job)
            .copied()
            .unwrap_or(Bytes::ZERO)
    }

    /// Debug-build sanity checks on the counters. Since every recorded
    /// amount is non-negative, all byte counters are monotone over the
    /// run; a flow can only complete after it started.
    pub(crate) fn debug_validate(&self) {
        debug_assert!(
            self.flows_completed <= self.flows_started,
            "{} flows completed but only {} started",
            self.flows_completed,
            self.flows_started
        );
        debug_assert!(
            self.cross_rack_bytes.0 >= 0.0
                && self.network_bytes.0 >= 0.0
                && self.local_bytes.0 >= 0.0
                && self.ingest_bytes.0 >= 0.0,
            "negative byte counter: {self:?}"
        );
        debug_assert!(
            self.cross_rack_bytes.0 <= self.network_bytes.0 + 1e-6,
            "cross-rack bytes {} exceed network bytes {}",
            self.cross_rack_bytes.0,
            self.network_bytes.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_splits_classes() {
        let mut s = FabricStats::default();
        s.record_transfer(Some(JobId(1)), Bytes(100.0), true, false);
        s.record_transfer(Some(JobId(1)), Bytes(50.0), false, false);
        s.record_transfer(None, Bytes(30.0), true, false);
        s.record_transfer(Some(JobId(1)), Bytes(7.0), false, true);

        assert_eq!(s.cross_rack_bytes, Bytes(130.0));
        assert_eq!(s.network_bytes, Bytes(180.0));
        assert_eq!(s.local_bytes, Bytes(7.0));
        assert_eq!(s.cross_rack_of(JobId(1)), Bytes(100.0));
        assert_eq!(s.cross_rack_of(JobId(2)), Bytes::ZERO);
        assert_eq!(s.network_by_job[&JobId(1)], Bytes(150.0));
    }
}
