//! Varys coflow scheduling: Smallest Effective Bottleneck First (SEBF) with
//! Minimum Allocation for Desired Duration (MADD) and work-conserving
//! backfill.
//!
//! Following Chowdhury, Zhong & Stoica, *Efficient Coflow Scheduling with
//! Varys* (SIGCOMM 2014), as used as the flow-level baseline in the Corral
//! paper (§6.6):
//!
//! 1. Every coflow `c` gets an *effective bottleneck* completion time
//!    `Γ_c = max_l bytes_c(l) / cap(l)` — the time to finish its remaining
//!    bytes if it had every link to itself.
//! 2. Coflows are served in ascending `Γ` order (SEBF).
//! 3. A scheduled coflow is given just enough bandwidth for *all* its flows
//!    to finish together at its bottleneck time computed against the
//!    *residual* capacities (MADD): `rate_f = remaining_f / τ_c` with
//!    `τ_c = max_l bytes_c(l) / residual(l)`.
//! 4. Whatever capacity remains is distributed max-min fairly across all
//!    flows (backfill), so the allocation is work-conserving.
//!
//! Flows that belong to no coflow are treated as singleton coflows, which
//! makes the policy total. (Real Varys only manages shuffle-like transfers;
//! in our simulations every job transfer carries a coflow id.)

use crate::allocator::{AllocScratch, FlowTable, FlowView, RateAllocator};
use crate::flow::CoflowId;
use crate::link::{Link, LinkId};
use crate::maxmin;
use corral_model::Bandwidth;
use std::collections::BTreeMap;

/// Reusable buffers for the allocation-free [`VarysSebf::allocate_table`]
/// path. The `BTreeMap` grouping of the reference implementation is
/// replaced by a stable sort of `(coflow, flow)` pairs: runs of equal keys
/// are the groups, visited in ascending-key order with members in
/// ascending-flow order — exactly the `BTreeMap` iteration order.
#[derive(Debug, Default)]
pub struct VarysScratch {
    /// `(group key, flow index)` pairs, stably sorted by key.
    keyed: Vec<(CoflowId, u32)>,
    /// Per-link remaining-byte accumulator (sparse, see `touched`).
    link_bytes: Vec<f64>,
    /// Links with a nonzero entry in `link_bytes`.
    touched: Vec<u32>,
    /// `(Γ, key, run start, run end)` per coflow, sorted for SEBF.
    order: Vec<(f64, CoflowId, u32, u32)>,
    /// Residual capacities consumed by MADD.
    residual: Vec<f64>,
    /// Backfill rates from the work-conserving max-min pass.
    extra: Vec<f64>,
}

impl VarysScratch {
    /// Total reserved capacity across the buffers, in elements (part of
    /// [`AllocScratch::footprint`]).
    pub fn footprint(&self) -> usize {
        self.keyed.capacity()
            + self.link_bytes.capacity()
            + self.touched.capacity()
            + self.order.capacity()
            + self.residual.capacity()
            + self.extra.capacity()
    }
}

/// The Varys SEBF+MADD allocator.
#[derive(Debug, Default, Clone)]
pub struct VarysSebf;

/// Singleton-coflow key for a coflow-less flow: disjoint id space via the
/// high bit, keyed by flow index.
#[inline]
fn group_key(coflow: Option<CoflowId>, flow: usize) -> CoflowId {
    coflow.unwrap_or(CoflowId(1 << 63 | flow as u64))
}

impl RateAllocator for VarysSebf {
    fn name(&self) -> &'static str {
        "varys-sebf"
    }

    fn allocate(&mut self, links: &[Link], flows: &[FlowView<'_>], rates: &mut [Bandwidth]) {
        let nl = links.len();
        let caps: Vec<f64> = links.iter().map(|l| l.effective_capacity().0).collect();

        // Group flows into coflows. BTreeMap gives deterministic order;
        // coflow-less flows become singletons keyed by their flow index
        // (disjoint id space via the high bit).
        let mut groups: BTreeMap<CoflowId, Vec<usize>> = BTreeMap::new();
        for (i, f) in flows.iter().enumerate() {
            groups.entry(group_key(f.coflow, i)).or_default().push(i);
        }

        // Per-link byte scratch with explicit touched-link tracking: only
        // the links a coflow actually crosses are visited (scanning all
        // links per coflow is quadratic on large topologies).
        let mut link_bytes = vec![0.0_f64; nl];
        let mut touched: Vec<u32> = Vec::with_capacity(64);
        let fill = |link_bytes: &mut Vec<f64>, touched: &mut Vec<u32>, members: &[usize]| {
            for &t in touched.iter() {
                link_bytes[t as usize] = 0.0;
            }
            touched.clear();
            for &fi in members {
                for l in flows[fi].path {
                    let idx = l.index();
                    if link_bytes[idx] == 0.0 {
                        touched.push(idx as u32);
                    }
                    link_bytes[idx] += flows[fi].remaining.0;
                }
            }
        };

        // Effective bottleneck Γ_c against full capacities.
        let mut order: Vec<(f64, CoflowId)> = Vec::with_capacity(groups.len());
        for (&cid, members) in &groups {
            fill(&mut link_bytes, &mut touched, members);
            let gamma = touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if caps[t] > 0.0 {
                        link_bytes[t] / caps[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            order.push((gamma, cid));
        }
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // MADD in SEBF order against residual capacities.
        let mut residual = caps.clone();
        for r in rates.iter_mut() {
            *r = Bandwidth::ZERO;
        }
        for (_, cid) in &order {
            let members = &groups[cid];
            fill(&mut link_bytes, &mut touched, members);
            // τ_c: finish time of the coflow using only residual capacity.
            let tau = touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if residual[t] > 1e-9 {
                        link_bytes[t] / residual[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            if !tau.is_finite() || tau <= 0.0 {
                // Starved (no residual capacity anywhere on its path) or
                // empty: leave rates at zero; backfill may still help.
                continue;
            }
            for &fi in members {
                let rate = flows[fi].remaining.0 / tau;
                rates[fi] = Bandwidth(rate);
                for l in flows[fi].path {
                    let r = &mut residual[l.index()];
                    *r = (*r - rate).max(0.0);
                }
            }
        }

        // Work-conserving backfill: max-min over the residual capacity,
        // added on top of the MADD rates.
        let paths: Vec<&[LinkId]> = flows.iter().map(|f| f.path).collect();
        let mut extra = vec![0.0; flows.len()];
        maxmin::max_min_rates_into(&residual, &paths, &mut extra);
        for (r, e) in rates.iter_mut().zip(extra) {
            if e.is_finite() {
                *r += Bandwidth(e);
            }
        }
    }

    /// Allocation-free mirror of [`allocate`](Self::allocate): identical
    /// grouping order, identical Γ/τ/MADD arithmetic, identical backfill —
    /// only the data structures differ (sorted runs instead of a `BTreeMap`,
    /// CSR max-min instead of the `Vec<Vec<u32>>` reference). The property
    /// and golden tests prove the outputs bit-identical.
    fn allocate_table(
        &mut self,
        links: &[Link],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        let nl = links.len();
        let nf = table.len();
        scratch.refresh_caps(links);
        let ws = &mut scratch.varys;

        // Group flows into coflows: stable sort of (key, flow) pairs makes
        // runs of equal keys the groups, in ascending-key order with
        // members ascending — the BTreeMap order of the reference path.
        ws.keyed.clear();
        ws.keyed
            .extend((0..nf).map(|i| (group_key(table.coflow[i], i), i as u32)));
        ws.keyed.sort_by_key(|&(key, _)| key);

        // Per-link byte scratch with explicit touched-link tracking, reused
        // across coflows and across recomputes.
        ws.link_bytes.clear();
        ws.link_bytes.resize(nl, 0.0);
        ws.touched.clear();

        // Effective bottleneck Γ_c against full capacities, one run of
        // equal keys at a time.
        ws.order.clear();
        let mut start = 0usize;
        while start < nf {
            let cid = ws.keyed[start].0;
            let mut end = start + 1;
            while end < nf && ws.keyed[end].0 == cid {
                end += 1;
            }
            for &t in &ws.touched {
                ws.link_bytes[t as usize] = 0.0;
            }
            ws.touched.clear();
            for &(_, fi) in &ws.keyed[start..end] {
                let fi = fi as usize;
                for l in table.path(fi) {
                    let idx = l.index();
                    if ws.link_bytes[idx] == 0.0 {
                        ws.touched.push(idx as u32);
                    }
                    ws.link_bytes[idx] += table.remaining[fi];
                }
            }
            let gamma = ws
                .touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if scratch.caps[t] > 0.0 {
                        ws.link_bytes[t] / scratch.caps[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            ws.order.push((gamma, cid, start as u32, end as u32));
            start = end;
        }
        ws.order
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // MADD in SEBF order against residual capacities.
        ws.residual.clear();
        ws.residual.extend_from_slice(&scratch.caps);
        for r in rates.iter_mut() {
            *r = 0.0;
        }
        for oi in 0..ws.order.len() {
            let (_, _, start, end) = ws.order[oi];
            let members = &ws.keyed[start as usize..end as usize];
            for &t in &ws.touched {
                ws.link_bytes[t as usize] = 0.0;
            }
            ws.touched.clear();
            for &(_, fi) in members {
                let fi = fi as usize;
                for l in table.path(fi) {
                    let idx = l.index();
                    if ws.link_bytes[idx] == 0.0 {
                        ws.touched.push(idx as u32);
                    }
                    ws.link_bytes[idx] += table.remaining[fi];
                }
            }
            // τ_c: finish time of the coflow using only residual capacity.
            let tau = ws
                .touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if ws.residual[t] > 1e-9 {
                        ws.link_bytes[t] / ws.residual[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            if !tau.is_finite() || tau <= 0.0 {
                // Starved or empty: leave rates at zero; backfill may still
                // help.
                continue;
            }
            for &(_, fi) in members {
                let fi = fi as usize;
                let rate = table.remaining[fi] / tau;
                rates[fi] = rate;
                for l in table.path(fi) {
                    let r = &mut ws.residual[l.index()];
                    *r = (*r - rate).max(0.0);
                }
            }
        }

        // Work-conserving backfill: max-min over the residual capacity,
        // added on top of the MADD rates.
        ws.extra.clear();
        ws.extra.resize(nf, 0.0);
        maxmin::max_min_rates_csr(
            &ws.residual,
            table.flow_off,
            table.flow_links,
            &mut ws.extra,
            &mut scratch.maxmin,
        );
        for (r, &e) in rates.iter_mut().zip(&ws.extra) {
            if e.is_finite() {
                *r += e;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;
    use corral_model::Bytes;

    fn link(cap: f64) -> Link {
        Link::new(LinkClass::RackUp, 0, Bandwidth(cap))
    }

    /// Two coflows on one link: the smaller finishes first at full rate
    /// (plus the larger receives only backfill crumbs — here none, since the
    /// link saturates).
    #[test]
    fn sebf_prioritizes_small_coflow() {
        let links = vec![link(100.0)];
        let path = [LinkId(0)];
        let flows = [
            FlowView {
                path: &path,
                remaining: Bytes(1000.0),
                coflow: Some(CoflowId(0)),
            },
            FlowView {
                path: &path,
                remaining: Bytes(10.0),
                coflow: Some(CoflowId(1)),
            },
        ];
        let mut rates = [Bandwidth::ZERO; 2];
        VarysSebf.allocate(&links, &flows, &mut rates);
        // Coflow 1 (10 bytes) has smaller Γ: gets the whole link; coflow 0
        // gets the rest (0 here) — strictly prioritized, unlike fair share.
        assert!(rates[1].0 > rates[0].0);
        assert!((rates[0].0 + rates[1].0) <= 100.0 + 1e-6);
        assert!((rates[1].0 - 100.0).abs() < 1e-6);
    }

    /// MADD: within one coflow, flows get rates proportional to their
    /// remaining bytes so they finish together.
    #[test]
    fn madd_finishes_flows_together() {
        // Flow 0: 300 bytes on link0; flow 1: 100 bytes on link1.
        // Bottleneck is link0: τ = 300/100 = 3s. Flow rates: 100, 33.3.
        // Backfill then tops flow 1 up to link1's full capacity.
        let links = vec![link(100.0), link(100.0)];
        let p0 = [LinkId(0)];
        let p1 = [LinkId(1)];
        let flows = [
            FlowView {
                path: &p0,
                remaining: Bytes(300.0),
                coflow: Some(CoflowId(7)),
            },
            FlowView {
                path: &p1,
                remaining: Bytes(100.0),
                coflow: Some(CoflowId(7)),
            },
        ];
        let mut rates = [Bandwidth::ZERO; 2];
        VarysSebf.allocate(&links, &flows, &mut rates);
        assert!((rates[0].0 - 100.0).abs() < 1e-6);
        // MADD would give 33.3; work conservation raises it to 100.
        assert!((rates[1].0 - 100.0).abs() < 1e-6);
    }

    #[test]
    fn feasible_under_contention() {
        let links = vec![link(50.0), link(80.0)];
        let p0 = [LinkId(0), LinkId(1)];
        let p1 = [LinkId(0)];
        let p2 = [LinkId(1)];
        let flows = [
            FlowView {
                path: &p0,
                remaining: Bytes(500.0),
                coflow: Some(CoflowId(1)),
            },
            FlowView {
                path: &p1,
                remaining: Bytes(200.0),
                coflow: Some(CoflowId(2)),
            },
            FlowView {
                path: &p2,
                remaining: Bytes(900.0),
                coflow: None,
            },
        ];
        let mut rates = [Bandwidth::ZERO; 3];
        VarysSebf.allocate(&links, &flows, &mut rates);
        let load0 = rates[0].0 + rates[1].0;
        let load1 = rates[0].0 + rates[2].0;
        assert!(load0 <= 50.0 + 1e-6, "link0 overloaded: {load0}");
        assert!(load1 <= 80.0 + 1e-6, "link1 overloaded: {load1}");
        // Work conservation: at least one link saturated.
        assert!(load0 >= 50.0 - 1e-6 || load1 >= 80.0 - 1e-6);
    }

    #[test]
    fn coflowless_flows_still_progress() {
        let links = vec![link(10.0)];
        let path = [LinkId(0)];
        let flows = [FlowView {
            path: &path,
            remaining: Bytes(100.0),
            coflow: None,
        }];
        let mut rates = [Bandwidth::ZERO];
        VarysSebf.allocate(&links, &flows, &mut rates);
        assert!((rates[0].0 - 10.0).abs() < 1e-6);
    }
}
