//! Varys coflow scheduling: Smallest Effective Bottleneck First (SEBF) with
//! Minimum Allocation for Desired Duration (MADD) and work-conserving
//! backfill.
//!
//! Following Chowdhury, Zhong & Stoica, *Efficient Coflow Scheduling with
//! Varys* (SIGCOMM 2014), as used as the flow-level baseline in the Corral
//! paper (§6.6):
//!
//! 1. Every coflow `c` gets an *effective bottleneck* completion time
//!    `Γ_c = max_l bytes_c(l) / cap(l)` — the time to finish its remaining
//!    bytes if it had every link to itself.
//! 2. Coflows are served in ascending `Γ` order (SEBF).
//! 3. A scheduled coflow is given just enough bandwidth for *all* its flows
//!    to finish together at its bottleneck time computed against the
//!    *residual* capacities (MADD): `rate_f = remaining_f / τ_c` with
//!    `τ_c = max_l bytes_c(l) / residual(l)`.
//! 4. Whatever capacity remains is distributed max-min fairly across all
//!    flows (backfill), so the allocation is work-conserving.
//!
//! Flows that belong to no coflow are treated as singleton coflows, which
//! makes the policy total. (Real Varys only manages shuffle-like transfers;
//! in our simulations every job transfer carries a coflow id.)

use crate::allocator::{AllocScratch, DirtyCtx, DirtyOutcome, FlowTable, FlowView, RateAllocator};
use crate::flow::CoflowId;
use crate::link::{Link, LinkId};
use crate::maxmin::{self, MaxMinScratch};
use corral_model::Bandwidth;
use std::collections::BTreeMap;

/// Reusable buffers for the allocation-free [`VarysSebf::allocate_table`]
/// path. The `BTreeMap` grouping of the reference implementation is
/// replaced by a stable sort of `(coflow, flow)` pairs: runs of equal keys
/// are the groups, visited in ascending-key order with members in
/// ascending-flow order — exactly the `BTreeMap` iteration order.
#[derive(Debug, Default)]
pub struct VarysScratch {
    /// `(group key, flow index)` pairs, stably sorted by key.
    keyed: Vec<(CoflowId, u32)>,
    /// Per-link remaining-byte accumulator (sparse, see `touched`).
    link_bytes: Vec<f64>,
    /// Links with a nonzero entry in `link_bytes`.
    touched: Vec<u32>,
    /// `(Γ, key, run start, run end)` per coflow, sorted for SEBF.
    order: Vec<(f64, CoflowId, u32, u32)>,
    /// Residual capacities consumed by MADD.
    residual: Vec<f64>,
    /// Backfill rates from the work-conserving max-min pass.
    extra: Vec<f64>,

    // --- coflow-incremental workspaces (allocate_dirty path) ---
    /// Directory/cache persisted across `allocate_dirty` calls.
    inc: VarysIncCache,
    /// Sorted, deduped group keys touched by the current event delta.
    dirty_keys: Vec<u64>,
    /// Per-row backfill carried over from the previous call (`NAN` when
    /// the row had no previous value; only clean components read it).
    carry: Vec<f64>,
    /// Union-find parent per link (min-root) for the component split.
    uf: Vec<u32>,
    /// Per-link dirty mark for the current call.
    link_dirty: Vec<bool>,
    /// Per-component (indexed by min-root link) dirty mark.
    comp_dirty: Vec<bool>,
    /// `(component root, row)` pairs, sorted so runs are components.
    comp_rows: Vec<(u32, u32)>,
    /// Canonical compacted-subproblem buffers: component links sorted
    /// ascending (compact id = rank), their residual capacities, and the
    /// per-component CSR handed to the max-min kernel.
    sub_link_ids: Vec<u32>,
    sub_caps: Vec<f64>,
    sub_off: Vec<u32>,
    sub_links: Vec<LinkId>,
    sub_rates: Vec<f64>,
    /// `(key, Γ, handle)` staging list for directory rebuilds.
    dir_tmp: Vec<(u64, f64, u32)>,
}

impl VarysScratch {
    /// Total reserved capacity across the buffers, in elements (part of
    /// [`AllocScratch::footprint`], and surfaced as the
    /// `fabric.varys_scratch_elems` probe gauge).
    pub fn footprint(&self) -> usize {
        self.keyed.capacity()
            + self.link_bytes.capacity()
            + self.touched.capacity()
            + self.order.capacity()
            + self.residual.capacity()
            + self.extra.capacity()
            + self.dirty_keys.capacity()
            + self.carry.capacity()
            + self.uf.capacity()
            + self.link_dirty.capacity()
            + self.comp_dirty.capacity()
            + self.comp_rows.capacity()
            + self.sub_link_ids.capacity()
            + self.sub_caps.capacity()
            + self.sub_off.capacity()
            + self.sub_links.capacity()
            + self.sub_rates.capacity()
            + self.dir_tmp.capacity()
            + self.inc.footprint()
    }
}

/// Cache persisted across [`VarysSebf::allocate_dirty`] calls: the SEBF
/// directory (group key → Γ + member list), the maintained `(Γ, key)`
/// order, and the previous call's backfill/residual for clean-component
/// splicing. Member lists hold fabric flow *slots* (stable across calls),
/// kept ascending: slots only ever grow, and removals preserve order.
#[derive(Debug, Default)]
struct VarysIncCache {
    /// True once a full build has populated the cache; cleared by
    /// [`VarysSebf::allocate_from_scratch`] (the oracle never caches).
    valid: bool,
    /// Sorted group keys (parallel to `handles`; a key's current Γ
    /// lives in its `order` entry).
    keys: Vec<u64>,
    /// Member-slab handle per key.
    handles: Vec<u32>,
    /// Member slab: ascending flow slots per handle; `free` recycles
    /// retired handles so the slab never shrinks.
    members: Vec<Vec<u32>>,
    free: Vec<u32>,
    /// SEBF order `(Γ, key, handle)`, ascending by `(Γ, key)`.
    order: Vec<(f64, u64, u32)>,
    /// Rows of the previous call as ascending flow slots, with the
    /// backfill rate each received.
    prev_slots: Vec<u32>,
    prev_backfill: Vec<f64>,
    /// Per-link residual (post-MADD) of the previous call, compared by
    /// bits to detect components whose backfill input changed.
    prev_residual: Vec<f64>,
}

impl VarysIncCache {
    /// Reserved capacity in elements. Inner member-list capacities are
    /// excluded (like the fabric's per-component flow lists): they churn
    /// with coflow sizes and would obscure the flat-footprint signal.
    fn footprint(&self) -> usize {
        self.keys.capacity()
            + self.handles.capacity()
            + self.members.capacity()
            + self.free.capacity()
            + self.order.capacity()
            + self.prev_slots.capacity()
            + self.prev_backfill.capacity()
            + self.prev_residual.capacity()
    }

    /// Returns every handle to the free list, keeping allocations.
    fn recycle(&mut self) {
        self.keys.clear();
        self.handles.clear();
        self.order.clear();
        self.free.clear();
        for (h, m) in self.members.iter_mut().enumerate() {
            m.clear();
            self.free.push(h as u32);
        }
    }
}

/// The Varys SEBF+MADD allocator.
#[derive(Debug, Default, Clone)]
pub struct VarysSebf;

/// Singleton-coflow key for a coflow-less flow: disjoint id space via the
/// high bit, keyed by flow index.
#[inline]
fn group_key(coflow: Option<CoflowId>, flow: usize) -> CoflowId {
    coflow.unwrap_or(CoflowId(1 << 63 | flow as u64))
}

impl RateAllocator for VarysSebf {
    fn name(&self) -> &'static str {
        "varys-sebf"
    }

    fn allocate(&mut self, links: &[Link], flows: &[FlowView<'_>], rates: &mut [Bandwidth]) {
        let nl = links.len();
        let caps: Vec<f64> = links.iter().map(|l| l.effective_capacity().0).collect();

        // Group flows into coflows. BTreeMap gives deterministic order;
        // coflow-less flows become singletons keyed by their flow index
        // (disjoint id space via the high bit).
        let mut groups: BTreeMap<CoflowId, Vec<usize>> = BTreeMap::new();
        for (i, f) in flows.iter().enumerate() {
            groups.entry(group_key(f.coflow, i)).or_default().push(i);
        }

        // Per-link byte scratch with explicit touched-link tracking: only
        // the links a coflow actually crosses are visited (scanning all
        // links per coflow is quadratic on large topologies).
        let mut link_bytes = vec![0.0_f64; nl];
        let mut touched: Vec<u32> = Vec::with_capacity(64);
        let fill = |link_bytes: &mut Vec<f64>, touched: &mut Vec<u32>, members: &[usize]| {
            for &t in touched.iter() {
                link_bytes[t as usize] = 0.0;
            }
            touched.clear();
            for &fi in members {
                for l in flows[fi].path {
                    let idx = l.index();
                    if link_bytes[idx] == 0.0 {
                        touched.push(idx as u32);
                    }
                    link_bytes[idx] += flows[fi].remaining.0;
                }
            }
        };

        // Effective bottleneck Γ_c against full capacities.
        let mut order: Vec<(f64, CoflowId)> = Vec::with_capacity(groups.len());
        for (&cid, members) in &groups {
            fill(&mut link_bytes, &mut touched, members);
            let gamma = touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if caps[t] > 0.0 {
                        link_bytes[t] / caps[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            order.push((gamma, cid));
        }
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // MADD in SEBF order against residual capacities.
        let mut residual = caps.clone();
        for r in rates.iter_mut() {
            *r = Bandwidth::ZERO;
        }
        for (_, cid) in &order {
            let members = &groups[cid];
            fill(&mut link_bytes, &mut touched, members);
            // τ_c: finish time of the coflow using only residual capacity.
            let tau = touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if residual[t] > 1e-9 {
                        link_bytes[t] / residual[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            if !tau.is_finite() || tau <= 0.0 {
                // Starved (no residual capacity anywhere on its path) or
                // empty: leave rates at zero; backfill may still help.
                continue;
            }
            for &fi in members {
                let rate = flows[fi].remaining.0 / tau;
                rates[fi] = Bandwidth(rate);
                for l in flows[fi].path {
                    let r = &mut residual[l.index()];
                    *r = (*r - rate).max(0.0);
                }
            }
        }

        // Work-conserving backfill: max-min over the residual capacity,
        // added on top of the MADD rates.
        let paths: Vec<&[LinkId]> = flows.iter().map(|f| f.path).collect();
        let mut extra = vec![0.0; flows.len()];
        maxmin::max_min_rates_into(&residual, &paths, &mut extra);
        for (r, e) in rates.iter_mut().zip(extra) {
            if e.is_finite() {
                *r += Bandwidth(e);
            }
        }
    }

    /// Allocation-free mirror of [`allocate`](Self::allocate): identical
    /// grouping order, identical Γ/τ/MADD arithmetic, identical backfill —
    /// only the data structures differ (sorted runs instead of a `BTreeMap`,
    /// CSR max-min instead of the `Vec<Vec<u32>>` reference). The property
    /// and golden tests prove the outputs bit-identical.
    fn allocate_table(
        &mut self,
        links: &[Link],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        let nl = links.len();
        let nf = table.len();
        scratch.refresh_caps(links);
        let ws = &mut scratch.varys;

        // Group flows into coflows: stable sort of (key, flow) pairs makes
        // runs of equal keys the groups, in ascending-key order with
        // members ascending — the BTreeMap order of the reference path.
        ws.keyed.clear();
        ws.keyed
            .extend((0..nf).map(|i| (group_key(table.coflow[i], i), i as u32)));
        ws.keyed.sort_by_key(|&(key, _)| key);

        // Per-link byte scratch with explicit touched-link tracking, reused
        // across coflows and across recomputes.
        ws.link_bytes.clear();
        ws.link_bytes.resize(nl, 0.0);
        ws.touched.clear();

        // Effective bottleneck Γ_c against full capacities, one run of
        // equal keys at a time.
        ws.order.clear();
        let mut start = 0usize;
        while start < nf {
            let cid = ws.keyed[start].0;
            let mut end = start + 1;
            while end < nf && ws.keyed[end].0 == cid {
                end += 1;
            }
            for &t in &ws.touched {
                ws.link_bytes[t as usize] = 0.0;
            }
            ws.touched.clear();
            for &(_, fi) in &ws.keyed[start..end] {
                let fi = fi as usize;
                for l in table.path(fi) {
                    let idx = l.index();
                    if ws.link_bytes[idx] == 0.0 {
                        ws.touched.push(idx as u32);
                    }
                    ws.link_bytes[idx] += table.remaining[fi];
                }
            }
            let gamma = ws
                .touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if scratch.caps[t] > 0.0 {
                        ws.link_bytes[t] / scratch.caps[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            ws.order.push((gamma, cid, start as u32, end as u32));
            start = end;
        }
        ws.order
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // MADD in SEBF order against residual capacities.
        ws.residual.clear();
        ws.residual.extend_from_slice(&scratch.caps);
        for r in rates.iter_mut() {
            *r = 0.0;
        }
        for oi in 0..ws.order.len() {
            let (_, _, start, end) = ws.order[oi];
            let members = &ws.keyed[start as usize..end as usize];
            for &t in &ws.touched {
                ws.link_bytes[t as usize] = 0.0;
            }
            ws.touched.clear();
            for &(_, fi) in members {
                let fi = fi as usize;
                for l in table.path(fi) {
                    let idx = l.index();
                    if ws.link_bytes[idx] == 0.0 {
                        ws.touched.push(idx as u32);
                    }
                    ws.link_bytes[idx] += table.remaining[fi];
                }
            }
            // τ_c: finish time of the coflow using only residual capacity.
            let tau = ws
                .touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if ws.residual[t] > 1e-9 {
                        ws.link_bytes[t] / ws.residual[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            if !tau.is_finite() || tau <= 0.0 {
                // Starved or empty: leave rates at zero; backfill may still
                // help.
                continue;
            }
            for &(_, fi) in members {
                let fi = fi as usize;
                let rate = table.remaining[fi] / tau;
                rates[fi] = rate;
                for l in table.path(fi) {
                    let r = &mut ws.residual[l.index()];
                    *r = (*r - rate).max(0.0);
                }
            }
        }

        // Work-conserving backfill: max-min over the residual capacity,
        // added on top of the MADD rates.
        ws.extra.clear();
        ws.extra.resize(nf, 0.0);
        maxmin::max_min_rates_csr(
            &ws.residual,
            table.flow_off,
            table.flow_links,
            &mut ws.extra,
            &mut scratch.maxmin,
        );
        for (r, &e) in rates.iter_mut().zip(&ws.extra) {
            if e.is_finite() {
                *r += e;
            }
        }
    }

    fn coflow_incremental(&self) -> bool {
        true
    }

    fn allocate_dirty(
        &mut self,
        links: &[Link],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
        ctx: &DirtyCtx<'_>,
    ) -> DirtyOutcome {
        if ctx.caps_changed || !scratch.varys.inc.valid {
            // A capacity epoch invalidates every cached Γ and residual;
            // rebuild the whole directory from a from-scratch pass.
            let rounds = solve_canonical(links, table, rates, scratch);
            rebuild_cache(&mut scratch.varys, ctx);
            DirtyOutcome::Full { rounds }
        } else {
            let (dirty_flows, rounds) = solve_incremental(links, table, rates, scratch, ctx);
            DirtyOutcome::Incremental { dirty_flows, rounds }
        }
    }

    fn allocate_from_scratch(
        &mut self,
        links: &[Link],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        // Oracle entry: never trust — or leave behind — incremental state.
        scratch.varys.inc.valid = false;
        let _ = solve_canonical(links, table, rates, scratch);
    }
}

/// Union-find `find` with path halving over the per-link parent table.
#[inline]
fn find(uf: &mut [u32], mut x: u32) -> u32 {
    while uf[x as usize] != x {
        uf[x as usize] = uf[uf[x as usize] as usize];
        x = uf[x as usize];
    }
    x
}

/// Union by min-root: the smaller link id wins, so component roots are
/// deterministic regardless of union order.
#[inline]
fn union(uf: &mut [u32], a: u32, b: u32) {
    let (ra, rb) = (find(uf, a), find(uf, b));
    if ra == rb {
        return;
    }
    if ra < rb {
        uf[rb as usize] = ra;
    } else {
        uf[ra as usize] = rb;
    }
}

/// Accumulates `members`' remaining bytes onto the links they cross
/// (sparse, via `touched`), resolving fabric slots to table rows through
/// `row_of`. Mirrors the eager path's fill idiom operation-for-operation:
/// members ascend by slot ⇔ rows ascend, so the float accumulation order
/// is identical to a from-scratch grouped pass.
fn fill_members(
    members: &[u32],
    row_of: &[u32],
    table: &FlowTable<'_>,
    link_bytes: &mut [f64],
    touched: &mut Vec<u32>,
) {
    for &t in touched.iter() {
        link_bytes[t as usize] = 0.0;
    }
    touched.clear();
    for &slot in members {
        let row = row_of[slot as usize] as usize;
        for l in table.path(row) {
            let idx = l.index();
            if link_bytes[idx] == 0.0 {
                touched.push(idx as u32);
            }
            link_bytes[idx] += table.remaining[row];
        }
    }
}

/// Solves each component run of `comp_rows` (`(root, row)` pairs sorted so
/// runs of equal roots are components) on its canonical compacted
/// subproblem — links deduped and sorted ascending, compact ids by rank,
/// members ascending by row — and writes the per-row backfill into
/// `extra`. Returns the summed freeze rounds across component solves.
#[allow(clippy::too_many_arguments)]
fn solve_components(
    table: &FlowTable<'_>,
    residual: &[f64],
    comp_rows: &[(u32, u32)],
    extra: &mut [f64],
    sub_link_ids: &mut Vec<u32>,
    sub_caps: &mut Vec<f64>,
    sub_off: &mut Vec<u32>,
    sub_links: &mut Vec<LinkId>,
    sub_rates: &mut Vec<f64>,
    maxmin_ws: &mut MaxMinScratch,
) -> u64 {
    let mut rounds = 0u64;
    let mut s = 0usize;
    while s < comp_rows.len() {
        let root = comp_rows[s].0;
        let mut e = s + 1;
        while e < comp_rows.len() && comp_rows[e].0 == root {
            e += 1;
        }
        sub_link_ids.clear();
        for &(_, row) in &comp_rows[s..e] {
            for l in table.path(row as usize) {
                sub_link_ids.push(l.0);
            }
        }
        sub_link_ids.sort_unstable();
        sub_link_ids.dedup();
        sub_caps.clear();
        sub_caps.extend(sub_link_ids.iter().map(|&l| residual[l as usize]));
        sub_off.clear();
        sub_off.push(0);
        sub_links.clear();
        for &(_, row) in &comp_rows[s..e] {
            for l in table.path(row as usize) {
                let rank = sub_link_ids
                    .binary_search(&l.0)
                    .expect("component link missing from its own dedup");
                sub_links.push(LinkId(rank as u32));
            }
            sub_off.push(sub_links.len() as u32);
        }
        sub_rates.clear();
        sub_rates.resize(e - s, 0.0);
        maxmin::max_min_rates_csr(sub_caps, sub_off, sub_links, sub_rates, maxmin_ws);
        rounds += maxmin_ws.last_rounds();
        for (k, &(_, row)) in comp_rows[s..e].iter().enumerate() {
            extra[row as usize] = sub_rates[k];
        }
        s = e;
    }
    rounds
}

/// From-scratch coflow solve with the *canonical per-component* backfill:
/// identical grouping, Γ, SEBF order, and MADD arithmetic to the eager
/// [`VarysSebf::allocate_table`] path, but the work-conserving backfill
/// decomposes over connected components and solves each on its compacted
/// subproblem. A whole-graph water-fill is *not* bit-identical to that
/// (its global level accumulator orders float ops across components), so
/// this decomposition is the definition both `allocate_dirty` and the
/// fabric's shadow oracle share. Leaves the sorted group runs in
/// `keyed`/`order`, the post-MADD residual in `residual`, and the raw
/// backfill in `extra` for cache rebuilds. Returns summed freeze rounds.
fn solve_canonical(
    links: &[Link],
    table: &FlowTable<'_>,
    rates: &mut [f64],
    scratch: &mut AllocScratch,
) -> u64 {
    let nl = links.len();
    let nf = table.len();
    scratch.refresh_caps(links);
    let AllocScratch {
        caps,
        maxmin: maxmin_ws,
        varys: ws,
    } = scratch;

    // Group flows into coflows (stable sort of (key, flow) pairs; see
    // `allocate_table`).
    ws.keyed.clear();
    ws.keyed
        .extend((0..nf).map(|i| (group_key(table.coflow[i], i), i as u32)));
    ws.keyed.sort_by_key(|&(key, _)| key);

    ws.link_bytes.clear();
    ws.link_bytes.resize(nl, 0.0);
    ws.touched.clear();

    // Effective bottleneck Γ_c against full capacities.
    ws.order.clear();
    let mut start = 0usize;
    while start < nf {
        let cid = ws.keyed[start].0;
        let mut end = start + 1;
        while end < nf && ws.keyed[end].0 == cid {
            end += 1;
        }
        for &t in &ws.touched {
            ws.link_bytes[t as usize] = 0.0;
        }
        ws.touched.clear();
        for &(_, fi) in &ws.keyed[start..end] {
            let fi = fi as usize;
            for l in table.path(fi) {
                let idx = l.index();
                if ws.link_bytes[idx] == 0.0 {
                    ws.touched.push(idx as u32);
                }
                ws.link_bytes[idx] += table.remaining[fi];
            }
        }
        let gamma = ws
            .touched
            .iter()
            .map(|&t| {
                let t = t as usize;
                if caps[t] > 0.0 {
                    ws.link_bytes[t] / caps[t]
                } else {
                    f64::INFINITY
                }
            })
            .fold(0.0_f64, f64::max);
        ws.order.push((gamma, cid, start as u32, end as u32));
        start = end;
    }
    ws.order
        .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    // MADD in SEBF order against residual capacities.
    ws.residual.clear();
    ws.residual.extend_from_slice(caps);
    for r in rates.iter_mut() {
        *r = 0.0;
    }
    for oi in 0..ws.order.len() {
        let (_, _, start, end) = ws.order[oi];
        let members = &ws.keyed[start as usize..end as usize];
        for &t in &ws.touched {
            ws.link_bytes[t as usize] = 0.0;
        }
        ws.touched.clear();
        for &(_, fi) in members {
            let fi = fi as usize;
            for l in table.path(fi) {
                let idx = l.index();
                if ws.link_bytes[idx] == 0.0 {
                    ws.touched.push(idx as u32);
                }
                ws.link_bytes[idx] += table.remaining[fi];
            }
        }
        let tau = ws
            .touched
            .iter()
            .map(|&t| {
                let t = t as usize;
                if ws.residual[t] > 1e-9 {
                    ws.link_bytes[t] / ws.residual[t]
                } else {
                    f64::INFINITY
                }
            })
            .fold(0.0_f64, f64::max);
        if !tau.is_finite() || tau <= 0.0 {
            continue;
        }
        for &(_, fi) in members {
            let fi = fi as usize;
            let rate = table.remaining[fi] / tau;
            rates[fi] = rate;
            for l in table.path(fi) {
                let r = &mut ws.residual[l.index()];
                *r = (*r - rate).max(0.0);
            }
        }
    }

    // Canonical per-component backfill over the residual capacities.
    ws.uf.clear();
    ws.uf.extend(0..nl as u32);
    for row in 0..nf {
        let path = table.path(row);
        if path.is_empty() {
            continue;
        }
        let first = path[0].0;
        for l in &path[1..] {
            union(&mut ws.uf, first, l.0);
        }
    }
    ws.comp_rows.clear();
    for row in 0..nf {
        let path = table.path(row);
        if path.is_empty() {
            continue;
        }
        let root = find(&mut ws.uf, path[0].0);
        ws.comp_rows.push((root, row as u32));
    }
    ws.comp_rows.sort_unstable();
    ws.extra.clear();
    ws.extra.resize(nf, 0.0);
    let rounds = solve_components(
        table,
        &ws.residual,
        &ws.comp_rows,
        &mut ws.extra,
        &mut ws.sub_link_ids,
        &mut ws.sub_caps,
        &mut ws.sub_off,
        &mut ws.sub_links,
        &mut ws.sub_rates,
        maxmin_ws,
    );
    for (r, &e) in rates.iter_mut().zip(&ws.extra) {
        if e.is_finite() {
            *r += e;
        }
    }
    rounds
}

/// Rebuilds the incremental cache from a just-completed
/// [`solve_canonical`] pass — group runs in `keyed`/`order`, backfill in
/// `extra`, residual in `residual` — plus the fabric's row→slot map.
fn rebuild_cache(ws: &mut VarysScratch, ctx: &DirtyCtx<'_>) {
    let VarysScratch {
        keyed,
        order,
        residual,
        extra,
        inc,
        dir_tmp,
        dirty_keys,
        carry,
        uf,
        link_dirty,
        comp_dirty,
        comp_rows,
        ..
    } = ws;
    inc.recycle();
    dir_tmp.clear();
    for &(gamma, key, start, end) in order.iter() {
        let h = inc.free.pop().unwrap_or_else(|| {
            inc.members.push(Vec::new());
            (inc.members.len() - 1) as u32
        });
        let m = &mut inc.members[h as usize];
        m.clear();
        m.extend(
            keyed[start as usize..end as usize]
                .iter()
                .map(|&(_, row)| ctx.slots[row as usize]),
        );
        inc.order.push((gamma, key.0, h));
        dir_tmp.push((key.0, gamma, h));
    }
    dir_tmp.sort_unstable_by_key(|&(k, _, _)| k);
    inc.keys.clear();
    inc.handles.clear();
    for &(k, _, h) in dir_tmp.iter() {
        inc.keys.push(k);
        inc.handles.push(h);
    }
    inc.prev_slots.clear();
    inc.prev_slots.extend_from_slice(ctx.slots);
    inc.prev_backfill.clear();
    inc.prev_backfill.extend_from_slice(extra);
    inc.prev_residual.clear();
    inc.prev_residual.extend_from_slice(residual);
    inc.valid = true;

    // Pre-size the incremental-only buffers so the first coflow-local
    // pass after this full rebuild allocates nothing: `scratch_grows`
    // settles at the cold-cache full instead of creeping up as each
    // lazily-touched workspace first grows.
    let n = ctx.slots.len();
    let nl = residual.len();
    dirty_keys.clear();
    dirty_keys.reserve(n);
    carry.clear();
    carry.reserve(n);
    comp_rows.clear();
    comp_rows.reserve(n);
    uf.clear();
    uf.reserve(nl);
    link_dirty.clear();
    link_dirty.reserve(nl);
    comp_dirty.clear();
    comp_dirty.reserve(nl);
    // Departures can return every handle to the free list.
    let free_hwm = inc.members.len().saturating_sub(inc.free.len());
    inc.free.reserve(free_hwm);
}

/// The coflow-local incremental solve. Requires a valid cache and
/// unchanged link capacities (the caller falls back to
/// [`solve_canonical`] otherwise). Returns `(dirty_flows, rounds)`.
///
/// Exactness argument, mirrored by the armed fabric oracle:
/// * Scheduling bytes are frozen per flow, so a clean group's cached Γ is
///   bit-equal to recomputing it (same members, same bytes, same caps).
/// * The maintained `(Γ, key)` order therefore equals the from-scratch
///   sort (keys are unique, so the order is a strict total order).
/// * MADD is replayed in full over that order — the residual chain
///   couples every coflow below a dirtied rank, and the replay is two
///   orders of magnitude cheaper than backfill — giving bit-identical
///   MADD rates and residuals by determinism of the float sequence.
/// * A component none of whose links is structurally dirty or
///   residual-bit-dirty has an unchanged canonical subproblem (any
///   membership change dirties its path links), so its previous backfill
///   is spliced; dirty components are re-solved canonically.
fn solve_incremental(
    links: &[Link],
    table: &FlowTable<'_>,
    rates: &mut [f64],
    scratch: &mut AllocScratch,
    ctx: &DirtyCtx<'_>,
) -> (u64, u64) {
    let nl = links.len();
    let n = table.len();
    scratch.refresh_caps(links);
    let AllocScratch {
        caps,
        maxmin: maxmin_ws,
        varys: ws,
    } = scratch;
    let VarysScratch {
        link_bytes,
        touched,
        residual,
        extra,
        inc,
        dirty_keys,
        carry,
        uf,
        link_dirty,
        comp_dirty,
        comp_rows,
        sub_link_ids,
        sub_caps,
        sub_off,
        sub_links,
        sub_rates,
        ..
    } = ws;

    // 1. Apply the membership delta to the directory. Departures first
    //    (tolerant: a flow that started and departed between recomputes
    //    was filtered from `added` and never joined), then arrivals —
    //    new slots exceed every cached one, so pushes keep members
    //    ascending.
    dirty_keys.clear();
    dirty_keys.extend(ctx.added.iter().chain(ctx.departed).map(|&(k, _)| k));
    dirty_keys.sort_unstable();
    dirty_keys.dedup();
    for &(key, slot) in ctx.departed {
        if let Ok(i) = inc.keys.binary_search(&key) {
            let h = inc.handles[i] as usize;
            inc.members[h].retain(|&s| s != slot);
            if inc.members[h].is_empty() {
                inc.keys.remove(i);
                inc.handles.remove(i);
                inc.free.push(h as u32);
            }
        }
    }
    for &(key, slot) in ctx.added {
        match inc.keys.binary_search(&key) {
            Ok(i) => inc.members[inc.handles[i] as usize].push(slot),
            Err(i) => {
                let h = inc.free.pop().unwrap_or_else(|| {
                    inc.members.push(Vec::new());
                    (inc.members.len() - 1) as u32
                });
                inc.members[h as usize].clear();
                inc.members[h as usize].push(slot);
                inc.keys.insert(i, key);
                inc.handles.insert(i, h);
            }
        }
    }
    debug_assert_eq!(
        inc.handles
            .iter()
            .map(|&h| inc.members[h as usize].len())
            .sum::<usize>(),
        n,
        "coflow directory out of sync with the flow table"
    );

    // 2. Re-rank the dirtied keys: drop their stale order entries,
    //    recompute Γ against full capacities, re-sort the order.
    link_bytes.clear();
    link_bytes.resize(nl, 0.0);
    touched.clear();
    inc.order
        .retain(|&(_, k, _)| dirty_keys.binary_search(&k).is_err());
    for &key in dirty_keys.iter() {
        if let Ok(i) = inc.keys.binary_search(&key) {
            let h = inc.handles[i];
            fill_members(
                &inc.members[h as usize],
                ctx.row_of,
                table,
                link_bytes,
                touched,
            );
            let gamma = touched
                .iter()
                .map(|&t| {
                    let t = t as usize;
                    if caps[t] > 0.0 {
                        link_bytes[t] / caps[t]
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0_f64, f64::max);
            inc.order.push((gamma, key, h));
        }
    }
    inc.order
        .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    // 3. Full MADD replay over the maintained order (see the doc comment
    //    for why replay, not checkpointing).
    residual.clear();
    residual.extend_from_slice(caps);
    for r in rates.iter_mut() {
        *r = 0.0;
    }
    for &(_, _, h) in inc.order.iter() {
        let members = &inc.members[h as usize];
        fill_members(members, ctx.row_of, table, link_bytes, touched);
        let tau = touched
            .iter()
            .map(|&t| {
                let t = t as usize;
                if residual[t] > 1e-9 {
                    link_bytes[t] / residual[t]
                } else {
                    f64::INFINITY
                }
            })
            .fold(0.0_f64, f64::max);
        if !tau.is_finite() || tau <= 0.0 {
            continue;
        }
        for &slot in members {
            let row = ctx.row_of[slot as usize] as usize;
            let rate = table.remaining[row] / tau;
            rates[row] = rate;
            for l in table.path(row) {
                let r = &mut residual[l.index()];
                *r = (*r - rate).max(0.0);
            }
        }
    }

    // 4. Dirty links: structurally touched by events, plus any link whose
    //    post-MADD residual moved in bits.
    link_dirty.clear();
    link_dirty.resize(nl, false);
    for &l in ctx.dirty_links {
        link_dirty[l.index()] = true;
    }
    debug_assert_eq!(inc.prev_residual.len(), nl);
    for l in 0..nl {
        if residual[l].to_bits() != inc.prev_residual[l].to_bits() {
            link_dirty[l] = true;
        }
    }

    // 5. Component split over the current graph; a component is dirty
    //    when any of its links is.
    uf.clear();
    uf.extend(0..nl as u32);
    for row in 0..n {
        let path = table.path(row);
        if path.is_empty() {
            continue;
        }
        let first = path[0].0;
        for l in &path[1..] {
            union(uf, first, l.0);
        }
    }
    comp_dirty.clear();
    comp_dirty.resize(nl, false);
    for l in 0..nl as u32 {
        if link_dirty[l as usize] {
            comp_dirty[find(uf, l) as usize] = true;
        }
    }

    // 6. Splice the previous backfill into clean rows (two-pointer merge
    //    on ascending slots) and re-solve the dirty components.
    carry.clear();
    carry.resize(n, f64::NAN);
    {
        let mut i = 0usize;
        for (row, &slot) in ctx.slots.iter().enumerate() {
            while i < inc.prev_slots.len() && inc.prev_slots[i] < slot {
                i += 1;
            }
            if i < inc.prev_slots.len() && inc.prev_slots[i] == slot {
                carry[row] = inc.prev_backfill[i];
            }
        }
    }
    extra.clear();
    extra.resize(n, 0.0);
    comp_rows.clear();
    let mut dirty_flows = 0u64;
    for row in 0..n {
        let path = table.path(row);
        if path.is_empty() {
            continue;
        }
        let root = find(uf, path[0].0);
        if comp_dirty[root as usize] {
            comp_rows.push((root, row as u32));
            dirty_flows += 1;
        } else {
            debug_assert!(
                !carry[row].is_nan(),
                "clean-component row without a cached backfill"
            );
            extra[row] = carry[row];
        }
    }
    comp_rows.sort_unstable();
    let rounds = solve_components(
        table,
        residual,
        comp_rows,
        extra,
        sub_link_ids,
        sub_caps,
        sub_off,
        sub_links,
        sub_rates,
        maxmin_ws,
    );
    for (r, &e) in rates.iter_mut().zip(extra.iter()) {
        if e.is_finite() {
            *r += e;
        }
    }

    // 7. Refresh the splice cache for the next call.
    inc.prev_slots.clear();
    inc.prev_slots.extend_from_slice(ctx.slots);
    inc.prev_backfill.clear();
    inc.prev_backfill.extend_from_slice(extra);
    inc.prev_residual.clear();
    inc.prev_residual.extend_from_slice(residual);
    (dirty_flows, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;
    use corral_model::Bytes;

    fn link(cap: f64) -> Link {
        Link::new(LinkClass::RackUp, 0, Bandwidth(cap))
    }

    /// Two coflows on one link: the smaller finishes first at full rate
    /// (plus the larger receives only backfill crumbs — here none, since the
    /// link saturates).
    #[test]
    fn sebf_prioritizes_small_coflow() {
        let links = vec![link(100.0)];
        let path = [LinkId(0)];
        let flows = [
            FlowView {
                path: &path,
                remaining: Bytes(1000.0),
                coflow: Some(CoflowId(0)),
            },
            FlowView {
                path: &path,
                remaining: Bytes(10.0),
                coflow: Some(CoflowId(1)),
            },
        ];
        let mut rates = [Bandwidth::ZERO; 2];
        VarysSebf.allocate(&links, &flows, &mut rates);
        // Coflow 1 (10 bytes) has smaller Γ: gets the whole link; coflow 0
        // gets the rest (0 here) — strictly prioritized, unlike fair share.
        assert!(rates[1].0 > rates[0].0);
        assert!((rates[0].0 + rates[1].0) <= 100.0 + 1e-6);
        assert!((rates[1].0 - 100.0).abs() < 1e-6);
    }

    /// MADD: within one coflow, flows get rates proportional to their
    /// remaining bytes so they finish together.
    #[test]
    fn madd_finishes_flows_together() {
        // Flow 0: 300 bytes on link0; flow 1: 100 bytes on link1.
        // Bottleneck is link0: τ = 300/100 = 3s. Flow rates: 100, 33.3.
        // Backfill then tops flow 1 up to link1's full capacity.
        let links = vec![link(100.0), link(100.0)];
        let p0 = [LinkId(0)];
        let p1 = [LinkId(1)];
        let flows = [
            FlowView {
                path: &p0,
                remaining: Bytes(300.0),
                coflow: Some(CoflowId(7)),
            },
            FlowView {
                path: &p1,
                remaining: Bytes(100.0),
                coflow: Some(CoflowId(7)),
            },
        ];
        let mut rates = [Bandwidth::ZERO; 2];
        VarysSebf.allocate(&links, &flows, &mut rates);
        assert!((rates[0].0 - 100.0).abs() < 1e-6);
        // MADD would give 33.3; work conservation raises it to 100.
        assert!((rates[1].0 - 100.0).abs() < 1e-6);
    }

    #[test]
    fn feasible_under_contention() {
        let links = vec![link(50.0), link(80.0)];
        let p0 = [LinkId(0), LinkId(1)];
        let p1 = [LinkId(0)];
        let p2 = [LinkId(1)];
        let flows = [
            FlowView {
                path: &p0,
                remaining: Bytes(500.0),
                coflow: Some(CoflowId(1)),
            },
            FlowView {
                path: &p1,
                remaining: Bytes(200.0),
                coflow: Some(CoflowId(2)),
            },
            FlowView {
                path: &p2,
                remaining: Bytes(900.0),
                coflow: None,
            },
        ];
        let mut rates = [Bandwidth::ZERO; 3];
        VarysSebf.allocate(&links, &flows, &mut rates);
        let load0 = rates[0].0 + rates[1].0;
        let load1 = rates[0].0 + rates[2].0;
        assert!(load0 <= 50.0 + 1e-6, "link0 overloaded: {load0}");
        assert!(load1 <= 80.0 + 1e-6, "link1 overloaded: {load1}");
        // Work conservation: at least one link saturated.
        assert!(load0 >= 50.0 - 1e-6 || load1 >= 80.0 - 1e-6);
    }

    #[test]
    fn coflowless_flows_still_progress() {
        let links = vec![link(10.0)];
        let path = [LinkId(0)];
        let flows = [FlowView {
            path: &path,
            remaining: Bytes(100.0),
            coflow: None,
        }];
        let mut rates = [Bandwidth::ZERO];
        VarysSebf.allocate(&links, &flows, &mut rates);
        assert!((rates[0].0 - 10.0).abs() < 1e-6);
    }
}
