//! Pluggable bandwidth allocation policies.
//!
//! The fabric calls the active [`RateAllocator`] whenever the flow set or
//! link capacities change; the allocator assigns every active flow an
//! instantaneous rate. Two policies are provided, matching the paper's
//! simulation study (§6.6):
//!
//! * [`FairShare`] — per-flow max-min fairness (the TCP stand-in);
//! * [`VarysSebf`] — Varys' coflow scheduling (SEBF + MADD + backfill),
//!   re-exported from [`crate::varys`].

use crate::flow::CoflowId;
use crate::link::{Link, LinkId};
use crate::maxmin;
pub use crate::varys::VarysSebf;
use corral_model::{Bandwidth, Bytes};

/// A read-only view of one active flow handed to the allocator.
#[derive(Debug, Clone, Copy)]
pub struct FlowView<'a> {
    /// Links the flow traverses (never empty: the fabric handles
    /// machine-local flows itself).
    pub path: &'a [LinkId],
    /// Bytes still to transfer.
    pub remaining: Bytes,
    /// Coflow membership, if any.
    pub coflow: Option<CoflowId>,
}

/// A bandwidth allocation policy.
pub trait RateAllocator: Send {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Assigns a rate to every flow. `links` carries effective capacities
    /// (background traffic already subtracted via
    /// [`Link::effective_capacity`]); `rates` has one slot per flow and is
    /// fully overwritten.
    fn allocate(&mut self, links: &[Link], flows: &[FlowView<'_>], rates: &mut [Bandwidth]);
}

/// Max-min fair sharing: the fluid proxy for long-lived TCP with ideal
/// congestion control.
#[derive(Debug, Default, Clone)]
pub struct FairShare;

impl RateAllocator for FairShare {
    fn name(&self) -> &'static str {
        "tcp-fair"
    }

    fn allocate(&mut self, links: &[Link], flows: &[FlowView<'_>], rates: &mut [Bandwidth]) {
        let caps: Vec<f64> = links.iter().map(|l| l.effective_capacity().0).collect();
        let paths: Vec<&[LinkId]> = flows.iter().map(|f| f.path).collect();
        let mut raw = vec![0.0; flows.len()];
        maxmin::max_min_rates_into(&caps, &paths, &mut raw);
        for (r, raw) in rates.iter_mut().zip(raw) {
            *r = Bandwidth(raw);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    #[test]
    fn fair_share_respects_background() {
        let mut uplink = Link::new(LinkClass::RackUp, 0, Bandwidth(100.0));
        uplink.background = Bandwidth(60.0);
        let links = vec![uplink];
        let path = [LinkId(0)];
        let flows = [
            FlowView {
                path: &path,
                remaining: Bytes(1000.0),
                coflow: None,
            },
            FlowView {
                path: &path,
                remaining: Bytes(1000.0),
                coflow: None,
            },
        ];
        let mut rates = [Bandwidth::ZERO; 2];
        FairShare.allocate(&links, &flows, &mut rates);
        // 40 available, split two ways.
        assert!((rates[0].0 - 20.0).abs() < 1e-6);
        assert!((rates[1].0 - 20.0).abs() < 1e-6);
    }
}
