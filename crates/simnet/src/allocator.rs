//! Pluggable bandwidth allocation policies.
//!
//! The fabric calls the active [`RateAllocator`] whenever the flow set or
//! link capacities change; the allocator assigns every active flow an
//! instantaneous rate. Two policies are provided, matching the paper's
//! simulation study (§6.6):
//!
//! * [`FairShare`] — per-flow max-min fairness (the TCP stand-in);
//! * [`VarysSebf`] — Varys' coflow scheduling (SEBF + MADD + backfill),
//!   re-exported from [`crate::varys`].

use crate::flow::CoflowId;
use crate::link::{Link, LinkId};
use crate::maxmin::{self, MaxMinScratch};
use crate::varys::VarysScratch;
pub use crate::varys::VarysSebf;
use corral_model::{Bandwidth, Bytes};

/// A read-only view of one active flow handed to the allocator.
#[derive(Debug, Clone, Copy)]
pub struct FlowView<'a> {
    /// Links the flow traverses (never empty: the fabric handles
    /// machine-local flows itself).
    pub path: &'a [LinkId],
    /// Bytes still to transfer.
    pub remaining: Bytes,
    /// Coflow membership, if any.
    pub coflow: Option<CoflowId>,
}

/// The active flow set in flat CSR form: flow `f` traverses
/// `flow_links[flow_off[f] .. flow_off[f+1]]`. Built by the fabric into
/// persistent buffers, so handing it to an allocator performs no
/// allocation. Flows appear in ascending [`FlowId`](crate::flow::FlowId)
/// order — the same order the legacy `&[FlowView]` slice used.
#[derive(Debug, Clone, Copy)]
pub struct FlowTable<'a> {
    /// Prefix offsets into `flow_links`; length is `len() + 1`.
    pub flow_off: &'a [u32],
    /// Concatenated per-flow link paths.
    pub flow_links: &'a [LinkId],
    /// Bytes still to transfer, per flow.
    pub remaining: &'a [f64],
    /// Coflow membership, per flow.
    pub coflow: &'a [Option<CoflowId>],
}

impl<'a> FlowTable<'a> {
    /// Number of flows in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.flow_off.len().saturating_sub(1)
    }

    /// True when the table holds no flows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The links flow `f` traverses.
    #[inline]
    pub fn path(&self, f: usize) -> &'a [LinkId] {
        &self.flow_links[self.flow_off[f] as usize..self.flow_off[f + 1] as usize]
    }
}

/// Reusable workspaces threaded through [`RateAllocator::allocate_table`].
/// Owned by the fabric and reused across recomputes, so steady-state rate
/// allocation performs no heap allocation.
#[derive(Debug, Default)]
pub struct AllocScratch {
    /// Effective link capacities, refreshed each call.
    pub caps: Vec<f64>,
    /// Progressive-filling workspace (CSR link→flow index).
    pub maxmin: MaxMinScratch,
    /// Varys grouping/ordering workspace.
    pub varys: VarysScratch,
}

impl AllocScratch {
    /// Fresh, empty workspaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freeze rounds executed by the most recent max-min run (including the
    /// backfill pass for Varys).
    pub fn last_rounds(&self) -> u64 {
        self.maxmin.last_rounds()
    }

    /// Total reserved capacity across all scratch buffers, in elements.
    /// Growth of this number indicates a (re)allocation; a flat reading
    /// across recomputes certifies the steady state is allocation-free.
    pub fn footprint(&self) -> usize {
        self.caps.capacity() + self.maxmin.footprint() + self.varys.footprint()
    }

    /// Refreshes `caps` from the link table without reallocating once
    /// capacity suffices.
    pub(crate) fn refresh_caps(&mut self, links: &[Link]) {
        self.caps.clear();
        self.caps
            .extend(links.iter().map(|l| l.effective_capacity().0));
    }
}

/// Event delta handed to [`RateAllocator::allocate_dirty`]: which flows
/// arrived or departed since the previous recompute, which links those
/// events touched, and whether effective capacities moved. Group keys are
/// the fabric's stable per-coflow keys (synthetic singleton keys for
/// coflow-less flows), so an allocator can dirty exactly the touched
/// groups. All slot lists ride ascending flow-id order.
#[derive(Debug, Clone, Copy)]
pub struct DirtyCtx<'a> {
    /// Fabric flow slot of each CSR row, ascending (parallel to `rates`).
    pub slots: &'a [u32],
    /// Row index per fabric slot; `u32::MAX` when the slot has no row
    /// (departed, local, or never-networked flows).
    pub row_of: &'a [u32],
    /// Flows admitted since the last recompute, `(group_key, slot)` in
    /// admission (= ascending slot) order. Flows that already departed
    /// again are filtered out by the fabric.
    pub added: &'a [(u64, u32)],
    /// Flows departed (completed or cancelled) since the last recompute,
    /// `(group_key, slot)` in event order.
    pub departed: &'a [(u64, u32)],
    /// Links touched by arrivals/departures/background events since the
    /// last recompute (may contain duplicates).
    pub dirty_links: &'a [LinkId],
    /// Effective link capacities changed since the last recompute
    /// (background-traffic epoch); invalidates every cached residual.
    pub caps_changed: bool,
}

/// What [`RateAllocator::allocate_dirty`] actually did. The fabric uses
/// this to attribute the recompute to the right probe counter and stats
/// bucket; in every case `rates` is fully written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirtyOutcome {
    /// The allocator has no incremental form; the default full solve ran.
    Unsupported,
    /// The dirtied priority boundary covered the whole order (capacity
    /// change or cold cache): a full pass ran and rebuilt the caches.
    Full {
        /// Max-min freeze rounds executed across all component solves.
        rounds: u64,
    },
    /// Coflow-local incremental solve: only dirtied groups were
    /// re-ranked and only dirtied components re-solved.
    Incremental {
        /// Flows living in re-solved components (the dirty set).
        dirty_flows: u64,
        /// Max-min freeze rounds executed across the dirty components.
        rounds: u64,
    },
}

/// A bandwidth allocation policy.
pub trait RateAllocator: Send {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Assigns a rate to every flow. `links` carries effective capacities
    /// (background traffic already subtracted via
    /// [`Link::effective_capacity`]); `rates` has one slot per flow and is
    /// fully overwritten.
    fn allocate(&mut self, links: &[Link], flows: &[FlowView<'_>], rates: &mut [Bandwidth]);

    /// Scratch-carrying entry point used by the fabric's hot path. The
    /// default implementation materializes `FlowView`s and forwards to
    /// [`allocate`](Self::allocate) — correct but allocating; fast policies
    /// override it to work directly on the CSR table.
    fn allocate_table(
        &mut self,
        links: &[Link],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        let _ = scratch;
        let views: Vec<FlowView<'_>> = (0..table.len())
            .map(|f| FlowView {
                path: table.path(f),
                remaining: Bytes(table.remaining[f]),
                coflow: table.coflow[f],
            })
            .collect();
        let mut bw = vec![Bandwidth::ZERO; views.len()];
        self.allocate(links, &views, &mut bw);
        for (r, b) in rates.iter_mut().zip(bw) {
            *r = b.0;
        }
    }

    /// True when the policy's rates depend only on flow paths and
    /// effective link capacities — not on remaining bytes or coflow
    /// grouping. Memoryless policies decompose over connected components
    /// of the link↔flow graph, which is what the fabric's incremental
    /// recompute exploits; policies with cross-component coupling (Varys'
    /// SEBF ordering) instead advertise a coflow-local incremental form
    /// via [`coflow_incremental`](Self::coflow_incremental), or keep the
    /// eager full solve.
    fn memoryless(&self) -> bool {
        false
    }

    /// True when the policy implements the coflow-granular
    /// [`allocate_dirty`](Self::allocate_dirty) entry point. The fabric
    /// then runs `Mode::CoflowIncremental`: lazy byte accounting with
    /// per-coflow dirty tracking instead of eager full recomputes.
    fn coflow_incremental(&self) -> bool {
        false
    }

    /// Coflow-granular incremental entry point. Given the full current
    /// CSR `table` plus the event delta in `ctx`, writes every rate in
    /// `rates` — re-ranking only the touched coflows and re-solving only
    /// the dirtied components when possible. The default falls back to
    /// [`allocate_table`](Self::allocate_table) (a full solve) so
    /// FairShare and future zoo policies are untouched.
    fn allocate_dirty(
        &mut self,
        links: &[Link],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
        ctx: &DirtyCtx<'_>,
    ) -> DirtyOutcome {
        let _ = ctx;
        self.allocate_table(links, table, rates, scratch);
        DirtyOutcome::Unsupported
    }

    /// From-scratch reference solve used by the fabric's shadow oracle
    /// against the coflow-incremental path. Must compute the same rates
    /// [`allocate_dirty`](Self::allocate_dirty) converges to, using no
    /// state cached across calls (the oracle owns dedicated scratch and
    /// this method must reset any incremental cache living in it).
    fn allocate_from_scratch(
        &mut self,
        links: &[Link],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        self.allocate_table(links, table, rates, scratch);
    }

    /// Solves one connected component on its compacted subproblem:
    /// `caps[l]` is the effective capacity of compact link `l`, and the
    /// table's `flow_links` are compact link ids in `0..caps.len()`.
    /// Only called when [`memoryless`](Self::memoryless) returns true.
    fn allocate_component(
        &mut self,
        caps: &[f64],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        let _ = (caps, table, rates, scratch);
        unreachable!("allocate_component called on a non-memoryless allocator");
    }
}

/// Max-min fair sharing: the fluid proxy for long-lived TCP with ideal
/// congestion control.
#[derive(Debug, Default, Clone)]
pub struct FairShare;

impl RateAllocator for FairShare {
    fn name(&self) -> &'static str {
        "tcp-fair"
    }

    fn allocate(&mut self, links: &[Link], flows: &[FlowView<'_>], rates: &mut [Bandwidth]) {
        let caps: Vec<f64> = links.iter().map(|l| l.effective_capacity().0).collect();
        let paths: Vec<&[LinkId]> = flows.iter().map(|f| f.path).collect();
        let mut raw = vec![0.0; flows.len()];
        maxmin::max_min_rates_into(&caps, &paths, &mut raw);
        for (r, raw) in rates.iter_mut().zip(raw) {
            *r = Bandwidth(raw);
        }
    }

    fn allocate_table(
        &mut self,
        links: &[Link],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        scratch.refresh_caps(links);
        maxmin::max_min_rates_csr(
            &scratch.caps,
            table.flow_off,
            table.flow_links,
            rates,
            &mut scratch.maxmin,
        );
    }

    fn memoryless(&self) -> bool {
        true
    }

    fn allocate_component(
        &mut self,
        caps: &[f64],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        maxmin::max_min_rates_csr(
            caps,
            table.flow_off,
            table.flow_links,
            rates,
            &mut scratch.maxmin,
        );
    }
}

/// The pre-optimization fair-share path, kept verbatim as a benchmarking
/// and golden-test oracle: it deliberately does *not* override
/// [`RateAllocator::allocate_table`], so every recompute goes through the
/// legacy `FlowView` + `Vec<Vec<u32>>` machinery. It reports the same
/// policy name as [`FairShare`] so run summaries are comparable verbatim.
#[derive(Debug, Default, Clone)]
pub struct ReferenceFairShare;

impl RateAllocator for ReferenceFairShare {
    fn name(&self) -> &'static str {
        "tcp-fair"
    }

    fn allocate(&mut self, links: &[Link], flows: &[FlowView<'_>], rates: &mut [Bandwidth]) {
        FairShare.allocate(links, flows, rates);
    }

    fn memoryless(&self) -> bool {
        true
    }

    fn allocate_component(
        &mut self,
        caps: &[f64],
        table: &FlowTable<'_>,
        rates: &mut [f64],
        scratch: &mut AllocScratch,
    ) {
        let _ = scratch;
        let paths: Vec<&[LinkId]> = (0..table.len()).map(|f| table.path(f)).collect();
        maxmin::max_min_rates_into(caps, &paths, rates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    #[test]
    fn fair_share_respects_background() {
        let mut uplink = Link::new(LinkClass::RackUp, 0, Bandwidth(100.0));
        uplink.background = Bandwidth(60.0);
        let links = vec![uplink];
        let path = [LinkId(0)];
        let flows = [
            FlowView {
                path: &path,
                remaining: Bytes(1000.0),
                coflow: None,
            },
            FlowView {
                path: &path,
                remaining: Bytes(1000.0),
                coflow: None,
            },
        ];
        let mut rates = [Bandwidth::ZERO; 2];
        FairShare.allocate(&links, &flows, &mut rates);
        // 40 available, split two ways.
        assert!((rates[0].0 - 20.0).abs() < 1e-6);
        assert!((rates[1].0 - 20.0).abs() < 1e-6);
    }
}
