//! Deterministic discrete-event kernel.
//!
//! A minimal priority-queue scheduler: events are `(time, payload)` pairs;
//! equal-time events fire in insertion order (a strictly monotone sequence
//! number breaks ties), which is what makes whole-simulation runs
//! reproducible bit-for-bit. The payload type is generic so higher layers
//! (the cluster engine) define their own event enums.

use corral_model::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event queue.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the *earliest* event is popped
        // first, breaking ties by insertion sequence.
        other
            .time
            .total_cmp(self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use corral_simnet::EventQueue;
/// use corral_model::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::secs(2.0), "b");
/// q.schedule(SimTime::secs(1.0), "a");
/// q.schedule(SimTime::secs(2.0), "c"); // same time as "b": insertion order
/// assert_eq!(q.pop().unwrap(), (SimTime::secs(1.0), "a"));
/// assert_eq!(q.pop().unwrap(), (SimTime::secs(2.0), "b"));
/// assert_eq!(q.pop().unwrap(), (SimTime::secs(2.0), "c"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN or earlier than the current time (scheduling
    /// into the past is always a simulator bug).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(!at.0.is_nan(), "scheduled event at NaN time");
        assert!(
            at.0 >= self.now.0,
            "scheduled event in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedules `payload` `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: E) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time.0 >= self.now.0);
        self.now = e.time;
        Some((e.time, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5.0), 5);
        q.schedule(SimTime(1.0), 1);
        q.schedule(SimTime(3.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(2.0));
        // schedule_after is relative to the advanced clock.
        q.schedule_after(SimTime(1.5), ());
        assert_eq!(q.peek_time(), Some(SimTime(3.5)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(2.0), ());
        q.pop();
        q.schedule(SimTime(1.0), ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime(f64::NAN), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
