//! Deterministic discrete-event kernel.
//!
//! Two schedulers live here:
//!
//! * [`CalendarQueue`] — a bucketed (calendar-queue) future-event list.
//!   Events hash into day-wide buckets by timestamp, so a pop scans one
//!   short bucket instead of sifting an `O(log n)` heap; bucket count and
//!   width resize deterministically from the queue contents alone. This
//!   is the production scheduler behind [`EventQueue`] and the fabric's
//!   completion calendar.
//! * [`HeapEventQueue`] — the original `BinaryHeap` implementation, kept
//!   verbatim as the ordering oracle for property tests.
//!
//! Both pop events in `(time, insertion order)` order: equal-time events
//! fire in insertion order (a strictly monotone sequence number breaks
//! ties), which is what makes whole-simulation runs reproducible
//! bit-for-bit. The payload type is generic so higher layers (the cluster
//! engine) define their own event enums.

use corral_model::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// An entry in the heap-based event queue.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the *earliest* event is popped
        // first, breaking ties by insertion sequence.
        other
            .time
            .total_cmp(self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One scheduled item in a [`CalendarQueue`].
#[derive(Debug)]
struct CalItem<E> {
    time: f64,
    seq: u64,
    payload: E,
}

/// Minimum bucket count; the queue never shrinks below this.
const MIN_BUCKETS: usize = 16;
/// Floor on the bucket width so day indices stay well inside `u64`.
const MIN_WIDTH: f64 = 1e-6;

/// A bucketed (calendar-queue) priority queue over non-negative `f64`
/// timestamps, popping in exact `(time, insertion order)` order.
///
/// Items land in the bucket `floor(time / width) % nbuckets`; a pop scans
/// the current day's bucket for its minimum, advancing day by day through
/// empty buckets and falling back to a global scan after a full wrap (so
/// sparse far-future schedules stay `O(n)` worst case, not unbounded).
/// Bucket count doubles/halves and the width is re-derived from the live
/// contents when occupancy drifts — both decisions depend only on the
/// queued items, never on wall-clock, so runs stay deterministic.
///
/// Non-finite timestamps (`+inf`) are parked aside and surface, in
/// insertion order, only after every finite item has been popped — the
/// same order a comparison-based queue gives them.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<CalItem<E>>>,
    width: f64,
    /// Lower bound on `day_of(item.time)` over all finite items; advanced
    /// by pops, reset by rebuilds.
    day: u64,
    finite: usize,
    park: VecDeque<CalItem<E>>,
    seq: u64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            day: 0,
            finite: 0,
            park: VecDeque::new(),
            seq: 0,
        }
    }

    #[inline]
    fn day_of(&self, time: f64) -> u64 {
        // `as` saturates, so astronomically late times all share the last
        // day; the in-bucket min scan keeps ordering exact regardless.
        (time / self.width) as u64
    }

    /// Number of pending items (finite and parked).
    pub fn len(&self) -> usize {
        self.finite + self.park.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or negative.
    pub fn push(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "scheduled event at NaN time");
        assert!(time >= 0.0, "scheduled event at negative time {time}");
        let seq = self.seq;
        self.seq += 1;
        let item = CalItem { time, seq, payload };
        if !time.is_finite() {
            self.park.push_back(item);
            return;
        }
        let day = self.day_of(time);
        // A push may land before the lazily advanced day cursor would
        // ever look (the cursor only moves forward); pull it back so the
        // new item is found. Callers never push before the last popped
        // time, so this stays monotone per pop.
        if day < self.day {
            self.day = day;
        }
        let nb = self.buckets.len();
        self.buckets[(day % nb as u64) as usize].push(item);
        self.finite += 1;
        if self.finite > 2 * nb {
            self.rebuild(nb * 2);
        }
    }

    /// Locates the minimum `(time, seq)` finite item: `(bucket, index)`.
    fn locate_min(&self) -> Option<(usize, usize)> {
        if self.finite == 0 {
            return None;
        }
        let nb = self.buckets.len() as u64;
        let mut day = self.day;
        for _ in 0..nb {
            let b = (day % nb) as usize;
            let mut best: Option<(usize, f64, u64)> = None;
            for (i, it) in self.buckets[b].iter().enumerate() {
                if self.day_of(it.time) != day {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, t, s)) => match it.time.total_cmp(&t) {
                        Ordering::Less => true,
                        Ordering::Equal => it.seq < s,
                        Ordering::Greater => false,
                    },
                };
                if better {
                    best = Some((i, it.time, it.seq));
                }
            }
            if let Some((i, _, _)) = best {
                return Some((b, i));
            }
            day = day.saturating_add(1);
        }
        // Full wrap without a hit: the next item is over a calendar year
        // away. Global scan.
        let mut best: Option<(usize, usize, f64, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, it) in bucket.iter().enumerate() {
                let better = match best {
                    None => true,
                    Some((_, _, t, s)) => match it.time.total_cmp(&t) {
                        Ordering::Less => true,
                        Ordering::Equal => it.seq < s,
                        Ordering::Greater => false,
                    },
                };
                if better {
                    best = Some((b, i, it.time, it.seq));
                }
            }
        }
        best.map(|(b, i, _, _)| (b, i))
    }

    /// Timestamp and payload of the next item without removing it.
    pub fn peek(&self) -> Option<(f64, &E)> {
        match self.locate_min() {
            Some((b, i)) => {
                let it = &self.buckets[b][i];
                Some((it.time, &it.payload))
            }
            None => self.park.front().map(|it| (it.time, &it.payload)),
        }
    }

    /// Removes and returns the next item.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        match self.locate_min() {
            Some((b, i)) => {
                let it = self.buckets[b].swap_remove(i);
                self.finite -= 1;
                self.day = self.day_of(it.time);
                let nb = self.buckets.len();
                if nb > MIN_BUCKETS && self.finite < nb / 4 {
                    self.rebuild(nb / 2);
                }
                Some((it.time, it.payload))
            }
            None => self.park.pop_front().map(|it| (it.time, it.payload)),
        }
    }

    /// Keeps only items whose payload satisfies `f`; used to vacuum
    /// lazily invalidated entries.
    pub fn retain(&mut self, mut f: impl FnMut(&E) -> bool) {
        for bucket in &mut self.buckets {
            bucket.retain(|it| f(&it.payload));
        }
        self.park.retain(|it| f(&it.payload));
        self.finite = self.buckets.iter().map(Vec::len).sum();
        let nb = self.buckets.len();
        if nb > MIN_BUCKETS && self.finite < nb / 4 {
            self.rebuild((nb / 2).max(MIN_BUCKETS));
        }
    }

    /// Re-buckets every finite item into `nb` buckets, re-deriving the
    /// width from the live span so occupancy stays near one item per
    /// bucket-day. Purely content-driven ⇒ deterministic.
    fn rebuild(&mut self, nb: usize) {
        let mut items: Vec<CalItem<E>> = Vec::with_capacity(self.finite);
        for bucket in &mut self.buckets {
            items.append(bucket);
        }
        if self.buckets.len() != nb {
            self.buckets = (0..nb).map(|_| Vec::new()).collect();
        }
        if !items.is_empty() {
            let mut tmin = f64::INFINITY;
            let mut tmax = f64::NEG_INFINITY;
            for it in &items {
                tmin = tmin.min(it.time);
                tmax = tmax.max(it.time);
            }
            let span = tmax - tmin;
            if span > 0.0 {
                self.width = (span / items.len() as f64 * 4.0).max(MIN_WIDTH);
            }
            self.day = u64::MAX;
            for it in &items {
                self.day = self.day.min(self.day_of(it.time));
            }
        } else {
            self.day = 0;
        }
        self.finite = items.len();
        let nb64 = nb as u64;
        for it in items {
            let b = (self.day_of(it.time) % nb64) as usize;
            self.buckets[b].push(it);
        }
    }

    /// Reserved element capacity across all buckets (scratch-footprint
    /// accounting).
    pub fn footprint(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum::<usize>() + self.park.capacity()
    }
}

/// A deterministic future-event list (calendar-queue backed).
///
/// ```
/// use corral_simnet::EventQueue;
/// use corral_model::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::secs(2.0), "b");
/// q.schedule(SimTime::secs(1.0), "a");
/// q.schedule(SimTime::secs(2.0), "c"); // same time as "b": insertion order
/// assert_eq!(q.pop().unwrap(), (SimTime::secs(1.0), "a"));
/// assert_eq!(q.pop().unwrap(), (SimTime::secs(2.0), "b"));
/// assert_eq!(q.pop().unwrap(), (SimTime::secs(2.0), "c"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    cal: CalendarQueue<E>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            cal: CalendarQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time: the timestamp of the last popped event
    /// (zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is NaN or earlier than the current time (scheduling
    /// into the past is always a simulator bug).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(!at.0.is_nan(), "scheduled event at NaN time");
        assert!(
            at.0 >= self.now.0,
            "scheduled event in the past: {} < {}",
            at,
            self.now
        );
        self.cal.push(at.0, payload);
    }

    /// Schedules `payload` `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: E) {
        let at = self.now + delay;
        self.schedule(at, payload);
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.cal.peek().map(|(t, _)| SimTime(t))
    }

    /// Removes and returns the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, payload) = self.cal.pop()?;
        debug_assert!(t >= self.now.0);
        self.now = SimTime(t);
        Some((SimTime(t), payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.cal.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.cal.is_empty()
    }
}

/// The original `BinaryHeap`-backed event queue, kept verbatim as the
/// ordering oracle: property tests drive [`EventQueue`] and this queue
/// with identical schedules and assert identical pop streams.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`; same panics as
    /// [`EventQueue::schedule`].
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(!at.0.is_nan(), "scheduled event at NaN time");
        assert!(
            at.0 >= self.now.0,
            "scheduled event in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time.0 >= self.now.0);
        self.now = e.time;
        Some((e.time, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5.0), 5);
        q.schedule(SimTime(1.0), 1);
        q.schedule(SimTime(3.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(2.0));
        // schedule_after is relative to the advanced clock.
        q.schedule_after(SimTime(1.5), ());
        assert_eq!(q.peek_time(), Some(SimTime(3.5)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(2.0), ());
        q.pop();
        q.schedule(SimTime(1.0), ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime(f64::NAN), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1.0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn resize_preserves_order() {
        // Push enough to force several grows, interleave pops to force
        // shrinks, and check the stream stays sorted by (time, seq).
        let mut q = CalendarQueue::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..500 {
            let t = (rng() % 10_000) as f64 * 0.125;
            q.push(t, i);
        }
        let mut last = -1.0;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "pop stream went backwards: {t} after {last}");
            last = t;
            popped += 1;
            if popped == 250 {
                for j in 0..100 {
                    q.push(t + j as f64, 1000 + j);
                }
            }
        }
        assert_eq!(popped, 600);
    }

    #[test]
    fn infinite_times_pop_last_in_insertion_order() {
        let mut q = CalendarQueue::new();
        q.push(f64::INFINITY, "x");
        q.push(1.0, "a");
        q.push(f64::INFINITY, "y");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "x", "y"]);
    }

    #[test]
    fn sparse_far_future_pops_via_global_scan() {
        let mut q = CalendarQueue::new();
        q.push(0.5, 1);
        q.push(1.0e9, 2); // over a full wrap away at width 1.0
        assert_eq!(q.pop(), Some((0.5, 1)));
        assert_eq!(q.peek().map(|(t, _)| t), Some(1.0e9));
        assert_eq!(q.pop(), Some((1.0e9, 2)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn retain_drops_and_keeps() {
        let mut q = CalendarQueue::new();
        for i in 0..50 {
            q.push(i as f64, i);
        }
        q.retain(|&i| i % 2 == 0);
        assert_eq!(q.len(), 25);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..50).step_by(2).collect::<Vec<_>>());
    }
}
