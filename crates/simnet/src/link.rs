//! Directed link state.

use corral_model::{Bandwidth, Bytes};
use serde::{Deserialize, Serialize};

/// Index of a directed link in the [`Topology`](crate::Topology) table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Raw table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The role a directed link plays in the folded-CLOS fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Machine NIC → top-of-rack switch (transmit direction).
    MachineUp,
    /// Top-of-rack switch → machine NIC (receive direction).
    MachineDown,
    /// Rack uplink: ToR → core (aggregated, oversubscribed).
    RackUp,
    /// Rack downlink: core → ToR (aggregated, oversubscribed).
    RackDown,
}

impl LinkClass {
    /// True for the two rack/core (oversubscribed) classes — traffic on
    /// these links is by definition *cross-rack* traffic.
    pub fn is_core(self) -> bool {
        matches!(self, LinkClass::RackUp | LinkClass::RackDown)
    }
}

/// A directed link: nominal capacity, a background-traffic reservation that
/// reduces what job flows may use, and a carried-bytes accumulator for
/// utilization statistics.
#[derive(Debug, Clone)]
pub struct Link {
    /// Role in the fabric.
    pub class: LinkClass,
    /// Index of the machine (for NIC links) or rack (for core links) the
    /// link belongs to.
    pub owner: usize,
    /// Nominal capacity.
    pub capacity: Bandwidth,
    /// Bandwidth currently consumed by background (non-job) traffic;
    /// subtracted from `capacity` before allocating job flows.
    pub background: Bandwidth,
    /// Total bytes of job traffic carried so far.
    pub carried: Bytes,
}

impl Link {
    /// Creates an idle link.
    pub fn new(class: LinkClass, owner: usize, capacity: Bandwidth) -> Self {
        Link {
            class,
            owner,
            capacity,
            background: Bandwidth::ZERO,
            carried: Bytes::ZERO,
        }
    }

    /// Capacity available to job flows: nominal minus background, floored at
    /// a tiny positive value so allocation never divides by zero (a fully
    /// saturated link still drains, just arbitrarily slowly).
    pub fn effective_capacity(&self) -> Bandwidth {
        Bandwidth((self.capacity.0 - self.background.0).max(Self::MIN_CAPACITY))
    }

    /// Floor for effective capacity, in bytes/second.
    pub const MIN_CAPACITY: f64 = 1.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_capacity_subtracts_background() {
        let mut l = Link::new(LinkClass::RackUp, 0, Bandwidth::gbps(60.0));
        assert_eq!(l.effective_capacity(), l.capacity);
        l.background = Bandwidth::gbps(30.0);
        assert!((l.effective_capacity().as_gbps() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn effective_capacity_never_zero() {
        let mut l = Link::new(LinkClass::RackUp, 0, Bandwidth::gbps(1.0));
        l.background = Bandwidth::gbps(5.0); // over-reserved
        assert!(l.effective_capacity().0 >= Link::MIN_CAPACITY);
    }

    #[test]
    fn core_classification() {
        assert!(LinkClass::RackUp.is_core());
        assert!(LinkClass::RackDown.is_core());
        assert!(!LinkClass::MachineUp.is_core());
        assert!(!LinkClass::MachineDown.is_core());
    }
}
