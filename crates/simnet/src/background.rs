//! Background (non-job) traffic models.
//!
//! Production clusters lose a large fraction of core bandwidth to background
//! transfers — "up to 50% of the cross-rack bandwidth" (§1, citing Sinbad).
//! The paper's testbed emulates this (§6.1) and Figure 12 sweeps the
//! per-rack background load over 30/35/40 Gbps of the 60 Gbps uplinks.
//!
//! We model background traffic as a capacity reservation on rack core links
//! rather than as explicit flows: an amount `b(t)` is subtracted from each
//! rack up/downlink before job flows are allocated. Two temporal shapes are
//! provided:
//!
//! * [`BackgroundModel::Constant`] — a fixed reservation (Fig. 12 style);
//! * [`BackgroundModel::OnOff`] — a seeded square wave alternating between
//!   a high and a low reservation, introducing temporal variability while
//!   remaining fully deterministic.
//!
//! The cluster engine samples the model at its change points and pushes the
//! reservation into the fabric via [`crate::Fabric::set_rack_background`].

use corral_model::{Bandwidth, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A deterministic background-traffic generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BackgroundModel {
    /// No background traffic.
    None,
    /// Every rack core link permanently loses `per_rack` of capacity.
    Constant {
        /// Reservation applied to each rack uplink and downlink.
        per_rack: Bandwidth,
    },
    /// Square wave: each rack independently alternates between `high` and
    /// `low` reservations with exponentially distributed dwell times of the
    /// given mean, from a per-rack seeded RNG.
    OnOff {
        /// Reservation while "on".
        high: Bandwidth,
        /// Reservation while "off".
        low: Bandwidth,
        /// Mean dwell time in each state.
        mean_dwell: SimTime,
        /// RNG seed (combined with the rack index).
        seed: u64,
    },
}

impl BackgroundModel {
    /// The constant-equivalent load (used by planners that need a single
    /// number, e.g. for latency estimation).
    pub fn mean_load(&self) -> Bandwidth {
        match self {
            BackgroundModel::None => Bandwidth::ZERO,
            BackgroundModel::Constant { per_rack } => *per_rack,
            BackgroundModel::OnOff { high, low, .. } => (*high + *low) / 2.0,
        }
    }

    /// Generates the piecewise-constant reservation schedule for one rack up
    /// to `horizon`: a list of `(time, reservation)` change points starting
    /// at time zero. Constant models produce a single entry.
    pub fn schedule_for_rack(&self, rack: usize, horizon: SimTime) -> Vec<(SimTime, Bandwidth)> {
        match self {
            BackgroundModel::None => vec![(SimTime::ZERO, Bandwidth::ZERO)],
            BackgroundModel::Constant { per_rack } => vec![(SimTime::ZERO, *per_rack)],
            BackgroundModel::OnOff {
                high,
                low,
                mean_dwell,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(
                    seed.wrapping_mul(0x9E3779B97F4A7C15)
                        ^ (rack as u64).wrapping_mul(0xD1B54A32D192ED03),
                );
                let mut t = SimTime::ZERO;
                let mut on = rng.gen_bool(0.5);
                let mut out = Vec::new();
                while t < horizon {
                    out.push((t, if on { *high } else { *low }));
                    // Exponential dwell via inverse transform.
                    let u: f64 = rng.gen_range(1e-12..1.0);
                    t += *mean_dwell * (-u.ln());
                    on = !on;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule() {
        let m = BackgroundModel::Constant {
            per_rack: Bandwidth::gbps(30.0),
        };
        let s = m.schedule_for_rack(3, SimTime::hours(1.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, SimTime::ZERO);
        assert_eq!(s[0].1, Bandwidth::gbps(30.0));
        assert_eq!(m.mean_load(), Bandwidth::gbps(30.0));
    }

    #[test]
    fn onoff_is_deterministic_and_alternates() {
        let m = BackgroundModel::OnOff {
            high: Bandwidth::gbps(40.0),
            low: Bandwidth::gbps(10.0),
            mean_dwell: SimTime::secs(60.0),
            seed: 42,
        };
        let a = m.schedule_for_rack(0, SimTime::hours(1.0));
        let b = m.schedule_for_rack(0, SimTime::hours(1.0));
        assert_eq!(a, b, "same seed+rack must give the same schedule");
        assert!(a.len() > 5, "an hour should hold many ~60s dwells");
        for w in a.windows(2) {
            assert!(w[1].0 > w[0].0, "change points must increase");
            assert_ne!(w[1].1, w[0].1, "states must alternate");
        }
        // Different racks see different schedules.
        let c = m.schedule_for_rack(1, SimTime::hours(1.0));
        assert_ne!(a, c);
        assert!((m.mean_load().as_gbps() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn none_is_zero() {
        let m = BackgroundModel::None;
        assert_eq!(m.mean_load(), Bandwidth::ZERO);
        assert_eq!(
            m.schedule_for_rack(0, SimTime::hours(1.0)),
            vec![(SimTime::ZERO, Bandwidth::ZERO)]
        );
    }
}
