//! # corral-simnet
//!
//! A deterministic, event-driven, flow-level ("fluid") network simulator for
//! datacenter fabrics, built for the Corral reproduction (SIGCOMM 2015,
//! §6.6: *"we built a flow-based event simulator ... with pluggable policies
//! for the job and network schedulers"*).
//!
//! ## Model
//!
//! The fabric is a folded-CLOS topology derived from a
//! [`ClusterConfig`](corral_model::ClusterConfig): every machine has a
//! full-duplex NIC link to its top-of-rack switch (capacity `B` each
//! direction) and every rack has an aggregated full-duplex uplink to a
//! non-blocking core (capacity `k·B/V`, where `V` is the oversubscription
//! ratio). A flow between two machines traverses at most four links:
//! source NIC up → source rack up → destination rack down → destination
//! NIC down (two links if intra-rack, zero if machine-local).
//!
//! Flows are *fluid*: each carries a remaining byte count and is assigned an
//! instantaneous rate by a pluggable [`allocator`]:
//!
//! * [`allocator::FairShare`] — progressive-filling max-min fairness, the
//!   standard fluid proxy for long-lived TCP (what the paper calls
//!   "a max-min fair bandwidth allocation mechanism to emulate TCP").
//! * [`allocator::VarysSebf`] — Varys' Smallest Effective Bottleneck First
//!   coflow ordering with MADD per-coflow rate assignment and work-conserving
//!   max-min backfill.
//!
//! Rates are recomputed whenever the flow set or link capacities change;
//! between changes the system evolves linearly, so the next flow completion
//! is computed in closed form — this is what makes the simulation
//! event-driven rather than time-stepped.
//!
//! ## Supported / not supported
//!
//! In the spirit of exhaustive feature documentation (see smoltcp):
//!
//! * Intra-rack full bisection bandwidth — **supported** (machine links only).
//! * Rack-to-core oversubscription — **supported**.
//! * Background (non-job) traffic occupying core bandwidth — **supported**
//!   via per-link capacity reservations ([`Fabric::set_background`]).
//! * Per-link and per-tag byte accounting (cross-rack bytes, Fig. 7a) —
//!   **supported**.
//! * Coflows (register/complete, SEBF ordering) — **supported**.
//! * Packet-level effects (RTT, loss, incast, queueing) — **not modeled**;
//!   the fluid approximation is the one the paper's own simulator uses.
//! * Multi-path / ECMP imbalance — **not modeled** (core is non-blocking).
//!
//! ## Determinism
//!
//! All iteration is over dense integer-indexed tables; no hash-map iteration
//! order leaks into results. Equal-time events are ordered by insertion
//! sequence number. Two runs with the same inputs produce bit-identical
//! traces (asserted by integration tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod background;
pub mod engine;
pub mod fabric;
pub mod flow;
pub mod link;
pub mod maxmin;
pub mod stats;
pub mod topology;
pub mod varys;

pub use allocator::{
    AllocScratch, DirtyCtx, DirtyOutcome, FairShare, FlowTable, RateAllocator,
    ReferenceFairShare, VarysSebf,
};
pub use engine::{CalendarQueue, EventQueue, HeapEventQueue};
pub use fabric::{CompletedFlow, Fabric};
pub use flow::{CoflowId, FlowKind, FlowSpec, FlowTag};
pub use link::{LinkClass, LinkId};
pub use maxmin::MaxMinScratch;
pub use stats::FabricStats;
pub use topology::Topology;
