//! Cross-cell aggregation: the statistics a seed-pooled experiment
//! reports per configuration.
//!
//! Everything here is deterministic given the input slice — sorting is
//! by `f64::total_cmp` and the percentile rule is the same linear
//! interpolation the cluster metrics use — so aggregated tables are as
//! reproducible as the per-cell results feeding them.

/// Summary statistics of one metric across sweep cells (typically one
/// value per seed).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Half-width of the normal-approximation 95% confidence interval
    /// of the mean: `1.96 · std / √n` (0 for n ≤ 1). With seed pools of
    /// 8–16 this is an approximation, not a t-interval — it is reported
    /// as a stability gauge, not a significance test.
    pub ci95: f64,
}

impl Summary {
    /// Summarizes `values` (need not be sorted). Empty input yields the
    /// all-zero summary with `n == 0`.
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                ci95: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std,
            p50: percentile(&sorted, 50.0),
            p90: percentile(&sorted, 90.0),
            p99: percentile(&sorted, 99.0),
            ci95: if n > 1 {
                1.96 * std / (n as f64).sqrt()
            } else {
                0.0
            },
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.1} ±{:.1} | p50 {:.1} p90 {:.1} p99 {:.1} (n={})",
            self.mean, self.ci95, self.p50, self.p90, self.p99, self.n
        )
    }
}

/// The `p`-th percentile (0–100) of an ascending-sorted sample, linear
/// interpolation between ranks; `0.0` on empty input.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[4.0, 2.0, 1.0, 3.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        // std of {1,2,3,4} with n-1: sqrt(5/3)
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((s.ci95 - 1.96 * s.std / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let one = Summary::of(&[7.0]);
        assert_eq!(one.n, 1);
        assert_eq!(one.mean, 7.0);
        assert_eq!(one.p99, 7.0);
        assert_eq!(one.std, 0.0);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 50.0), 30.0);
        assert_eq!(percentile(&sorted, 100.0), 50.0);
        assert!((percentile(&sorted, 90.0) - 46.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let text = format!("{s}");
        assert!(text.contains("mean 2.0"), "{text}");
        assert!(text.contains("n=3"), "{text}");
    }
}
