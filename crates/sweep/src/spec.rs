//! Cartesian sweep grids: a base configuration plus any number of axes,
//! expanded into indexed cells in a fixed, documented order.
//!
//! The expansion order is row-major over the axes **in the order they
//! were added**: the first axis varies slowest, the last fastest. That
//! order is part of the determinism contract — cell index ↔ coordinate
//! mapping never depends on execution.

/// One materialized point of a sweep grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell<P> {
    /// Flat index in expansion order (row-major, first axis slowest).
    pub index: usize,
    /// Per-axis value indices, one per axis in declaration order.
    pub coords: Vec<usize>,
    /// The fully applied configuration for this cell.
    pub cfg: P,
}

/// Applies an axis's `value_idx`-th value onto a config.
type ApplyFn<P> = Box<dyn Fn(&mut P, usize)>;

struct Axis<P> {
    name: String,
    len: usize,
    apply: ApplyFn<P>,
}

/// Builder for a cartesian grid over parameter axes.
///
/// Each axis is a list of values plus a setter that writes one value
/// into the config; [`SweepSpec::cells`] clones the base once per cell
/// and applies every axis.
pub struct SweepSpec<P> {
    base: P,
    axes: Vec<Axis<P>>,
}

impl<P: Clone> SweepSpec<P> {
    /// A grid with no axes (one cell: the base itself).
    pub fn new(base: P) -> Self {
        SweepSpec {
            base,
            axes: Vec::new(),
        }
    }

    /// Adds an axis named `name` sweeping `values`; `set` writes one
    /// value into a config. Empty axes are rejected (they would make
    /// the whole grid empty by surprise).
    pub fn axis<V, S>(mut self, name: &str, values: Vec<V>, set: S) -> Self
    where
        V: 'static,
        S: Fn(&mut P, &V) + 'static,
    {
        assert!(!values.is_empty(), "axis {name:?} has no values");
        self.axes.push(Axis {
            name: name.to_string(),
            len: values.len(),
            apply: Box::new(move |cfg, i| set(cfg, &values[i])),
        });
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.axes.iter().map(|a| a.len).product()
    }

    /// Whether the grid is empty (never, given non-empty axes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Axis names in declaration order.
    pub fn axis_names(&self) -> Vec<&str> {
        self.axes.iter().map(|a| a.name.as_str()).collect()
    }

    /// The per-axis value indices of flat cell `index`.
    pub fn coords(&self, index: usize) -> Vec<usize> {
        let mut rem = index;
        let mut coords = vec![0; self.axes.len()];
        for (k, axis) in self.axes.iter().enumerate().rev() {
            coords[k] = rem % axis.len;
            rem /= axis.len;
        }
        coords
    }

    /// Materializes every cell, in index order.
    pub fn cells(&self) -> Vec<Cell<P>> {
        (0..self.len())
            .map(|index| {
                let coords = self.coords(index);
                let mut cfg = self.base.clone();
                for (axis, &ci) in self.axes.iter().zip(&coords) {
                    (axis.apply)(&mut cfg, ci);
                }
                Cell { index, coords, cfg }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Cfg {
        variant: &'static str,
        seed: u64,
        bg: f64,
    }

    fn base() -> Cfg {
        Cfg {
            variant: "none",
            seed: 0,
            bg: 0.0,
        }
    }

    #[test]
    fn expansion_is_row_major_first_axis_slowest() {
        let spec = SweepSpec::new(base())
            .axis("variant", vec!["a", "b"], |c: &mut Cfg, v| c.variant = v)
            .axis("seed", vec![1u64, 2, 3], |c: &mut Cfg, &s| c.seed = s);
        assert_eq!(spec.len(), 6);
        assert_eq!(spec.axis_names(), vec!["variant", "seed"]);
        let cells = spec.cells();
        let got: Vec<(&str, u64)> = cells.iter().map(|c| (c.cfg.variant, c.cfg.seed)).collect();
        assert_eq!(
            got,
            vec![("a", 1), ("a", 2), ("a", 3), ("b", 1), ("b", 2), ("b", 3)]
        );
        assert_eq!(cells[4].coords, vec![1, 1]);
        assert_eq!(cells[4].index, 4);
    }

    #[test]
    fn three_axes_compose_and_coords_roundtrip() {
        let spec = SweepSpec::new(base())
            .axis("variant", vec!["a", "b"], |c: &mut Cfg, v| c.variant = v)
            .axis("seed", vec![7u64, 8], |c: &mut Cfg, &s| c.seed = s)
            .axis("bg", vec![0.3, 0.5], |c: &mut Cfg, &b| c.bg = b);
        assert_eq!(spec.len(), 8);
        for (i, cell) in spec.cells().iter().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(cell.coords, spec.coords(i));
        }
        // Last axis varies fastest.
        let cells = spec.cells();
        assert_eq!(cells[0].cfg.bg, 0.3);
        assert_eq!(cells[1].cfg.bg, 0.5);
        assert_eq!(cells[1].cfg.seed, 7);
    }

    #[test]
    fn no_axes_means_one_base_cell() {
        let spec = SweepSpec::new(base());
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].cfg, base());
        assert!(cells[0].coords.is_empty());
    }

    #[test]
    #[should_panic(expected = "has no values")]
    fn empty_axis_is_rejected() {
        let _ = SweepSpec::new(base()).axis("seed", Vec::<u64>::new(), |c, &s| c.seed = s);
    }
}
