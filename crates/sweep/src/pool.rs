//! The sweep execution pool: runs `n` independent cells on worker
//! threads, collects results **by cell index**, and isolates per-cell
//! panics.
//!
//! Scheduling is dynamic work-sharing: workers pull the next unclaimed
//! cell index from a shared atomic counter, so a slow cell never blocks
//! the queue behind it (the same load-balancing property a work-stealing
//! deque gives for a flat grid of tasks, without the machinery — every
//! sweep is a single batch of independent cells, so there is nothing to
//! steal *from*). Determinism does not depend on scheduling at all:
//! which worker runs a cell, and in which order cells finish, is
//! irrelevant because each cell is a pure function of its index and the
//! results vector is slotted by index.

use std::io::IsTerminal;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use corral_trace::{probe, CounterSet};

/// A cell that panicked instead of producing a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Index of the failed cell in the sweep grid.
    pub index: usize,
    /// The panic payload, rendered to text.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} panicked: {}", self.index, self.message)
    }
}

/// Outcome of one cell: its value, or the recorded panic.
pub type CellResult<T> = Result<T, CellFailure>;

/// Counter names the pool maintains in its [`CounterSet`].
pub const COUNTERS: [&str; 4] = [
    "sweep.cells_total",
    "sweep.cells_started",
    "sweep.cells_done",
    "sweep.cells_failed",
];

/// The number of worker threads to use when the caller does not say:
/// the host's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives `n` statistically independent child seeds from `base` via
/// splitmix64 — the standard way to fan one CLI `--seed` out into a
/// `--seeds N` pool without correlated low bits.
pub fn derive_seeds(base: u64, n: usize) -> Vec<u64> {
    let mut state = base;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
        .collect()
}

/// A sweep execution pool: `jobs` worker threads, live progress
/// counters, optional stderr progress rendering.
///
/// The pool holds no threads between runs — `run` spins up a scoped
/// crew, drains the grid, and joins them — so a `SweepPool` is cheap to
/// construct and safe to drop at any time.
#[derive(Debug)]
pub struct SweepPool {
    jobs: usize,
    progress: bool,
    counters: Arc<CounterSet>,
}

impl SweepPool {
    /// A pool with `jobs` workers (`0` means [`default_jobs`]). Progress
    /// rendering defaults to on-when-stderr-is-a-terminal.
    pub fn new(jobs: usize) -> Self {
        SweepPool {
            jobs: if jobs == 0 { default_jobs() } else { jobs },
            progress: std::io::stderr().is_terminal(),
            counters: Arc::new(CounterSet::new(&COUNTERS)),
        }
    }

    /// Forces live progress rendering on or off (the default follows
    /// whether stderr is a terminal).
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// The pool's worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Workers a sweep of `n` cells will actually use: the configured
    /// `jobs`, capped by the cell count — and clamped to 1 (serial
    /// inline execution, no pool threads) when the host itself has only
    /// one CPU, where worker threads cost context switches and
    /// contention but can never overlap work (the 0.857× "speedup"
    /// recorded by `repro sweepbench` on a 1-CPU host).
    pub fn effective_jobs(&self, n: usize) -> usize {
        let w = self.jobs.min(n).max(1);
        if default_jobs() == 1 {
            1
        } else {
            w
        }
    }

    /// The live counters (`sweep.cells_total/started/done/failed`) —
    /// shareable with an external progress display.
    pub fn counters(&self) -> Arc<CounterSet> {
        self.counters.clone()
    }

    /// Executes cells `0..n` of a sweep and returns their outcomes in
    /// index order.
    ///
    /// `f` must be a pure function of the cell index (all mutable state
    /// owned by the cell); under that contract the returned vector is
    /// identical whatever `jobs` is — byte-for-byte equal to serial
    /// execution. A panic inside `f(i)` is caught and recorded as
    /// `Err(CellFailure)` for that cell only; the sweep always runs to
    /// completion.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<CellResult<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.counters.add("sweep.cells_total", n as u64);
        let workers = self.effective_jobs(n);
        if workers == 1 {
            // Serial fast path (explicit `--jobs 1`, single-cell sweeps,
            // or a 1-CPU host): same per-cell semantics (panic isolation
            // included), no thread machinery.
            return (0..n).map(|i| self.run_cell(i, &f)).collect();
        }

        let slots: Vec<Mutex<Option<CellResult<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        probe::queue_depth(n.saturating_sub(i + 1));
                        let r = self.run_cell(i, &f);
                        *slots[i].lock().unwrap() = Some(r);
                        completed.fetch_add(1, Ordering::Release);
                    }
                    // Merge this worker's probe data before the scope
                    // joins us; TLS-destructor merging is not ordered
                    // before `scope` returns.
                    probe::flush_thread();
                });
            }
            if self.progress {
                // Reporter thread: redraws one stderr status line until
                // every cell has completed, then clears it.
                s.spawn(|| {
                    while completed.load(Ordering::Acquire) < n {
                        let done = self.counters.get("sweep.cells_done");
                        let failed = self.counters.get("sweep.cells_failed");
                        let total = self.counters.get("sweep.cells_total");
                        if failed > 0 {
                            eprint!("\r[sweep] {done}/{total} cells ({failed} failed)   ");
                        } else {
                            eprint!("\r[sweep] {done}/{total} cells   ");
                        }
                        std::thread::sleep(Duration::from_millis(200));
                    }
                    eprint!("\r                                        \r");
                });
            }
        });
        let _probe = probe::span(probe::SpanKind::SweepReduce);
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("every cell index was claimed and completed")
            })
            .collect()
    }

    /// Like [`run`](SweepPool::run) but unwraps: panics (after the whole
    /// sweep has completed) if any cell failed, reporting every failure.
    pub fn run_all<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let results = self.run(n, f);
        let failures: Vec<String> = results
            .iter()
            .filter_map(|r| r.as_ref().err().map(CellFailure::to_string))
            .collect();
        if !failures.is_empty() {
            panic!("sweep failed: {}", failures.join("; "));
        }
        results.into_iter().map(|r| r.ok().unwrap()).collect()
    }

    fn run_cell<T, F>(&self, i: usize, f: &F) -> CellResult<T>
    where
        F: Fn(usize) -> T,
    {
        let _probe = probe::span(probe::SpanKind::SweepCell);
        self.counters.inc("sweep.cells_started");
        match catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(v) => {
                self.counters.inc("sweep.cells_done");
                Ok(v)
            }
            Err(payload) => {
                self.counters.inc("sweep.cells_failed");
                Err(CellFailure {
                    index: i,
                    message: panic_message(payload.as_ref()),
                })
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately scheduling-hostile cell: later indices finish
    /// first, so completion order inverts index order.
    fn slow_square(i: usize) -> usize {
        std::thread::sleep(Duration::from_millis(((13 - i % 13) * 2) as u64));
        i * i
    }

    #[test]
    fn results_are_in_index_order_regardless_of_jobs() {
        let serial: Vec<usize> = SweepPool::new(1).progress(false).run_all(20, slow_square);
        let parallel: Vec<usize> = SweepPool::new(8).progress(false).run_all(20, slow_square);
        assert_eq!(serial, (0..20).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panicking_cell_is_isolated() {
        let pool = SweepPool::new(4).progress(false);
        let results = pool.run(8, |i| {
            if i == 3 {
                panic!("poisoned cell");
            }
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let f = r.as_ref().unwrap_err();
                assert_eq!(f.index, 3);
                assert!(f.message.contains("poisoned cell"), "{f}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
        assert_eq!(pool.counters().get("sweep.cells_total"), 8);
        assert_eq!(pool.counters().get("sweep.cells_done"), 7);
        assert_eq!(pool.counters().get("sweep.cells_failed"), 1);
    }

    #[test]
    fn serial_path_isolates_panics_identically() {
        let results = SweepPool::new(1).progress(false).run(3, |i| {
            if i == 1 {
                panic!("boom {i}");
            }
            i
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(
            results[1],
            Err(CellFailure {
                index: 1,
                message: "boom 1".into()
            })
        );
        assert_eq!(results[2], Ok(2));
    }

    #[test]
    #[should_panic(expected = "sweep failed")]
    fn run_all_surfaces_failures_after_completion() {
        SweepPool::new(2).progress(false).run_all(4, |i| {
            if i == 0 {
                panic!("first cell dies");
            }
            i
        });
    }

    #[test]
    fn zero_jobs_means_auto_and_empty_sweeps_work() {
        let pool = SweepPool::new(0).progress(false);
        assert!(pool.jobs() >= 1);
        let r: Vec<CellResult<u8>> = pool.run(0, |_| 0u8);
        assert!(r.is_empty());
    }

    #[test]
    fn effective_jobs_caps_and_falls_back() {
        let pool = SweepPool::new(8).progress(false);
        // Never more workers than cells, never fewer than one.
        assert_eq!(SweepPool::new(1).progress(false).effective_jobs(5), 1);
        assert_eq!(pool.effective_jobs(1), 1);
        assert!(pool.effective_jobs(20) >= 1);
        if default_jobs() == 1 {
            // 1-CPU host: always serial-inline, whatever --jobs says.
            assert_eq!(pool.effective_jobs(20), 1);
        } else {
            assert_eq!(pool.effective_jobs(20), 8);
        }
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        let a = derive_seeds(0xC0441, 16);
        let b = derive_seeds(0xC0441, 16);
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 16, "collision in derived seeds");
        assert_ne!(derive_seeds(1, 4), derive_seeds(2, 4));
    }
}
