//! # corral-sweep
//!
//! A deterministic parallel sweep-execution engine for the Corral
//! simulator stack.
//!
//! Every *individual* simulation run is deliberately single-threaded —
//! bit-exact determinism is a core feature of the simulator (see
//! DESIGN.md §5). But the paper's evaluation, like any simulation study,
//! is a *sweep*: a grid of independent `(config, variant, seed)` cells,
//! each a self-contained run. Those cells are embarrassingly parallel,
//! and this crate executes them on a work-sharing thread pool while
//! guaranteeing that the *collected results* are byte-identical to
//! serial execution:
//!
//! * every cell owns all of its state (its seeded RNGs, its engine, its
//!   tracer sinks) — nothing mutable is shared between cells;
//! * results are collected **by cell index**, never by completion order,
//!   so scheduling jitter cannot reorder output;
//! * a panicking cell is isolated ([`CellFailure`] records its index and
//!   panic message) instead of tearing down the whole sweep;
//! * progress is reported live through a shared
//!   [`corral_trace::CounterSet`] (`sweep.cells_*` counters), rendered
//!   to stderr when it is a terminal.
//!
//! The three layers:
//!
//! * [`pool`] — [`SweepPool`]: the execution engine
//!   (`pool.run(n, |i| …)` → `Vec<Result<T, CellFailure>>` in index
//!   order);
//! * [`spec`] — [`SweepSpec`]: a builder for cartesian grids over
//!   variants / seeds / parameter axes, producing indexed [`Cell`]s;
//! * [`agg`] — [`Summary`]: cross-seed aggregation (mean, p50/p90/p99,
//!   95% CI half-width) for feeding result tables.
//!
//! ```
//! use corral_sweep::{SweepPool, SweepSpec, Summary};
//!
//! #[derive(Clone)]
//! struct Cfg { seed: u64, scale: f64 }
//!
//! let cells = SweepSpec::new(Cfg { seed: 0, scale: 1.0 })
//!     .axis("scale", vec![1.0, 2.0], |c: &mut Cfg, &s| c.scale = s)
//!     .axis("seed", vec![1u64, 2, 3], |c: &mut Cfg, &s| c.seed = s)
//!     .cells();
//! assert_eq!(cells.len(), 6);
//!
//! let pool = SweepPool::new(4);
//! let results = pool.run(cells.len(), |i| {
//!     let cfg = &cells[i].cfg;
//!     cfg.scale * (cfg.seed as f64) // stand-in for a simulation run
//! });
//! let values: Vec<f64> = results.into_iter().map(|r| r.unwrap()).collect();
//! assert_eq!(values, vec![1.0, 2.0, 3.0, 2.0, 4.0, 6.0]); // index order
//! let s = Summary::of(&values);
//! assert_eq!(s.n, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod pool;
pub mod spec;

pub use agg::Summary;
pub use pool::{default_jobs, derive_seeds, CellFailure, CellResult, SweepPool};
pub use spec::{Cell, SweepSpec};
