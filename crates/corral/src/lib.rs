//! # corral
//!
//! Umbrella crate for the Corral reproduction — *"Network-Aware Scheduling
//! for Data-Parallel Jobs: Plan When You Can"* (SIGCOMM 2015) — re-exporting
//! the public API of every workspace crate:
//!
//! * [`model`] — shared domain types (ids, units, cluster config, job specs);
//! * [`simnet`] — the flow-level CLOS fabric (max-min "TCP", Varys coflows);
//! * [`dfs`] — the HDFS-like filesystem model with pluggable placement;
//! * [`cluster`] — the discrete-event cluster engine and runtime schedulers;
//! * [`core`] — Corral's offline planner (latency models, provisioning,
//!   prioritization, LP bounds, recurring-job predictor);
//! * [`workloads`] — generators for the paper's W1/W2/W3, TPC-H DAGs,
//!   slot CDFs and recurring histories;
//! * [`sweep`] — the deterministic parallel sweep engine (cell grids,
//!   work pool, cross-seed aggregation) behind `--jobs`/`--seeds`.
//!
//! ## Quickstart
//!
//! ```
//! use corral::prelude::*;
//!
//! // 1. A cluster and a small workload.
//! let cfg = ClusterConfig::tiny_test();
//! let jobs = corral::workloads::w1::generate(
//!     &corral::workloads::w1::W1Params { jobs: 4, ..corral::workloads::w1::W1Params::with_seed(1) },
//!     Scale { task_divisor: 8.0, data_divisor: 8.0 },
//! );
//!
//! // 2. Plan offline.
//! let plan = plan_jobs(&cfg, &jobs, Objective::Makespan, &PlannerConfig::default());
//! assert_eq!(plan.len(), 4);
//!
//! // 3. Execute the plan on the simulated cluster.
//! let params = SimParams {
//!     cluster: cfg,
//!     placement: DataPlacement::PerPlan,
//!     horizon: SimTime::hours(8.0),
//!     ..SimParams::testbed()
//! };
//! let report = Engine::new(params, jobs, &plan, SchedulerKind::Planned).run();
//! assert_eq!(report.unfinished, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use corral_cluster as cluster;
pub use corral_core as core;
pub use corral_dfs as dfs;
pub use corral_model as model;
pub use corral_serve as serve;
pub use corral_simnet as simnet;
pub use corral_sweep as sweep;
pub use corral_trace as trace;
pub use corral_workloads as workloads;

pub mod cli;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use corral_cluster::config::{DataPlacement, FailureSpec, NetPolicy, SimParams};
    pub use corral_cluster::engine::Engine;
    pub use corral_cluster::metrics::{percentile, reduction_pct, JobMetrics, RunReport};
    pub use corral_cluster::scheduler::SchedulerKind;
    pub use corral_core::{plan_jobs, Objective, Plan, PlannerConfig};
    pub use corral_model::{
        Bandwidth, Bytes, ClusterConfig, JobId, JobProfile, JobSpec, MapReduceProfile, RackId,
        SimTime,
    };
    pub use corral_simnet::background::BackgroundModel;
    pub use corral_workloads::{assign_uniform_arrivals, make_batch, Scale};
}
