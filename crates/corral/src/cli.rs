//! Hand-rolled argument parsing for `corral-sim` (the workspace carries
//! no CLI dependency).
//!
//! Each subcommand declares its known `--key value` flags and boolean
//! switches up front; anything else starting with `-` is rejected with a
//! clear error instead of being silently ignored, so a typo like
//! `--sheduler` fails fast rather than running with the default.

/// Parsed arguments for one subcommand: positionals plus validated flags.
#[derive(Debug)]
pub struct Flags<'a> {
    args: &'a [String],
    value_flags: &'static [&'static str],
    bool_flags: &'static [&'static str],
}

impl<'a> Flags<'a> {
    /// Validates `args` against the declared flag sets.
    ///
    /// Errors on a flag not in either list and on a value flag with no
    /// following value.
    pub fn parse(
        args: &'a [String],
        value_flags: &'static [&'static str],
        bool_flags: &'static [&'static str],
    ) -> Result<Self, String> {
        let f = Flags {
            args,
            value_flags,
            bool_flags,
        };
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if is_flag(a) {
                if value_flags.contains(&a) {
                    if i + 1 >= args.len() {
                        return Err(format!("{a} requires a value"));
                    }
                    i += 2;
                    continue;
                }
                if bool_flags.contains(&a) {
                    i += 1;
                    continue;
                }
                let mut known: Vec<&str> = value_flags
                    .iter()
                    .chain(bool_flags.iter())
                    .copied()
                    .collect();
                known.sort_unstable();
                return Err(format!(
                    "unknown flag {a:?}; known flags: {}",
                    known.join(", ")
                ));
            }
            i += 1;
        }
        Ok(f)
    }

    /// The `idx`-th positional argument (tokens that are neither flags
    /// nor values consumed by a value flag).
    pub fn positional(&self, idx: usize) -> Option<&'a str> {
        let mut seen = 0;
        let mut i = 0;
        while i < self.args.len() {
            let a = self.args[i].as_str();
            if is_flag(a) {
                i += if self.value_flags.contains(&a) { 2 } else { 1 };
                continue;
            }
            if seen == idx {
                return Some(a);
            }
            seen += 1;
            i += 1;
        }
        None
    }

    /// The value following `key`, if the flag was given.
    pub fn value(&self, key: &str) -> Option<&'a str> {
        debug_assert!(
            self.value_flags.contains(&key),
            "{key} not declared as a value flag"
        );
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }

    /// Whether boolean switch `key` was given.
    pub fn has(&self, key: &str) -> bool {
        debug_assert!(
            self.bool_flags.contains(&key),
            "{key} not declared as a bool flag"
        );
        self.args.iter().any(|a| a == key)
    }

    /// Parses the value of `key`, falling back to `default` when absent.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.value(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v:?}")),
        }
    }
}

/// Value flags shared by every sweep-capable command (`corral-sim
/// simulate`, the `repro` driver): `-j`/`--jobs` select the sweep-pool
/// worker count, `--seeds` the seed-pool size. Include these in the
/// `value_flags` list passed to [`Flags::parse`] so the strict parser
/// accepts them (and names them in its unknown-flag rejection message),
/// then read them with [`sweep_flags`].
pub const SWEEP_VALUE_FLAGS: [&str; 3] = ["-j", "--jobs", "--seeds"];

/// Reads the shared sweep flags: `(jobs, seeds)`.
///
/// `jobs` is 0 when neither `-j` nor `--jobs` was given (callers
/// resolve 0 to the host's parallelism); `seeds` falls back to
/// `default_seeds` and must be ≥ 1.
pub fn sweep_flags(f: &Flags, default_seeds: usize) -> Result<(usize, usize), String> {
    let jobs = match f.value("-j") {
        Some(v) => v.parse().map_err(|_| format!("bad value for -j: {v:?}"))?,
        None => f.parse_or("--jobs", 0usize)?,
    };
    let seeds: usize = f.parse_or("--seeds", default_seeds)?;
    if seeds == 0 {
        return Err("--seeds must be at least 1".to_string());
    }
    Ok((jobs, seeds))
}

/// A token is a flag if it starts with `-` and is not a bare `-` or a
/// negative number (so `--background -0.5` style values still work as
/// positionals, though flag values are skipped before this is consulted).
fn is_flag(a: &str) -> bool {
    let mut chars = a.chars();
    chars.next() == Some('-')
        && chars
            .next()
            .is_some_and(|c| !c.is_ascii_digit() && c != '.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_skip_flag_values() {
        let a = args(&["trace.csv", "--seed", "7", "out.csv", "--summary"]);
        let f = Flags::parse(&a, &["--seed"], &["--summary"]).unwrap();
        assert_eq!(f.positional(0), Some("trace.csv"));
        assert_eq!(f.positional(1), Some("out.csv"));
        assert_eq!(f.positional(2), None);
    }

    #[test]
    fn unknown_flag_is_rejected_with_flag_list() {
        let a = args(&["t.csv", "--sheduler", "corral"]);
        let err = Flags::parse(&a, &["--scheduler"], &[]).unwrap_err();
        assert!(err.contains("unknown flag \"--sheduler\""), "{err}");
        assert!(err.contains("--scheduler"), "{err}");
    }

    #[test]
    fn value_flag_requires_value() {
        let a = args(&["t.csv", "--seed"]);
        let err = Flags::parse(&a, &["--seed"], &[]).unwrap_err();
        assert!(err.contains("--seed requires a value"), "{err}");
    }

    #[test]
    fn bool_flag_and_values_parse() {
        let a = args(&["--seed", "42", "--summary"]);
        let f = Flags::parse(&a, &["--seed"], &["--summary"]).unwrap();
        assert!(f.has("--summary"));
        assert_eq!(f.value("--seed"), Some("42"));
        assert_eq!(f.parse_or("--seed", 0u64).unwrap(), 42);
    }

    #[test]
    fn parse_or_defaults_and_reports_bad_values() {
        let a = args(&["--background", "lots"]);
        let f = Flags::parse(&a, &["--background", "--seed"], &[]).unwrap();
        assert_eq!(f.parse_or("--seed", 5u64).unwrap(), 5);
        let err = f.parse_or::<f64>("--background", 0.5).unwrap_err();
        assert!(err.contains("bad value for --background"), "{err}");
    }

    #[test]
    fn negative_numbers_are_not_flags() {
        let a = args(&["--background", "-0.5", "-3"]);
        let f = Flags::parse(&a, &["--background"], &[]).unwrap();
        assert_eq!(f.value("--background"), Some("-0.5"));
        assert_eq!(f.positional(0), Some("-3"));
    }

    #[test]
    fn sweep_flags_parse_both_spellings_and_default() {
        let a = args(&["w1.csv", "-j", "4", "--seeds", "8"]);
        let f = Flags::parse(&a, &SWEEP_VALUE_FLAGS, &[]).unwrap();
        assert_eq!(sweep_flags(&f, 1).unwrap(), (4, 8));

        let a = args(&["w1.csv", "--jobs", "2"]);
        let f = Flags::parse(&a, &SWEEP_VALUE_FLAGS, &[]).unwrap();
        assert_eq!(sweep_flags(&f, 1).unwrap(), (2, 1));

        let a = args(&["w1.csv"]);
        let f = Flags::parse(&a, &SWEEP_VALUE_FLAGS, &[]).unwrap();
        assert_eq!(sweep_flags(&f, 8).unwrap(), (0, 8));
    }

    #[test]
    fn sweep_flags_reject_bad_values() {
        let a = args(&["--seeds", "0"]);
        let f = Flags::parse(&a, &SWEEP_VALUE_FLAGS, &[]).unwrap();
        assert!(sweep_flags(&f, 1).unwrap_err().contains("at least 1"));

        let a = args(&["-j", "many"]);
        let f = Flags::parse(&a, &SWEEP_VALUE_FLAGS, &[]).unwrap();
        assert!(sweep_flags(&f, 1).unwrap_err().contains("bad value for -j"));
    }

    #[test]
    fn unknown_flag_rejection_lists_sweep_flags() {
        let a = args(&["t.csv", "--job"]);
        let err = Flags::parse(&a, &SWEEP_VALUE_FLAGS, &[]).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        assert!(err.contains("--seeds"), "{err}");
        assert!(err.contains("-j"), "{err}");
    }

    #[test]
    fn short_o_flag_consumes_its_value() {
        let a = args(&["w1", "-o", "out.csv"]);
        let f = Flags::parse(&a, &["-o"], &[]).unwrap();
        assert_eq!(f.positional(0), Some("w1"));
        assert_eq!(f.value("-o"), Some("out.csv"));
        assert_eq!(f.positional(1), None);
    }
}
