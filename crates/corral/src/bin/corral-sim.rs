//! `corral-sim` — command-line front end for the Corral planner and
//! cluster simulator.
//!
//! ```text
//! corral-sim gen w1 --jobs 40 --seed 7 -o w1.csv     # generate a workload trace
//! corral-sim plan w1.csv --objective makespan         # print the offline plan
//! corral-sim simulate w1.csv --scheduler corral \
//!             --trace run.jsonl --perfetto run.json \
//!             --summary                                # run with tracing on
//! ```
//!
//! Argument parsing is deliberately hand-rolled (the workspace carries no
//! CLI dependency); see [`corral::cli::Flags`]. Unknown flags are
//! rejected, every known flag has a default, so the quick path is
//! `corral-sim gen w1 -o t.csv && corral-sim simulate t.csv`.

use corral::cli::{sweep_flags, Flags, SWEEP_VALUE_FLAGS};
use corral::cluster::config::{DataPlacement, SimParams};
use corral::cluster::engine::Engine;
use corral::cluster::scheduler::SchedulerKind;
use corral::core::{plan_jobs, plan_jobs_with_tracer, Objective, Plan, PlannerConfig};
use corral::model::{ClusterConfig, JobSpec, SimTime};
use corral::simnet::background::BackgroundModel;
use corral::trace::probe;
use corral::trace::{
    chrome_trace, chrome_trace_with_probe, FanoutTracer, JsonlTracer, MemTracer, SharedTracer,
    Tracer,
};
use corral::workloads::{assign_uniform_arrivals, swim, trace, w1, w2, w3, Scale};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    // Self-profiling can also be switched on without a flag
    // (CORRAL_PROBE=1) for commands that have no --probe of their own.
    probe::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(|s| s.as_str()) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("import-swim") => cmd_import_swim(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--version") | Some("-V") => {
            println!("corral-sim {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `corral-sim help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "corral-sim — Corral planner & cluster simulator

USAGE:
  corral-sim gen <w1|w2|w3> [--jobs N] [--seed S] [--task-div D]
                 [--window-min M] -o <trace.csv>
  corral-sim import-swim <swim.tsv> [--task-div D] -o <trace.csv>
  corral-sim plan <trace.csv> [--objective makespan|avgjct]
                 [--out <plan.csv>]
  corral-sim simulate <trace.csv>
                 [--scheduler yarn-cs|corral|localshuffle|shufflewatcher]
                 [--objective makespan|avgjct] [--background FRAC]
                 [--seed S] [--seeds N] [-j/--jobs N]
                 [--plan <plan.csv>] [--timeline <gantt.csv>]
                 [--trace <events.jsonl>] [--perfetto <trace.json>]
                 [--probe <probe.prom>] [--summary]
  corral-sim serve <events.jsonl|trace.csv|->
                 [--objective makespan|avgjct] [--cluster testbed|sim2000|tiny]
                 [--max-queue N] [--cache N] [--tripwire] [--strict]
                 [--no-fallback] [--fail-threshold F] [--retries N]
                 [--backoff SECS] [--churn-mtbf SECS] [--churn-repair SECS]
                 [--churn-horizon SECS] [--churn-seed S]
                 [--decisions <out.jsonl>] [--quiet] [--summary]
                 [--snapshot <file> --snapshot-after N] [--restore <file>]
                 [--probe <probe.prom>]
  corral-sim --version

The cluster is the paper's 210-machine testbed (7 racks x 30 machines,
10 Gbps NICs, 5:1 oversubscription, 4 slots/machine).

Observability: --trace streams structured events as JSONL, --perfetto
writes a Chrome/Perfetto trace-viewer file (load at ui.perfetto.dev),
--summary prints utilization, locality and queueing-delay percentiles.
--probe FILE enables corral-probe self-profiling (host wall-clock spans
and counters for the simulator's own hot paths; also via CORRAL_PROBE=1)
and writes a Prometheus-style text exposition; with --perfetto the probe
spans also appear as a 'probe (host)' track. Probes never perturb the
simulation: same-seed runs are byte-identical with probes on or off.

Sweeps: --seeds N runs the simulation under N seeds (--seed plus N-1
derived from it) and prints per-seed rows plus mean/p50/p90/p99 and a
95% CI half-width; -j/--jobs sets the worker count (default: all host
cores). Per-seed results are byte-identical to running each seed
serially; per-run exports (--trace/--perfetto/--timeline/--summary)
require a single seed.

Serve: runs the planner as a resident scheduling service over a JSONL
event stream (one {{\"type\":\"arrival\",...}} or {{\"type\":\"completion\",...}}
object per line; a .csv trace is adapted to pure arrivals, '-' reads
stdin). Decisions stream to stdout (or --decisions FILE) as JSONL.
Every arrival/completion replans the queue incrementally against a plan
cache; --tripwire re-runs the full batch planner as an oracle on every
replan and aborts on any divergence. --snapshot FILE --snapshot-after N
stops after N input events and writes resumable, checksummed scheduler
state; --restore FILE resumes, skipping the already-consumed prefix of
the input — the combined decision stream is byte-identical to the
uninterrupted run.

Failures: machine_failed / machine_repaired / rack_failed events flow
through the same stream. By default the scheduler masks dead capacity
out of the planning problem and re-anchors queued jobs whose racks died
(the paper's §7 fallback; tune with --fail-threshold, default 0.5);
--no-fallback plans failure-blind and degrades at dispatch time instead
(--retries deferrals with exponential --backoff, then the pins drop).
--churn-mtbf SECS injects a deterministic seeded Poisson churn schedule
(mean repair --churn-repair, up to --churn-horizon, seed --churn-seed)
into the input stream. Malformed input lines become structured
'malformed' rejects by default; --strict aborts on the first one."
    );
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(
        args,
        &[
            "-o",
            "--out",
            "--jobs",
            "--seed",
            "--task-div",
            "--window-min",
        ],
        &[],
    )?;
    let kind = f.positional(0).ok_or("gen: which workload? (w1|w2|w3)")?;
    let out = f
        .value("-o")
        .or(f.value("--out"))
        .ok_or("gen: -o <file> required")?;
    let seed: u64 = f.parse_or("--seed", 1)?;
    let task_div: f64 = f.parse_or("--task-div", 4.0)?;
    let window_min: f64 = f.parse_or("--window-min", 0.0)?;
    let scale = Scale {
        task_divisor: task_div,
        data_divisor: 1.0,
    };
    let mut jobs: Vec<JobSpec> = match kind {
        "w1" => {
            let jobs: usize = f.parse_or("--jobs", 60)?;
            w1::generate(
                &w1::W1Params {
                    jobs,
                    ..w1::W1Params::with_seed(seed)
                },
                scale,
            )
        }
        "w2" => {
            let jobs: usize = f.parse_or("--jobs", 100)?;
            w2::generate(
                &w2::W2Params {
                    jobs,
                    seed,
                    ..Default::default()
                },
                scale,
            )
        }
        "w3" => {
            let jobs: usize = f.parse_or("--jobs", 60)?;
            w3::generate(
                &w3::W3Params {
                    jobs,
                    seed,
                    ..Default::default()
                },
                scale,
            )
        }
        other => return Err(format!("unknown workload {other:?} (w1|w2|w3)")),
    };
    if window_min > 0.0 {
        assign_uniform_arrivals(&mut jobs, SimTime::minutes(window_min), seed ^ 0xA);
    }
    let csv = trace::to_csv(&jobs).map_err(|e| e.to_string())?;
    std::fs::write(out, csv).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} jobs to {out}", jobs.len());
    Ok(())
}

fn cmd_import_swim(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &["-o", "--out", "--task-div"], &[])?;
    let path = f
        .positional(0)
        .ok_or("import-swim: SWIM .tsv file required")?;
    let out = f
        .value("-o")
        .or(f.value("--out"))
        .ok_or("import-swim: -o <file> required")?;
    let task_div: f64 = f.parse_or("--task-div", 4.0)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let params = swim::SwimParams {
        scale: Scale {
            task_divisor: task_div,
            data_divisor: 1.0,
        },
        ..Default::default()
    };
    let jobs = swim::parse(&text, &params).map_err(|e| e.to_string())?;
    let csv = trace::to_csv(&jobs).map_err(|e| e.to_string())?;
    std::fs::write(out, csv).map_err(|e| format!("writing {out}: {e}"))?;
    println!("imported {} SWIM jobs into {out}", jobs.len());
    Ok(())
}

fn load_trace(path: &str) -> Result<Vec<JobSpec>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    trace::from_csv(&text).map_err(|e| e.to_string())
}

fn objective_flag(f: &Flags) -> Result<Objective, String> {
    match f.value("--objective").unwrap_or("makespan") {
        "makespan" => Ok(Objective::Makespan),
        "avgjct" | "avg" => Ok(Objective::AvgCompletionTime),
        other => Err(format!("unknown objective {other:?} (makespan|avgjct)")),
    }
}

fn cmd_plan(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &["--objective", "--out"], &[])?;
    let path = f.positional(0).ok_or("plan: trace file required")?;
    let jobs = load_trace(path)?;
    let cfg = ClusterConfig::testbed_210();
    let objective = objective_flag(&f)?;
    let plan = plan_jobs(&cfg, &jobs, objective, &PlannerConfig::default());
    println!(
        "planned {} jobs; predicted objective = {:.1}s",
        plan.len(),
        plan.objective_value
    );
    println!(
        "provisioning scored {} candidate allocations",
        plan.provision_stats.candidates
    );
    if let Some(out) = f.value("--out") {
        std::fs::write(out, plan.to_csv()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote plan to {out}");
    }
    println!(
        "{:>6} {:>5} {:>14} {:>10} {:>10}  racks",
        "job", "prio", "latency", "start", "finish"
    );
    let mut entries: Vec<_> = plan.entries.values().collect();
    entries.sort_by_key(|e| e.priority);
    for e in entries {
        println!(
            "{:>6} {:>5} {:>13.1}s {:>9.1}s {:>9.1}s  {:?}",
            e.job.to_string(),
            e.priority,
            e.predicted_latency.as_secs(),
            e.planned_start.as_secs(),
            e.planned_finish.as_secs(),
            e.racks.iter().map(|r| r.0).collect::<Vec<_>>(),
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use corral::serve::{chaos, snapshot, source, wire, ChaosSpec, Scheduler, ServeConfig};

    const SERVE_VALUE_FLAGS: [&str; 16] = [
        "--objective",
        "--cluster",
        "--max-queue",
        "--cache",
        "--decisions",
        "--snapshot",
        "--snapshot-after",
        "--restore",
        "--probe",
        "--fail-threshold",
        "--retries",
        "--backoff",
        "--churn-mtbf",
        "--churn-repair",
        "--churn-horizon",
        "--churn-seed",
    ];
    let f = Flags::parse(
        args,
        &SERVE_VALUE_FLAGS,
        &[
            "--summary",
            "--tripwire",
            "--quiet",
            "--no-fallback",
            "--strict",
        ],
    )?;
    if f.value("--probe").is_some() {
        probe::set_enabled(true);
    }
    let path = f
        .positional(0)
        .ok_or("serve: event stream required (events.jsonl | trace.csv | -)")?;
    let cluster = match f.value("--cluster").unwrap_or("testbed") {
        "testbed" => ClusterConfig::testbed_210(),
        "sim2000" => ClusterConfig::sim_2000(),
        "tiny" => ClusterConfig::tiny_test(),
        other => return Err(format!("unknown cluster {other:?} (testbed|sim2000|tiny)")),
    };
    let cfg = ServeConfig {
        cluster,
        objective: objective_flag(&f)?,
        max_queue: f.parse_or("--max-queue", 64)?,
        cache_capacity: f.parse_or("--cache", 256)?,
        tripwire: f.has("--tripwire"),
        fallback: !f.has("--no-fallback"),
        failure_threshold: f.parse_or("--fail-threshold", 0.5)?,
        dispatch_retries: f.parse_or("--retries", 3)?,
        retry_backoff: SimTime(f.parse_or("--backoff", 30.0)?),
        ..ServeConfig::default()
    };

    // Default reading is lossy: malformed lines become structured
    // rejects instead of taking the service down. --strict restores
    // abort-on-first-error for validating curated streams.
    let strict = f.has("--strict");
    let events = if path == "-" {
        let stdin = std::io::stdin().lock();
        if strict {
            source::read_events(stdin)?
        } else {
            source::read_events_lossy(stdin)?
        }
    } else if path.ends_with(".csv") {
        source::events_from_specs(&load_trace(path)?)
    } else {
        let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
        let reader = std::io::BufReader::new(file);
        if strict {
            source::read_events(reader)?
        } else {
            source::read_events_lossy(reader)?
        }
    };
    // Deterministic chaos injection: same flags + seed ⇒ same merged
    // stream, so snapshots/restores and goldens stay byte-stable.
    let events = match f.value("--churn-mtbf") {
        Some(_) => {
            let spec = ChaosSpec {
                mtbf: SimTime(f.parse_or("--churn-mtbf", 600.0)?),
                mean_repair: SimTime(f.parse_or("--churn-repair", 120.0)?),
                horizon: SimTime(f.parse_or("--churn-horizon", 3600.0)?),
                seed: f.parse_or("--churn-seed", 0xC0441)?,
            };
            chaos::merge(events, spec.events(&cfg.cluster))
        }
        None => events,
    };

    let mut sched = match f.value("--restore") {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
            snapshot::read(&text, cfg)?
        }
        None => Scheduler::new(cfg),
    };
    // A restored scheduler has already consumed a prefix of the stream.
    let skip = sched.stats().events as usize;
    if skip > events.len() {
        return Err(format!(
            "snapshot has consumed {skip} events but the stream only has {}",
            events.len()
        ));
    }

    let snapshot_after: usize = f.parse_or("--snapshot-after", 0)?;
    let snapshot_path = f.value("--snapshot");
    if (snapshot_after > 0) != snapshot_path.is_some() {
        return Err("serve: --snapshot FILE and --snapshot-after N go together".into());
    }

    let mut out = Vec::new();
    let mut interrupted = false;
    for (i, ev) in events.into_iter().enumerate().skip(skip) {
        sched.on_event(ev, &mut out);
        if snapshot_after > 0 && i + 1 == skip + snapshot_after {
            interrupted = true;
            break;
        }
    }
    if interrupted {
        let text = snapshot::write(&sched)?;
        let p = snapshot_path.expect("checked above");
        std::fs::write(p, text).map_err(|e| format!("writing {p}: {e}"))?;
        eprintln!(
            "snapshot: {} events consumed, {} queued, {} active -> {p}",
            sched.stats().events,
            sched.queue_len(),
            sched.active_len(),
        );
    } else {
        sched.finish(&mut out);
    }

    let mut text = String::with_capacity(out.len() * 80);
    for (t, d) in &out {
        text.push_str(&wire::format_decision(*t, d));
        text.push('\n');
    }
    match f.value("--decisions") {
        Some(p) => std::fs::write(p, &text).map_err(|e| format!("writing {p}: {e}"))?,
        None => {
            if !f.has("--quiet") {
                print!("{text}");
            }
        }
    }

    if f.has("--summary") {
        let s = sched.stats();
        eprintln!(
            "serve: {} events -> {} decisions ({} admitted, {} rejected, {} dispatched, \
             {} completed; {} late arrivals, {} unknown completions)",
            s.events,
            s.decisions,
            s.admitted,
            s.rejected,
            s.dispatched,
            s.completed,
            s.late_arrivals,
            s.unknown_completions,
        );
        eprintln!(
            "plans: {} cache hits, {} misses; {} incremental replans, {} full",
            s.cache_hits, s.cache_misses, s.replans_incremental, s.replans_full,
        );
        eprintln!(
            "failures: {} machine down, {} repaired, {} racks down; \
             {} malformed lines, {} reanchors, {} dispatch retries, {} unpinned dispatches",
            s.machine_failures,
            s.machine_repairs,
            s.rack_failures,
            s.malformed,
            s.reanchored,
            s.dispatch_retries,
            s.fallback_dispatches,
        );
    }
    if let Some(p) = f.value("--probe") {
        let r = probe::report();
        std::fs::write(p, r.prometheus()).map_err(|e| format!("writing {p}: {e}"))?;
        eprintln!(
            "probe: {p} ({} span kinds, {} threads)",
            r.spans.len(),
            r.threads
        );
    }
    Ok(())
}

/// Capacity of the `--perfetto` in-memory ring: enough for every event of
/// a full testbed run; if a pathological run overflows it, the exporter
/// reports the drop count instead of silently truncating.
const PERFETTO_RING: usize = 4_000_000;

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    const SIMULATE_VALUE_FLAGS: [&str; 12] = [
        "--objective",
        "--background",
        "--seed",
        "--scheduler",
        "--plan",
        "--timeline",
        "--trace",
        "--perfetto",
        "--probe",
        // the shared sweep flags (cli::SWEEP_VALUE_FLAGS)
        "-j",
        "--jobs",
        "--seeds",
    ];
    debug_assert!(SWEEP_VALUE_FLAGS
        .iter()
        .all(|s| SIMULATE_VALUE_FLAGS.contains(s)));
    let f = Flags::parse(args, &SIMULATE_VALUE_FLAGS, &["--summary"])?;
    if f.value("--probe").is_some() {
        probe::set_enabled(true);
    }
    let path = f.positional(0).ok_or("simulate: trace file required")?;
    let jobs = load_trace(path)?;
    let objective = objective_flag(&f)?;
    let background: f64 = f.parse_or("--background", 0.5)?;
    let seed: u64 = f.parse_or("--seed", 0xC0441)?;
    let (pool_jobs, n_seeds) = sweep_flags(&f, 1)?;

    let cfg = ClusterConfig::testbed_210();
    let mut params = SimParams::testbed();
    params.cluster = cfg.clone();
    params.seed = seed;
    params.horizon = SimTime::hours(48.0);
    params.background = BackgroundModel::Constant {
        per_rack: cfg.rack_core_bandwidth() * background.clamp(0.0, 0.99),
    };

    let scheduler = f.value("--scheduler").unwrap_or("corral");
    let (kind, placement, needs_plan) = match scheduler {
        "yarn-cs" => (SchedulerKind::Capacity, DataPlacement::HdfsRandom, false),
        "corral" => (SchedulerKind::Planned, DataPlacement::PerPlan, true),
        "localshuffle" => (SchedulerKind::Planned, DataPlacement::HdfsRandom, true),
        "shufflewatcher" => (
            SchedulerKind::ShuffleWatcher,
            DataPlacement::HdfsRandom,
            false,
        ),
        other => return Err(format!("unknown scheduler {other:?}")),
    };
    params.placement = placement;

    if n_seeds > 1 {
        // Per-run exports are ambiguous across a seed pool.
        for flag in ["--trace", "--perfetto", "--timeline", "--probe"] {
            if f.value(flag).is_some() {
                return Err(format!("{flag} requires a single seed (drop --seeds)"));
            }
        }
        if f.has("--summary") {
            return Err("--summary requires a single seed (drop --seeds)".to_string());
        }
        let plan = if let Some(p) = f.value("--plan") {
            let text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
            Plan::from_csv(&text)?
        } else if needs_plan {
            plan_jobs(&cfg, &jobs, objective, &PlannerConfig::default())
        } else {
            Plan::default()
        };
        return simulate_seed_sweep(params, jobs, plan, kind, seed, n_seeds, pool_jobs);
    }

    // Trace sinks: JSONL file, in-memory ring for the Perfetto export, or
    // both fanned out.
    let jsonl: Option<Arc<JsonlTracer<_>>> = match f.value("--trace") {
        Some(p) => Some(Arc::new(
            JsonlTracer::create(p).map_err(|e| format!("creating {p}: {e}"))?,
        )),
        None => None,
    };
    let mem: Option<Arc<MemTracer>> = f
        .value("--perfetto")
        .map(|_| Arc::new(MemTracer::new(PERFETTO_RING)));
    let tracer: Option<SharedTracer> = match (&jsonl, &mem) {
        (Some(j), Some(m)) => Some(Arc::new(FanoutTracer::new(vec![
            j.clone() as SharedTracer,
            m.clone() as SharedTracer,
        ]))),
        (Some(j), None) => Some(j.clone() as SharedTracer),
        (None, Some(m)) => Some(m.clone() as SharedTracer),
        (None, None) => None,
    };

    let t_plan = std::time::Instant::now();
    let (plan, planned_here) = if let Some(path) = f.value("--plan") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        (Plan::from_csv(&text)?, false)
    } else if needs_plan {
        let plan = match &tracer {
            Some(t) => plan_jobs_with_tracer(
                &cfg,
                &jobs,
                objective,
                &PlannerConfig::default(),
                t.as_ref(),
            ),
            None => plan_jobs(&cfg, &jobs, objective, &PlannerConfig::default()),
        };
        (plan, true)
    } else {
        (Plan::default(), false)
    };
    let plan_wall_s = t_plan.elapsed().as_secs_f64();

    let mut engine = Engine::new(params, jobs, &plan, kind);
    if let Some(t) = &tracer {
        engine.set_tracer(t.clone());
    }
    let mut report = engine.run();
    // Planning cost is host wall-clock, so it is stamped here (the CLI is
    // what watched planning happen) rather than inside the engine, whose
    // summary stays a pure function of the simulated run.
    if planned_here {
        report.summary.planning = Some(corral::trace::PlanningCost {
            wall_s: plan_wall_s,
            candidates: plan.provision_stats.candidates,
        });
    }
    // Ring-drop accounting is host-side too: stamped by the CLI so the
    // engine's summary stays a pure function of the simulated run, and
    // warned about loudly — a truncated trace must never be analyzed as
    // if it were complete.
    if let Some(m) = &mem {
        report.summary.trace_drops = Some(m.dropped());
        if m.dropped() > 0 {
            eprintln!(
                "warning: perfetto ring overflowed, {} oldest events dropped — \
                 the exported trace is truncated",
                m.dropped()
            );
        }
    }
    println!("scheduler        {}", report.scheduler);
    println!("network          {}", report.net);
    println!("makespan         {:.1}s", report.makespan.as_secs());
    println!("mean jct         {:.1}s", report.avg_completion_time());
    println!("median jct       {:.1}s", report.median_completion_time());
    println!("cross-rack       {}", report.cross_rack_bytes);
    println!("network bytes    {}", report.network_bytes);
    println!("core utilization {:.1}%", report.core_utilization * 100.0);
    println!("input CoV        {:.4}", report.input_balance_cov);
    if report.unfinished > 0 {
        println!("UNFINISHED JOBS  {}", report.unfinished);
    }
    if let Some(out) = f.value("--timeline") {
        std::fs::write(out, report.timeline_csv()).map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "timeline         {out} ({} attempts)",
            report.task_log.len()
        );
    }
    if let Some(j) = &jsonl {
        j.flush();
        println!(
            "trace            {} ({} events)",
            f.value("--trace").unwrap(),
            j.lines()
        );
    }
    if let Some(m) = &mem {
        let out = f.value("--perfetto").unwrap();
        let events = m.events();
        let rendered = {
            let _sp = probe::span(probe::SpanKind::Export);
            if probe::enabled() {
                // Include the self-profiling track (pid 4) alongside
                // the sim tracks.
                chrome_trace_with_probe(&events, &probe::report())
            } else {
                chrome_trace(&events)
            }
        };
        std::fs::write(out, rendered).map_err(|e| format!("writing {out}: {e}"))?;
        println!("perfetto         {out} ({} events)", events.len());
    }
    if f.has("--summary") {
        print!("{}", report.summary);
    }
    if let Some(out) = f.value("--probe") {
        let r = probe::report();
        std::fs::write(out, r.prometheus()).map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "probe            {out} ({} span kinds, {} threads)",
            r.spans.len(),
            r.threads
        );
    }
    Ok(())
}

/// `simulate --seeds N`: runs the same trace and plan under `N` seeds
/// (`--seed` itself plus `N−1` derived via splitmix64) on the sweep
/// pool, printing per-seed rows in seed order and cross-seed summaries.
///
/// Each cell owns its engine and RNGs, and rows are collected by cell
/// index, so the table is byte-identical whatever `--jobs` is.
fn simulate_seed_sweep(
    params: SimParams,
    jobs: Vec<JobSpec>,
    plan: Plan,
    kind: SchedulerKind,
    base_seed: u64,
    n_seeds: usize,
    pool_jobs: usize,
) -> Result<(), String> {
    let mut seeds = vec![base_seed];
    seeds.extend(corral::sweep::derive_seeds(base_seed, n_seeds - 1));

    let pool = corral::sweep::SweepPool::new(pool_jobs);
    let results = pool.run(n_seeds, |i| {
        let mut p = params.clone();
        p.seed = seeds[i];
        Engine::new(p, jobs.clone(), &plan, kind).run()
    });

    println!(
        "{:>18} {:>12} {:>12} {:>12} {:>16} {:>10}",
        "seed", "makespan", "mean jct", "median jct", "cross-rack", "unfinished"
    );
    let mut makespans = Vec::new();
    let mut mean_jcts = Vec::new();
    let mut failed = 0;
    for (i, r) in results.iter().enumerate() {
        match r {
            Ok(r) => {
                println!(
                    "{:>#18x} {:>11.1}s {:>11.1}s {:>11.1}s {:>16} {:>10}",
                    seeds[i],
                    r.makespan.as_secs(),
                    r.avg_completion_time(),
                    r.median_completion_time(),
                    r.cross_rack_bytes.to_string(),
                    r.unfinished
                );
                makespans.push(r.makespan.as_secs());
                mean_jcts.push(r.avg_completion_time());
            }
            Err(e) => {
                failed += 1;
                println!("{:>#18x} FAILED: {}", seeds[i], e.message);
            }
        }
    }
    println!("makespan   {}", corral::sweep::Summary::of(&makespans));
    println!("mean jct   {}", corral::sweep::Summary::of(&mean_jcts));
    if failed > 0 {
        return Err(format!("{failed}/{n_seeds} seed runs failed"));
    }
    Ok(())
}
