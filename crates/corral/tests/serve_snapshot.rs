//! Snapshot/restore determinism across **processes**: interrupt a
//! `corral-sim serve` run mid-stream, resume it in a brand-new process,
//! and the stitched decision stream must be byte-identical to the
//! uninterrupted run. This is the strongest form of the serve crate's
//! in-process round-trip test — nothing may survive in memory.

use std::path::PathBuf;
use std::process::Command;

fn sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_corral-sim"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn corral-sim");
    assert!(
        out.status.success(),
        "corral-sim failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout),
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn interrupted_serve_resumes_byte_identically_in_a_fresh_process() {
    let dir = std::env::temp_dir().join(format!("corral-serve-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| -> PathBuf { dir.join(name) };
    let s = |pb: &PathBuf| pb.to_str().unwrap().to_string();

    let trace = p("w1.csv");
    run_ok(sim().args([
        "gen",
        "w1",
        "--jobs",
        "14",
        "--seed",
        "11",
        "--window-min",
        "20",
        "-o",
        &s(&trace),
    ]));

    // Uninterrupted reference run (tripwire on: every replan is also
    // checked against the batch oracle).
    let full = p("full.jsonl");
    run_ok(sim().args([
        "serve",
        &s(&trace),
        "--cluster",
        "tiny",
        "--tripwire",
        "--quiet",
        "--decisions",
        &s(&full),
    ]));

    // Interrupt after 7 of 14 input events; process 1 dies here.
    let snap = p("state.snap");
    let head = p("head.jsonl");
    run_ok(sim().args([
        "serve",
        &s(&trace),
        "--cluster",
        "tiny",
        "--tripwire",
        "--quiet",
        "--snapshot",
        &s(&snap),
        "--snapshot-after",
        "7",
        "--decisions",
        &s(&head),
    ]));

    // Process 2: restore and run the remainder.
    let tail = p("tail.jsonl");
    run_ok(sim().args([
        "serve",
        &s(&trace),
        "--cluster",
        "tiny",
        "--tripwire",
        "--restore",
        &s(&snap),
        "--quiet",
        "--decisions",
        &s(&tail),
    ]));

    let full_text = std::fs::read_to_string(&full).unwrap();
    let stitched =
        std::fs::read_to_string(&head).unwrap() + &std::fs::read_to_string(&tail).unwrap();
    assert_eq!(
        stitched, full_text,
        "snapshot/restore across processes must not change a single byte"
    );
    assert!(!full_text.is_empty());

    // Restoring against a different configuration is refused.
    let out = sim()
        .args([
            "serve",
            &s(&trace),
            "--cluster",
            "tiny",
            "--max-queue",
            "3",
            "--restore",
            &s(&snap),
            "--quiet",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fingerprint"));

    std::fs::remove_dir_all(&dir).ok();
}
