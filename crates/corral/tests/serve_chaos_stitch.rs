//! Crash-recovery under churn, across **processes** (ISSUE 8): kill a
//! `corral-sim serve` run with deterministic chaos injection at a
//! seeded mid-run event index, restore the checksummed snapshot in a
//! brand-new process, and the stitched decision stream must be
//! byte-identical to the uninterrupted run — failures, re-anchors, and
//! all.

use std::path::PathBuf;
use std::process::Command;

fn sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_corral-sim"))
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn corral-sim");
    assert!(
        out.status.success(),
        "corral-sim failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout),
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// splitmix64: the kill point is a pure function of the test seed, not
/// a hand-picked index that might dodge the interesting window.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[test]
fn chaos_serve_killed_mid_run_restores_byte_identically() {
    let dir = std::env::temp_dir().join(format!("corral-chaos-stitch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| -> PathBuf { dir.join(name) };
    let s = |pb: &PathBuf| pb.to_str().unwrap().to_string();

    let trace = p("w1.csv");
    run_ok(sim().args([
        "gen",
        "w1",
        "--jobs",
        "14",
        "--seed",
        "11",
        "--window-min",
        "20",
        "-o",
        &s(&trace),
    ]));

    // Every run below injects the same seeded churn schedule, so the
    // merged input stream (arrivals + failures + repairs) is identical
    // across processes. Tripwire on: post-failure replans are also
    // oracle-checked in all three runs.
    let churn: &[&str] = &[
        "--churn-mtbf",
        "300",
        "--churn-repair",
        "90",
        "--churn-horizon",
        "1500",
        "--churn-seed",
        "9",
        "--fail-threshold",
        "0.2",
    ];

    // Uninterrupted reference run.
    let full = p("full.jsonl");
    run_ok(
        sim()
            .args([
                "serve",
                &s(&trace),
                "--cluster",
                "tiny",
                "--tripwire",
                "--quiet",
            ])
            .args(churn)
            .args(["--decisions", &s(&full)]),
    );

    // The seeded kill index: somewhere in [5, 13) — mid-stream, inside
    // the churn window, never past the 14 trace arrivals.
    let kill = 5 + (splitmix(0xDEAD_2026) % 8) as usize;

    // Process 1 dies after `kill` merged input events.
    let snap = p("state.snap");
    let head = p("head.jsonl");
    run_ok(
        sim()
            .args([
                "serve",
                &s(&trace),
                "--cluster",
                "tiny",
                "--tripwire",
                "--quiet",
            ])
            .args(churn)
            .args([
                "--snapshot",
                &s(&snap),
                "--snapshot-after",
                &kill.to_string(),
                "--decisions",
                &s(&head),
            ]),
    );

    // Process 2: fresh process, restore, run the remainder.
    let tail = p("tail.jsonl");
    run_ok(
        sim()
            .args([
                "serve",
                &s(&trace),
                "--cluster",
                "tiny",
                "--tripwire",
                "--quiet",
            ])
            .args(churn)
            .args(["--restore", &s(&snap), "--decisions", &s(&tail)]),
    );

    let full_text = std::fs::read_to_string(&full).unwrap();
    let stitched =
        std::fs::read_to_string(&head).unwrap() + &std::fs::read_to_string(&tail).unwrap();
    assert_eq!(
        stitched, full_text,
        "chaos snapshot/restore across processes must not change a single byte"
    );
    assert!(!full_text.is_empty());

    // The churn actually bit: the stream contains failure-driven
    // decisions or the snapshot recorded dead machines at the kill
    // point. (Weaker sanity: the reference summary counts failures.)
    let snap_text = std::fs::read_to_string(&snap).unwrap();
    assert!(
        snap_text.contains("\ndead "),
        "snapshot must carry the dead-machine set"
    );

    // A truncated snapshot (the crash hit during the write) is refused
    // outright instead of restoring half a scheduler:
    let cut = &snap_text[..snap_text.len() / 2];
    let bad = p("cut.snap");
    std::fs::write(&bad, cut).unwrap();
    let out = sim()
        .args(["serve", &s(&trace), "--cluster", "tiny", "--quiet"])
        .args(churn)
        .args(["--restore", &s(&bad)])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("snapshot"));

    std::fs::remove_dir_all(&dir).ok();
}
