//! The JSONL wire format of `corral-sim serve`: one event per input
//! line, one decision per output line.
//!
//! Events (field names follow the workload CSV header):
//!
//! ```json
//! {"type":"arrival","id":1,"name":"w1-003","arrival_s":12.5,
//!  "input_b":1e9,"shuffle_b":5e8,"output_b":1e8,"maps":40,"reduces":10,
//!  "map_bps":5e7,"reduce_bps":5e7}
//! {"type":"completion","id":1,"t_s":340.2}
//! {"type":"machine_failed","machine":42,"t_s":500.0}
//! {"type":"machine_repaired","machine":42,"t_s":800.0}
//! {"type":"rack_failed","rack":3,"t_s":950.0}
//! ```
//!
//! `name` defaults to `job<id>`, `plannable` to `true`. Decisions go
//! out with fixed key order and `{}`-formatted floats (shortest exact
//! roundtrip), so same-input runs are byte-identical:
//!
//! ```json
//! {"t_s":12.5,"decision":"admit","job":1,"racks":[0,1],"priority":0,
//!  "start_s":12.5,"finish_s":64.1}
//! ```
//!
//! Parsing never panics: any malformed line returns a structured
//! [`ServeError::Parse`], and [`lossy_job_id`] recovers a best-effort
//! job id from broken lines so the service can answer with a
//! `"cause":"malformed"` reject instead of dying.

use crate::error::ServeError;
use crate::event::{Decision, ServeEvent};
use crate::jsonv::{self, Value};
use corral_model::{
    Bandwidth, Bytes, JobId, JobSpec, MachineId, MapReduceProfile, RackId, SimTime,
};
use std::fmt::Write as _;

fn need_f64(v: &Value, key: &str) -> Result<f64, ServeError> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| ServeError::parse(format!("missing/non-numeric field {key:?}")))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, ServeError> {
    v.get(key)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| ServeError::parse(format!("missing/non-integer field {key:?}")))
}

fn need_u32(v: &Value, key: &str) -> Result<u32, ServeError> {
    let raw = need_u64(v, key)?;
    u32::try_from(raw).map_err(|_| ServeError::parse(format!("field {key:?} out of range: {raw}")))
}

/// Parses one JSONL input line into a [`ServeEvent`].
pub fn parse_event(line: &str) -> Result<ServeEvent, ServeError> {
    let v = jsonv::parse(line).map_err(ServeError::parse)?;
    let kind = v
        .get("type")
        .and_then(|x| x.as_str())
        .ok_or_else(|| ServeError::parse("missing \"type\""))?;
    match kind {
        "arrival" => {
            let id = need_u32(&v, "id")?;
            let name = v
                .get("name")
                .and_then(|x| x.as_str())
                .map(|s| s.to_string())
                .unwrap_or_else(|| format!("job{id}"));
            let plannable = match v.get("plannable") {
                Some(Value::Bool(b)) => *b,
                None => true,
                Some(_) => return Err(ServeError::parse("\"plannable\" must be a bool")),
            };
            let spec = JobSpec {
                id: JobId(id),
                name,
                arrival: SimTime(need_f64(&v, "arrival_s")?),
                plannable,
                profile: corral_model::JobProfile::MapReduce(MapReduceProfile {
                    input: Bytes(need_f64(&v, "input_b")?),
                    shuffle: Bytes(need_f64(&v, "shuffle_b")?),
                    output: Bytes(need_f64(&v, "output_b")?),
                    maps: need_u64(&v, "maps")? as usize,
                    reduces: need_u64(&v, "reduces")? as usize,
                    map_rate: Bandwidth(need_f64(&v, "map_bps")?),
                    reduce_rate: Bandwidth(need_f64(&v, "reduce_bps")?),
                }),
            };
            spec.validate()
                .map_err(|e| ServeError::parse(format!("invalid arrival: {e}")))?;
            Ok(ServeEvent::Arrival(spec))
        }
        "completion" => Ok(ServeEvent::Completion {
            job: JobId(need_u32(&v, "id")?),
            at: SimTime(need_f64(&v, "t_s")?),
        }),
        "machine_failed" => Ok(ServeEvent::MachineFailed {
            machine: MachineId(need_u32(&v, "machine")?),
            at: SimTime(need_f64(&v, "t_s")?),
        }),
        "machine_repaired" => Ok(ServeEvent::MachineRepaired {
            machine: MachineId(need_u32(&v, "machine")?),
            at: SimTime(need_f64(&v, "t_s")?),
        }),
        "rack_failed" => Ok(ServeEvent::RackFailed {
            rack: RackId(need_u32(&v, "rack")?),
            at: SimTime(need_f64(&v, "t_s")?),
        }),
        other => Err(ServeError::parse(format!("unknown event type {other:?}"))),
    }
}

/// Best-effort job id recovery from a line [`parse_event`] rejected:
/// if the line is still JSON with a numeric `id` (or `job`) field, that
/// id lets the service emit a structured malformed-reject for it.
pub fn lossy_job_id(line: &str) -> Option<JobId> {
    let v = jsonv::parse(line).ok()?;
    let raw = v
        .get("id")
        .or_else(|| v.get("job"))
        .and_then(|x| x.as_u64())?;
    u32::try_from(raw).ok().map(JobId)
}

/// Serializes an event to its JSONL line (inverse of [`parse_event`]
/// for MapReduce arrivals; DAG jobs and [`ServeEvent::Malformed`]
/// markers are not wire-representable).
pub fn format_event(ev: &ServeEvent) -> Result<String, ServeError> {
    match ev {
        ServeEvent::Arrival(s) => {
            let mr = match &s.profile {
                corral_model::JobProfile::MapReduce(mr) => mr,
                corral_model::JobProfile::Dag(_) => {
                    return Err(ServeError::parse(format!(
                        "job {} is a DAG: not wire-representable",
                        s.id
                    )))
                }
            };
            let mut o = String::from("{\"type\":\"arrival\"");
            let _ = write!(o, ",\"id\":{}", s.id.0);
            let _ = write!(o, ",\"name\":{}", Value::Str(s.name.clone()).to_json());
            let _ = write!(o, ",\"arrival_s\":{}", s.arrival.0);
            if !s.plannable {
                o.push_str(",\"plannable\":false");
            }
            let _ = write!(o, ",\"input_b\":{}", mr.input.0);
            let _ = write!(o, ",\"shuffle_b\":{}", mr.shuffle.0);
            let _ = write!(o, ",\"output_b\":{}", mr.output.0);
            let _ = write!(o, ",\"maps\":{}", mr.maps);
            let _ = write!(o, ",\"reduces\":{}", mr.reduces);
            let _ = write!(o, ",\"map_bps\":{}", mr.map_rate.0);
            let _ = write!(o, ",\"reduce_bps\":{}", mr.reduce_rate.0);
            o.push('}');
            Ok(o)
        }
        ServeEvent::Completion { job, at } => Ok(format!(
            "{{\"type\":\"completion\",\"id\":{},\"t_s\":{}}}",
            job.0, at.0
        )),
        ServeEvent::MachineFailed { machine, at } => Ok(format!(
            "{{\"type\":\"machine_failed\",\"machine\":{},\"t_s\":{}}}",
            machine.0, at.0
        )),
        ServeEvent::MachineRepaired { machine, at } => Ok(format!(
            "{{\"type\":\"machine_repaired\",\"machine\":{},\"t_s\":{}}}",
            machine.0, at.0
        )),
        ServeEvent::RackFailed { rack, at } => Ok(format!(
            "{{\"type\":\"rack_failed\",\"rack\":{},\"t_s\":{}}}",
            rack.0, at.0
        )),
        ServeEvent::Malformed { .. } => Err(ServeError::parse(
            "malformed-line markers are not wire-representable",
        )),
    }
}

fn racks_json(racks: &[RackId]) -> String {
    let mut o = String::from("[");
    for (i, r) in racks.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        let _ = write!(o, "{}", r.0);
    }
    o.push(']');
    o
}

/// Serializes one timestamped decision to its JSONL line.
pub fn format_decision(t: SimTime, d: &Decision) -> String {
    let mut o = String::new();
    let _ = write!(o, "{{\"t_s\":{},\"decision\":\"{}\"", t.0, d.label());
    let _ = write!(o, ",\"job\":{}", d.job().0);
    match d {
        Decision::Admit {
            racks,
            priority,
            planned_start,
            planned_finish,
            ..
        }
        | Decision::Reanchor {
            racks,
            priority,
            planned_start,
            planned_finish,
            ..
        } => {
            let _ = write!(
                o,
                ",\"racks\":{},\"priority\":{},\"start_s\":{},\"finish_s\":{}",
                racks_json(racks),
                priority,
                planned_start.0,
                planned_finish.0
            );
        }
        Decision::Reject { cause, .. } => {
            let _ = write!(o, ",\"cause\":\"{}\"", cause.label());
        }
        Decision::Dispatch {
            racks, priority, ..
        } => {
            let _ = write!(
                o,
                ",\"racks\":{},\"priority\":{}",
                racks_json(racks),
                priority
            );
        }
        Decision::Complete { .. } => {}
    }
    o.push('}');
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RejectCause;

    fn arrival() -> ServeEvent {
        ServeEvent::Arrival(JobSpec::map_reduce(
            JobId(3),
            "w1-003",
            MapReduceProfile {
                input: Bytes(1e9),
                shuffle: Bytes(5e8),
                output: Bytes(1.25e8),
                maps: 40,
                reduces: 10,
                map_rate: Bandwidth(5e7),
                reduce_rate: Bandwidth(5e7),
            },
        ))
    }

    #[test]
    fn events_roundtrip() {
        for ev in [
            arrival(),
            ServeEvent::Completion {
                job: JobId(3),
                at: SimTime(340.25),
            },
            ServeEvent::MachineFailed {
                machine: MachineId(42),
                at: SimTime(500.0),
            },
            ServeEvent::MachineRepaired {
                machine: MachineId(42),
                at: SimTime(800.5),
            },
            ServeEvent::RackFailed {
                rack: RackId(3),
                at: SimTime(950.0),
            },
        ] {
            let line = format_event(&ev).unwrap();
            assert_eq!(parse_event(&line).unwrap(), ev, "line: {line}");
        }
        assert!(format_event(&ServeEvent::Malformed { job: None }).is_err());
    }

    #[test]
    fn arrival_defaults_and_validation() {
        let ev = parse_event(
            r#"{"type":"arrival","id":7,"arrival_s":1.5,"input_b":1e9,"shuffle_b":1e8,
                "output_b":1e7,"maps":4,"reduces":2,"map_bps":5e7,"reduce_bps":5e7}"#,
        )
        .unwrap();
        match ev {
            ServeEvent::Arrival(s) => {
                assert_eq!(s.name, "job7");
                assert!(s.plannable);
            }
            _ => panic!("not an arrival"),
        }
        // Invalid specs are rejected at the wire.
        assert!(parse_event(
            r#"{"type":"arrival","id":7,"arrival_s":1.5,"input_b":1e9,"shuffle_b":1e8,
                "output_b":1e7,"maps":0,"reduces":2,"map_bps":5e7,"reduce_bps":5e7}"#,
        )
        .is_err());
        assert!(parse_event(r#"{"type":"mystery"}"#).is_err());
        assert!(parse_event(r#"{"id":1}"#).is_err());
        assert!(parse_event("not json").is_err());
        // Ids past u32 are structured errors, not silent truncation.
        assert!(parse_event(r#"{"type":"completion","id":4294967296,"t_s":1}"#).is_err());
        assert!(parse_event(r#"{"type":"machine_failed","machine":-1,"t_s":1}"#).is_err());
    }

    #[test]
    fn lossy_id_recovery() {
        // Parseable JSON, unparseable event: id is recoverable.
        assert_eq!(lossy_job_id(r#"{"type":"mystery","id":9}"#), Some(JobId(9)));
        assert_eq!(lossy_job_id(r#"{"job":4,"t_s":"oops"}"#), Some(JobId(4)));
        // No id, non-numeric id, or not JSON at all: nothing to say.
        assert_eq!(lossy_job_id(r#"{"type":"arrival"}"#), None);
        assert_eq!(lossy_job_id(r#"{"id":"seven"}"#), None);
        assert_eq!(lossy_job_id(r#"{"id":4294967296}"#), None);
        assert_eq!(lossy_job_id("not json"), None);
    }

    #[test]
    fn decision_lines_are_stable() {
        let d = Decision::Admit {
            job: JobId(1),
            racks: vec![RackId(0), RackId(2)],
            priority: 0,
            planned_start: SimTime(12.5),
            planned_finish: SimTime(64.0),
        };
        assert_eq!(
            format_decision(SimTime(12.5), &d),
            r#"{"t_s":12.5,"decision":"admit","job":1,"racks":[0,2],"priority":0,"start_s":12.5,"finish_s":64}"#
        );
        let r = Decision::Reject {
            job: JobId(2),
            cause: RejectCause::QueueFull,
        };
        assert_eq!(
            format_decision(SimTime(1.0), &r),
            r#"{"t_s":1,"decision":"reject","job":2,"cause":"queue_full"}"#
        );
        let m = Decision::Reject {
            job: JobId(5),
            cause: RejectCause::Malformed,
        };
        assert_eq!(
            format_decision(SimTime(2.0), &m),
            r#"{"t_s":2,"decision":"reject","job":5,"cause":"malformed"}"#
        );
        let re = Decision::Reanchor {
            job: JobId(7),
            racks: vec![RackId(1)],
            priority: 2,
            planned_start: SimTime(20.0),
            planned_finish: SimTime(95.5),
        };
        assert_eq!(
            format_decision(SimTime(18.0), &re),
            r#"{"t_s":18,"decision":"reanchor","job":7,"racks":[1],"priority":2,"start_s":20,"finish_s":95.5}"#
        );
        // Decision lines parse as JSON (and are thus machine-readable).
        for line in [
            format_decision(SimTime(12.5), &d),
            format_decision(SimTime(1.0), &r),
            format_decision(SimTime(2.0), &m),
            format_decision(SimTime(18.0), &re),
        ] {
            assert!(crate::jsonv::parse(&line).is_ok());
        }
    }
}
