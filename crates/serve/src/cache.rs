//! The plan cache: replanning problems keyed by *shape*, not identity.
//!
//! Replans run in now-relative time (the newcomer arrives at `0.0`,
//! queued survivors at their negative age), so the planning problem for
//! "recurring template T arrives at an empty queue" is byte-identical no
//! matter when it happens — the dominant steady-state case. The cache
//! stores **abstract plans**: per-position entries with the job ids
//! stripped, re-materialized against the live ids on a hit.
//!
//! The key covers everything the planner reads: a cluster/objective
//! config fingerprint, and per job (in canonical `(arrival, id)` problem
//! order) its profile template hash
//! ([`corral_core::profile_fingerprint`]), exact relative arrival bits,
//! pinned rack set (or an unpinned marker), and — crucially — its rank
//! in the problem's *id order*. The planner breaks start-time ties by
//! job id, so two problems are only interchangeable when their id
//! permutations agree; hashing the permutation makes a hit sufficient
//! for bit-equal output. Keys are a pair of independent FNV-1a streams
//! (128 bits total), and a length mismatch at lookup demotes a residual
//! collision to a miss rather than a wrong plan.

use corral_core::plan::{Plan, PlanEntry};
use corral_core::profile_fingerprint;
use corral_model::{JobId, JobSpec, RackId, SimTime};
use corral_trace::probe::{self, ProbeCounter};
use std::collections::{BTreeMap, VecDeque};

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
/// Second stream: a different, odd offset basis so the two hashes are
/// not trivially correlated.
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142 ^ 0x9e37_79b9_7f4a_7c15;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[derive(Clone, Copy)]
struct Hasher2 {
    a: u64,
    b: u64,
}

impl Hasher2 {
    fn new() -> Self {
        Hasher2 {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ byte as u64)
                .wrapping_mul(FNV_PRIME)
                .rotate_left(1);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn key(self) -> (u64, u64) {
        (self.a, self.b)
    }
}

/// Cache key: 128 bits over config + canonical problem.
pub type CacheKey = (u64, u64);

/// Computes the cache key for one replanning problem. `problem` must be
/// in canonical `(arrival, id)` order with *relative* arrivals; `pins`
/// maps queued survivors to their anchored racks. `dead_fp` is the
/// dead-machine-set fingerprint (`0` while the cluster is fully live):
/// a failure changes the virtual cluster the planner sees, so plans
/// cached before it must not answer problems after it — and a full
/// repair restores `dead_fp = 0`, making the pre-failure entries valid
/// (and hittable) again.
pub fn problem_key(
    config_fp: u64,
    dead_fp: u64,
    problem: &[JobSpec],
    pins: &BTreeMap<JobId, Vec<RackId>>,
) -> CacheKey {
    let mut h = Hasher2::new();
    h.u64(config_fp);
    h.u64(dead_fp);
    h.u64(problem.len() as u64);
    // Rank of each position's id within the problem's id set: the
    // planner's tie-breaks compare ids, so the permutation is part of
    // the problem shape.
    let mut by_id: Vec<usize> = (0..problem.len()).collect();
    by_id.sort_by_key(|&i| problem[i].id);
    let mut rank = vec![0u64; problem.len()];
    for (r, &i) in by_id.iter().enumerate() {
        rank[i] = r as u64;
    }
    for (i, s) in problem.iter().enumerate() {
        h.u64(profile_fingerprint(&s.profile));
        h.f64(s.arrival.0);
        h.u64(rank[i]);
        match pins.get(&s.id) {
            Some(racks) => {
                h.u64(1 + racks.len() as u64);
                for r in racks {
                    h.u64(r.0 as u64);
                }
            }
            None => h.u64(0),
        }
    }
    h.key()
}

/// One cached entry: a plan with the ids stripped, positions matching
/// the canonical problem order the key was computed from.
#[derive(Debug, Clone)]
struct AbstractPlan {
    entries: Vec<AbstractEntry>,
    objective_value: f64,
}

#[derive(Debug, Clone)]
struct AbstractEntry {
    racks: Vec<RackId>,
    priority: u32,
    planned_start: SimTime,
    planned_finish: SimTime,
    predicted_latency: SimTime,
}

/// A bounded FIFO plan cache. `capacity == 0` disables caching (every
/// probe is a miss and nothing is stored).
#[derive(Debug, Default)]
pub struct PlanCache {
    capacity: usize,
    map: BTreeMap<CacheKey, AbstractPlan>,
    order: VecDeque<CacheKey>,
    /// Lookups that returned a materialized plan.
    pub hits: u64,
    /// Lookups that fell through to the planner.
    pub misses: u64,
}

impl PlanCache {
    /// New cache holding at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            ..Default::default()
        }
    }

    /// Plans currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Probes the cache. `ids` are the problem's job ids in the same
    /// canonical order the key was computed from; on a hit the abstract
    /// plan is materialized against them. Counts
    /// [`ProbeCounter::PlanCacheHit`] / [`ProbeCounter::PlanCacheMiss`].
    pub fn lookup(&mut self, key: CacheKey, ids: &[JobId]) -> Option<Plan> {
        let cached = self.map.get(&key).filter(|c| c.entries.len() == ids.len());
        match cached {
            Some(c) => {
                self.hits += 1;
                probe::count(ProbeCounter::PlanCacheHit, 1);
                let mut plan = Plan {
                    objective_value: c.objective_value,
                    ..Default::default()
                };
                for (id, e) in ids.iter().zip(&c.entries) {
                    plan.entries.insert(
                        *id,
                        PlanEntry {
                            job: *id,
                            racks: e.racks.clone(),
                            priority: e.priority,
                            planned_start: e.planned_start,
                            planned_finish: e.planned_finish,
                            predicted_latency: e.predicted_latency,
                        },
                    );
                }
                Some(plan)
            }
            None => {
                self.misses += 1;
                probe::count(ProbeCounter::PlanCacheMiss, 1);
                None
            }
        }
    }

    /// Stores `plan` under `key` (`ids` in canonical problem order),
    /// evicting the oldest entry beyond capacity.
    pub fn insert(&mut self, key: CacheKey, ids: &[JobId], plan: &Plan) {
        if self.capacity == 0 {
            return;
        }
        let entries: Vec<AbstractEntry> = ids
            .iter()
            .map(|id| {
                let e = plan.entry(*id).expect("plan covers every problem job");
                AbstractEntry {
                    racks: e.racks.clone(),
                    priority: e.priority,
                    planned_start: e.planned_start,
                    planned_finish: e.planned_finish,
                    predicted_latency: e.predicted_latency,
                }
            })
            .collect();
        if self
            .map
            .insert(
                key,
                AbstractPlan {
                    entries,
                    objective_value: plan.objective_value,
                },
            )
            .is_none()
        {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corral_model::{Bandwidth, Bytes, MapReduceProfile};

    fn spec(id: u32, arrival: f64, gb: f64) -> JobSpec {
        JobSpec::map_reduce(
            JobId(id),
            format!("j{id}"),
            MapReduceProfile {
                input: Bytes::gb(gb),
                shuffle: Bytes::gb(gb),
                output: Bytes::gb(gb / 10.0),
                maps: 8,
                reduces: 4,
                map_rate: Bandwidth::mbytes_per_sec(50.0),
                reduce_rate: Bandwidth::mbytes_per_sec(50.0),
            },
        )
        .arriving_at(SimTime(arrival))
    }

    fn entry(id: u32, prio: u32) -> PlanEntry {
        PlanEntry {
            job: JobId(id),
            racks: vec![RackId(0)],
            priority: prio,
            planned_start: SimTime(0.0),
            planned_finish: SimTime(10.0),
            predicted_latency: SimTime(10.0),
        }
    }

    #[test]
    fn same_shape_different_ids_hits_and_rematerializes() {
        let pins = BTreeMap::new();
        let p1 = vec![spec(5, 0.0, 2.0)];
        let p2 = vec![spec(9, 0.0, 2.0)];
        let k1 = problem_key(42, 0, &p1, &pins);
        let k2 = problem_key(42, 0, &p2, &pins);
        assert_eq!(k1, k2, "template + shape match ⇒ same key");

        let mut cache = PlanCache::new(4);
        assert!(cache.lookup(k1, &[JobId(5)]).is_none());
        let mut plan = Plan::default();
        plan.entries.insert(JobId(5), entry(5, 0));
        plan.objective_value = 10.0;
        cache.insert(k1, &[JobId(5)], &plan);

        let hit = cache.lookup(k2, &[JobId(9)]).expect("cache hit");
        assert_eq!(hit.entry(JobId(9)).unwrap().priority, 0);
        assert_eq!(hit.objective_value, 10.0);
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
    }

    #[test]
    fn key_separates_arrivals_pins_and_id_order() {
        let pins = BTreeMap::new();
        let base = vec![spec(1, -3.0, 2.0), spec(2, 0.0, 4.0)];
        let k = problem_key(42, 0, &base, &pins);

        // Different relative age.
        let aged = vec![spec(1, -4.0, 2.0), spec(2, 0.0, 4.0)];
        assert_ne!(k, problem_key(42, 0, &aged, &pins));

        // Same shapes, inverted id order (ties would break differently).
        let inverted = vec![spec(2, -3.0, 2.0), spec(1, 0.0, 4.0)];
        assert_ne!(k, problem_key(42, 0, &inverted, &pins));

        // A pin changes the problem.
        let mut pinned = BTreeMap::new();
        pinned.insert(JobId(1), vec![RackId(0), RackId(2)]);
        assert_ne!(k, problem_key(42, 0, &base, &pinned));

        // Different config fingerprint.
        assert_ne!(k, problem_key(43, 0, &base, &pins));
    }

    #[test]
    fn fifo_eviction_and_zero_capacity() {
        let pins = BTreeMap::new();
        let mut cache = PlanCache::new(2);
        let mut plan = Plan::default();
        plan.entries.insert(JobId(1), entry(1, 0));
        let keys: Vec<CacheKey> = (0..3)
            .map(|i| problem_key(i, 0, &[spec(1, 0.0, 2.0)], &pins))
            .collect();
        for k in &keys {
            cache.insert(*k, &[JobId(1)], &plan);
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(keys[0], &[JobId(1)]).is_none(), "evicted");
        assert!(cache.lookup(keys[2], &[JobId(1)]).is_some());

        let mut off = PlanCache::new(0);
        off.insert(keys[0], &[JobId(1)], &plan);
        assert!(off.is_empty());
        assert!(off.lookup(keys[0], &[JobId(1)]).is_none());
    }
}
