//! # corral-serve
//!
//! The Corral planner as a **long-lived scheduling service**. The paper
//! evaluates "plan when you can" batch-style — one planning problem per
//! experiment. This crate turns the same planner into the resident form
//! network-aware schedulers are actually deployed in: a deterministic
//! service loop that consumes a stream of job arrivals and completions
//! and emits admission, dispatch, and completion decisions.
//!
//! Architecture (DESIGN.md §7):
//!
//! * [`scheduler`] — the state machine. Admission control with a bounded
//!   queue; on every arrival/completion it **incrementally replans** the
//!   queued (not-yet-dispatched) jobs: survivors are pinned to the racks
//!   chosen at their admission (their data is already uploaded — §3.1),
//!   so an arrival perturbs only the newcomer's candidates and a
//!   completion re-times a fully pinned problem. Latency response tables
//!   are reused across replans via
//!   [`corral_core::IncrementalPlanner`]; the full
//!   [`corral_core::plan_jobs_pinned`] stays the oracle, and tripwire
//!   mode asserts plan-equality on every replan.
//! * [`cache`] — a plan cache keyed by (cluster-config fingerprint, job
//!   template hashes, relative arrivals, pins, id-order permutation),
//!   with probe-counted hits/misses. Replans happen in *now-relative*
//!   time, so an empty-queue arrival of a recurring template hits the
//!   cache no matter when it lands.
//! * [`event`] — the event/decision vocabulary of the service.
//! * [`source`] — frontends: an in-process channel service and the JSONL
//!   stream reader behind `corral-sim serve`.
//! * [`wire`] — the JSONL wire format (events in, decisions out), built
//!   on [`jsonv`].
//! * [`snapshot`] — versioned text snapshot/restore of scheduler state;
//!   a restored run's decision stream is byte-identical to the
//!   uninterrupted one.
//! * [`driver`] — co-simulation: the scheduler driving a live
//!   [`corral_cluster::engine::Engine`] through its feed/drain seam
//!   (`submit_jobs` / `drain_finished`) instead of self-clocking.
//!
//! Failure model (DESIGN.md §8): machine/rack failure and repair events
//! flow through the same wire as arrivals. With the §7 fallback on, the
//! scheduler masks dead capacity behind a **virtual rack map** (the
//! planner's rack symmetry makes masking exact), re-anchors queued jobs
//! whose racks died, and keys the plan cache on the dead set. Degraded
//! modes never panic:
//!
//! * [`error`] — the structured [`error::ServeError`] every fallible
//!   serving path returns (malformed lines, corrupt snapshots, overload).
//! * [`chaos`] — deterministic seeded failure-schedule injection for
//!   tests and `repro chaosbench`.
//! * malformed input degrades to [`event::ServeEvent::Malformed`]
//!   (counted + structured reject), snapshots are checksummed, the
//!   channel frontend is bounded with explicit shed-load, and dispatch
//!   onto dead racks retries with backoff before dropping its pins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod driver;
pub mod error;
pub mod event;
pub(crate) mod fault;
pub mod jsonv;
pub mod scheduler;
pub mod snapshot;
pub mod source;
pub mod wire;

pub use cache::PlanCache;
pub use chaos::ChaosSpec;
pub use driver::EngineDriver;
pub use error::ServeError;
pub use event::{Decision, RejectCause, ServeEvent};
pub use scheduler::{Scheduler, ServeConfig, ServeStats};
pub use source::{spawn_service, spawn_service_bounded, ServiceHandle, ServiceResult};
