//! Event-stream frontends: JSONL readers, trace adapters, and the
//! in-process channel service.

use crate::event::{Decision, ServeEvent};
use crate::scheduler::{Scheduler, ServeConfig, ServeStats};
use crate::wire;
use corral_model::{JobSpec, SimTime};
use corral_trace::probe;
use std::io::BufRead;
use std::sync::mpsc;

/// Reads a JSONL event stream (see [`crate::wire`]); blank lines are
/// skipped. Errors carry the 1-based line number.
pub fn read_events(reader: impl BufRead) -> Result<Vec<ServeEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(wire::parse_event(&line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

/// Adapts a batch workload (e.g. a CSV trace) into an arrival stream,
/// sorted by `(arrival, id)`.
pub fn events_from_specs(specs: &[JobSpec]) -> Vec<ServeEvent> {
    let mut specs: Vec<JobSpec> = specs.to_vec();
    specs.sort_by(|a, b| a.arrival.total_cmp(b.arrival).then(a.id.cmp(&b.id)));
    specs.into_iter().map(ServeEvent::Arrival).collect()
}

/// Producer handle for an in-process service: send events, then drop
/// (or [`ServiceHandle::close`]) to let the service drain and finish.
pub struct ServiceHandle {
    tx: mpsc::Sender<ServeEvent>,
}

impl ServiceHandle {
    /// Queues one event. Errors if the service thread is gone.
    pub fn send(&self, ev: ServeEvent) -> Result<(), String> {
        self.tx
            .send(ev)
            .map_err(|_| "service thread hung up".to_string())
    }

    /// Closes the stream; the service drains its timers and returns.
    pub fn close(self) {}
}

/// What the service thread hands back when it drains: the full decision
/// log and the final stats.
pub type ServiceResult = (Vec<(SimTime, Decision)>, ServeStats);

/// Spawns the scheduler on its own thread behind a bounded-queue
/// channel frontend. The thread consumes events until the handle is
/// dropped, runs the scheduler dry, and returns the full decision log
/// and final stats. (Admission control bounds the *scheduler's* queue;
/// the channel itself is the transport buffer.)
pub fn spawn_service(cfg: ServeConfig) -> (ServiceHandle, std::thread::JoinHandle<ServiceResult>) {
    let (tx, rx) = mpsc::channel::<ServeEvent>();
    let join = std::thread::spawn(move || {
        let mut sched = Scheduler::new(cfg);
        let mut out = Vec::new();
        while let Ok(ev) = rx.recv() {
            sched.on_event(ev, &mut out);
        }
        sched.finish(&mut out);
        let stats = sched.stats();
        // Probe spans/counters recorded on this thread must be folded
        // into the global report before the thread dies.
        probe::flush_thread();
        (out, stats)
    });
    (ServiceHandle { tx }, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corral_model::{Bandwidth, Bytes, ClusterConfig, JobId, MapReduceProfile};

    fn spec(id: u32, arrival: f64) -> JobSpec {
        JobSpec::map_reduce(
            JobId(id),
            format!("j{id}"),
            MapReduceProfile {
                input: Bytes::gb(4.0),
                shuffle: Bytes::gb(2.0),
                output: Bytes::gb(0.4),
                maps: 12,
                reduces: 6,
                map_rate: Bandwidth::mbytes_per_sec(50.0),
                reduce_rate: Bandwidth::mbytes_per_sec(50.0),
            },
        )
        .arriving_at(SimTime(arrival))
    }

    #[test]
    fn jsonl_reader_skips_blanks_and_reports_line_numbers() {
        let text = format!(
            "{}\n\n{}\n",
            wire::format_event(&ServeEvent::Arrival(spec(1, 0.0))).unwrap(),
            wire::format_event(&ServeEvent::Completion {
                job: JobId(1),
                at: SimTime(9.0)
            })
            .unwrap(),
        );
        let events = read_events(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);

        let err = read_events("{}\n".as_bytes()).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn specs_adapt_to_a_sorted_arrival_stream() {
        let events = events_from_specs(&[spec(2, 5.0), spec(3, 1.0), spec(1, 5.0)]);
        let order: Vec<u32> = events
            .iter()
            .map(|e| match e {
                ServeEvent::Arrival(s) => s.id.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, [3, 1, 2]);
    }

    #[test]
    fn channel_service_matches_the_inline_scheduler() {
        let cfg = ServeConfig {
            cluster: ClusterConfig::tiny_test(),
            ..ServeConfig::default()
        };
        let events: Vec<ServeEvent> = (1..=6u32)
            .map(|i| ServeEvent::Arrival(spec(i, i as f64 * 3.0)))
            .collect();

        let (handle, join) = spawn_service(cfg.clone());
        for ev in &events {
            handle.send(ev.clone()).unwrap();
        }
        handle.close();
        let (threaded, thread_stats) = join.join().unwrap();

        let mut inline = Vec::new();
        let inline_stats = Scheduler::new(cfg).run(events, &mut inline);
        assert_eq!(threaded, inline);
        assert_eq!(thread_stats, inline_stats);
    }
}
