//! Event-stream frontends: JSONL readers (strict and lossy), trace
//! adapters, and the in-process channel service with bounded transport
//! and shed-load overflow.

use crate::error::ServeError;
use crate::event::{Decision, ServeEvent};
use crate::scheduler::{Scheduler, ServeConfig, ServeStats};
use crate::wire;
use corral_model::{JobSpec, SimTime};
use corral_trace::probe;
use std::io::BufRead;
use std::sync::mpsc;

/// Default transport-channel capacity for [`spawn_service`]: deep
/// enough to decouple producer bursts from the scheduler, shallow
/// enough that a stuck consumer surfaces as backpressure (or, via
/// [`ServiceHandle::try_send`], an explicit shed) instead of unbounded
/// memory growth.
pub const DEFAULT_TRANSPORT_CAPACITY: usize = 1024;

/// Reads a JSONL event stream (see [`crate::wire`]) strictly: the first
/// malformed line aborts with an error carrying its 1-based line
/// number. Blank lines are skipped. Use [`read_events_lossy`] for a
/// frontend that degrades instead of aborting.
pub fn read_events(reader: impl BufRead) -> Result<Vec<ServeEvent>, ServeError> {
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line =
            line.map_err(|e| ServeError::parse(format!("read error: {e}")).at_line(i as u64 + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(wire::parse_event(&line).map_err(|e| e.at_line(i as u64 + 1))?);
    }
    Ok(events)
}

/// Reads a JSONL event stream **lossily**: a malformed line becomes a
/// [`ServeEvent::Malformed`] (carrying the job id when one could be
/// recovered from the garbled line) instead of aborting, so one bad
/// producer cannot take the service down. Only I/O errors are fatal.
/// The returned stream is positionally aligned with the input — every
/// non-blank line yields exactly one event — which keeps snapshot
/// restore's skip-by-event-count correct across malformed input.
pub fn read_events_lossy(reader: impl BufRead) -> Result<Vec<ServeEvent>, ServeError> {
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line =
            line.map_err(|e| ServeError::parse(format!("read error: {e}")).at_line(i as u64 + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        events.push(match wire::parse_event(&line) {
            Ok(ev) => ev,
            Err(_) => ServeEvent::Malformed {
                job: wire::lossy_job_id(&line),
            },
        });
    }
    Ok(events)
}

/// Adapts a batch workload (e.g. a CSV trace) into an arrival stream,
/// sorted by `(arrival, id)`.
pub fn events_from_specs(specs: &[JobSpec]) -> Vec<ServeEvent> {
    let mut specs: Vec<JobSpec> = specs.to_vec();
    specs.sort_by(|a, b| a.arrival.total_cmp(b.arrival).then(a.id.cmp(&b.id)));
    specs.into_iter().map(ServeEvent::Arrival).collect()
}

/// Producer handle for an in-process service: send events, then drop
/// (or [`ServiceHandle::close`]) to let the service drain and finish.
pub struct ServiceHandle {
    tx: mpsc::SyncSender<ServeEvent>,
}

impl ServiceHandle {
    /// Queues one event, blocking while the transport is full. Errors
    /// if the service thread is gone.
    pub fn send(&self, ev: ServeEvent) -> Result<(), ServeError> {
        self.tx.send(ev).map_err(|_| ServeError::Disconnected)
    }

    /// Queues one event **without blocking**. When the transport is
    /// full the event is handed back with [`ServeError::Overloaded`] —
    /// an explicit shed-load decision for the producer (drop, retry
    /// later, or divert) instead of silent queue growth. The large
    /// `Err` is the point: the rejected event rides back un-boxed.
    #[allow(clippy::result_large_err)]
    pub fn try_send(&self, ev: ServeEvent) -> Result<(), (ServeEvent, ServeError)> {
        match self.tx.try_send(ev) {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Full(ev)) => Err((ev, ServeError::Overloaded)),
            Err(mpsc::TrySendError::Disconnected(ev)) => Err((ev, ServeError::Disconnected)),
        }
    }

    /// Closes the stream; the service drains its timers and returns.
    pub fn close(self) {}
}

/// What the service thread hands back when it drains: the full decision
/// log and the final stats.
pub type ServiceResult = (Vec<(SimTime, Decision)>, ServeStats);

/// Spawns the scheduler on its own thread behind a **bounded** channel
/// frontend ([`DEFAULT_TRANSPORT_CAPACITY`] events). The thread
/// consumes events until the handle is dropped, runs the scheduler dry,
/// and returns the full decision log and final stats. (Admission
/// control bounds the *scheduler's* queue; the channel bounds the
/// transport buffer — see [`spawn_service_bounded`] to pick the
/// capacity.)
pub fn spawn_service(cfg: ServeConfig) -> (ServiceHandle, std::thread::JoinHandle<ServiceResult>) {
    spawn_service_bounded(cfg, DEFAULT_TRANSPORT_CAPACITY)
}

/// [`spawn_service`] with an explicit transport capacity. A full
/// channel blocks [`ServiceHandle::send`] (backpressure) and rejects
/// [`ServiceHandle::try_send`] (shed load).
pub fn spawn_service_bounded(
    cfg: ServeConfig,
    capacity: usize,
) -> (ServiceHandle, std::thread::JoinHandle<ServiceResult>) {
    let (tx, rx) = mpsc::sync_channel::<ServeEvent>(capacity);
    let join = std::thread::spawn(move || {
        let mut sched = Scheduler::new(cfg);
        let mut out = Vec::new();
        while let Ok(ev) = rx.recv() {
            sched.on_event(ev, &mut out);
        }
        sched.finish(&mut out);
        let stats = sched.stats();
        // Probe spans/counters recorded on this thread must be folded
        // into the global report before the thread dies.
        probe::flush_thread();
        (out, stats)
    });
    (ServiceHandle { tx }, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corral_model::{Bandwidth, Bytes, ClusterConfig, JobId, MapReduceProfile};

    fn spec(id: u32, arrival: f64) -> JobSpec {
        JobSpec::map_reduce(
            JobId(id),
            format!("j{id}"),
            MapReduceProfile {
                input: Bytes::gb(4.0),
                shuffle: Bytes::gb(2.0),
                output: Bytes::gb(0.4),
                maps: 12,
                reduces: 6,
                map_rate: Bandwidth::mbytes_per_sec(50.0),
                reduce_rate: Bandwidth::mbytes_per_sec(50.0),
            },
        )
        .arriving_at(SimTime(arrival))
    }

    #[test]
    fn jsonl_reader_skips_blanks_and_reports_line_numbers() {
        let text = format!(
            "{}\n\n{}\n",
            wire::format_event(&ServeEvent::Arrival(spec(1, 0.0))).unwrap(),
            wire::format_event(&ServeEvent::Completion {
                job: JobId(1),
                at: SimTime(9.0)
            })
            .unwrap(),
        );
        let events = read_events(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);

        let err = read_events("{}\n".as_bytes()).unwrap_err().to_string();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn lossy_reader_degrades_malformed_lines_in_place() {
        let good = wire::format_event(&ServeEvent::Arrival(spec(1, 0.0))).unwrap();
        let text = format!(
            "{good}\nnot json at all\n{{\"type\":\"mystery\",\"id\":7}}\n\n{good2}\n",
            good2 = wire::format_event(&ServeEvent::Completion {
                job: JobId(1),
                at: SimTime(9.0)
            })
            .unwrap(),
        );
        let events = read_events_lossy(text.as_bytes()).unwrap();
        // 4 non-blank lines → exactly 4 events, positions preserved.
        assert_eq!(events.len(), 4);
        assert!(matches!(events[0], ServeEvent::Arrival(_)));
        assert!(matches!(events[1], ServeEvent::Malformed { job: None }));
        assert!(matches!(
            events[2],
            ServeEvent::Malformed {
                job: Some(JobId(7))
            }
        ));
        assert!(matches!(events[3], ServeEvent::Completion { .. }));
    }

    #[test]
    fn specs_adapt_to_a_sorted_arrival_stream() {
        let events = events_from_specs(&[spec(2, 5.0), spec(3, 1.0), spec(1, 5.0)]);
        let order: Vec<u32> = events
            .iter()
            .map(|e| match e {
                ServeEvent::Arrival(s) => s.id.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, [3, 1, 2]);
    }

    #[test]
    fn channel_service_matches_the_inline_scheduler() {
        let cfg = ServeConfig {
            cluster: ClusterConfig::tiny_test(),
            ..ServeConfig::default()
        };
        let events: Vec<ServeEvent> = (1..=6u32)
            .map(|i| ServeEvent::Arrival(spec(i, i as f64 * 3.0)))
            .collect();

        let (handle, join) = spawn_service(cfg.clone());
        for ev in &events {
            handle.send(ev.clone()).unwrap();
        }
        handle.close();
        let (threaded, thread_stats) = join.join().unwrap();

        let mut inline = Vec::new();
        let inline_stats = Scheduler::new(cfg).run(events, &mut inline);
        assert_eq!(threaded, inline);
        assert_eq!(thread_stats, inline_stats);
    }

    #[test]
    fn overflow_sheds_explicitly_instead_of_growing() {
        let cfg = ServeConfig {
            cluster: ClusterConfig::tiny_test(),
            ..ServeConfig::default()
        };
        // Capacity 1: a fast producer must see Overloaded sheds. How
        // many is a race (the consumer drains concurrently), but the
        // conservation law is exact: every event is either delivered or
        // handed back, and the scheduler consumes exactly the
        // delivered ones.
        let (handle, join) = spawn_service_bounded(cfg, 1);
        let total = 64u32;
        let mut delivered = 0u64;
        let mut shed = 0u64;
        for i in 1..=total {
            match handle.try_send(ServeEvent::Arrival(spec(i, i as f64))) {
                Ok(()) => delivered += 1,
                Err((ev, ServeError::Overloaded)) => {
                    shed += 1;
                    // The event comes back intact — a real producer
                    // could retry or divert it.
                    assert!(matches!(ev, ServeEvent::Arrival(_)));
                }
                Err((_, e)) => panic!("unexpected send error: {e}"),
            }
        }
        handle.close();
        let (_, stats) = join.join().unwrap();
        assert_eq!(delivered + shed, total as u64);
        assert_eq!(stats.events, delivered);
    }
}
