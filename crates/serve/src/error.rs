//! Structured errors for the serving stack.
//!
//! Every fallible seam of the service — wire parsing, snapshot
//! encode/decode, stream reading, the channel transport — returns a
//! [`ServeError`] instead of panicking or stringly-typed errors. The
//! variants matter operationally: a frontend retries `Overloaded`,
//! surfaces `Parse` as a per-line diagnostic (the lossy reader turns it
//! into a [`crate::ServeEvent::Malformed`] event instead), and treats
//! `Snapshot`/`Config` as "do not start from this state".

use std::fmt;

/// What went wrong in the serving stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A wire line did not parse as an event. `line` is the 1-based
    /// line number when the error came from a stream reader.
    Parse {
        /// 1-based line number in the input stream, when known.
        line: Option<u64>,
        /// What was wrong with the line.
        msg: String,
    },
    /// A snapshot could not be encoded or decoded (bad magic, truncated
    /// body, checksum mismatch, malformed state lines).
    Snapshot(String),
    /// The snapshot or request does not match the service configuration
    /// (fingerprint mismatch).
    Config(String),
    /// An underlying I/O error while reading a stream.
    Io(String),
    /// The bounded transport queue is full; the event was shed back to
    /// the caller instead of growing an unbounded buffer.
    Overloaded,
    /// The service thread is gone (channel disconnected).
    Disconnected,
}

impl ServeError {
    /// Builds a parse error with no line attribution.
    pub fn parse(msg: impl Into<String>) -> Self {
        ServeError::Parse {
            line: None,
            msg: msg.into(),
        }
    }

    /// Attaches a 1-based stream line number to a parse error; other
    /// variants pass through unchanged.
    pub fn at_line(self, line: u64) -> Self {
        match self {
            ServeError::Parse { msg, .. } => ServeError::Parse {
                line: Some(line),
                msg,
            },
            other => other,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse { line: Some(n), msg } => write!(f, "line {n}: {msg}"),
            ServeError::Parse { line: None, msg } => write!(f, "{msg}"),
            ServeError::Snapshot(msg) => write!(f, "snapshot: {msg}"),
            ServeError::Config(msg) => write!(f, "config: {msg}"),
            ServeError::Io(msg) => write!(f, "io: {msg}"),
            ServeError::Overloaded => write!(f, "service transport queue is full (event shed)"),
            ServeError::Disconnected => write!(f, "service thread hung up"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for String {
    fn from(e: ServeError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_numbers() {
        let e = ServeError::parse("missing \"type\"").at_line(7);
        assert_eq!(e.to_string(), "line 7: missing \"type\"");
        assert_eq!(
            ServeError::Snapshot("checksum mismatch".into()).to_string(),
            "snapshot: checksum mismatch"
        );
        // Non-parse variants ignore line attribution.
        assert_eq!(ServeError::Overloaded.at_line(3), ServeError::Overloaded);
        let s: String = ServeError::Disconnected.into();
        assert!(s.contains("hung up"));
    }
}
