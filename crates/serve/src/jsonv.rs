//! A minimal JSON value: parser + serializer — the wire format of the
//! `corral-sim serve` JSONL frontend, also re-exported as
//! `corral_bench::jsonv` for `repro perfreport` (which re-reads the
//! `BENCH_*.json` files the benches emit and merges them).
//!
//! The workspace stays dependency-free, and `corral_trace::json` is a
//! write-only escaper, so the read side lives here. The subset is full
//! JSON minus two deliberate omissions: no `\u` surrogate-pair
//! stitching (escapes decode to their code point; the benches emit
//! ASCII) and numbers parse via `f64` (plenty for wall-clock seconds
//! and counters < 2^53).
//!
//! The parser is hardened against adversarial input: nesting is bounded
//! by [`MAX_DEPTH`] (a 100k-`[` line returns `Err` instead of blowing
//! the stack), every byte access goes through `get` (the lone slice in
//! [`parse`]'s `expect` helper is guarded by the preceding `get`), and
//! no input can make it loop — `pos` strictly advances on every
//! recursion. The unwrap/expect sites in this file live in `#[cfg(test)]`
//! code or are `unwrap_or` defaults; the malformed-input property test
//! (`crates/serve/tests/prop_wire.rs`) mutates valid documents at random
//! and asserts `Err`, never a panic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed JSON value. Objects use a `BTreeMap`, so re-serialized
/// keys come out sorted — stable diffs for the merged report.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys sorted.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// String slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serializes back to compact JSON (sorted object keys).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Deeper documents are
/// rejected with an error rather than risking stack exhaustion — the
/// parser recurses once per `[`/`{` level. Generous for every legitimate
/// producer in this workspace (wire events are depth ≤ 2, `BENCH_*.json`
/// depth ≤ 4).
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let b = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (b is from &str, so this is safe
                // to slice on char boundaries found via the leading byte).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_bench_shaped_document() {
        let text = r#"{
  "bench": "sweep_smoke_subset",
  "cells": 8,
  "serial_s": 16.882,
  "speedup": 0.857,
  "note": "",
  "list": [1, 2.5, true, null, {"k": "v"}]
}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("sweep_smoke_subset"));
        assert_eq!(v.get("cells").unwrap().as_u64(), Some(8));
        assert_eq!(v.get("serial_s").unwrap().as_f64(), Some(16.882));
        let list = v.get("list").unwrap().as_arr().unwrap();
        assert_eq!(list.len(), 5);
        assert_eq!(list[4].get("k").unwrap().as_str(), Some("v"));
        // Reparse of the compact form is identity.
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn whole_floats_serialize_as_integers() {
        assert_eq!(Value::Num(7992.0).to_json(), "7992");
        assert_eq!(Value::Num(0.857).to_json(), "0.857");
    }

    #[test]
    fn escape_sequences_decode_and_bad_ones_are_rejected() {
        let v = parse(r#""Aé\t\r\n\b\f\/\"\\""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé\t\r\n\u{8}\u{c}/\"\\"));
        // Unpaired surrogate: decoded to U+FFFD, not stitched (documented
        // omission — the emitters are ASCII).
        assert_eq!(parse(r#""\ud834""#).unwrap().as_str(), Some("\u{fffd}"));
        assert!(parse(r#""\u12""#).is_err(), "truncated \\u escape");
        assert!(parse(r#""\u12zz""#).is_err(), "non-hex \\u escape");
        assert!(parse(r#""\q""#).is_err(), "unknown escape letter");
        assert!(parse("\"a\\").is_err(), "escape at end of input");
    }

    #[test]
    fn nested_arrays_and_objects_roundtrip() {
        let text = r#"{"a":[[1,[2,[3]]],{"b":{"c":[{"d":null}]}}],"e":[]}"#;
        let v = parse(text).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(
            a[0].as_arr().unwrap()[1].as_arr().unwrap()[1]
                .as_arr()
                .unwrap()[0]
                .as_u64(),
            Some(3)
        );
        assert!(matches!(
            a[1].get("b").unwrap().get("c").unwrap().as_arr().unwrap()[0]
                .get("d")
                .unwrap(),
            Value::Null
        ));
        assert_eq!(v.get("e").unwrap().as_arr().unwrap().len(), 0);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn duplicate_keys_last_one_wins() {
        // BTreeMap::insert semantics: the later binding replaces the
        // earlier one, matching what most JSON readers do.
        let v = parse(r#"{"k":1,"k":2,"j":0,"k":3}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("j").unwrap().as_u64(), Some(0));
        assert_eq!(v.to_json(), r#"{"j":0,"k":3}"#);
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        // Well past any real document; without the depth bound these
        // would recurse ~100k frames deep.
        let deep_open = "[".repeat(100_000);
        assert!(parse(&deep_open).is_err());
        let deep_balanced = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        assert!(parse(&deep_balanced).is_err());
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(parse(&deep_obj).is_err());
        // At the bound itself, parsing still works.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(!too_deep.is_empty() && parse(&too_deep).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse("{}x").is_err());
        assert!(parse("[1] [2]").is_err());
        assert!(parse("null,").is_err());
        assert!(parse("true false").is_err());
        assert!(parse(r#"{"a":1}{"#).is_err());
        // Trailing whitespace alone is fine.
        assert!(parse("{\"a\":1} \n\t").is_ok());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "   ",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{,}",
            "[1 2]",
            "[,1]",
            "{1:2}",
            "nul",
            "tru",
            "+",
            "--1",
            "1.2.3",
            "[",
            "]",
            "}",
            "\"\\u",
        ] {
            assert!(parse(bad).is_err(), "expected parse error for {bad:?}");
        }
    }
}
