//! The service's vocabulary: input events and output decisions.

use corral_model::{JobId, JobSpec, MachineId, RackId, SimTime};

/// One input to the scheduling service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeEvent {
    /// A job submission. The spec's `arrival` is the submission time; an
    /// arrival earlier than the service clock is clamped to "now" (and
    /// counted as late).
    Arrival(JobSpec),
    /// An executor reports a job finished at simulation time `at`. Only
    /// meaningful when an external executor (e.g. the cluster engine)
    /// drives completions; in self-clocked mode the scheduler
    /// synthesizes these itself.
    Completion {
        /// The finished job.
        job: JobId,
        /// Completion time.
        at: SimTime,
    },
    /// Infrastructure report: one machine went down at `at`. The
    /// scheduler masks the lost capacity (§7 fallback) but never kills
    /// dispatched work itself — the executor owns running jobs.
    MachineFailed {
        /// The failed machine.
        machine: MachineId,
        /// When it failed.
        at: SimTime,
    },
    /// Infrastructure report: a previously failed machine rejoined.
    MachineRepaired {
        /// The repaired machine.
        machine: MachineId,
        /// When it rejoined.
        at: SimTime,
    },
    /// Infrastructure report: a whole rack went down at `at`.
    RackFailed {
        /// The failed rack.
        rack: RackId,
        /// When it failed.
        at: SimTime,
    },
    /// A wire line that did not parse. Carrying it as an event (rather
    /// than aborting the stream) keeps the input-event count — and thus
    /// snapshot/restore stitching — aligned with the raw line stream.
    /// Processed at the current service clock; when the line yielded a
    /// job id, the service answers with a structured
    /// [`RejectCause::Malformed`] decision.
    Malformed {
        /// Best-effort job id recovered from the broken line.
        job: Option<JobId>,
    },
}

impl ServeEvent {
    /// The simulation time the event is stamped with. Malformed lines
    /// have no trustworthy timestamp and report `SimTime::ZERO` (they
    /// process at the service clock, which is never rewound).
    pub fn at(&self) -> SimTime {
        match self {
            ServeEvent::Arrival(s) => s.arrival,
            ServeEvent::Completion { at, .. }
            | ServeEvent::MachineFailed { at, .. }
            | ServeEvent::MachineRepaired { at, .. }
            | ServeEvent::RackFailed { at, .. } => *at,
            ServeEvent::Malformed { .. } => SimTime::ZERO,
        }
    }
}

/// Why an arrival was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCause {
    /// The bounded admission queue is at capacity.
    QueueFull,
    /// The job is not plannable (ad hoc) — this service plans; fallback
    /// policies live in the cluster engine, not here.
    Unplannable,
    /// A job with this id is already queued or running.
    Duplicate,
    /// The submission line did not parse; the id was recoverable, the
    /// rest was not.
    Malformed,
    /// Every rack is masked by the failure fallback — there is no live
    /// capacity to anchor the job to.
    NoCapacity,
}

impl RejectCause {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            RejectCause::QueueFull => "queue_full",
            RejectCause::Unplannable => "unplannable",
            RejectCause::Duplicate => "duplicate",
            RejectCause::Malformed => "malformed",
            RejectCause::NoCapacity => "no_capacity",
        }
    }
}

/// One output of the scheduling service. Decisions are emitted in
/// simulation order as `(time, Decision)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The job was admitted: its data anchor (rack set), plan priority,
    /// and planned timeline from the admission replan.
    Admit {
        /// Admitted job.
        job: JobId,
        /// Racks the job is anchored to (its data uploads here; replans
        /// keep it pinned to exactly this set).
        racks: Vec<RackId>,
        /// Priority rank in the admission plan (0 = first).
        priority: u32,
        /// Planned start (absolute service time).
        planned_start: SimTime,
        /// Planned finish (absolute service time).
        planned_finish: SimTime,
    },
    /// The job was turned away.
    Reject {
        /// Rejected job.
        job: JobId,
        /// Why.
        cause: RejectCause,
    },
    /// The job left the queue for execution on its anchored racks.
    Dispatch {
        /// Dispatched job.
        job: JobId,
        /// The anchored rack set.
        racks: Vec<RackId>,
        /// Monotonic dispatch sequence number — the execution priority
        /// handed to the engine (earlier dispatch = higher priority;
        /// no preemption, §4.1).
        priority: u32,
    },
    /// The job finished.
    Complete {
        /// Finished job.
        job: JobId,
    },
    /// The §7 failure fallback dropped the job's rack anchor (too much
    /// of its pinned capacity died) and the post-failure replan chose a
    /// fresh one. The job stays admitted; its data re-uploads to the new
    /// racks.
    Reanchor {
        /// Re-anchored job.
        job: JobId,
        /// The fresh rack set (empty when every rack is masked — the
        /// job will dispatch unconstrained).
        racks: Vec<RackId>,
        /// Priority rank in the post-failure replan.
        priority: u32,
        /// New planned start (absolute service time).
        planned_start: SimTime,
        /// New planned finish (absolute service time).
        planned_finish: SimTime,
    },
}

impl Decision {
    /// The job the decision is about.
    pub fn job(&self) -> JobId {
        match self {
            Decision::Admit { job, .. }
            | Decision::Reject { job, .. }
            | Decision::Dispatch { job, .. }
            | Decision::Complete { job }
            | Decision::Reanchor { job, .. } => *job,
        }
    }

    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Decision::Admit { .. } => "admit",
            Decision::Reject { .. } => "reject",
            Decision::Dispatch { .. } => "dispatch",
            Decision::Complete { .. } => "complete",
            Decision::Reanchor { .. } => "reanchor",
        }
    }
}
