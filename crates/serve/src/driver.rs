//! Co-simulation driver: the serve scheduler as the *control plane* of a
//! live cluster-engine run.
//!
//! The scheduler makes the decisions (admit, anchor, order); the engine
//! is the execution ground truth. The driver time-steps both in
//! lockstep:
//!
//! 1. pick the next instant `t` anything happens (input arrival, or a
//!    scheduler dispatch timer);
//! 2. pump the engine to `t` and feed every completion it produced back
//!    into the scheduler as [`ServeEvent::Completion`]s (which replan
//!    the survivors);
//! 3. deliver the arrival / fire the timers at `t`;
//! 4. submit freshly dispatched jobs into the running engine via
//!    [`Engine::submit_jobs`].
//!
//! The scheduler runs with `self_clock` off: completions come from the
//! engine, not from the plan's predicted finish times. Because engine
//! submission is part of the input sequence, two drivers fed the same
//! arrivals are byte-identical — decisions *and* the engine report.

use crate::event::{Decision, ServeEvent};
use crate::scheduler::{Scheduler, ServeConfig, ServeStats};
use corral_cluster::config::SimParams;
use corral_cluster::engine::Engine;
use corral_cluster::metrics::RunReport;
use corral_cluster::scheduler::SchedulerKind;
use corral_core::plan::{Plan, PlanEntry};
use corral_model::{JobId, JobSpec, SimTime};
use std::collections::BTreeMap;

/// The scheduler/engine co-simulation (see module docs).
pub struct EngineDriver {
    sched: Scheduler,
    engine: Engine,
    /// Admitted specs parked until dispatch hands them to the engine.
    parked: BTreeMap<JobId, JobSpec>,
    /// Decisions in `out` before this index have been acted on.
    watermark: usize,
    done_buf: Vec<(JobId, SimTime)>,
}

impl EngineDriver {
    /// Builds the pair. `cfg.self_clock` is forced off (the engine owns
    /// completions); `params.cluster` should match `cfg.cluster` for the
    /// plans to mean anything.
    pub fn new(mut cfg: ServeConfig, params: SimParams) -> Self {
        cfg.self_clock = false;
        EngineDriver {
            sched: Scheduler::new(cfg),
            engine: Engine::new(params, Vec::new(), &Plan::default(), SchedulerKind::Planned),
            parked: BTreeMap::new(),
            watermark: 0,
            done_buf: Vec::new(),
        }
    }

    /// The control plane.
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Runs an arrival stream to completion: consumes every event, runs
    /// both sides dry, and returns the scheduler's stats plus the
    /// engine's ground-truth report. Decisions append to `out` (which
    /// must start empty — the driver tracks its own read watermark).
    pub fn run(
        mut self,
        events: &[ServeEvent],
        out: &mut Vec<(SimTime, Decision)>,
    ) -> (ServeStats, RunReport) {
        assert!(out.is_empty(), "driver wants a fresh decision log");
        let mut idx = 0;
        loop {
            let arrival = events.get(idx).map(|e| e.at().max(self.sched.now()));
            let timer = self.sched.next_timer();
            let t = match (arrival, timer) {
                (Some(a), Some(w)) => a.min(w),
                (Some(a), None) => a,
                (None, Some(w)) => w,
                (None, None) => {
                    // Inputs and timers exhausted. Anything still active
                    // lives only in the engine: run it dry, feed the
                    // completions back (each may re-arm dispatch timers
                    // for queued survivors), and go around again.
                    if self.sched.active_len() == 0 {
                        break;
                    }
                    self.pump_engine(SimTime::INFINITY, out);
                    continue;
                }
            };

            // Engine first: completions strictly before `t` must replan
            // the survivors before the `t`-instant work fires.
            self.pump_engine(t, out);

            // Timers due at `t` fire before an arrival at `t`: the queue
            // state the arrival replans against must be current.
            if timer.is_some_and(|w| w <= t) {
                self.sched.tick(t, out);
            }
            if arrival == Some(t) && self.sched.next_timer().is_none_or(|w| w > t) {
                if let ServeEvent::Arrival(spec) = &events[idx] {
                    self.parked.insert(spec.id, spec.clone());
                }
                self.sched.on_event(events[idx].clone(), out);
                idx += 1;
            }
            self.absorb_decisions(out);
        }
        (self.sched.stats(), self.engine.finish())
    }

    /// Advances the engine to `t` and feeds every completion it produced
    /// back into the scheduler, in engine (simulation) order.
    fn pump_engine(&mut self, t: SimTime, out: &mut Vec<(SimTime, Decision)>) {
        self.engine.run_until(t);
        self.engine.drain_finished(&mut self.done_buf);
        for (job, at) in std::mem::take(&mut self.done_buf) {
            self.sched.on_event(ServeEvent::Completion { job, at }, out);
        }
        self.absorb_decisions(out);
    }

    /// Acts on every decision past the watermark: dispatches hand their
    /// parked spec to the engine (with the anchor racks and monotonic
    /// dispatch priority as a one-entry plan), rejects drop theirs.
    fn absorb_decisions(&mut self, out: &[(SimTime, Decision)]) {
        while self.watermark < out.len() {
            let (t, d) = out[self.watermark].clone();
            self.watermark += 1;
            match d {
                Decision::Dispatch {
                    job,
                    racks,
                    priority,
                } => {
                    let mut spec = self
                        .parked
                        .remove(&job)
                        .expect("dispatched job has a parked spec");
                    // Arrive "now": the queueing delay already happened
                    // on the scheduler side.
                    spec.arrival = t;
                    let mut plan = Plan::default();
                    plan.entries.insert(
                        job,
                        PlanEntry {
                            job,
                            racks,
                            priority,
                            planned_start: t,
                            planned_finish: t,
                            predicted_latency: SimTime::ZERO,
                        },
                    );
                    self.engine.submit_jobs(&[spec], &plan);
                }
                Decision::Reject { job, .. } => {
                    self.parked.remove(&job);
                }
                // Re-anchors concern only still-queued jobs; the engine
                // hears about them at dispatch time.
                Decision::Admit { .. } | Decision::Reanchor { .. } | Decision::Complete { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corral_cluster::config::DataPlacement;
    use corral_model::{Bandwidth, Bytes, ClusterConfig, MapReduceProfile};

    fn spec(id: u32, arrival: f64, gb: f64) -> JobSpec {
        JobSpec::map_reduce(
            JobId(id),
            format!("j{id}"),
            MapReduceProfile {
                input: Bytes::gb(gb),
                shuffle: Bytes::gb(gb / 2.0),
                output: Bytes::gb(gb / 10.0),
                maps: 8,
                reduces: 4,
                map_rate: Bandwidth::mbytes_per_sec(50.0),
                reduce_rate: Bandwidth::mbytes_per_sec(50.0),
            },
        )
        .arriving_at(SimTime(arrival))
    }

    fn setup() -> (ServeConfig, SimParams) {
        let cluster = ClusterConfig::tiny_test();
        let cfg = ServeConfig {
            cluster: cluster.clone(),
            tripwire: true,
            ..ServeConfig::default()
        };
        let params = SimParams {
            cluster,
            placement: DataPlacement::PerPlan,
            ..SimParams::testbed()
        };
        (cfg, params)
    }

    fn events() -> Vec<ServeEvent> {
        (1..=5u32)
            .map(|i| ServeEvent::Arrival(spec(i, i as f64 * 20.0, 1.0 + (i % 3) as f64)))
            .collect()
    }

    #[test]
    fn cosimulation_runs_every_job_to_engine_completion() {
        let (cfg, params) = setup();
        let mut out = Vec::new();
        let (stats, report) = EngineDriver::new(cfg, params).run(&events(), &mut out);
        assert_eq!(stats.admitted, 5);
        assert_eq!(stats.dispatched, 5);
        // Completions came from the engine, not the plan.
        assert_eq!(stats.completed, 5);
        assert_eq!(report.unfinished, 0);
        assert_eq!(report.jobs.len(), 5);
        for m in report.jobs.values() {
            assert!(m.finished.is_some());
        }
        // The serve clock followed the engine's completion times.
        assert_eq!(stats.decisions, out.len() as u64);
    }

    /// Chaos co-simulation: the engine executes under the *same* seeded
    /// churn schedule the scheduler hears about as failure events, so
    /// both sides agree on which machines are down.
    #[test]
    fn cosimulation_under_churn_completes_and_is_deterministic() {
        let run = || {
            let (cfg, mut params) = setup();
            let chaos = crate::chaos::ChaosSpec {
                mtbf: SimTime(400.0),
                mean_repair: SimTime(60.0),
                horizon: SimTime(600.0),
                seed: 7,
            };
            params.failures = chaos.schedule(&cfg.cluster);
            let stream =
                crate::chaos::merge(events(), crate::chaos::failure_events(&params.failures));
            let mut out = Vec::new();
            let (stats, report) = EngineDriver::new(cfg, params).run(&stream, &mut out);
            (stats, report, out)
        };
        let (sa, ra, out_a) = run();
        let (sb, rb, out_b) = run();
        assert_eq!(out_a, out_b, "chaos co-simulation must be deterministic");
        assert_eq!(sa, sb);
        assert_eq!(ra.makespan, rb.makespan);
        assert!(sa.machine_failures > 0, "churn schedule must be non-empty");
        assert_eq!(sa.admitted, 5);
        // Transient churn (machines rejoin): every job still finishes.
        assert_eq!(sa.completed, 5);
        assert_eq!(ra.unfinished, 0);
    }

    #[test]
    fn cosimulation_is_deterministic() {
        let (cfg, params) = setup();
        let mut out_a = Vec::new();
        let (sa, ra) = EngineDriver::new(cfg.clone(), params.clone()).run(&events(), &mut out_a);
        let (cfg, params) = setup();
        let mut out_b = Vec::new();
        let (sb, rb) = EngineDriver::new(cfg, params).run(&events(), &mut out_b);
        assert_eq!(out_a, out_b);
        assert_eq!(sa, sb);
        assert_eq!(ra.makespan, rb.makespan);
        assert_eq!(ra.cross_rack_bytes, rb.cross_rack_bytes);
        for (id, m) in &ra.jobs {
            assert_eq!(m.finished, rb.jobs[id].finished);
        }
    }
}
