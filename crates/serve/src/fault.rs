//! Dead-capacity tracking and the virtual-rack mask.
//!
//! The planner is rack-symmetric: latency response tables depend only on
//! the rack *count*, prioritization picks k-smallest-`F_i` racks with
//! index tie-breaks, and pins are rack-id sets. That symmetry is what
//! makes failure masking exact: instead of teaching the planner about
//! holes, the scheduler plans on a **virtual cluster** of only the live
//! racks and remaps rack ids at the boundary — live pins map to virtual
//! indices on the way in (the map is monotone, so index tie-breaks are
//! preserved), planned virtual racks map back to live ids on the way
//! out. A rack counts as dead when more than the §7 fallback threshold
//! of its machines are down (a rack at half capacity still hosts data
//! and tasks; a rack past the threshold is treated as gone, matching
//! `cluster::engine::on_failure`).

use corral_model::{ClusterConfig, MachineId, RackId};

/// Per-machine liveness for the serving cluster, plus the per-rack
/// aggregates the §7 fallback rule reads.
#[derive(Debug, Clone)]
pub(crate) struct Topology {
    machines_per_rack: usize,
    /// `dead[m]` — machine `m` is currently down.
    dead: Vec<bool>,
    /// Down machines per rack (derived, kept in sync).
    dead_per_rack: Vec<u32>,
}

impl Topology {
    pub(crate) fn new(cluster: &ClusterConfig) -> Self {
        Topology {
            machines_per_rack: cluster.machines_per_rack,
            dead: vec![false; cluster.racks * cluster.machines_per_rack],
            dead_per_rack: vec![0; cluster.racks],
        }
    }

    /// Marks `m` dead. Returns `false` when the id is out of range or
    /// the machine was already dead (no state change).
    pub(crate) fn fail_machine(&mut self, m: MachineId) -> bool {
        match self.dead.get_mut(m.index()) {
            Some(d) if !*d => {
                *d = true;
                self.dead_per_rack[m.index() / self.machines_per_rack] += 1;
                true
            }
            _ => false,
        }
    }

    /// Marks `m` live again. Returns `false` on out-of-range or no-op.
    pub(crate) fn repair_machine(&mut self, m: MachineId) -> bool {
        match self.dead.get_mut(m.index()) {
            Some(d) if *d => {
                *d = false;
                self.dead_per_rack[m.index() / self.machines_per_rack] -= 1;
                true
            }
            _ => false,
        }
    }

    /// Marks every machine in `r` dead. Returns `false` when the rack id
    /// is out of range or every machine was already dead.
    pub(crate) fn fail_rack(&mut self, r: RackId) -> bool {
        if r.index() >= self.dead_per_rack.len() {
            return false;
        }
        let base = r.index() * self.machines_per_rack;
        let mut changed = false;
        for m in base..base + self.machines_per_rack {
            changed |= self.fail_machine(MachineId::from_index(m));
        }
        changed
    }

    /// Currently dead machines, ascending (the snapshot representation).
    pub(crate) fn dead_machines(&self) -> Vec<MachineId> {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(|(i, _)| MachineId::from_index(i))
            .collect()
    }

    /// FNV-1a fingerprint of the dead-machine set; `0` when everything
    /// is live, so cache keys from before any failure (and after full
    /// repair) coincide.
    pub(crate) fn dead_fp(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut any = false;
        for (i, d) in self.dead.iter().enumerate() {
            if *d {
                any = true;
                for b in (i as u64).to_le_bytes() {
                    h = (h ^ b as u64).wrapping_mul(PRIME);
                }
            }
        }
        if any {
            h
        } else {
            0
        }
    }

    /// Fraction of machines down across `racks` (0.0 for an empty set).
    pub(crate) fn dead_fraction(&self, racks: &[RackId]) -> f64 {
        if racks.is_empty() {
            return 0.0;
        }
        let mut down = 0u32;
        let mut total = 0u32;
        for r in racks {
            if let Some(n) = self.dead_per_rack.get(r.index()) {
                down += n;
                total += self.machines_per_rack as u32;
            }
        }
        if total == 0 {
            0.0
        } else {
            down as f64 / total as f64
        }
    }

    /// Whether rack `r` is past the fallback threshold (treated as gone).
    pub(crate) fn rack_masked(&self, r: RackId, threshold: f64) -> bool {
        match self.dead_per_rack.get(r.index()) {
            Some(n) => *n as f64 / self.machines_per_rack as f64 > threshold,
            None => true,
        }
    }

    /// Builds the live↔virtual rack map at the given threshold.
    pub(crate) fn mask(&self, threshold: f64) -> RackMask {
        let live: Vec<RackId> = (0..self.dead_per_rack.len())
            .map(RackId::from_index)
            .filter(|r| !self.rack_masked(*r, threshold))
            .collect();
        RackMask::new(live, self.dead_per_rack.len())
    }
}

/// A monotone bijection between the live racks and the virtual cluster
/// `0..live.len()` the planner actually sees.
#[derive(Debug, Clone)]
pub(crate) struct RackMask {
    /// Virtual index → live rack id, ascending.
    live: Vec<RackId>,
    /// Live rack id → virtual index (`None` when masked).
    virt: Vec<Option<RackId>>,
    total_racks: usize,
}

impl RackMask {
    fn new(live: Vec<RackId>, total_racks: usize) -> Self {
        let mut virt = vec![None; total_racks];
        for (v, r) in live.iter().enumerate() {
            virt[r.index()] = Some(RackId::from_index(v));
        }
        RackMask {
            live,
            virt,
            total_racks,
        }
    }

    /// The identity mask over a fully live cluster.
    pub(crate) fn identity(total_racks: usize) -> Self {
        RackMask::new(
            (0..total_racks).map(RackId::from_index).collect(),
            total_racks,
        )
    }

    /// Live racks (the virtual cluster's size).
    pub(crate) fn len(&self) -> usize {
        self.live.len()
    }

    /// True when every rack is masked (no capacity to plan against).
    pub(crate) fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// True when nothing is masked (virtual == live).
    pub(crate) fn is_identity(&self) -> bool {
        self.live.len() == self.total_racks
    }

    /// True when a live rack id is masked out of the virtual cluster.
    pub(crate) fn is_masked(&self, r: RackId) -> bool {
        self.virt.get(r.index()).is_none_or(|v| v.is_none())
    }

    /// Maps live rack ids into the virtual cluster, dropping masked ones
    /// (used for active-job occupancy, which may straddle dead racks).
    pub(crate) fn to_virtual_lossy(&self, racks: &[RackId]) -> Vec<RackId> {
        racks
            .iter()
            .filter_map(|r| self.virt.get(r.index()).copied().flatten())
            .collect()
    }

    /// Maps virtual rack ids back to live ids. Panics on an index the
    /// virtual cluster does not have — the planner never emits one.
    pub(crate) fn to_live(&self, racks: &[RackId]) -> Vec<RackId> {
        racks.iter().map(|r| self.live[r.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterConfig {
        // 3 racks × 4 machines.
        ClusterConfig::tiny_test()
    }

    #[test]
    fn machine_lifecycle_and_rack_masking() {
        let mut t = Topology::new(&cluster());
        assert_eq!(t.dead_fp(), 0);
        assert!(t.fail_machine(MachineId(0)));
        assert!(!t.fail_machine(MachineId(0)), "double-fail is a no-op");
        assert!(t.fail_machine(MachineId(1)));
        // 2/4 dead: not past the 0.5 threshold (strict >).
        assert!(!t.rack_masked(RackId(0), 0.5));
        assert!(t.fail_machine(MachineId(2)));
        assert!(t.rack_masked(RackId(0), 0.5));
        assert_eq!(
            t.dead_machines(),
            vec![MachineId(0), MachineId(1), MachineId(2)]
        );
        let fp = t.dead_fp();
        assert_ne!(fp, 0);
        // Repair back to zero dead restores the empty fingerprint.
        assert!(t.repair_machine(MachineId(0)));
        assert!(!t.repair_machine(MachineId(0)), "double-repair is a no-op");
        assert!(t.repair_machine(MachineId(1)));
        assert!(t.repair_machine(MachineId(2)));
        assert_eq!(t.dead_fp(), 0);
        // Out-of-range ids are ignored, not panics.
        assert!(!t.fail_machine(MachineId(999)));
        assert!(!t.repair_machine(MachineId(999)));
        assert!(!t.fail_rack(RackId(99)));
    }

    #[test]
    fn rack_failure_and_fractions() {
        let mut t = Topology::new(&cluster());
        assert!(t.fail_rack(RackId(1)));
        assert!(!t.fail_rack(RackId(1)), "already fully dead");
        assert_eq!(t.dead_fraction(&[RackId(1)]), 1.0);
        assert_eq!(t.dead_fraction(&[RackId(0)]), 0.0);
        assert_eq!(t.dead_fraction(&[RackId(0), RackId(1)]), 0.5);
        assert_eq!(t.dead_fraction(&[]), 0.0);
        // A partially repaired rack un-masks.
        assert!(t.repair_machine(MachineId(4)));
        assert!(t.repair_machine(MachineId(5)));
        assert!(!t.rack_masked(RackId(1), 0.5));
    }

    #[test]
    fn mask_is_a_monotone_bijection() {
        let mut t = Topology::new(&cluster());
        t.fail_rack(RackId(1));
        let m = t.mask(0.5);
        assert_eq!(m.len(), 2);
        assert!(!m.is_identity());
        assert!(m.is_masked(RackId(1)));
        assert!(!m.is_masked(RackId(2)));
        // live {0, 2} → virtual {0, 1}, order preserved.
        assert_eq!(
            m.to_virtual_lossy(&[RackId(0), RackId(1), RackId(2)]),
            vec![RackId(0), RackId(1)]
        );
        assert_eq!(
            m.to_live(&[RackId(0), RackId(1)]),
            vec![RackId(0), RackId(2)]
        );

        let id = RackMask::identity(3);
        assert!(id.is_identity());
        assert_eq!(id.len(), 3);
        assert_eq!(
            id.to_virtual_lossy(&[RackId(2), RackId(0)]),
            vec![RackId(2), RackId(0)]
        );
    }
}
