//! The service loop's state machine: admission, incremental replanning,
//! dispatch, completion.
//!
//! ## Replanning model
//!
//! Replans cover only the **queued** (admitted, not yet dispatched)
//! jobs — the same boundary as the engine's §3.1 replanning loop:
//! dispatched jobs keep their allocation (no preemption, §4.1) and are
//! excluded from the planning problem. Every queued survivor is pinned
//! to the rack set chosen at its admission (its input data uploaded
//! there — §3.1 step 2), so:
//!
//! * an **arrival** adds exactly one unpinned job — the only candidates
//!   the provisioning phase re-enumerates are the newcomer's widenings;
//! * a **completion** re-times a fully pinned problem (≈1 candidate).
//!
//! That is the "re-enumerate only candidates perturbed by the delta"
//! seam, and it is what makes a replan microseconds, not milliseconds.
//! Latency response tables are additionally reused across replans by
//! [`IncrementalPlanner`]; since table construction is deterministic and
//! the provisioning/prioritization tail is the same code as the batch
//! planner, every replan is bit-equal to a fresh
//! [`corral_core::plan_jobs_pinned`] call on the same inputs — tripwire
//! mode ([`ServeConfig::tripwire`]) asserts exactly that, cache hits
//! included.
//!
//! ## Time
//!
//! Replans run in *now-relative* time: the newcomer at `0.0`, queued
//! survivors at their (negative) age. Relative canonicalization is what
//! lets the plan cache recognize recurring problems, and absolute times
//! are recovered as `now + rel` when folding the plan back into the
//! queue. The prioritization phase handles negative arrivals exactly
//! (task start is `max(rack_free, arrival)`).

use crate::cache::{problem_key, PlanCache};
use crate::event::{Decision, RejectCause, ServeEvent};
use crate::fault::{RackMask, Topology};
use corral_core::{
    plan_jobs_pinned, IncrementalPlanner, Objective, Plan, PlannerConfig, ReplanKind,
};
use corral_model::{ClusterConfig, JobId, JobSpec, MachineId, RackId, SimTime};
use corral_trace::probe::{self, ProbeCounter, SpanKind};
use std::collections::BTreeMap;

/// Service configuration, fixed for the scheduler's lifetime (a plan
/// cache entry or snapshot is only valid against the exact same
/// configuration — see [`ServeConfig::fingerprint`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cluster geometry the planner provisions against.
    pub cluster: ClusterConfig,
    /// Planning objective.
    pub objective: Objective,
    /// Latency-model options.
    pub planner: PlannerConfig,
    /// Admission bound: arrivals beyond this many queued jobs are
    /// rejected with [`RejectCause::QueueFull`].
    pub max_queue: usize,
    /// Plan-cache capacity (0 disables the cache).
    pub cache_capacity: usize,
    /// Self-clocked execution: dispatched jobs complete at their
    /// predicted finish time, synthesized by the scheduler itself.
    /// Disable when an external executor (the cluster engine) reports
    /// completions.
    pub self_clock: bool,
    /// Re-run the full batch oracle on every replan and panic unless
    /// the incremental (or cache-materialized) plan is equal.
    pub tripwire: bool,
    /// The §7 failure fallback: racks past [`ServeConfig::failure_threshold`]
    /// dead capacity are masked out of the planning problem, and queued
    /// jobs anchored to them are re-anchored. When off the planner stays
    /// failure-blind (the paper's no-fallback baseline) and only the
    /// dispatch-time retry/backoff degrades gracefully.
    pub fallback: bool,
    /// Dead-machine fraction past which a rack (or a job's pinned rack
    /// set) counts as gone (strict `>`; the paper's default is 0.5).
    pub failure_threshold: f64,
    /// How many times a dispatch timer whose target racks are
    /// effectively dead is deferred with backoff before dispatching
    /// unconstrained (rack pins dropped).
    pub dispatch_retries: u32,
    /// Base backoff for deferred dispatches; attempt `k` waits
    /// `retry_backoff · 2^(k-1)`.
    pub retry_backoff: SimTime,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cluster: ClusterConfig::testbed_210(),
            objective: Objective::AvgCompletionTime,
            planner: PlannerConfig::default(),
            max_queue: 64,
            cache_capacity: 256,
            self_clock: true,
            tripwire: false,
            fallback: true,
            failure_threshold: 0.5,
            dispatch_retries: 3,
            retry_backoff: SimTime(30.0),
        }
    }
}

impl ServeConfig {
    /// FNV-1a fingerprint over everything a plan depends on. Used as
    /// the config component of cache keys and checked on snapshot
    /// restore.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut put = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        };
        put(2); // format version (v2: failure-path fields below)
        put(self.cluster.racks as u64);
        put(self.cluster.machines_per_rack as u64);
        put(self.cluster.slots_per_machine as u64);
        put(self.cluster.nic_bandwidth.0.to_bits());
        put(self.cluster.oversubscription.to_bits());
        put(self.cluster.chunk_size.0.to_bits());
        put(self.cluster.replication as u64);
        put(match self.objective {
            Objective::Makespan => 1,
            Objective::AvgCompletionTime => 2,
        });
        match self.planner.response.alpha {
            Some(a) => {
                put(1);
                put(a.to_bits());
            }
            None => put(0),
        }
        put(self.planner.response.volume_error.to_bits());
        put(self.max_queue as u64);
        put(self.fallback as u64);
        put(self.failure_threshold.to_bits());
        put(self.dispatch_retries as u64);
        put(self.retry_backoff.0.to_bits());
        h
    }
}

/// Aggregate service counters (also probe-counted; these are the
/// always-on, snapshot-carried copies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Input events consumed from the stream.
    pub events: u64,
    /// Decisions emitted (admit + reject + dispatch + complete).
    pub decisions: u64,
    /// Arrival events seen.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Jobs dispatched to execution.
    pub dispatched: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Arrivals whose submission time was already in the past (clamped
    /// to "now").
    pub late_arrivals: u64,
    /// Completion reports for jobs the service does not know.
    pub unknown_completions: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Replans that reused ≥1 cached latency table.
    pub replans_incremental: u64,
    /// Replans that rebuilt every table.
    pub replans_full: u64,
    /// Machine-failure events consumed.
    pub machine_failures: u64,
    /// Machine-repair events consumed.
    pub machine_repairs: u64,
    /// Rack-failure events consumed.
    pub rack_failures: u64,
    /// Malformed wire lines absorbed (reject decision or counted skip).
    pub malformed: u64,
    /// Queued jobs whose anchor was dropped by the §7 fallback.
    pub reanchored: u64,
    /// Dispatch timers deferred with backoff (target racks dead).
    pub dispatch_retries: u64,
    /// Dispatches that gave up their rack pins after exhausting retries.
    pub fallback_dispatches: u64,
}

/// An admitted, not-yet-dispatched job.
#[derive(Debug, Clone)]
pub(crate) struct Queued {
    /// The spec with its *effective* (clamp-corrected) absolute arrival.
    pub spec: JobSpec,
    /// Anchored rack set (pinned in every subsequent replan).
    pub racks: Vec<RackId>,
    /// Priority in the latest plan.
    pub priority: u32,
    /// Planned start, absolute service time (dispatch timer).
    pub planned_start: SimTime,
    /// Planned finish, absolute service time.
    pub planned_finish: SimTime,
    /// Predicted run latency from the latest plan.
    pub predicted_latency: SimTime,
    /// Dispatch attempts deferred because the anchored racks were
    /// effectively dead (resets when the job is re-anchored).
    pub attempts: u32,
}

/// A dispatched, still-running job. Active jobs stay in the replanning
/// problem as pinned *occupancy*: the planner models their racks as
/// busy, which is what holds queued survivors back and makes the
/// admission timeline meaningful.
#[derive(Debug, Clone)]
pub(crate) struct Active {
    /// The spec (occupancy modeling re-estimates its latency).
    pub spec: JobSpec,
    /// The rack set it runs on.
    pub racks: Vec<RackId>,
    /// Dispatch sequence number (execution priority).
    pub priority: u32,
    /// When it was dispatched (its arrival in the occupancy model).
    pub dispatched_at: SimTime,
    /// Self-clock completion time, frozen at dispatch.
    pub planned_finish: SimTime,
}

/// The resident scheduler. Feed it [`ServeEvent`]s (via
/// [`Scheduler::on_event`] or a [`crate::source`] frontend); it emits
/// timestamped [`Decision`]s.
#[derive(Debug)]
pub struct Scheduler {
    cfg: ServeConfig,
    config_fp: u64,
    now: SimTime,
    /// Admission order.
    queue: Vec<Queued>,
    active: BTreeMap<JobId, Active>,
    planner: IncrementalPlanner,
    cache: PlanCache,
    dispatch_seq: u32,
    stats: ServeStats,
    /// Per-machine liveness (fed by failure/repair events).
    topo: Topology,
    /// Live↔virtual rack map at the current dead set (identity while
    /// fully live or with the fallback off).
    mask: RackMask,
    /// Dead-set fingerprint mixed into cache keys (0 while fully live).
    dead_fp: u64,
    /// The virtual cluster the planner and tripwire oracle see
    /// (= `cfg.cluster` with `racks` shrunk to the mask).
    masked_cluster: ClusterConfig,
    /// Rack count the incremental planner was built for (its latency
    /// tables depend on the count, not on which racks are live).
    planner_racks: usize,
}

/// One topology delta from the event stream.
enum TopologyChange {
    Fail(MachineId),
    Repair(MachineId),
    FailRack(RackId),
}

impl Scheduler {
    /// A fresh scheduler at `t = 0` with empty queue and caches.
    pub fn new(cfg: ServeConfig) -> Self {
        let planner =
            IncrementalPlanner::new(cfg.cluster.clone(), cfg.objective, cfg.planner.clone());
        let cache = PlanCache::new(cfg.cache_capacity);
        let config_fp = cfg.fingerprint();
        let topo = Topology::new(&cfg.cluster);
        let mask = RackMask::identity(cfg.cluster.racks);
        let masked_cluster = cfg.cluster.clone();
        let planner_racks = cfg.cluster.racks;
        Scheduler {
            cfg,
            config_fp,
            now: SimTime::ZERO,
            queue: Vec::new(),
            active: BTreeMap::new(),
            planner,
            cache,
            dispatch_seq: 0,
            stats: ServeStats::default(),
            topo,
            mask,
            dead_fp: 0,
            masked_cluster,
            planner_racks,
        }
    }

    /// Current service time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServeStats {
        let mut s = self.stats;
        s.cache_hits = self.cache.hits;
        s.cache_misses = self.cache.misses;
        s
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Jobs admitted but not yet dispatched.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs dispatched and still running.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Earliest pending self-managed timer (dispatch due time; in
    /// self-clock mode also synthesized completions). `None` when idle.
    pub fn next_timer(&self) -> Option<SimTime> {
        let disp = self
            .queue
            .iter()
            .map(|q| q.planned_start)
            .min_by(|a, b| a.total_cmp(*b));
        let done = if self.cfg.self_clock {
            self.active
                .values()
                .map(|a| a.planned_finish)
                .min_by(|a, b| a.total_cmp(*b))
        } else {
            None
        };
        match (disp, done) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Consumes one input event; decisions (this event's and any timer
    /// cascade it unlocked) are appended to `out` as `(time, decision)`.
    pub fn on_event(&mut self, ev: ServeEvent, out: &mut Vec<(SimTime, Decision)>) {
        // The per-decision latency histogram of the service: intake,
        // admission, cache probe, replan, and the timer cascade.
        let _probe = probe::span(SpanKind::ServeDecision);
        self.stats.events += 1;
        match ev {
            ServeEvent::Arrival(spec) => self.on_arrival(spec, out),
            ServeEvent::Completion { job, at } => self.on_completion(job, at, out),
            ServeEvent::MachineFailed { machine, at } => {
                self.on_topology(at, TopologyChange::Fail(machine), out)
            }
            ServeEvent::MachineRepaired { machine, at } => {
                self.on_topology(at, TopologyChange::Repair(machine), out)
            }
            ServeEvent::RackFailed { rack, at } => {
                self.on_topology(at, TopologyChange::FailRack(rack), out)
            }
            ServeEvent::Malformed { job } => self.on_malformed(job, out),
        }
    }

    /// Drains every remaining timer (self-clock mode: runs queue and
    /// active set dry). After this, [`Scheduler::next_timer`] is `None`.
    pub fn finish(&mut self, out: &mut Vec<(SimTime, Decision)>) {
        let _probe = probe::span(SpanKind::ServeDecision);
        self.advance_to(SimTime::INFINITY, out);
    }

    /// Advances the service clock to `t` (finite), firing every timer
    /// due on the way. Used by an external driver (the engine
    /// co-simulation) to move time forward between input events.
    pub fn tick(&mut self, t: SimTime, out: &mut Vec<(SimTime, Decision)>) {
        assert!(t.0.is_finite(), "tick wants a finite time; use finish()");
        let _probe = probe::span(SpanKind::ServeDecision);
        self.advance_to(t, out);
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs a whole event stream to completion: every event, then
    /// [`Scheduler::finish`]. Returns the final stats.
    pub fn run(
        &mut self,
        events: impl IntoIterator<Item = ServeEvent>,
        out: &mut Vec<(SimTime, Decision)>,
    ) -> ServeStats {
        for ev in events {
            self.on_event(ev, out);
        }
        self.finish(out);
        self.stats()
    }

    // ------------------------------------------------------------------

    fn emit(&mut self, out: &mut Vec<(SimTime, Decision)>, d: Decision) {
        self.stats.decisions += 1;
        out.push((self.now, d));
    }

    fn knows(&self, id: JobId) -> bool {
        self.active.contains_key(&id) || self.queue.iter().any(|q| q.spec.id == id)
    }

    fn on_arrival(&mut self, spec: JobSpec, out: &mut Vec<(SimTime, Decision)>) {
        self.stats.arrivals += 1;
        if spec.arrival < self.now {
            self.stats.late_arrivals += 1;
        }
        let t = spec.arrival.max(self.now);
        self.advance_to(t, out);
        self.now = t;

        let cause = if !spec.plannable {
            Some(RejectCause::Unplannable)
        } else if self.knows(spec.id) {
            Some(RejectCause::Duplicate)
        } else if self.queue.len() >= self.cfg.max_queue {
            Some(RejectCause::QueueFull)
        } else if self.cfg.fallback && self.mask.is_empty() {
            // Every rack is past the failure threshold: there is no
            // virtual cluster to plan against. Shed the arrival rather
            // than fabricate an anchor on dead capacity.
            Some(RejectCause::NoCapacity)
        } else {
            None
        };
        if let Some(cause) = cause {
            self.stats.rejected += 1;
            probe::count(ProbeCounter::ServeRejected, 1);
            self.emit(
                out,
                Decision::Reject {
                    job: spec.id,
                    cause,
                },
            );
            return;
        }

        let mut eff = spec;
        eff.arrival = t;
        let plan = self.replan(Some(&eff));
        let e = plan.entry(eff.id).expect("newcomer is plannable");
        let q = Queued {
            racks: e.racks.clone(),
            priority: e.priority,
            planned_start: self.now + e.planned_start,
            planned_finish: self.now + e.planned_finish,
            predicted_latency: e.predicted_latency,
            attempts: 0,
            spec: eff,
        };
        self.stats.admitted += 1;
        probe::count(ProbeCounter::ServeAdmitted, 1);
        self.emit(
            out,
            Decision::Admit {
                job: q.spec.id,
                racks: q.racks.clone(),
                priority: q.priority,
                planned_start: q.planned_start,
                planned_finish: q.planned_finish,
            },
        );
        self.queue.push(q);
        // The admission plan may schedule the newcomer (or, after the
        // fold, a survivor) to start right now.
        self.advance_to(self.now, out);
    }

    fn on_completion(&mut self, job: JobId, at: SimTime, out: &mut Vec<(SimTime, Decision)>) {
        let t = at.max(self.now);
        self.advance_to(t, out);
        self.now = t;
        if self.active.remove(&job).is_some() {
            self.complete(job, out);
        } else if let Some(idx) = self.queue.iter().position(|q| q.spec.id == job) {
            // The executor ran a job we still considered queued: it is
            // done in the real world, so force the dispatch bookkeeping
            // through (no dead-rack deferral), then complete it.
            self.dispatch(idx, out, true);
            self.active.remove(&job);
            self.complete(job, out);
        } else {
            self.stats.unknown_completions += 1;
        }
        // A departure may have pulled a survivor's start up to now.
        self.advance_to(self.now, out);
    }

    /// Books one completion at `self.now` (the job must already be out
    /// of `active`) and replans the survivors.
    fn complete(&mut self, job: JobId, out: &mut Vec<(SimTime, Decision)>) {
        self.stats.completed += 1;
        self.emit(out, Decision::Complete { job });
        let starved = self.cfg.fallback && self.mask.is_empty();
        if !self.queue.is_empty() && !starved {
            // Fully pinned re-timing of the survivors. An empty queue
            // skips the (trivial, but cache-churning) empty replan; a
            // fully masked cluster has nothing to plan against, so the
            // queue stays frozen until capacity returns.
            self.replan(None);
        }
    }

    /// Absorbs one malformed input line. Counted always; when a job id
    /// could be recovered from the garbled line, the job is rejected so
    /// the submitter sees a decision instead of silence.
    fn on_malformed(&mut self, job: Option<JobId>, out: &mut Vec<(SimTime, Decision)>) {
        self.stats.malformed += 1;
        probe::count(ProbeCounter::ServeMalformed, 1);
        if let Some(job) = job {
            self.stats.rejected += 1;
            probe::count(ProbeCounter::ServeRejected, 1);
            self.emit(
                out,
                Decision::Reject {
                    job,
                    cause: RejectCause::Malformed,
                },
            );
        }
    }

    /// Applies one failure/repair event. With the §7 fallback on, the
    /// rack mask is refreshed, queued jobs anchored past the threshold
    /// are re-anchored (pins dropped, fresh replan), and the new anchors
    /// are announced as [`Decision::Reanchor`]. With the fallback off
    /// the dead set is still tracked — the dispatch-time retry path
    /// reads it — but plans stay failure-blind.
    fn on_topology(
        &mut self,
        at: SimTime,
        change: TopologyChange,
        out: &mut Vec<(SimTime, Decision)>,
    ) {
        let t = at.max(self.now);
        self.advance_to(t, out);
        self.now = t;
        let changed = match change {
            TopologyChange::Fail(m) => {
                self.stats.machine_failures += 1;
                self.topo.fail_machine(m)
            }
            TopologyChange::Repair(m) => {
                self.stats.machine_repairs += 1;
                self.topo.repair_machine(m)
            }
            TopologyChange::FailRack(r) => {
                self.stats.rack_failures += 1;
                self.topo.fail_rack(r)
            }
        };
        if !changed || !self.cfg.fallback {
            return;
        }
        self.refresh_mask();
        // §7 fallback: a queued job whose anchored racks are past the
        // threshold (or individually masked) drops its placement
        // constraint and gets a fresh anchor from the next replan.
        let threshold = self.cfg.failure_threshold;
        let mut reanchored: Vec<JobId> = Vec::new();
        for q in &mut self.queue {
            if q.racks.is_empty() {
                continue;
            }
            let hit_mask = q.racks.iter().any(|r| self.mask.is_masked(*r));
            if hit_mask || self.topo.dead_fraction(&q.racks) > threshold {
                q.racks.clear();
                q.attempts = 0;
                reanchored.push(q.spec.id);
            }
        }
        if !self.queue.is_empty() && !self.mask.is_empty() {
            self.replan(None);
        }
        for id in reanchored {
            if let Some(q) = self.queue.iter().find(|q| q.spec.id == id) {
                let d = Decision::Reanchor {
                    job: id,
                    racks: q.racks.clone(),
                    priority: q.priority,
                    planned_start: q.planned_start,
                    planned_finish: q.planned_finish,
                };
                self.stats.reanchored += 1;
                probe::count(ProbeCounter::ServeReanchored, 1);
                self.emit(out, d);
            }
        }
        // The replan may have pulled a survivor's start up to now.
        self.advance_to(self.now, out);
    }

    /// Recomputes the rack mask, dead-set fingerprint, and virtual
    /// cluster after a topology change; rebuilds the incremental planner
    /// only when the live rack *count* changed (its latency tables are
    /// sized by count, not identity).
    fn refresh_mask(&mut self) {
        if !self.cfg.fallback {
            return;
        }
        self.mask = self.topo.mask(self.cfg.failure_threshold);
        self.dead_fp = self.topo.dead_fp();
        self.masked_cluster = ClusterConfig {
            racks: self.mask.len(),
            ..self.cfg.cluster.clone()
        };
        if self.mask.len() != self.planner_racks && !self.mask.is_empty() {
            self.planner = IncrementalPlanner::new(
                self.masked_cluster.clone(),
                self.cfg.objective,
                self.cfg.planner.clone(),
            );
            self.planner_racks = self.mask.len();
        }
    }

    /// Moves `queue[idx]` to the active set at `self.now` and emits the
    /// dispatch decision. Does **not** replan: the survivors' stale
    /// timeline is conservative, and the next arrival or completion
    /// re-times them anyway.
    ///
    /// When the job's anchored racks are effectively dead at dispatch
    /// time (past the failure threshold) and `force` is off, the timer
    /// is deferred with exponential backoff up to
    /// [`ServeConfig::dispatch_retries`] times, then the pins are
    /// dropped and the job dispatches unconstrained. Returns `false`
    /// when the dispatch was deferred (the job stays queued).
    fn dispatch(&mut self, idx: usize, out: &mut Vec<(SimTime, Decision)>, force: bool) -> bool {
        if !force
            && !self.queue[idx].racks.is_empty()
            && self.topo.dead_fraction(&self.queue[idx].racks) > self.cfg.failure_threshold
        {
            let backoff = self.cfg.retry_backoff;
            let now = self.now;
            let q = &mut self.queue[idx];
            if q.attempts < self.cfg.dispatch_retries {
                q.attempts += 1;
                // Attempts strictly increase, so even a zero backoff
                // terminates after `dispatch_retries` deferrals.
                q.planned_start = now + SimTime(backoff.0 * (1u64 << (q.attempts - 1)) as f64);
                self.stats.dispatch_retries += 1;
                probe::count(ProbeCounter::ServeDispatchRetry, 1);
                return false;
            }
            q.racks.clear();
            self.stats.fallback_dispatches += 1;
        }
        let q = self.queue.remove(idx);
        let prio = self.dispatch_seq;
        self.dispatch_seq += 1;
        self.stats.dispatched += 1;
        let id = q.spec.id;
        self.active.insert(
            id,
            Active {
                racks: q.racks.clone(),
                priority: prio,
                dispatched_at: self.now,
                planned_finish: self.now + q.predicted_latency,
                spec: q.spec,
            },
        );
        self.emit(
            out,
            Decision::Dispatch {
                job: id,
                racks: q.racks,
                priority: prio,
            },
        );
        true
    }

    /// Fires every timer due at or before `t`, in deterministic order:
    /// by due time, completions before dispatches at equal times, then
    /// job id. Leaves `self.now` at the last timer fired (≤ `t`).
    fn advance_to(&mut self, t: SimTime, out: &mut Vec<(SimTime, Decision)>) {
        loop {
            let next_done: Option<(SimTime, JobId)> = if self.cfg.self_clock {
                self.active
                    .iter()
                    .map(|(id, a)| (a.planned_finish, *id))
                    .filter(|(ft, _)| *ft <= t)
                    .min_by(|a, b| a.0.total_cmp(b.0).then(a.1.cmp(&b.1)))
            } else {
                None
            };
            let next_disp: Option<(SimTime, JobId, usize)> = self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, q)| q.planned_start <= t)
                .map(|(i, q)| (q.planned_start, q.spec.id, i))
                .min_by(|a, b| a.0.total_cmp(b.0).then(a.1.cmp(&b.1)));
            match (next_done, next_disp) {
                (None, None) => return,
                (Some((ft, id)), disp) => {
                    // Completions win ties: a freed rack set should be
                    // visible to a same-instant dispatch's bookkeeping.
                    if disp.is_none_or(|(st, _, _)| ft <= st) {
                        self.now = self.now.max(ft);
                        self.active.remove(&id);
                        self.complete(id, out);
                    } else {
                        let (st, _, idx) = disp.unwrap();
                        self.now = self.now.max(st);
                        // A deferred dispatch pushed its timer into the
                        // future; the loop re-selects.
                        self.dispatch(idx, out, false);
                    }
                }
                (None, Some((st, _, idx))) => {
                    self.now = self.now.max(st);
                    self.dispatch(idx, out, false);
                }
            }
        }
    }

    /// One replan: canonical relative-time problem over the queue (+
    /// optional unpinned newcomer), cache probe, incremental plan on a
    /// miss, optional oracle tripwire, fold back into the queue.
    /// Returns the plan in *relative* time, racks remapped to **live**
    /// ids.
    ///
    /// With dead capacity masked, the whole pipeline — problem pins,
    /// cache entries, planner output, and the tripwire oracle — runs in
    /// **virtual** rack space (the live racks renumbered `0..n_live`);
    /// only after the tripwire does the plan remap to live ids. The
    /// planner's rack symmetry (tables keyed by count, index tie-breaks
    /// preserved by the monotone map) makes this exact.
    fn replan(&mut self, newcomer: Option<&JobSpec>) -> Plan {
        let now = self.now;
        let identity = !self.cfg.fallback || self.mask.is_identity();
        let mut problem: Vec<JobSpec> =
            Vec::with_capacity(self.active.len() + self.queue.len() + 1);
        let mut pins: BTreeMap<JobId, Vec<RackId>> = BTreeMap::new();
        // Active jobs first: pinned occupancy. Their (negative) relative
        // arrival is the dispatch age; the prioritizer re-runs them from
        // "now" on their racks, which conservatively blocks survivors
        // until the modeled occupancy drains (no preemption, §4.1, so
        // their own fold-back entries are ignored).
        for a in self.active.values() {
            let vracks = if identity {
                a.racks.clone()
            } else {
                self.mask.to_virtual_lossy(&a.racks)
            };
            if vracks.is_empty() {
                // Unpinned (forced) dispatches and occupancy entirely on
                // dead racks constrain nothing in the virtual cluster.
                continue;
            }
            let mut s = a.spec.clone();
            s.arrival = SimTime(a.dispatched_at.0 - now.0);
            pins.insert(s.id, vracks);
            problem.push(s);
        }
        for q in &self.queue {
            let mut s = q.spec.clone();
            s.arrival = SimTime(s.arrival.0 - now.0);
            if !q.racks.is_empty() {
                // Re-anchored jobs (cleared racks) go in unpinned and
                // pick up a fresh anchor from this plan. Invariant:
                // surviving pins never reference a masked rack — the
                // reanchor pass in `on_topology` cleared those.
                let vr = if identity {
                    q.racks.clone()
                } else {
                    self.mask.to_virtual_lossy(&q.racks)
                };
                pins.insert(s.id, vr);
            }
            problem.push(s);
        }
        if let Some(nc) = newcomer {
            let mut s = nc.clone();
            s.arrival = SimTime(s.arrival.0 - now.0); // 0.0: arrivals process at their clamp time
            problem.push(s);
        }
        // Canonical order: (relative arrival, id).
        problem.sort_by(|a, b| a.arrival.total_cmp(b.arrival).then(a.id.cmp(&b.id)));
        let ids: Vec<JobId> = problem.iter().map(|s| s.id).collect();

        let key = problem_key(self.config_fp, self.dead_fp, &problem, &pins);
        let plan = match self.cache.lookup(key, &ids) {
            Some(plan) => plan,
            None => {
                let (plan, rs) = self.planner.plan(&problem, &pins);
                match rs.kind {
                    ReplanKind::Incremental => self.stats.replans_incremental += 1,
                    ReplanKind::Full => self.stats.replans_full += 1,
                }
                self.cache.insert(key, &ids, &plan);
                plan
            }
        };

        if self.cfg.tripwire {
            // The oracle plans the same virtual problem on the masked
            // cluster — covering cache hits and post-failure replans
            // alike (masked_cluster == cfg.cluster while fully live).
            let oracle = plan_jobs_pinned(
                &self.masked_cluster,
                &problem,
                self.cfg.objective,
                &self.cfg.planner,
                &pins,
            );
            assert!(
                plan == oracle,
                "serve replan diverged from the plan_jobs_pinned oracle at t={} \
                 (queue={}, newcomer={:?}, live_racks={}): served {:?} vs oracle {:?}",
                now.as_secs(),
                self.queue.len(),
                newcomer.map(|s| s.id),
                self.mask.len(),
                plan,
                oracle,
            );
        }

        // Leave virtual rack space: every plan entry's racks map back to
        // live ids (the cache kept the virtual-space plan).
        let mut plan = plan;
        if !identity {
            for e in plan.entries.values_mut() {
                e.racks = self.mask.to_live(&e.racks);
            }
        }

        // Fold: survivors keep their pinned racks (re-anchored ones
        // adopt the plan's fresh, live-space anchor); priorities and the
        // planned timeline come from the fresh plan (absolute = now+rel).
        for q in &mut self.queue {
            let e = plan
                .entry(q.spec.id)
                .expect("every queued job is in the replan");
            if q.racks.is_empty() {
                q.racks = e.racks.clone();
            }
            q.priority = e.priority;
            q.planned_start = now + e.planned_start;
            q.planned_finish = now + e.planned_finish;
            q.predicted_latency = e.predicted_latency;
        }
        plan
    }

    // ------------------------------------------------------------------
    // Snapshot plumbing (crate-private; see `crate::snapshot`).
    // ------------------------------------------------------------------
}

/// Everything a snapshot records, in write order: config fingerprint,
/// clock, dispatch sequence, stats, queue, active set, dead machines.
pub(crate) type SnapshotParts<'a> = (
    u64,
    SimTime,
    u32,
    ServeStats,
    &'a [Queued],
    &'a BTreeMap<JobId, Active>,
    Vec<MachineId>,
);

impl Scheduler {
    pub(crate) fn snapshot_parts(&self) -> SnapshotParts<'_> {
        (
            self.config_fp,
            self.now,
            self.dispatch_seq,
            self.stats(),
            &self.queue,
            &self.active,
            self.topo.dead_machines(),
        )
    }

    /// Rebuilds a scheduler from snapshot state. Planner and plan cache
    /// start cold — safe, because cached state only ever reproduces
    /// what a cold replan computes bit-identically. The dead-machine
    /// set is replayed into the topology so the rack mask, dead-set
    /// fingerprint, and virtual planner come back exactly.
    pub(crate) fn from_parts(
        cfg: ServeConfig,
        now: SimTime,
        dispatch_seq: u32,
        stats: ServeStats,
        queue: Vec<Queued>,
        active: BTreeMap<JobId, Active>,
        dead: Vec<MachineId>,
    ) -> Self {
        let mut s = Scheduler::new(cfg);
        s.now = now;
        s.dispatch_seq = dispatch_seq;
        s.stats = stats;
        // Cache hit/miss counters live in the cache; carry them over so
        // stats() keeps counting from the snapshot values.
        s.cache.hits = stats.cache_hits;
        s.cache.misses = stats.cache_misses;
        s.queue = queue;
        s.active = active;
        for m in dead {
            s.topo.fail_machine(m);
        }
        s.refresh_mask();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corral_model::{Bandwidth, Bytes, MapReduceProfile};

    fn cfg() -> ServeConfig {
        ServeConfig {
            cluster: ClusterConfig::tiny_test(),
            tripwire: true,
            ..ServeConfig::default()
        }
    }

    fn spec(id: u32, arrival: f64, gb: f64) -> JobSpec {
        JobSpec::map_reduce(
            JobId(id),
            format!("j{id}"),
            MapReduceProfile {
                input: Bytes::gb(gb),
                shuffle: Bytes::gb(gb / 2.0),
                output: Bytes::gb(gb / 10.0),
                maps: 12,
                reduces: 6,
                map_rate: Bandwidth::mbytes_per_sec(50.0),
                reduce_rate: Bandwidth::mbytes_per_sec(50.0),
            },
        )
        .arriving_at(SimTime(arrival))
    }

    #[test]
    fn lifecycle_admit_dispatch_complete() {
        let mut s = Scheduler::new(cfg());
        let mut out = Vec::new();
        let stats = s.run(
            [
                ServeEvent::Arrival(spec(1, 0.0, 4.0)),
                ServeEvent::Arrival(spec(2, 10.0, 8.0)),
            ],
            &mut out,
        );
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.dispatched, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.active_len(), 0);
        // Decision stream is time-ordered.
        for w in out.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Each job: admit → dispatch → complete, in that order.
        for id in [JobId(1), JobId(2)] {
            let labels: Vec<&str> = out
                .iter()
                .filter(|(_, d)| d.job() == id)
                .map(|(_, d)| d.label())
                .collect();
            assert_eq!(labels, ["admit", "dispatch", "complete"]);
        }
        assert_eq!(stats.decisions, out.len() as u64);
    }

    #[test]
    fn rejections_cover_all_causes() {
        let mut s = Scheduler::new(ServeConfig {
            max_queue: 1,
            ..cfg()
        });
        let mut out = Vec::new();
        // Far-future starts so job 1 stays queued: saturate the planner
        // with a wide job… simpler: arrival burst at one instant.
        s.on_event(ServeEvent::Arrival(spec(1, 0.0, 400.0)), &mut out);
        // Duplicate id while job 1 is queued or active.
        s.on_event(ServeEvent::Arrival(spec(1, 0.0, 4.0)), &mut out);
        // Ad hoc job.
        s.on_event(ServeEvent::Arrival(spec(3, 0.0, 4.0).ad_hoc()), &mut out);
        let causes: Vec<RejectCause> = out
            .iter()
            .filter_map(|(_, d)| match d {
                Decision::Reject { cause, .. } => Some(*cause),
                _ => None,
            })
            .collect();
        assert!(causes.contains(&RejectCause::Duplicate));
        assert!(causes.contains(&RejectCause::Unplannable));
        let stats = s.stats();
        assert_eq!(stats.rejected, causes.len() as u64);
    }

    #[test]
    fn queue_full_rejects_when_saturated() {
        // self_clock off: nothing ever dispatches or completes, so the
        // queue only grows.
        let mut s = Scheduler::new(ServeConfig {
            max_queue: 2,
            self_clock: false,
            ..cfg()
        });
        let mut out = Vec::new();
        for id in 1..=3 {
            s.on_event(ServeEvent::Arrival(spec(id, 0.0, 4.0)), &mut out);
        }
        // With self_clock off, dispatch timers still fire (planned
        // starts are self-managed); only completions are external. Jobs
        // whose planned start is 0 dispatch immediately, freeing the
        // queue — so saturate with simultaneous arrivals *before* any
        // timer runs: all three arrive at t=0, and each admission
        // advances timers first. Check the observable invariant instead:
        // queued + active + rejected == arrivals.
        let stats = s.stats();
        assert_eq!(
            s.queue_len() as u64 + s.active_len() as u64 + stats.rejected,
            stats.arrivals
        );
    }

    #[test]
    fn late_arrivals_clamp_to_now() {
        let mut s = Scheduler::new(cfg());
        let mut out = Vec::new();
        s.on_event(ServeEvent::Arrival(spec(1, 100.0, 4.0)), &mut out);
        s.on_event(ServeEvent::Arrival(spec(2, 50.0, 4.0)), &mut out);
        assert_eq!(s.stats().late_arrivals, 1);
        assert!(s.now() >= SimTime(100.0));
        // Both still admitted.
        assert_eq!(s.stats().admitted, 2);
    }

    #[test]
    fn recurring_template_hits_the_plan_cache() {
        let mut s = Scheduler::new(cfg());
        let mut out = Vec::new();
        // Same template, spaced far enough apart that the queue and
        // active set are empty at each arrival: after the first miss,
        // every admission replan is a cache hit (relative-time
        // canonicalization).
        for i in 0..5u32 {
            s.on_event(
                ServeEvent::Arrival(spec(i + 1, i as f64 * 1e5, 4.0)),
                &mut out,
            );
        }
        let stats = s.stats();
        assert_eq!(stats.admitted, 5);
        assert!(
            stats.cache_hits >= 4,
            "recurring empty-queue arrivals must hit: {stats:?}"
        );
    }

    #[test]
    fn replans_are_incremental_when_the_queue_is_busy() {
        // Disable the cache to force every replan through the planner.
        let mut s = Scheduler::new(ServeConfig {
            cache_capacity: 0,
            ..cfg()
        });
        let mut out = Vec::new();
        // A burst at t=0: later arrivals replan with survivors queued.
        for id in 1..=4u32 {
            s.on_event(ServeEvent::Arrival(spec(id, 0.0, 40.0)), &mut out);
        }
        s.finish(&mut out);
        let stats = s.stats();
        assert!(
            stats.replans_incremental > 0,
            "burst replans reuse cached latency tables: {stats:?}"
        );
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn unknown_completion_is_counted_not_fatal() {
        let mut s = Scheduler::new(ServeConfig {
            self_clock: false,
            ..cfg()
        });
        let mut out = Vec::new();
        s.on_event(
            ServeEvent::Completion {
                job: JobId(99),
                at: SimTime(5.0),
            },
            &mut out,
        );
        assert_eq!(s.stats().unknown_completions, 1);
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn rack_failure_reanchors_queued_jobs_and_repair_restores_identity() {
        let mut s = Scheduler::new(cfg());
        let mut out = Vec::new();
        // Burst of wide jobs: the first dispatches immediately, the rest
        // queue behind its occupancy.
        for id in 1..=3u32 {
            s.on_event(ServeEvent::Arrival(spec(id, 0.0, 40.0)), &mut out);
        }
        assert!(s.queue_len() >= 1, "burst must leave survivors queued");
        let victim_job = s.queue[0].spec.id;
        let victim_rack = s.queue[0].racks[0];
        s.on_event(
            ServeEvent::RackFailed {
                rack: victim_rack,
                at: SimTime(1.0),
            },
            &mut out,
        );
        let stats = s.stats();
        assert_eq!(stats.rack_failures, 1);
        assert!(stats.reanchored >= 1, "anchored job must re-anchor");
        assert_ne!(s.dead_fp, 0);
        assert!(!s.mask.is_identity());
        // The re-anchor decision carries a fresh, live anchor.
        let reanchor = out
            .iter()
            .find_map(|(_, d)| match d {
                Decision::Reanchor { job, racks, .. } if *job == victim_job => Some(racks.clone()),
                _ => None,
            })
            .expect("reanchor decision for the victim job");
        assert!(!reanchor.is_empty());
        assert!(
            !reanchor.contains(&victim_rack),
            "anchor left the dead rack"
        );
        // Full repair: mask back to identity, dead fingerprint back to
        // 0 (pre-failure cache entries valid again).
        let per_rack = s.cfg.cluster.machines_per_rack;
        for m in 0..per_rack {
            s.on_event(
                ServeEvent::MachineRepaired {
                    machine: corral_model::MachineId::from_index(
                        victim_rack.index() * per_rack + m,
                    ),
                    at: SimTime(2.0),
                },
                &mut out,
            );
        }
        assert_eq!(s.dead_fp, 0);
        assert!(s.mask.is_identity());
        s.finish(&mut out);
        let stats = s.stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.completed, 3, "every admitted job still finishes");
    }

    #[test]
    fn all_racks_dead_sheds_arrivals_with_no_capacity() {
        let mut s = Scheduler::new(cfg());
        let mut out = Vec::new();
        for r in 0..s.cfg.cluster.racks {
            s.on_event(
                ServeEvent::RackFailed {
                    rack: RackId::from_index(r),
                    at: SimTime::ZERO,
                },
                &mut out,
            );
        }
        assert!(s.mask.is_empty());
        s.on_event(ServeEvent::Arrival(spec(1, 1.0, 4.0)), &mut out);
        let causes: Vec<RejectCause> = out
            .iter()
            .filter_map(|(_, d)| match d {
                Decision::Reject { cause, .. } => Some(*cause),
                _ => None,
            })
            .collect();
        assert_eq!(causes, vec![RejectCause::NoCapacity]);
        assert_eq!(s.stats().admitted, 0);
    }

    #[test]
    fn malformed_lines_are_counted_and_reject_when_the_id_survives() {
        let mut s = Scheduler::new(cfg());
        let mut out = Vec::new();
        s.on_event(ServeEvent::Malformed { job: None }, &mut out);
        s.on_event(
            ServeEvent::Malformed {
                job: Some(JobId(7)),
            },
            &mut out,
        );
        let stats = s.stats();
        assert_eq!(stats.malformed, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.events, 2, "malformed lines count as events");
        assert!(matches!(
            out.as_slice(),
            [(
                _,
                Decision::Reject {
                    job: JobId(7),
                    cause: RejectCause::Malformed
                }
            )]
        ));
    }

    #[test]
    fn fallback_off_defers_dispatch_then_drops_the_pins() {
        let mut s = Scheduler::new(ServeConfig {
            fallback: false,
            dispatch_retries: 2,
            retry_backoff: SimTime(5.0),
            ..cfg()
        });
        let mut out = Vec::new();
        for id in 1..=2u32 {
            s.on_event(ServeEvent::Arrival(spec(id, 0.0, 40.0)), &mut out);
        }
        assert!(s.queue_len() >= 1);
        let victim_job = s.queue[0].spec.id;
        // Kill every rack the queued job is anchored to: failure-blind
        // planning keeps the anchor, so the dispatch timer must degrade.
        for r in s.queue[0].racks.clone() {
            s.on_event(
                ServeEvent::RackFailed {
                    rack: r,
                    at: SimTime(1.0),
                },
                &mut out,
            );
        }
        assert_eq!(s.stats().reanchored, 0, "fallback off never re-anchors");
        s.finish(&mut out);
        let stats = s.stats();
        assert_eq!(stats.dispatch_retries, 2);
        assert_eq!(stats.fallback_dispatches, 1);
        assert_eq!(stats.completed, 2);
        let dispatched_racks = out
            .iter()
            .find_map(|(_, d)| match d {
                Decision::Dispatch { job, racks, .. } if *job == victim_job => Some(racks.clone()),
                _ => None,
            })
            .expect("victim eventually dispatches");
        assert!(
            dispatched_racks.is_empty(),
            "exhausted retries dispatch unconstrained"
        );
    }

    #[test]
    fn chaotic_streams_are_byte_identical() {
        let mut events = Vec::new();
        for i in 0..12u32 {
            events.push(ServeEvent::Arrival(spec(
                i + 1,
                (i as f64) * 15.0,
                4.0 + (i % 4) as f64 * 8.0,
            )));
        }
        // Interleave machine churn: fail at 10s strides, repair 25s later.
        for m in 0..6u32 {
            events.push(ServeEvent::MachineFailed {
                machine: corral_model::MachineId(m),
                at: SimTime(5.0 + m as f64 * 10.0),
            });
            events.push(ServeEvent::MachineRepaired {
                machine: corral_model::MachineId(m),
                at: SimTime(30.0 + m as f64 * 10.0),
            });
        }
        events.sort_by(|a, b| a.at().total_cmp(b.at()));
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let sa = Scheduler::new(cfg()).run(events.clone(), &mut out_a);
        let sb = Scheduler::new(cfg()).run(events, &mut out_b);
        assert_eq!(out_a, out_b);
        assert_eq!(sa, sb);
        assert!(sa.machine_failures > 0);
    }

    #[test]
    fn identical_streams_are_byte_identical() {
        let events: Vec<ServeEvent> = (0..20u32)
            .map(|i| ServeEvent::Arrival(spec(i + 1, (i as f64) * 7.0, 2.0 + (i % 5) as f64)))
            .collect();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let sa = Scheduler::new(cfg()).run(events.clone(), &mut out_a);
        let sb = Scheduler::new(cfg()).run(events, &mut out_b);
        assert_eq!(out_a, out_b);
        assert_eq!(sa, sb);
    }
}
