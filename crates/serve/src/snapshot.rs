//! Snapshot / restore of scheduler state.
//!
//! A versioned, line-oriented text format (the serde shim in this
//! workspace is marker-only, so serialization is hand-rolled). Every
//! `f64` is written with Rust's `{}` Display — the shortest string that
//! parses back to the identical bits — so a restored scheduler is
//! *numerically exact*, and the decision stream after a restore is
//! byte-identical to the uninterrupted run (enforced by
//! `tests/serve_snapshot.rs` in a fresh process).
//!
//! What is saved: config fingerprint (restore refuses a mismatched
//! config), service clock, dispatch sequence, stats, the dead-machine
//! set (so the rack mask and virtual planner come back exactly), the
//! admission queue (specs via the `corral-workloads` CSV codec + per-job
//! plan state), and the active set. What is *not* saved: the incremental
//! planner's latency tables and the plan cache — both start cold on
//! restore, which is safe because cached state only reproduces what a
//! cold replan computes bit-identically (cache warmth affects speed and
//! probe counters, never decisions).
//!
//! The body is integrity-protected: [`write`] appends a 128-bit FNV
//! checksum trailer over everything through the `end` marker, and
//! [`read`] refuses a snapshot whose trailer is missing (truncated
//! file) or does not match (bit rot, partial write) — a corrupted
//! snapshot is an error, never a scheduler in a silently wrong state.
//!
//! Queued specs ride the MapReduce CSV codec, so snapshots cover the
//! `corral-sim serve` domain (MapReduce jobs — the JSONL wire format's
//! own limit); a DAG job submitted through the in-process channel makes
//! [`write`] return an error rather than a lossy snapshot.

use crate::error::ServeError;
use crate::scheduler::{Active, Queued, Scheduler, ServeConfig, ServeStats};
use corral_model::{JobId, MachineId, RackId, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const MAGIC: &str = "corral-serve-snapshot v2";
const MAGIC_V1: &str = "corral-serve-snapshot v1";

/// 128-bit body checksum: two independent FNV-1a streams (the same
/// construction as the plan cache's key hash).
fn checksum(body: &str) -> (u64, u64) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut a: u64 = 0xcbf2_9ce4_8422_2325;
    let mut b: u64 = 0x6c62_272e_07bb_0142 ^ 0x9e37_79b9_7f4a_7c15;
    for byte in body.bytes() {
        a = (a ^ byte as u64).wrapping_mul(PRIME);
        b = (b ^ byte as u64).wrapping_mul(PRIME).rotate_left(1);
    }
    (a, b)
}

fn racks_str(racks: &[RackId]) -> String {
    if racks.is_empty() {
        return "-".into();
    }
    let mut s = String::new();
    for (i, r) in racks.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let _ = write!(s, "{}", r.0);
    }
    s
}

fn snap_err(msg: impl Into<String>) -> ServeError {
    ServeError::Snapshot(msg.into())
}

fn parse_racks(s: &str) -> Result<Vec<RackId>, ServeError> {
    if s == "-" || s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';')
        .map(|p| {
            p.parse::<u32>()
                .map(RackId)
                .map_err(|_| snap_err(format!("bad rack id {p:?}")))
        })
        .collect()
}

fn parse_f64(s: &str) -> Result<f64, ServeError> {
    s.parse::<f64>()
        .map_err(|_| snap_err(format!("bad float {s:?}")))
}

fn parse_u64(s: &str) -> Result<u64, ServeError> {
    s.parse::<u64>()
        .map_err(|_| snap_err(format!("bad integer {s:?}")))
}

/// Serializes the scheduler to the versioned, checksummed text format.
/// Errors if a queued spec cannot ride the CSV codec (DAG jobs).
pub fn write(sched: &Scheduler) -> Result<String, ServeError> {
    let (config_fp, now, dispatch_seq, stats, queue, active, dead) = sched.snapshot_parts();
    let mut s = String::new();
    let _ = writeln!(s, "{MAGIC}");
    let _ = writeln!(s, "config {config_fp}");
    let _ = writeln!(s, "now {}", now.0);
    let _ = writeln!(s, "dispatch_seq {dispatch_seq}");
    let _ = writeln!(
        s,
        "stats {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        stats.events,
        stats.decisions,
        stats.arrivals,
        stats.admitted,
        stats.rejected,
        stats.dispatched,
        stats.completed,
        stats.late_arrivals,
        stats.unknown_completions,
        stats.cache_hits,
        stats.cache_misses,
        stats.replans_incremental,
        stats.replans_full,
        stats.machine_failures,
        stats.machine_repairs,
        stats.rack_failures,
        stats.malformed,
        stats.reanchored,
        stats.dispatch_retries,
        stats.fallback_dispatches,
    );
    let _ = write!(s, "dead {}", dead.len());
    for m in &dead {
        let _ = write!(s, " {}", m.0);
    }
    s.push('\n');
    let _ = writeln!(s, "queue {}", queue.len());
    let specs: Vec<_> = queue.iter().map(|q| q.spec.clone()).collect();
    let csv = corral_workloads::trace::to_csv(&specs)
        .map_err(|e| snap_err(format!("queued spec not snapshot-serializable: {e}")))?;
    s.push_str(&csv);
    if !csv.ends_with('\n') {
        s.push('\n');
    }
    for q in queue {
        let _ = writeln!(
            s,
            "qstate {} {} {} {} {} {} {}",
            q.spec.id.0,
            racks_str(&q.racks),
            q.priority,
            q.planned_start.0,
            q.planned_finish.0,
            q.predicted_latency.0,
            q.attempts,
        );
    }
    let _ = writeln!(s, "active {}", active.len());
    let aspecs: Vec<_> = active.values().map(|a| a.spec.clone()).collect();
    let acsv = corral_workloads::trace::to_csv(&aspecs)
        .map_err(|e| snap_err(format!("active spec not snapshot-serializable: {e}")))?;
    s.push_str(&acsv);
    if !acsv.ends_with('\n') {
        s.push('\n');
    }
    for (id, a) in active {
        let _ = writeln!(
            s,
            "astate {} {} {} {} {}",
            id.0,
            racks_str(&a.racks),
            a.priority,
            a.dispatched_at.0,
            a.planned_finish.0,
        );
    }
    let _ = writeln!(s, "end");
    let (ca, cb) = checksum(&s);
    let _ = writeln!(s, "checksum {ca:016x} {cb:016x}");
    Ok(s)
}

fn field<'a>(parts: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, ServeError> {
    parts
        .next()
        .ok_or_else(|| snap_err(format!("missing field: {what}")))
}

fn expect_line<'a>(lines: &mut std::str::Lines<'a>, tag: &str) -> Result<Vec<&'a str>, ServeError> {
    let line = lines
        .next()
        .ok_or_else(|| snap_err(format!("truncated snapshot at {tag:?}")))?;
    let mut parts = line.split_whitespace();
    let got = parts.next().unwrap_or("");
    if got != tag {
        return Err(snap_err(format!("expected {tag:?}, got {got:?}")));
    }
    Ok(parts.collect())
}

/// Splits off and verifies the checksum trailer, returning the body.
fn verify_checksum(text: &str) -> Result<&str, ServeError> {
    let pos = text.rfind("\nchecksum ").ok_or_else(|| {
        snap_err("missing checksum trailer — snapshot is truncated or predates the trailer")
    })?;
    let body = &text[..pos + 1];
    let mut parts = text[pos + 1..].split_whitespace();
    parts.next(); // the "checksum" tag rfind matched
    let ca = u64::from_str_radix(field(&mut parts, "checksum a")?, 16)
        .map_err(|_| snap_err("malformed checksum trailer"))?;
    let cb = u64::from_str_radix(field(&mut parts, "checksum b")?, 16)
        .map_err(|_| snap_err("malformed checksum trailer"))?;
    if (ca, cb) != checksum(body) {
        return Err(snap_err(format!(
            "checksum mismatch (stored {ca:016x} {cb:016x}) — \
             snapshot is corrupted or was truncated mid-write"
        )));
    }
    Ok(body)
}

/// Rebuilds a scheduler from [`write`] output. The checksum trailer is
/// verified before anything is parsed; `cfg` must fingerprint-match the
/// snapshotting configuration; the planner and plan cache start cold
/// (see module docs). The restored scheduler's stats carry on from the
/// snapshot values — in particular `stats.events` is the number of
/// input events already consumed, which is what a restoring frontend
/// skips.
pub fn read(text: &str, cfg: ServeConfig) -> Result<Scheduler, ServeError> {
    if !text.starts_with(MAGIC) {
        if text.starts_with(MAGIC_V1) {
            return Err(snap_err(format!(
                "{MAGIC_V1:?} snapshots predate the failure path (no \
                 dead-set, retry state, or checksum) and cannot be \
                 restored — re-snapshot with this binary"
            )));
        }
        return Err(snap_err(format!("not a {MAGIC:?} file")));
    }
    let body = verify_checksum(text)?;
    let mut lines = body.lines();
    lines.next(); // MAGIC, checked above

    let config_fp = parse_u64(expect_line(&mut lines, "config")?[0])?;
    if config_fp != cfg.fingerprint() {
        return Err(ServeError::Config(format!(
            "snapshot config fingerprint {config_fp} does not match the \
             current configuration ({}) — restore with the same cluster, \
             objective, planner options, queue bound, and failure policy",
            cfg.fingerprint()
        )));
    }
    let now = SimTime(parse_f64(expect_line(&mut lines, "now")?[0])?);
    let dispatch_seq = parse_u64(expect_line(&mut lines, "dispatch_seq")?[0])? as u32;
    let st = expect_line(&mut lines, "stats")?;
    if st.len() != 20 {
        return Err(snap_err(format!("stats wants 20 fields, got {}", st.len())));
    }
    let stats = ServeStats {
        events: parse_u64(st[0])?,
        decisions: parse_u64(st[1])?,
        arrivals: parse_u64(st[2])?,
        admitted: parse_u64(st[3])?,
        rejected: parse_u64(st[4])?,
        dispatched: parse_u64(st[5])?,
        completed: parse_u64(st[6])?,
        late_arrivals: parse_u64(st[7])?,
        unknown_completions: parse_u64(st[8])?,
        cache_hits: parse_u64(st[9])?,
        cache_misses: parse_u64(st[10])?,
        replans_incremental: parse_u64(st[11])?,
        replans_full: parse_u64(st[12])?,
        machine_failures: parse_u64(st[13])?,
        machine_repairs: parse_u64(st[14])?,
        rack_failures: parse_u64(st[15])?,
        malformed: parse_u64(st[16])?,
        reanchored: parse_u64(st[17])?,
        dispatch_retries: parse_u64(st[18])?,
        fallback_dispatches: parse_u64(st[19])?,
    };

    let dd = expect_line(&mut lines, "dead")?;
    let n_dead = parse_u64(dd.first().copied().unwrap_or(""))? as usize;
    if dd.len() != n_dead + 1 {
        return Err(snap_err(format!(
            "dead set wants {n_dead} machine ids, got {}",
            dd.len() - 1
        )));
    }
    let mut dead = Vec::with_capacity(n_dead);
    for m in &dd[1..] {
        dead.push(MachineId(parse_u64(m)? as u32));
    }

    let n_queue = parse_u64(expect_line(&mut lines, "queue")?[0])? as usize;
    // CSV block: header + n rows.
    let mut csv = String::new();
    for _ in 0..n_queue + 1 {
        let line = lines
            .next()
            .ok_or_else(|| snap_err("truncated snapshot in queue CSV"))?;
        csv.push_str(line);
        csv.push('\n');
    }
    let specs =
        corral_workloads::trace::from_csv(&csv).map_err(|e| snap_err(format!("queue CSV: {e}")))?;
    if specs.len() != n_queue {
        return Err(snap_err(format!(
            "queue wants {n_queue} specs, got {}",
            specs.len()
        )));
    }
    let mut queue = Vec::with_capacity(n_queue);
    for spec in specs {
        let line = lines
            .next()
            .ok_or_else(|| snap_err("truncated snapshot at qstate"))?;
        let mut parts = line.split_whitespace();
        if field(&mut parts, "qstate tag")? != "qstate" {
            return Err(snap_err("expected qstate line"));
        }
        let id = JobId(parse_u64(field(&mut parts, "id")?)? as u32);
        if id != spec.id {
            return Err(snap_err(format!(
                "qstate id {id} does not match CSV row {}",
                spec.id
            )));
        }
        queue.push(Queued {
            spec,
            racks: parse_racks(field(&mut parts, "racks")?)?,
            priority: parse_u64(field(&mut parts, "priority")?)? as u32,
            planned_start: SimTime(parse_f64(field(&mut parts, "start")?)?),
            planned_finish: SimTime(parse_f64(field(&mut parts, "finish")?)?),
            predicted_latency: SimTime(parse_f64(field(&mut parts, "latency")?)?),
            attempts: parse_u64(field(&mut parts, "attempts")?)? as u32,
        });
    }

    let n_active = parse_u64(expect_line(&mut lines, "active")?[0])? as usize;
    let mut acsv = String::new();
    for _ in 0..n_active + 1 {
        let line = lines
            .next()
            .ok_or_else(|| snap_err("truncated snapshot in active CSV"))?;
        acsv.push_str(line);
        acsv.push('\n');
    }
    let aspecs = corral_workloads::trace::from_csv(&acsv)
        .map_err(|e| snap_err(format!("active CSV: {e}")))?;
    if aspecs.len() != n_active {
        return Err(snap_err(format!(
            "active wants {n_active} specs, got {}",
            aspecs.len()
        )));
    }
    let mut active = BTreeMap::new();
    for spec in aspecs {
        let line = lines
            .next()
            .ok_or_else(|| snap_err("truncated snapshot at astate"))?;
        let mut parts = line.split_whitespace();
        if field(&mut parts, "astate tag")? != "astate" {
            return Err(snap_err("expected astate line"));
        }
        let id = JobId(parse_u64(field(&mut parts, "id")?)? as u32);
        if id != spec.id {
            return Err(snap_err(format!(
                "astate id {id} does not match CSV row {}",
                spec.id
            )));
        }
        active.insert(
            id,
            Active {
                racks: parse_racks(field(&mut parts, "racks")?)?,
                priority: parse_u64(field(&mut parts, "priority")?)? as u32,
                dispatched_at: SimTime(parse_f64(field(&mut parts, "dispatched")?)?),
                planned_finish: SimTime(parse_f64(field(&mut parts, "finish")?)?),
                spec,
            },
        );
    }
    expect_line(&mut lines, "end")?;
    Ok(Scheduler::from_parts(
        cfg,
        now,
        dispatch_seq,
        stats,
        queue,
        active,
        dead,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ServeEvent;
    use corral_model::{Bandwidth, Bytes, ClusterConfig, JobSpec, MapReduceProfile};

    fn cfg() -> ServeConfig {
        ServeConfig {
            cluster: ClusterConfig::tiny_test(),
            tripwire: true,
            ..ServeConfig::default()
        }
    }

    fn spec(id: u32, arrival: f64, gb: f64) -> JobSpec {
        JobSpec::map_reduce(
            JobId(id),
            format!("j{id}"),
            MapReduceProfile {
                input: Bytes::gb(gb),
                shuffle: Bytes::gb(gb / 3.0),
                output: Bytes::gb(gb / 7.0),
                maps: 10,
                reduces: 5,
                map_rate: Bandwidth::mbytes_per_sec(47.0),
                reduce_rate: Bandwidth::mbytes_per_sec(53.0),
            },
        )
        .arriving_at(SimTime(arrival))
    }

    /// A stream with churn in it: the snapshot point sits between a
    /// failure and its repair, so the dead set round-trips too.
    fn events() -> Vec<ServeEvent> {
        let mut evs: Vec<ServeEvent> = (0..12u32)
            .map(|i| ServeEvent::Arrival(spec(i + 1, i as f64 * 3.7, 1.0 + (i % 4) as f64)))
            .collect();
        evs.insert(
            3,
            ServeEvent::MachineFailed {
                machine: MachineId(0),
                at: SimTime(9.0),
            },
        );
        evs.insert(
            8,
            ServeEvent::MachineRepaired {
                machine: MachineId(0),
                at: SimTime(22.0),
            },
        );
        evs
    }

    /// In-process round trip: snapshot mid-stream (with a machine down),
    /// restore, and the remaining decisions are identical to the
    /// uninterrupted run. (The fresh-*process* version lives in
    /// `tests/serve_snapshot.rs`.)
    #[test]
    fn roundtrip_resumes_byte_identically() {
        let events = events();

        // Uninterrupted run.
        let mut full = Vec::new();
        let mut a = crate::Scheduler::new(cfg());
        let full_stats = a.run(events.clone(), &mut full);

        // Interrupted at event 5 (one failure already consumed):
        // snapshot, restore, continue.
        let mut head = Vec::new();
        let mut b = crate::Scheduler::new(cfg());
        for ev in events.iter().take(5) {
            b.on_event(ev.clone(), &mut head);
        }
        assert_eq!(b.stats().machine_failures, 1, "snapshot carries a dead set");
        let snap = write(&b).unwrap();
        assert!(snap.contains("\ndead 1 0\n"), "dead machine 0 is recorded");
        drop(b);
        let mut c = read(&snap, cfg()).unwrap();
        let mut tail = Vec::new();
        let skip = c.stats().events as usize;
        assert_eq!(skip, 5);
        let resumed_stats = c.run(events.clone().into_iter().skip(skip), &mut tail);

        head.extend(tail);
        assert_eq!(head, full, "snapshot+restore must not change decisions");
        // Everything *about the decisions* matches. Cache/replan
        // counters may not: the restored planner and plan cache start
        // cold, so the tail re-plans problems the warm run had cached —
        // same plans (that is what the decision equality above proves),
        // different hit/miss split.
        let normalize = |mut s: ServeStats| {
            s.cache_hits = 0;
            s.cache_misses = 0;
            s.replans_incremental = 0;
            s.replans_full = 0;
            s
        };
        assert_eq!(normalize(resumed_stats), normalize(full_stats));

        // And the snapshot of two identical schedulers is identical text.
        let mut d = crate::Scheduler::new(cfg());
        let mut scratch = Vec::new();
        for ev in events.into_iter().take(5) {
            d.on_event(ev, &mut scratch);
        }
        assert_eq!(write(&d).unwrap(), snap);
    }

    #[test]
    fn config_mismatch_is_refused() {
        let s = crate::Scheduler::new(cfg());
        let snap = write(&s).unwrap();
        let other = ServeConfig {
            max_queue: 7,
            ..cfg()
        };
        let err = read(&snap, other).unwrap_err().to_string();
        assert!(err.contains("fingerprint"), "{err}");
        assert!(read("garbage", cfg()).is_err());
        assert!(read(&snap.replace("end", ""), cfg()).is_err());
    }

    #[test]
    fn truncation_and_corruption_are_refused_never_restored() {
        let mut s = crate::Scheduler::new(cfg());
        let mut out = Vec::new();
        for ev in events().into_iter().take(6) {
            s.on_event(ev, &mut out);
        }
        let snap = write(&s).unwrap();

        // Truncation at every prefix: refused (an empty prefix, a cut
        // mid-body, a cut inside the trailer — all must error, none may
        // restore a partial scheduler).
        for cut in [0, 1, snap.len() / 4, snap.len() / 2, snap.len() - 2] {
            let err = read(&snap[..cut], cfg());
            assert!(err.is_err(), "prefix of {cut} bytes restored: {err:?}");
        }

        // Single-byte corruption in the body: checksum catches it.
        let mid = snap.len() / 2;
        let flipped = format!(
            "{}{}{}",
            &snap[..mid],
            if snap.as_bytes()[mid] == b'0' {
                "1"
            } else {
                "0"
            },
            &snap[mid + 1..]
        );
        let err = read(&flipped, cfg()).unwrap_err().to_string();
        assert!(
            err.contains("checksum") || err.contains("mismatch"),
            "corruption must surface as a checksum error: {err}"
        );
    }

    #[test]
    fn v1_snapshots_are_refused_with_a_clear_error() {
        let v1 = "corral-serve-snapshot v1\nconfig 1\n";
        let err = read(v1, cfg()).unwrap_err().to_string();
        assert!(err.contains("v1"), "{err}");
        assert!(err.contains("re-snapshot"), "{err}");
    }
}
