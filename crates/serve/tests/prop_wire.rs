//! Property tests for the hardened wire/snapshot paths: no input —
//! well-formed, mutated, or outright random bytes — may panic, loop, or
//! silently corrupt the serving stack. Malformed lines degrade to
//! structured errors (strict) or `Malformed` placeholder events (lossy),
//! and any byte-level damage to a snapshot is refused at restore.

use corral_model::{Bandwidth, Bytes, ClusterConfig, JobId, JobSpec, MapReduceProfile, SimTime};
use corral_serve::source::read_events_lossy;
use corral_serve::{jsonv, wire, Scheduler, ServeConfig, ServeEvent};
use proptest::prelude::*;

fn spec(id: u32, arrival: f64, gb: f64) -> JobSpec {
    JobSpec::map_reduce(
        JobId(id),
        format!("j{id}"),
        MapReduceProfile {
            input: Bytes::gb(gb),
            shuffle: Bytes::gb(gb / 2.0),
            output: Bytes::gb(gb / 10.0),
            maps: 8,
            reduces: 4,
            map_rate: Bandwidth::mbytes_per_sec(50.0),
            reduce_rate: Bandwidth::mbytes_per_sec(50.0),
        },
    )
    .arriving_at(SimTime(arrival))
}

/// A valid wire line for one of the event shapes, picked by `kind`.
fn valid_line(kind: u8, id: u32, t: f64) -> String {
    let ev = match kind % 4 {
        0 => ServeEvent::Arrival(spec(id, t, 1.0 + (id % 5) as f64)),
        1 => ServeEvent::Completion {
            job: JobId(id),
            at: SimTime(t),
        },
        2 => ServeEvent::MachineFailed {
            machine: corral_model::MachineId(id % 64),
            at: SimTime(t),
        },
        _ => ServeEvent::MachineRepaired {
            machine: corral_model::MachineId(id % 64),
            at: SimTime(t),
        },
    };
    wire::format_event(&ev).expect("valid events format")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random byte mutations of valid wire lines parse to `Ok` or `Err`
    /// — never a panic — and the lossy reader always degrades them to
    /// exactly one event per line.
    #[test]
    fn mutated_wire_lines_never_panic(
        kind in any::<u8>(),
        id in 0u32..1000,
        t in 0.0f64..1e6,
        edits in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = valid_line(kind, id, t).into_bytes();
        for (pos, byte) in &edits {
            let i = pos % bytes.len();
            bytes[i] = *byte;
        }
        let line = String::from_utf8_lossy(&bytes).into_owned();

        // Strict parse: structured result either way, no panic.
        let _ = wire::parse_event(&line);

        // Lossy read: never an error, positional alignment preserved.
        if !line.contains('\n') {
            let events = read_events_lossy(line.as_bytes()).unwrap();
            let expected = usize::from(!line.trim().is_empty());
            prop_assert_eq!(events.len(), expected);
        }
    }

    /// Arbitrary byte soup through the lossy reader: always `Ok`, one
    /// event per non-blank line, and anything unparseable surfaces as
    /// `Malformed` rather than being dropped (the alignment guarantee
    /// snapshot restore depends on).
    #[test]
    fn random_bytes_lossy_reader_is_total(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let events = read_events_lossy(text.as_bytes()).unwrap();
        let nonblank = text.lines().filter(|l| !l.trim().is_empty()).count();
        prop_assert_eq!(events.len(), nonblank);
    }

    /// Deep nesting is depth-bounded: pathological `[[[…]]]` input
    /// returns `Err` from the recursive-descent parser instead of
    /// overflowing the stack.
    #[test]
    fn deep_nesting_is_bounded_not_fatal(depth in 1usize..512) {
        let text = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        let result = jsonv::parse(&text);
        prop_assert_eq!(result.is_ok(), depth <= jsonv::MAX_DEPTH);
        // The same text as a wire line is a clean parse error.
        prop_assert!(wire::parse_event(&text).is_err());
    }

    /// Any single-byte change to a snapshot (body or checksum trailer)
    /// is refused at restore — the checksum leaves no silent path.
    #[test]
    fn corrupted_snapshots_are_always_refused(
        pos in any::<usize>(),
        delta in 1u8..255,
    ) {
        let cfg = ServeConfig {
            cluster: ClusterConfig::tiny_test(),
            ..ServeConfig::default()
        };
        let mut sched = Scheduler::new(cfg.clone());
        let mut out = Vec::new();
        for i in 1..=3u32 {
            sched.on_event(ServeEvent::Arrival(spec(i, i as f64 * 5.0, 2.0)), &mut out);
        }
        let snap = corral_serve::snapshot::write(&sched).unwrap();

        let mut bytes = snap.clone().into_bytes();
        let i = pos % bytes.len();
        bytes[i] = bytes[i].wrapping_add(delta);
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        prop_assume!(corrupted != snap); // lossy re-encoding could normalize
        prop_assert!(corral_serve::snapshot::read(&corrupted, cfg).is_err());
    }
}
