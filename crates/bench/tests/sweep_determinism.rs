//! Integration contract of the sweep engine (ISSUE 2, satellite 3):
//! a `(jobset-family × arrival-seed) × variant` grid run with `--jobs 1`
//! and `--jobs 8` produces *byte-identical* CSV rows and run reports,
//! and a poisoned cell is isolated without killing the sweep.

use corral_bench::runner::{run_variant, RunConfig, Variant};
use corral_cluster::config::SimParams;
use corral_cluster::metrics::RunReport;
use corral_core::{Objective, PlannerConfig};
use corral_model::{ClusterConfig, JobSpec, SimTime};
use corral_sweep::SweepPool;
use corral_workloads::{assign_uniform_arrivals, w1, w2, Scale};

/// Four arrival seeds (the head of the standard bench seed bank).
const SEEDS: [u64; 4] = [0x1, 0xF18, 0xF19, 0xA5A5];

fn small_rc() -> RunConfig {
    let mut params = SimParams::testbed();
    params.cluster = ClusterConfig::tiny_test();
    params.horizon = SimTime::hours(10.0);
    RunConfig {
        params,
        objective: Objective::Makespan,
        planner: PlannerConfig::default(),
    }
}

fn small_scale() -> Scale {
    Scale {
        task_divisor: 10.0,
        data_divisor: 10.0,
    }
}

/// Two workload families × four arrival seeds, seed-major within family.
fn jobsets() -> Vec<Vec<JobSpec>> {
    let mut out = Vec::new();
    for seed in SEEDS {
        let mut jobs = w1::generate(
            &w1::W1Params {
                jobs: 8,
                ..w1::W1Params::with_seed(17)
            },
            small_scale(),
        );
        assign_uniform_arrivals(&mut jobs, SimTime::minutes(5.0), seed);
        out.push(jobs);
    }
    for seed in SEEDS {
        let mut jobs = w2::generate(
            &w2::W2Params {
                jobs: 6,
                large_jobs: 1,
                seed: 23,
            },
            small_scale(),
        );
        assign_uniform_arrivals(&mut jobs, SimTime::minutes(5.0), seed);
        out.push(jobs);
    }
    out
}

/// The full grid exactly as `run_variant_grid` lays it out
/// (jobset-major, variant-minor), on an explicit pool.
fn run_grid(pool: &SweepPool, jobsets: &[Vec<JobSpec>], rc: &RunConfig) -> Vec<RunReport> {
    let nv = Variant::ALL.len();
    pool.run_all(jobsets.len() * nv, |i| {
        run_variant(Variant::ALL[i % nv], &jobsets[i / nv], rc)
    })
}

/// Bit-exact fingerprint of everything an experiment could print from a
/// report (same style as `tests/determinism.rs`).
fn fingerprint(r: &RunReport) -> Vec<u64> {
    let mut bits = vec![
        r.makespan.0.to_bits(),
        r.cross_rack_bytes.0.to_bits(),
        r.network_bytes.0.to_bits(),
        r.unfinished as u64,
        r.avg_completion_time().to_bits(),
        r.median_completion_time().to_bits(),
    ];
    for m in r.jobs.values() {
        if let Some(t) = m.finished {
            bits.push(t.0.to_bits());
        }
        bits.push(m.task_seconds.to_bits());
    }
    bits
}

/// CSV rows the way the figure experiments assemble them: one row per
/// jobset, mean JCT per variant — rendered through the same `{v}`
/// formatting `table::write_csv` uses, so equality here is equality of
/// the bytes that would land in `results/*.csv`.
fn csv_rows(reports: &[RunReport], n_jobsets: usize) -> String {
    let nv = Variant::ALL.len();
    let mut out = String::from("jobset,yarn,corral,localshuffle,shufflewatcher\n");
    for js in 0..n_jobsets {
        let mut row = vec![js as f64];
        for v in 0..nv {
            row.push(reports[js * nv + v].avg_completion_time());
        }
        let line = row
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[test]
fn jobs1_and_jobs8_are_byte_identical() {
    let rc = small_rc();
    let jobsets = jobsets();

    let serial = run_grid(&SweepPool::new(1).progress(false), &jobsets, &rc);
    let parallel = run_grid(&SweepPool::new(8).progress(false), &jobsets, &rc);
    assert_eq!(serial.len(), jobsets.len() * Variant::ALL.len());
    assert_eq!(serial.len(), parallel.len());

    // Reports: bit-identical numerics and identical rendered summaries,
    // cell by cell.
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(a.scheduler, b.scheduler, "cell {i}: variant order changed");
        assert_eq!(
            fingerprint(a),
            fingerprint(b),
            "cell {i} ({}) differs between --jobs 1 and --jobs 8",
            a.scheduler
        );
        assert_eq!(
            a.summary.to_string(),
            b.summary.to_string(),
            "cell {i} rendered summary differs"
        );
    }

    // CSV: the rows an experiment would write are the same bytes.
    assert_eq!(
        csv_rows(&serial, jobsets.len()),
        csv_rows(&parallel, jobsets.len())
    );
}

#[test]
fn poisoned_cell_is_isolated() {
    let rc = small_rc();
    let jobsets: Vec<Vec<JobSpec>> = jobsets().into_iter().take(1).collect();
    let nv = Variant::ALL.len();
    let poisoned = 2;

    let pool = SweepPool::new(4).progress(false);
    let results = pool.run(nv, |i| {
        if i == poisoned {
            panic!("poisoned cell {i}");
        }
        run_variant(Variant::ALL[i % nv], &jobsets[i / nv], &rc)
    });

    assert_eq!(results.len(), nv);
    for (i, r) in results.iter().enumerate() {
        if i == poisoned {
            let err = r.as_ref().unwrap_err();
            assert_eq!(err.index, poisoned);
            assert!(err.message.contains("poisoned cell 2"), "{}", err.message);
        } else {
            let report = r.as_ref().unwrap();
            assert_eq!(report.scheduler, Variant::ALL[i].label());
        }
    }
    let counters = pool.counters();
    assert_eq!(counters.get("sweep.cells_done"), (nv - 1) as u64);
    assert_eq!(counters.get("sweep.cells_failed"), 1);
}
