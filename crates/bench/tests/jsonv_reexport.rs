//! The bench harness consumes `BENCH_*.json` through `bench::jsonv`
//! (now a re-export of `corral_serve::jsonv`, which owns the parser and
//! its unit suite). This test holds the re-export path down: the exact
//! documents the harness writes and merges must keep parsing here.

use corral_bench::jsonv::{self, Value};

#[test]
fn bench_documents_parse_through_the_reexport() {
    // The shape servebench writes and perfreport merges.
    let text = r#"{
  "bench": "serve_loop",
  "cells": [
    {"cell": "w1-small", "jobs": 40, "racks": 7, "decisions": 120,
     "wall_s": 0.0005, "decisions_per_s": 240000, "arrivals_per_s": 80000,
     "decision_p50_us": 10.21, "decision_p99_us": 55.00,
     "cache_hits": 0, "cache_misses": 55,
     "replans_incremental": 30, "replans_full": 25, "tripwire": true}
  ]
}"#;
    let v = jsonv::parse(text).unwrap();
    assert_eq!(v.get("bench").unwrap().as_str(), Some("serve_loop"));
    let cells = v.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells[0].get("decisions").unwrap().as_u64(), Some(120));
    assert!(matches!(
        cells[0].get("tripwire").unwrap(),
        Value::Bool(true)
    ));
    // Compact emission reparses to the same value (the property
    // perfreport's merge depends on).
    assert_eq!(jsonv::parse(&v.to_json()).unwrap(), v);
}

#[test]
fn reexport_rejects_what_the_parser_rejects() {
    assert!(jsonv::parse(r#"{"a":1} trailing"#).is_err());
    assert!(jsonv::parse(r#"{"a":"#).is_err());
}
