//! Determinism contract for chaos runs (ISSUE 8): the same chaos seed
//! produces a **byte-identical formatted decision stream** no matter
//! how the run is executed — serial vs an 8-worker sweep pool, plan
//! cache on vs off. Chaos schedules, failure masking, re-anchoring, and
//! the retry cascade must all be pure functions of the input stream.

use corral_core::Objective;
use corral_model::{ClusterConfig, SimTime};
use corral_serve::{chaos, wire, ChaosSpec, Scheduler, ServeConfig, ServeEvent};
use corral_sweep::SweepPool;
use corral_workloads::{assign_uniform_arrivals, w1, Scale};

/// Chaos seeds for the sweep grid (one cell per seed).
const SEEDS: [u64; 6] = [0x11, 0x22, 0x33, 0x5A5A, 0xC0441, 0xFFFF];

fn cluster() -> ClusterConfig {
    ClusterConfig {
        racks: 5,
        ..ClusterConfig::testbed_210()
    }
}

fn config(cache: bool) -> ServeConfig {
    ServeConfig {
        cluster: cluster(),
        objective: Objective::AvgCompletionTime,
        tripwire: true,
        failure_threshold: 0.1,
        cache_capacity: if cache { 256 } else { 0 },
        ..ServeConfig::default()
    }
}

/// The input stream for one cell: a W1 burst merged with that seed's
/// churn schedule.
fn stream(seed: u64) -> Vec<ServeEvent> {
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 16,
            ..w1::W1Params::with_seed(0xBEEF)
        },
        Scale {
            task_divisor: 8.0,
            data_divisor: 4.0,
        },
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(20.0), seed);
    let arrivals = corral_serve::source::events_from_specs(&jobs);
    let spec = ChaosSpec {
        mtbf: SimTime(7200.0),
        mean_repair: SimTime(600.0),
        horizon: SimTime(1800.0),
        seed,
    };
    chaos::merge(arrivals, spec.events(&cluster()))
}

/// Runs one cell and renders its decisions exactly as the wire would.
fn formatted_decisions(seed: u64, cache: bool) -> String {
    let mut out = Vec::new();
    let stats = Scheduler::new(config(cache)).run(stream(seed), &mut out);
    assert_eq!(stats.decisions as usize, out.len());
    assert!(stats.machine_failures > 0, "churn must be non-empty");
    out.iter()
        .map(|(t, d)| wire::format_decision(*t, d))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs the full seed grid on a pool of `workers` threads; results are
/// collected in cell-index order.
fn run_grid(workers: usize, cache: bool) -> Vec<String> {
    let pool = SweepPool::new(workers);
    pool.run_all(SEEDS.len(), |i| formatted_decisions(SEEDS[i], cache))
}

#[test]
fn chaos_streams_are_identical_across_pool_widths() {
    let serial = run_grid(1, true);
    let parallel = run_grid(8, true);
    assert_eq!(
        serial, parallel,
        "chaos decision streams must be byte-identical under --jobs 1 vs --jobs 8"
    );
    // Different chaos seeds genuinely produce different streams (the
    // equality above is not vacuous).
    assert!(serial.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn chaos_streams_are_identical_with_cache_on_or_off() {
    let cached = run_grid(4, true);
    let uncached = run_grid(4, false);
    assert_eq!(
        cached, uncached,
        "the plan cache is memoization only — it must never change decisions"
    );
}
