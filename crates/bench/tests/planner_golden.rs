//! Golden determinism contract of the planner fast path (ISSUE 5), the
//! planner twin of `fabric_golden.rs`:
//!
//! 1. The offline planner on a fixed workload reproduces *embedded*
//!    bit-level fingerprints for both objectives — catching any change to
//!    the provisioning trajectory, the prioritization arithmetic, or the
//!    objective fold, not just gross regressions.
//! 2. The pooled planner at `--jobs 1` vs `--jobs 8` produces
//!    byte-identical plan CSVs on the two planning shapes the experiments
//!    rerun hottest: the replan-shaped pinned problem (§3.1) and the
//!    fig13b-shaped forecast problem (plan on perturbed arrivals).
//! 3. The serial planner and the pooled planner agree with each other and
//!    with the frozen reference oracle.
//!
//! The fingerprints are asserted with the actual values in the panic
//! message; after an *intentional* planner change, rerun and paste the
//! printed bits.

use corral_core::planner::perturb_arrivals;
use corral_core::provision::{provision_reference, ProvisionMode};
use corral_core::{
    plan_jobs, plan_jobs_pinned, plan_jobs_pinned_pooled, LatencyModel, Objective, Plan,
    PlannerConfig, ResponseOptions,
};
use corral_model::{ClusterConfig, JobId, JobSpec, RackId, SimTime};
use corral_sweep::SweepPool;
use corral_workloads::{assign_uniform_arrivals, w1, Scale};
use std::collections::BTreeMap;

/// `(objective label, objective_value bits, FNV-1a of the plan CSV)`.
/// Regenerate from the assertion message after an intentional change.
const GOLDEN_PLANS: [(&str, u64, u64); 2] = [
    ("makespan", 0x407b62998d8c58bf, 0x166369d3df7a7680),
    ("avgjct", 0x4040d7aa207521f1, 0x1e3ad0591bb2703b),
];

/// The fixed golden workload (same family as `fabric_golden.rs`): 8 W1
/// jobs, seed 17, tasks and volumes ÷10, arrivals uniform in 5 minutes.
fn golden_jobsets() -> Vec<JobSpec> {
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 8,
            ..w1::W1Params::with_seed(17)
        },
        Scale {
            task_divisor: 10.0,
            data_divisor: 10.0,
        },
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(5.0), 0x1);
    jobs
}

fn cluster() -> ClusterConfig {
    ClusterConfig::tiny_test()
}

fn objective_of(label: &str) -> Objective {
    match label {
        "makespan" => Objective::Makespan,
        "avgjct" => Objective::AvgCompletionTime,
        other => panic!("unknown objective {other}"),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fingerprint(plan: &Plan) -> (u64, u64) {
    (
        plan.objective_value.to_bits(),
        fnv1a(plan.to_csv().as_bytes()),
    )
}

#[test]
fn planner_matches_embedded_golden_bits_for_both_objectives() {
    let cfg = cluster();
    let jobs = golden_jobsets();
    for (label, value_bits, csv_fnv) in GOLDEN_PLANS {
        let plan = plan_jobs(&cfg, &jobs, objective_of(label), &PlannerConfig::default());
        assert_eq!(
            fingerprint(&plan),
            (value_bits, csv_fnv),
            "{label}: plan drifted from golden bits (got {:#018x} / {:#018x}) — \
             paste the new constants only if the change is intentional",
            plan.objective_value.to_bits(),
            fnv1a(plan.to_csv().as_bytes()),
        );
    }
}

/// The replan-shaped pinned planning problem (§3.1): an initial plan from
/// forecast arrivals anchors early jobs' racks; re-plan with true
/// arrivals and those pins. Mirrors `experiments/replan.rs` and the
/// plannerbench replan cell.
fn replan_pins(cfg: &ClusterConfig, jobs: &[JobSpec]) -> BTreeMap<JobId, Vec<RackId>> {
    let forecast = perturb_arrivals(jobs, 0.5, SimTime::minutes(2.0), 0x8E);
    let initial = plan_jobs(
        cfg,
        &forecast,
        Objective::AvgCompletionTime,
        &PlannerConfig::default(),
    );
    let uploaded = SimTime::minutes(2.5);
    jobs.iter()
        .filter(|j| j.arrival <= uploaded)
        .filter_map(|j| initial.entry(j.id).map(|e| (j.id, e.racks.clone())))
        .collect()
}

#[test]
fn replan_shaped_plan_is_identical_across_pool_sizes() {
    let cfg = cluster();
    let jobs = golden_jobsets();
    let pins = replan_pins(&cfg, &jobs);
    assert!(
        !pins.is_empty() && pins.len() < jobs.len(),
        "shape check: the replan problem must mix pinned and free jobs"
    );
    let pc = PlannerConfig::default();
    let serial = plan_jobs_pinned(&cfg, &jobs, Objective::AvgCompletionTime, &pc, &pins);
    for pool_jobs in [1, 8] {
        let pool = SweepPool::new(pool_jobs).progress(false);
        let pooled =
            plan_jobs_pinned_pooled(&pool, &cfg, &jobs, Objective::AvgCompletionTime, &pc, &pins);
        assert_eq!(serial, pooled, "--jobs {pool_jobs}: plans diverge");
        assert_eq!(
            serial.to_csv(),
            pooled.to_csv(),
            "--jobs {pool_jobs}: plan CSV bytes diverge"
        );
        assert_eq!(
            serial.provision_stats.candidates, pooled.provision_stats.candidates,
            "--jobs {pool_jobs}: candidate counts diverge"
        );
    }
}

#[test]
fn fig13b_shaped_plan_is_identical_across_pool_sizes() {
    // Fig 13b plans on *perturbed* arrivals (the planner's forecast is
    // wrong) and both objectives appear across the sweep; cover each.
    let cfg = cluster();
    let jobs = golden_jobsets();
    let forecast = perturb_arrivals(&jobs, 0.5, SimTime::minutes(2.0), 0xF13B);
    let pc = PlannerConfig::default();
    let no_pins = BTreeMap::new();
    for objective in [Objective::Makespan, Objective::AvgCompletionTime] {
        let serial = plan_jobs(&cfg, &forecast, objective, &pc);
        for pool_jobs in [1, 8] {
            let pool = SweepPool::new(pool_jobs).progress(false);
            let pooled = plan_jobs_pinned_pooled(&pool, &cfg, &forecast, objective, &pc, &no_pins);
            assert_eq!(
                serial, pooled,
                "{objective:?} --jobs {pool_jobs}: plans diverge"
            );
            assert_eq!(
                serial.to_csv(),
                pooled.to_csv(),
                "{objective:?} --jobs {pool_jobs}: plan CSV bytes diverge"
            );
        }
    }
}

#[test]
fn planner_agrees_with_frozen_reference_oracle_on_golden_workload() {
    // End-to-end: the plan the fast path builds scores exactly what the
    // frozen reference provisioner computes on the same inputs.
    let cfg = cluster();
    let jobs = golden_jobsets();
    let pc = PlannerConfig::default();
    for objective in [Objective::Makespan, Objective::AvgCompletionTime] {
        let plan = plan_jobs(&cfg, &jobs, objective, &pc);
        let models: Vec<LatencyModel> = jobs
            .iter()
            .map(|j| LatencyModel::build(&j.profile, &cfg, &ResponseOptions::default()))
            .collect();
        let meta: Vec<(JobId, SimTime)> = jobs.iter().map(|j| (j.id, j.arrival)).collect();
        let pins = vec![None; jobs.len()];
        let oracle = provision_reference(
            &models,
            &meta,
            &pins,
            cfg.racks,
            objective,
            ProvisionMode::Exhaustive,
        );
        assert_eq!(
            plan.objective_value.to_bits(),
            oracle.objective_value.to_bits(),
            "{objective:?}: plan and oracle objective bits diverge"
        );
        assert_eq!(
            plan.provision_stats.candidates, oracle.stats.candidates,
            "{objective:?}: candidate counts diverge"
        );
    }
}
