//! Process-wide sweep knobs for the experiment harness.
//!
//! The `repro` driver parses `-j/--jobs` and `--seeds` once and stores
//! them here; every experiment module reads them instead of threading
//! two extra parameters through twenty `main()`s. Both knobs are plain
//! atomics — set before experiments start, read-only afterwards — so
//! they cannot introduce cross-cell shared mutable state.

use std::sync::atomic::{AtomicUsize, Ordering};

use corral_sweep::SweepPool;

static JOBS: AtomicUsize = AtomicUsize::new(0); // 0 = auto (host parallelism)
static SEEDS: AtomicUsize = AtomicUsize::new(0); // 0 = DEFAULT_SEEDS

/// Default arrival-seed pool size for the online experiments
/// (fig8/fig9/fig13b). The paper's methodology pools seeds because
/// Yarn-CS completion times vary strongly with the arrival pattern;
/// 8 seeds brings the fig8-W1 median's 95% CI half-width under 3% of
/// the mean (see EXPERIMENTS.md "Online runs").
pub const DEFAULT_SEEDS: usize = 8;

/// The bank of arrival seeds experiments draw from, in pool order. The
/// first three are the harness's historical pool (so `--seeds 3`
/// reproduces pre-sweep results exactly); the rest are arbitrary fixed
/// constants. `--seeds` beyond the bank extends it deterministically
/// via [`corral_sweep::derive_seeds`].
pub const ARRIVAL_SEED_BANK: [u64; 16] = [
    0x1, 0xF18, 0xF19, 0xA5A5, 0x51EE7, 0xB0B, 0xD00D, 0xFEED, 0xBEEF, 0xCAFE, 0x1CE, 0xF00D,
    0x7E57, 0x5EED, 0x9A9A, 0x2B2B,
];

/// Sets the worker count for experiment sweeps (0 = host parallelism).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The configured worker count (resolving 0 to the host's parallelism).
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => corral_sweep::default_jobs(),
        n => n,
    }
}

/// Sets the arrival-seed pool size (0 = [`DEFAULT_SEEDS`]).
pub fn set_seeds(n: usize) {
    SEEDS.store(n, Ordering::Relaxed);
}

/// The arrival seeds the online experiments pool, in deterministic
/// order: the first `--seeds N` entries of [`ARRIVAL_SEED_BANK`],
/// extended via `derive_seeds` if N exceeds the bank.
pub fn arrival_seeds() -> Vec<u64> {
    let n = match SEEDS.load(Ordering::Relaxed) {
        0 => DEFAULT_SEEDS,
        n => n,
    };
    let mut seeds: Vec<u64> = ARRIVAL_SEED_BANK
        .iter()
        .copied()
        .take(n.min(ARRIVAL_SEED_BANK.len()))
        .collect();
    if n > seeds.len() {
        seeds.extend(corral_sweep::derive_seeds(0x5EED_BA5E, n - seeds.len()));
    }
    seeds
}

/// A sweep pool configured with the harness's worker count.
pub fn pool() -> SweepPool {
    SweepPool::new(jobs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_pool_prefix_is_the_historical_pool() {
        // Do not set_seeds here: these globals are process-wide and other
        // tests read them; just check the bank directly.
        assert_eq!(&ARRIVAL_SEED_BANK[..3], &[0x1, 0xF18, 0xF19]);
        let mut uniq = ARRIVAL_SEED_BANK.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), ARRIVAL_SEED_BANK.len(), "seed bank collision");
    }
}
