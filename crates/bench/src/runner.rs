//! Shared experiment plumbing: the four compared systems and a uniform way
//! to run a workload under each.

use corral_cluster::config::{DataPlacement, SimParams};
use corral_cluster::engine::Engine;
use corral_cluster::metrics::RunReport;
use corral_cluster::scheduler::SchedulerKind;
use corral_core::{plan_jobs, Objective, Plan, PlannerConfig};
use corral_model::JobSpec;
use corral_model::SimTime;
use corral_simnet::background::BackgroundModel;

/// The four systems compared throughout §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// YARN capacity scheduler + delay scheduling, stock HDFS placement.
    YarnCs,
    /// Corral: offline plan drives both data placement and task placement.
    Corral,
    /// Corral's task placement, stock HDFS data placement (§6.1 baseline).
    LocalShuffle,
    /// ShuffleWatcher: per-job greedy racks, no planning, stock HDFS.
    ShuffleWatcher,
}

impl Variant {
    /// All four, in the paper's presentation order.
    pub const ALL: [Variant; 4] = [
        Variant::YarnCs,
        Variant::Corral,
        Variant::LocalShuffle,
        Variant::ShuffleWatcher,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::YarnCs => "yarn-cs",
            Variant::Corral => "corral",
            Variant::LocalShuffle => "localshuffle",
            Variant::ShuffleWatcher => "shufflewatcher",
        }
    }
}

/// Parameters shared by one experiment's runs.
///
/// Concurrency hygiene: `RunConfig` (and everything inside `SimParams`)
/// is plain owned data — no `Arc`/`Rc`, no interior mutability, no file
/// paths — so cloning one per sweep cell shares nothing mutable. Tracer
/// sinks are *not* part of the config (the engine takes one explicitly
/// via `Engine::set_tracer`), and [`run_variant`] never touches the
/// filesystem; every `results/*.csv` is written by an experiment's
/// `main()` after all cells have been collected, so two cells can never
/// race on an output file. `sweep_hygiene` below asserts the
/// send/sync part of this contract at compile time.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Simulator parameters (cluster, background, seed, horizon …).
    pub params: SimParams,
    /// Planning objective for the plan-based variants.
    pub objective: Objective,
    /// Planner configuration (latency-model options).
    pub planner: PlannerConfig,
}

impl RunConfig {
    /// The standard experimental setup of §6.1: the 210-machine testbed
    /// with background traffic occupying 50% of each rack's core link,
    /// TCP fabric.
    ///
    /// The simulator runs 4 slots per machine instead of the testbed's 32,
    /// with workload task counts scaled by the same rule (see
    /// EXPERIMENTS.md).
    pub fn testbed(objective: Objective) -> Self {
        let mut params = SimParams::testbed();
        params.cluster = scaled_testbed();
        params.background = background_fraction(&params.cluster, 0.5);
        params.horizon = SimTime::hours(24.0);
        RunConfig {
            params,
            objective,
            planner: PlannerConfig::default(),
        }
    }
}

/// The 210-machine testbed as the experiments use it. NICs stay at the
/// testbed's 10 Gbps: the paper's regime is *core-bound* (oversubscribed
/// rack uplinks saturate long before NICs), and scaling NICs down with the
/// slot count would instead make the NICs the bottleneck, which changes
/// who wins. See EXPERIMENTS.md for the calibration discussion.
pub fn scaled_testbed() -> corral_model::ClusterConfig {
    corral_model::ClusterConfig::testbed_210()
}

/// Background traffic occupying `frac` of each rack's core uplink — the
/// paper states background consumes "up to 50% of the core bandwidth
/// usage", and Fig. 12 sweeps 30/35/40 Gbps of the testbed's 60 Gbps
/// uplinks (fractions 0.5 / 0.583 / 0.667).
pub fn background_fraction(cluster: &corral_model::ClusterConfig, frac: f64) -> BackgroundModel {
    BackgroundModel::Constant {
        per_rack: cluster.rack_core_bandwidth() * frac,
    }
}

/// Runs `jobs` under one system variant and returns the report.
///
/// Corral and LocalShuffle first run the offline planner over the plannable
/// jobs (the paper's LocalShuffle "schedules jobs using the same offline
/// planning phase as Corral", §6.1); Yarn-CS and ShuffleWatcher run
/// unplanned.
pub fn run_variant(v: Variant, jobs: &[JobSpec], rc: &RunConfig) -> RunReport {
    let mut params = rc.params.clone();
    let (plan, kind) = match v {
        Variant::YarnCs => {
            params.placement = DataPlacement::HdfsRandom;
            (Plan::default(), SchedulerKind::Capacity)
        }
        Variant::Corral => {
            params.placement = DataPlacement::PerPlan;
            let plan = plan_jobs(&params.cluster, jobs, rc.objective, &rc.planner);
            (plan, SchedulerKind::Planned)
        }
        Variant::LocalShuffle => {
            params.placement = DataPlacement::HdfsRandom;
            let plan = plan_jobs(&params.cluster, jobs, rc.objective, &rc.planner);
            (plan, SchedulerKind::Planned)
        }
        Variant::ShuffleWatcher => {
            params.placement = DataPlacement::HdfsRandom;
            (Plan::default(), SchedulerKind::ShuffleWatcher)
        }
    };
    Engine::new(params, jobs.to_vec(), &plan, kind).run()
}

/// Runs the full `(jobset × variant)` grid on the harness's sweep pool
/// and returns reports as `out[jobset_idx][variant_idx]` (variants in
/// [`Variant::ALL`] order).
///
/// Each cell is one independent [`run_variant`] call — its engine, RNGs
/// and tracer are cell-owned — so the collected grid is byte-identical
/// whatever `--jobs` is (asserted by
/// `crates/bench/tests/sweep_determinism.rs`). A panicking cell fails
/// the sweep *after* every other cell has completed, with a message
/// naming all failed cells.
pub fn run_variant_grid(jobsets: &[Vec<JobSpec>], rc: &RunConfig) -> Vec<Vec<RunReport>> {
    let nv = Variant::ALL.len();
    let reports = crate::config::pool().run_all(jobsets.len() * nv, |i| {
        run_variant(Variant::ALL[i % nv], &jobsets[i / nv], rc)
    });
    collect_grid(reports, jobsets.len(), nv)
}

/// [`run_variant_grid`] over memoized jobsets: cells borrow the cached
/// `Arc<Vec<JobSpec>>` from `experiments::workload_shared`, so same-
/// workload cells across a sweep share one constructed jobset instead of
/// cloning per cell (SweepPool cross-run awareness groundwork).
pub fn run_variant_grid_shared(
    jobsets: &[std::sync::Arc<Vec<JobSpec>>],
    rc: &RunConfig,
) -> Vec<Vec<RunReport>> {
    let nv = Variant::ALL.len();
    let reports = crate::config::pool().run_all(jobsets.len() * nv, |i| {
        run_variant(Variant::ALL[i % nv], &jobsets[i / nv], rc)
    });
    collect_grid(reports, jobsets.len(), nv)
}

fn collect_grid(reports: Vec<RunReport>, njobsets: usize, nv: usize) -> Vec<Vec<RunReport>> {
    let mut out: Vec<Vec<RunReport>> = Vec::with_capacity(njobsets);
    let mut it = reports.into_iter();
    for _ in 0..njobsets {
        out.push(it.by_ref().take(nv).collect());
    }
    out
}

// Compile-time half of the hygiene contract: a cell config can be moved
// to and shared across worker threads only if it contains no un-synced
// interior mutability.
#[allow(dead_code)]
mod sweep_hygiene {
    fn assert_send_sync<T: Send + Sync>() {}
    fn run_config_is_shareable() {
        assert_send_sync::<super::RunConfig>();
        assert_send_sync::<corral_cluster::metrics::RunReport>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corral_model::{Bandwidth, ClusterConfig};
    use corral_workloads::{w1, Scale};

    #[test]
    fn all_variants_run_a_small_workload() {
        let jobs = w1::generate(
            &w1::W1Params {
                jobs: 5,
                ..w1::W1Params::with_seed(3)
            },
            Scale {
                task_divisor: 10.0,
                data_divisor: 10.0,
            },
        );
        let mut rc = RunConfig::testbed(Objective::Makespan);
        rc.params.cluster = ClusterConfig::tiny_test();
        rc.params.background = BackgroundModel::Constant {
            per_rack: Bandwidth::gbps(5.0),
        };
        for v in Variant::ALL {
            let r = run_variant(v, &jobs, &rc);
            assert_eq!(r.unfinished, 0, "{} left jobs unfinished", v.label());
            assert_eq!(r.jobs.len(), 5);
        }
    }
}
