//! Experiment driver: `repro <id>...` or `repro all`.
use corral_bench::experiments as ex;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig1",
            "fig2",
            "table1",
            "pred",
            "fig5",
            "fig6",
            "fig7",
            "bal",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "lpgap",
            "latmodel",
            "phases",
            "netseries",
            "replan",
            "ablations",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for id in ids {
        let t = Instant::now();
        match id {
            "fig1" => ex::fig1::main(),
            "fig2" => ex::fig2::main(),
            "table1" => ex::table1::main(),
            "pred" => ex::pred::main(),
            "fig5" => ex::fig5::main(),
            "fig6" => ex::fig6::main(),
            "fig7" | "bal" => ex::fig7::main(),
            "fig8" => ex::fig8::main(),
            "fig9" => ex::fig9::main(),
            "fig10" => ex::fig10::main(),
            "fig11" => ex::fig11::main(),
            "fig12" => ex::fig12::main(),
            "fig13" => ex::fig13::main(),
            "fig14" => ex::fig14::main(),
            "lpgap" => ex::lpgap::main(),
            "ablations" => ex::ablations::main(),
            "latmodel" => ex::latmodel::main(),
            "phases" => ex::phases::main(),
            "replan" => ex::replan::main(),
            "netseries" => ex::netseries::main(),
            other => eprintln!("unknown experiment: {other}"),
        }
        eprintln!("[{id}: {:.1}s]", t.elapsed().as_secs_f64());
    }
}
