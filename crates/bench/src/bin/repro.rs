//! Experiment driver: `repro [<id>...|all] [-j/--jobs N] [--seeds N]`.
//!
//! `-j/--jobs` sets the sweep-pool worker count for the experiments
//! that run `(seed × variant)` grids (default: host parallelism);
//! `--seeds` sets the arrival-seed pool size for the online experiments
//! (default 8; `--seeds 3` reproduces the harness's historical pool).

use corral::cli::{sweep_flags, Flags, SWEEP_VALUE_FLAGS};
use corral_bench::config::DEFAULT_SEEDS;
use corral_bench::experiments as ex;
use std::process::ExitCode;
use std::time::Instant;

fn run(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args, &SWEEP_VALUE_FLAGS, &[])?;
    let (jobs, seeds) = sweep_flags(&f, DEFAULT_SEEDS)?;
    corral_bench::config::set_jobs(jobs);
    corral_bench::config::set_seeds(seeds);

    let mut ids = Vec::new();
    let mut i = 0;
    while let Some(id) = f.positional(i) {
        ids.push(id);
        i += 1;
    }
    if ids.is_empty() || ids.contains(&"all") {
        ids = vec![
            "fig1",
            "fig2",
            "table1",
            "pred",
            "fig5",
            "fig6",
            "fig7",
            "bal",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "lpgap",
            "latmodel",
            "phases",
            "netseries",
            "replan",
            "ablations",
        ];
    }
    for id in ids {
        let t = Instant::now();
        match id {
            "fig1" => ex::fig1::main(),
            "fig2" => ex::fig2::main(),
            "table1" => ex::table1::main(),
            "pred" => ex::pred::main(),
            "fig5" => ex::fig5::main(),
            "fig6" => ex::fig6::main(),
            "fig7" | "bal" => ex::fig7::main(),
            "fig8" => ex::fig8::main(),
            "fig9" => ex::fig9::main(),
            "fig10" => ex::fig10::main(),
            "fig11" => ex::fig11::main(),
            "fig12" => ex::fig12::main(),
            "fig13" => ex::fig13::main(),
            "fig14" => ex::fig14::main(),
            "lpgap" => ex::lpgap::main(),
            "ablations" => ex::ablations::main(),
            "latmodel" => ex::latmodel::main(),
            "phases" => ex::phases::main(),
            "replan" => ex::replan::main(),
            "netseries" => ex::netseries::main(),
            "sweepbench" => ex::sweepbench::main(),
            "fabricbench" => ex::fabricbench::main(),
            "fig14xl" => ex::fig14xl::main(),
            "scalebench" => ex::fig14xl::smoke(),
            "plannerbench" => ex::plannerbench::main(),
            "servebench" => ex::servebench::main(),
            "chaosbench" => ex::chaosbench::main(),
            "perfreport" => ex::perfreport::main(),
            other => eprintln!("unknown experiment: {other}"),
        }
        eprintln!("[{id}: {:.1}s]", t.elapsed().as_secs_f64());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
