//! Diagnostic: arrival-seed sensitivity of the W1 online comparison.
use corral_bench::experiments::workload;
use corral_bench::{run_variant, RunConfig, Variant};
use corral_cluster::metrics::reduction_pct;
use corral_core::Objective;
use corral_model::SimTime;
use corral_workloads::assign_uniform_arrivals;

fn main() {
    for seed in [0xF13u64, 0xF18, 0xF19, 1, 2] {
        let mut jobs = workload("W1");
        assign_uniform_arrivals(&mut jobs, SimTime::minutes(60.0), seed);
        let rc = RunConfig::testbed(Objective::AvgCompletionTime);
        let y = run_variant(Variant::YarnCs, &jobs, &rc).avg_completion_time();
        let c = run_variant(Variant::Corral, &jobs, &rc).avg_completion_time();
        println!(
            "seed {seed:#x}: yarn={y:.1}s corral={c:.1}s gain={:+.1}%",
            reduction_pct(y, c)
        );
    }
}
