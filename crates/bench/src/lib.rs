//! # corral-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! Corral paper's evaluation (§2, §6). Each experiment lives in
//! [`experiments`] and is runnable via the `repro` binary:
//!
//! ```text
//! cargo run --release -p corral-bench --bin repro -- all
//! cargo run --release -p corral-bench --bin repro -- fig6 fig7
//! ```
//!
//! Experiments print human-readable rows (the same quantities the paper
//! reports) and write full data series as CSV files under `results/`.
//! EXPERIMENTS.md records paper-vs-measured values for each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod runner;
pub mod table;

pub use corral_serve::jsonv;

pub use runner::{run_variant, run_variant_grid, RunConfig, Variant};
