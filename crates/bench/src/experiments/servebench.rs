//! Serving-path benchmark: the resident scheduler (`corral-serve`)
//! under W1- and W2-shaped arrival streams at three cluster scales.
//! Measures sustained decision throughput and per-decision latency
//! (`serve.decision` span p50/p99), with the plan-cache and
//! incremental-replan counters alongside. Writes `BENCH_serve.json` in
//! the working directory.
//!
//! Not part of `repro all` (it times the service, not a paper artifact);
//! CI runs `repro servebench` as a perf-smoke step. The service loop is
//! deterministic, so every cell's *decision count* is golden below and
//! any drift fails the run — a tripwire for accidental changes to
//! admission, replanning, or the dispatch cascade. The small cells also
//! run with the oracle tripwire armed: every incremental (or
//! cache-materialized) replan is asserted plan-equal to a fresh
//! `plan_jobs_pinned` call. Wall-clock numbers are recorded but never
//! asserted (CI timing is noisy).
//!
//! Regenerate the golden table after an *intentional* behavior change by
//! running with `CORRAL_SERVEBENCH_BLESS=1` and pasting the printed
//! constants.

use crate::table;
use corral_core::Objective;
use corral_model::{ClusterConfig, JobSpec, SimTime};
use corral_serve::source::events_from_specs;
use corral_serve::{Scheduler, ServeConfig, ServeEvent, ServeStats};
use corral_trace::probe;
use corral_workloads::{assign_uniform_arrivals, w1, w2};
use std::time::Instant;

/// One benchmark cell: a workload shape at a cluster scale.
struct CellSpec {
    name: &'static str,
    workload: &'static str,
    jobs: usize,
    racks: usize,
    seed: u64,
    /// Oracle tripwire on every replan (small cells only — the batch
    /// oracle is quadratic in queue length and would dominate the
    /// larger cells' wall time).
    tripwire: bool,
}

/// W1/W2 × small/medium/large, plus one recurring-template stream and
/// one 10k-machine cell. The large cells are the acceptance cells: the
/// service must sustain ≥ 10k decisions/sec there. The `recur` cell
/// replays one W1 template at a wide spacing so most arrivals see an
/// identical cluster state — the cell that actually lands plan-cache
/// hits. The `w1-xl` cell runs the planner + admission loop against a
/// 334-rack (10,020-machine) cluster — the serving-side companion of
/// fig14-xl's fabric scale-out.
const CELLS: [CellSpec; 8] = [
    CellSpec {
        name: "w1-small",
        workload: "w1",
        jobs: 40,
        racks: 7,
        seed: 0x5E41,
        tripwire: true,
    },
    CellSpec {
        name: "w2-small",
        workload: "w2",
        jobs: 40,
        racks: 7,
        seed: 0x5E42,
        tripwire: true,
    },
    CellSpec {
        name: "w1-medium",
        workload: "w1",
        jobs: 120,
        racks: 12,
        seed: 0x5E43,
        tripwire: false,
    },
    CellSpec {
        name: "w2-medium",
        workload: "w2",
        jobs: 120,
        racks: 12,
        seed: 0x5E44,
        tripwire: false,
    },
    CellSpec {
        name: "w1-large",
        workload: "w1",
        jobs: 320,
        racks: 24,
        seed: 0x5E45,
        tripwire: false,
    },
    CellSpec {
        name: "w2-large",
        workload: "w2",
        jobs: 320,
        racks: 24,
        seed: 0x5E46,
        tripwire: false,
    },
    CellSpec {
        name: "recur-medium",
        workload: "recur",
        jobs: 200,
        racks: 12,
        seed: 0x5E47,
        tripwire: true,
    },
    CellSpec {
        name: "w1-xl",
        workload: "w1",
        jobs: 320,
        racks: 334,
        seed: 0x5E48,
        tripwire: false,
    },
];

/// Golden decision counts per cell (admissions, rejections, dispatches
/// and completions summed). The service loop is deterministic, so these
/// are exact; drift means admission, replanning, or the timer cascade
/// changed behavior. Bless deliberately (see module docs) or find the
/// regression.
const GOLDEN_DECISIONS: [(&str, u64); 8] = [
    ("w1-small", 120),
    ("w2-small", 120),
    ("w1-medium", 360),
    ("w2-medium", 360),
    ("w1-large", 960),
    ("w2-large", 960),
    ("recur-medium", 600),
    ("w1-xl", 960),
];

/// Timed repetitions per cell (fresh scheduler each; minimum wall
/// reported — the steady-state serving rate, warm caches excluded by
/// construction since every repetition starts cold).
const REPEATS: usize = 5;

fn stream(c: &CellSpec) -> Vec<ServeEvent> {
    let scale = crate::experiments::bench_scale();
    let mut jobs: Vec<JobSpec> = match c.workload {
        "w1" => w1::generate(
            &w1::W1Params {
                jobs: c.jobs,
                ..w1::W1Params::with_seed(c.seed)
            },
            scale,
        ),
        "w2" => w2::generate(
            &w2::W2Params {
                jobs: c.jobs,
                seed: c.seed,
                ..Default::default()
            },
            scale,
        ),
        // One template, replayed: take the first generated W1 job and
        // repeat it at a spacing wide enough for each run to drain
        // before the next arrives, so the replan key recurs exactly.
        "recur" => {
            let template = w1::generate(&w1::W1Params::with_seed(c.seed), scale)
                .into_iter()
                .next()
                .expect("w1 generates at least one job");
            return events_from_specs(
                &(0..c.jobs)
                    .map(|i| JobSpec {
                        id: corral_model::JobId(i as u32),
                        name: format!("recur-{i:03}"),
                        arrival: SimTime::minutes(120.0 * i as f64),
                        ..template.clone()
                    })
                    .collect::<Vec<_>>(),
            );
        }
        other => unreachable!("unknown workload {other}"),
    };
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(60.0), c.seed ^ 0xA);
    events_from_specs(&jobs)
}

fn config(c: &CellSpec) -> ServeConfig {
    ServeConfig {
        cluster: ClusterConfig {
            racks: c.racks,
            ..ClusterConfig::testbed_210()
        },
        objective: Objective::AvgCompletionTime,
        tripwire: c.tripwire,
        ..ServeConfig::default()
    }
}

/// One timed pass over a cell's stream. Returns the stats and the wall.
fn run_once(c: &CellSpec, events: &[ServeEvent]) -> (ServeStats, f64) {
    let mut sched = Scheduler::new(config(c));
    let mut out = Vec::with_capacity(events.len() * 3);
    let t0 = Instant::now();
    let stats = sched.run(events.iter().cloned(), &mut out);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(stats.decisions as usize, out.len());
    (stats, wall)
}

/// Handle for `repro perfreport`: the w1-small cell (stream built once),
/// re-runnable with probes on — populates `serve.decision` and the
/// serve counters, and returns the golden-checked decision count.
pub(crate) struct ProbeCell {
    spec: &'static CellSpec,
    events: Vec<ServeEvent>,
}

/// Builds the w1-small probe cell (oracle tripwire armed).
pub(crate) fn probe_cell_small() -> ProbeCell {
    ProbeCell {
        spec: &CELLS[0],
        events: stream(&CELLS[0]),
    }
}

impl ProbeCell {
    /// Runs the cell once; returns its decision count.
    pub(crate) fn run(&self) -> u64 {
        run_once(self.spec, &self.events).0.decisions
    }

    /// Golden decision count (the perfreport tripwire; same constant the
    /// bench itself asserts).
    pub(crate) fn golden(&self) -> u64 {
        GOLDEN_DECISIONS[0].1
    }
}

/// Runs every cell, checks golden decision counts, and writes
/// `BENCH_serve.json`.
pub fn main() {
    table::section("servebench: resident scheduler throughput (corral-serve)");
    let bless = std::env::var_os("CORRAL_SERVEBENCH_BLESS").is_some();
    let was_enabled = probe::enabled();
    probe::set_enabled(true);

    table::row(&[
        "cell", "jobs", "racks", "decs", "wall", "dec/s", "arr/s", "p50", "p99", "hit%", "incr%",
    ]);
    let mut cell_json = Vec::new();
    let mut drift = Vec::new();

    for c in &CELLS {
        let events = stream(c);
        // Cells run serially with a fresh probe world each, so the
        // span histogram and counters below belong to this cell alone.
        probe::reset();
        let mut best: Option<(ServeStats, f64)> = None;
        for _ in 0..REPEATS {
            let (stats, wall) = run_once(c, &events);
            if let Some((prev, _)) = &best {
                assert_eq!(
                    *prev, stats,
                    "{}: non-deterministic repeat (stats diverged)",
                    c.name
                );
            }
            if best.as_ref().is_none_or(|(_, w)| wall < *w) {
                best = Some((stats, wall));
            }
        }
        let (stats, wall) = best.unwrap();
        probe::flush_thread();
        let report = probe::report();
        let span = report
            .span_stat(probe::SpanKind::ServeDecision)
            .expect("serve cells exercise serve.decision");

        let dec_rate = stats.decisions as f64 / wall.max(1e-9);
        let arr_rate = stats.arrivals as f64 / wall.max(1e-9);
        let lookups = stats.cache_hits + stats.cache_misses;
        let hit_pct = 100.0 * stats.cache_hits as f64 / (lookups.max(1)) as f64;
        let replans = stats.replans_incremental + stats.replans_full;
        let incr_pct = 100.0 * stats.replans_incremental as f64 / (replans.max(1)) as f64;
        table::row(&[
            c.name.to_string(),
            c.jobs.to_string(),
            c.racks.to_string(),
            stats.decisions.to_string(),
            table::secs(wall),
            format!("{dec_rate:.0}"),
            format!("{arr_rate:.0}"),
            format!("{:.1}us", span.p50_s * 1e6),
            format!("{:.1}us", span.p99_s * 1e6),
            format!("{hit_pct:.0}"),
            format!("{incr_pct:.0}"),
        ]);

        let golden = GOLDEN_DECISIONS
            .iter()
            .find(|(n, _)| *n == c.name)
            .map(|&(_, v)| v)
            .unwrap();
        if stats.decisions != golden {
            drift.push(format!(
                "{}: decisions {} != golden {golden}",
                c.name, stats.decisions
            ));
        }
        if c.name.ends_with("-large") && dec_rate < 10_000.0 {
            println!(
                "   warning: {} throughput {dec_rate:.0}/s below the 10k/s target",
                c.name
            );
        }
        cell_json.push(format!(
            "    {{\"cell\": \"{}\", \"jobs\": {}, \"racks\": {}, \"decisions\": {}, \
             \"wall_s\": {:.4}, \"decisions_per_s\": {:.0}, \"arrivals_per_s\": {:.0}, \
             \"decision_p50_us\": {:.2}, \"decision_p99_us\": {:.2}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"replans_incremental\": {}, \"replans_full\": {}, \"tripwire\": {}}}",
            c.name,
            c.jobs,
            c.racks,
            stats.decisions,
            wall,
            dec_rate,
            arr_rate,
            span.p50_s * 1e6,
            span.p99_s * 1e6,
            stats.cache_hits,
            stats.cache_misses,
            stats.replans_incremental,
            stats.replans_full,
            c.tripwire,
        ));
    }

    if !drift.is_empty() {
        if bless {
            println!("   bless mode: update GOLDEN_DECISIONS to the counts above");
        } else {
            panic!(
                "servebench decision-counter drift:\n  {}",
                drift.join("\n  ")
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"serve_loop\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cell_json.join(",\n")
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("   wrote BENCH_serve.json");
    probe::set_enabled(was_enabled);
}
