//! One module per paper artifact. Every function prints its rows and
//! writes CSVs under `results/`; ids match DESIGN.md's experiment index.

pub mod ablations;
pub mod chaosbench;
pub mod fabricbench;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig14xl;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod latmodel;
pub mod lpgap;
pub mod netseries;
pub mod perfreport;
pub mod phases;
pub mod plannerbench;
pub mod pred;
pub mod replan;
pub mod servebench;
pub mod sweepbench;
pub mod table1;

use corral_model::JobSpec;
use corral_model::SimTime;
use corral_workloads::{assign_uniform_arrivals, w1, w2, w3, Scale};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The workload scale used by the simulator experiments (see DESIGN.md §1
/// and EXPERIMENTS.md): task counts divided by 4, volumes intact.
pub fn bench_scale() -> Scale {
    Scale::bench_default()
}

/// W2's scale: its two 5.5 TB jobs have 2200 maps against the paper's 2880
/// slots (one wave); dividing tasks by 8 — the simulator's slot divisor —
/// preserves that wave parity (275 maps vs 360 slots on a 3-rack
/// allocation). See EXPERIMENTS.md.
pub fn w2_scale() -> Scale {
    Scale {
        task_divisor: 8.0,
        data_divisor: 1.0,
    }
}

/// Standard instances of W1/W2/W3 used by figs 6–9 (batch arrivals). Job
/// counts are chosen so the scaled cluster sees production-like contention
/// (see EXPERIMENTS.md): W1 100 jobs with 512 MB map shares, W2 the paper's
/// full 400 jobs (98% tiny), W3 150 jobs.
///
/// Construction is memoized process-wide: experiments that run many cells
/// over the same base workload (seed sweeps, scale sweeps, `repro all`)
/// generate it once and share the cached copy. Callers that mutate the
/// jobs (arrival assignment) get their own clone via [`workload`];
/// read-only sweeps should hold the [`workload_shared`] `Arc` instead.
pub fn workload(name: &str) -> Vec<JobSpec> {
    workload_shared(name).as_ref().clone()
}

/// [`workload`] without the defensive clone: the cached, immutable base
/// jobset behind an `Arc`, cheap to share across sweep cells (groundwork
/// for cross-run workload reuse in the sweep pool, ROADMAP 5a).
pub fn workload_shared(name: &str) -> Arc<Vec<JobSpec>> {
    static CACHE: OnceLock<Mutex<BTreeMap<String, Arc<Vec<JobSpec>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = cache.lock().unwrap();
    map.entry(name.to_string())
        .or_insert_with(|| Arc::new(workload_uncached(name)))
        .clone()
}

fn workload_uncached(name: &str) -> Vec<JobSpec> {
    match name {
        "W1" => w1::generate(
            &w1::W1Params {
                jobs: 150,
                bytes_per_task: 512e6,
                ..w1::W1Params::with_seed(0xA001)
            },
            bench_scale(),
        ),
        "W2" => w2::generate(
            &w2::W2Params {
                jobs: 400,
                ..Default::default()
            },
            w2_scale(),
        ),
        "W3" => w3::generate(
            &w3::W3Params {
                jobs: 250,
                ..Default::default()
            },
            bench_scale(),
        ),
        other => panic!("unknown workload {other}"),
    }
}

/// The online variant: arrivals uniform in [0, 60 min] (§6.2.2).
pub fn workload_online(name: &str, seed: u64) -> Vec<JobSpec> {
    let mut jobs = workload(name);
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(60.0), seed);
    jobs
}
