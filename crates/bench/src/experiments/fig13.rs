//! Figure 13 — robustness of Corral to planning-input errors (workload W1):
//!
//! * 13a: the planner's data-size estimates are off by up to 50% —
//!   the paper's benefit stays in the 25–35% band;
//! * 13b: a fraction f of jobs' *actual* start times shift by up to ±4 min
//!   relative to what was planned — benefits degrade gracefully
//!   (~40% → ≥25% at f = 50%).

use crate::experiments::{workload, workload_online};
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_cluster::config::DataPlacement;
use corral_cluster::engine::Engine;
use corral_cluster::metrics::reduction_pct;
use corral_cluster::scheduler::SchedulerKind;
use corral_core::planner::{perturb_arrivals, perturb_volumes};
use corral_core::{plan_jobs, Objective};
use corral_model::SimTime;

/// Perturbation seeds for 13a's volume-error trials (these seed the
/// *estimate noise*, not arrival patterns, so they stay a fixed trio
/// independent of `--seeds`).
const VOLUME_SEEDS: [u64; 3] = [0xA13, 0xB13, 0xC13];

/// 13a: batch makespan reduction vs Yarn-CS when the planner's per-job
/// data-size estimates are off by up to ±`err` (0.0–0.5). The plan is
/// built from the erroneous estimates; execution uses the true volumes.
/// The per-seed trials run as a parallel sweep.
pub fn gain_with_volume_error(err: f64) -> f64 {
    let true_jobs = workload("W1");
    let rc = RunConfig::testbed(Objective::Makespan);
    let yarn = run_variant(Variant::YarnCs, &true_jobs, &rc)
        .makespan
        .as_secs();

    let gains = crate::config::pool().run_all(VOLUME_SEEDS.len(), |i| {
        let predicted = perturb_volumes(&true_jobs, err, VOLUME_SEEDS[i]);
        let plan = plan_jobs(
            &rc.params.cluster,
            &predicted,
            Objective::Makespan,
            &rc.planner,
        );
        let mut params = rc.params.clone();
        params.placement = DataPlacement::PerPlan;
        let corral = Engine::new(params, true_jobs.clone(), &plan, SchedulerKind::Planned)
            .run()
            .makespan
            .as_secs();
        reduction_pct(yarn, corral)
    });
    gains.iter().sum::<f64>() / gains.len() as f64
}

/// 13b: online average-completion reduction when a fraction `f` of jobs
/// start up to ±4 min away from their planned arrival. Pooled over the
/// configured arrival seeds; each seed's (baseline, corral) pair is one
/// sweep cell.
pub fn gain_with_arrival_error(f: f64) -> f64 {
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);
    let seeds = crate::config::arrival_seeds();
    let gains = crate::config::pool().run_all(seeds.len(), |i| {
        let seed = seeds[i];
        let planned_jobs = workload_online("W1", seed);
        let actual_jobs = perturb_arrivals(&planned_jobs, f, SimTime::minutes(4.0), seed ^ 0xD13);

        // Yarn-CS baseline sees the *actual* arrivals.
        let yarn = run_variant(Variant::YarnCs, &actual_jobs, &rc).avg_completion_time();

        // Corral plans against the *planned* arrivals but executes the
        // actual ones — exactly the mismatch the experiment probes.
        let plan = plan_jobs(
            &rc.params.cluster,
            &planned_jobs,
            Objective::AvgCompletionTime,
            &rc.planner,
        );
        let mut params = rc.params.clone();
        params.placement = DataPlacement::PerPlan;
        let corral = Engine::new(params, actual_jobs, &plan, SchedulerKind::Planned)
            .run()
            .avg_completion_time();
        reduction_pct(yarn, corral)
    });
    gains.iter().sum::<f64>() / gains.len() as f64
}

/// Prints both sweeps.
pub fn main() {
    table::section("Figure 13a: Corral gain vs data-size estimation error (W1 batch)");
    table::row(&["error", "makespan gain"]);
    let mut csv = Vec::new();
    for &e in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let g = gain_with_volume_error(e);
        table::row(&[format!("{:.0}%", e * 100.0), table::pct(g)]);
        csv.push(vec![e * 100.0, g]);
    }
    table::write_csv("fig13a_volume_error", &["error_pct", "gain_pct"], &csv);

    table::section("Figure 13b: Corral gain vs % of jobs with perturbed arrivals (W1 online)");
    table::row(&["% delayed", "avg-time gain"]);
    let mut csv = Vec::new();
    for &f in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let g = gain_with_arrival_error(f);
        table::row(&[format!("{:.0}%", f * 100.0), table::pct(g)]);
        csv.push(vec![f * 100.0, g]);
    }
    table::write_csv("fig13b_arrival_error", &["fraction_pct", "gain_pct"], &csv);
}
