//! Figure 5 — running time of the offline planner for a 4000-machine
//! cluster (100 racks × 40 machines) as the number of jobs grows to 500.
//! The paper reports ~55 s for 500 jobs on a 6-core desktop; our Rust
//! implementation is expected to be substantially faster at the same
//! O(J²R²) complexity.

use crate::table;
use corral_core::{plan_jobs, Objective, PlannerConfig};
use corral_model::{Bandwidth, Bytes, ClusterConfig, SimTime};
use corral_workloads::w3::{self, W3Params};
use corral_workloads::Scale;
use std::time::Instant;

fn planner_cluster() -> ClusterConfig {
    ClusterConfig {
        racks: 100,
        machines_per_rack: 40,
        slots_per_machine: 1,
        nic_bandwidth: Bandwidth::gbps(10.0),
        oversubscription: 5.0,
        chunk_size: Bytes::mb(256.0),
        replication: 3,
    }
}

/// Measures planner wall time for `jobs` jobs; returns seconds.
pub fn plan_time(jobs: usize) -> f64 {
    let cfg = planner_cluster();
    let specs = w3::generate(
        &W3Params {
            jobs,
            ..Default::default()
        },
        Scale::full(),
    );
    let t = Instant::now();
    let plan = plan_jobs(&cfg, &specs, Objective::Makespan, &PlannerConfig::default());
    assert_eq!(plan.len(), jobs);
    assert!(plan.objective_value > 0.0);
    let dt = t.elapsed().as_secs_f64();
    let _ = SimTime::ZERO;
    dt
}

/// Prints the runtime curve (Fig. 5's axes).
pub fn main() {
    table::section("Figure 5: offline planner runtime, 4000-machine cluster (100 racks)");
    table::row(&["jobs", "seconds"]);
    let mut csv = Vec::new();
    for &jobs in &[50usize, 100, 200, 300, 400, 500] {
        let dt = plan_time(jobs);
        table::row(&[format!("{jobs}"), format!("{dt:.2}")]);
        csv.push(vec![jobs as f64, dt]);
    }
    table::write_csv("fig5_planner_runtime", &["jobs", "seconds"], &csv);
}
