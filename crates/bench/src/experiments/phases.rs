//! Task-time breakdown ("where does the time go") — the mechanism view
//! behind the paper's results: Corral's joint placement should convert
//! network-wait (fetch) time into useful compute time, which is exactly how
//! its cross-rack reductions (Fig. 7a) become completion-time reductions
//! (Figs. 6, 8).

use crate::experiments::workload;
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_core::Objective;

/// Prints the fetch/compute/write split (% of total task time) per system,
/// plus the fabric utilization columns.
pub fn main() {
    table::section("Task-time breakdown, W1 batch (% of task-seconds per phase)");
    table::row(&["system", "fetch", "compute", "write", "core util"]);
    let rc = RunConfig::testbed(Objective::Makespan);
    let jobs = workload("W1");
    let mut csv = Vec::new();
    for (si, v) in Variant::ALL.iter().enumerate() {
        let r = run_variant(*v, &jobs, &rc);
        let (fetch, compute, write) = r.phase_breakdown();
        let total = (fetch + compute + write).max(1e-9);
        table::row(&[
            v.label().to_string(),
            format!("{:.1}%", fetch / total * 100.0),
            format!("{:.1}%", compute / total * 100.0),
            format!("{:.1}%", write / total * 100.0),
            format!("{:.1}%", r.core_utilization * 100.0),
        ]);
        csv.push(vec![
            si as f64,
            fetch / total * 100.0,
            compute / total * 100.0,
            write / total * 100.0,
            r.core_utilization * 100.0,
        ]);
    }
    println!("   corral should shift fetch-time (network wait) into a larger compute share");
    table::write_csv(
        "phases",
        &[
            "system_idx",
            "fetch_pct",
            "compute_pct",
            "write_pct",
            "core_util_pct",
        ],
        &csv,
    );
}
