//! Figure 7 — batch-scenario detail metrics, plus the §6.2.1 data-balance
//! claim:
//!
//! * 7a: % reduction in cross-rack data transferred vs Yarn-CS (paper:
//!   Corral 20–90%; ShuffleWatcher can beat Corral on W2);
//! * 7b: % reduction in compute hours (Corral up to 20%; ShuffleWatcher
//!   can exceed Corral by loading racks unevenly);
//! * 7c: CDF of per-job average reduce time for W1 (≈40% better at the
//!   median under Corral);
//! * bal: CoV of per-rack input bytes (Corral ≤ 0.004, HDFS ≈ 0.014).

use crate::experiments::workload_shared;
use crate::runner::{run_variant_grid_shared, RunConfig, Variant};
use crate::table;
use corral_cluster::metrics::{percentile, reduction_pct};
use corral_core::Objective;

/// Runs all three workloads under the four systems and prints 7a/7b/7c/bal.
pub fn main() {
    let rc = RunConfig::testbed(Objective::Makespan);
    let workloads = ["W1", "W2", "W3"];

    let mut cross = vec![[0.0; 4]; workloads.len()];
    let mut hours = vec![[0.0; 4]; workloads.len()];
    let mut covs = vec![[0.0; 4]; workloads.len()];
    let mut w1_reduce_cdfs: Vec<(String, Vec<f64>)> = Vec::new();

    let jobsets: Vec<_> = workloads.iter().map(|&w| workload_shared(w)).collect();
    let grid = run_variant_grid_shared(&jobsets, &rc);
    for (wi, w) in workloads.iter().enumerate() {
        for (vi, (v, r)) in Variant::ALL.iter().zip(&grid[wi]).enumerate() {
            cross[wi][vi] = r.cross_rack_bytes.0;
            hours[wi][vi] = r.total_task_seconds();
            covs[wi][vi] = r.input_balance_cov;
            if *w == "W1" && matches!(v, Variant::YarnCs | Variant::Corral) {
                w1_reduce_cdfs.push((v.label().to_string(), r.avg_reduce_times()));
            }
        }
    }

    table::section("Figure 7a: % reduction in cross-rack data vs Yarn-CS (batch)");
    table::row(&["workload", "corral", "localshuffle", "shufflewatcher"]);
    let mut csv = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let c = cross[wi];
        table::row(&[
            w.to_string(),
            table::pct(reduction_pct(c[0], c[1])),
            table::pct(reduction_pct(c[0], c[2])),
            table::pct(reduction_pct(c[0], c[3])),
        ]);
        csv.push(vec![wi as f64, c[0], c[1], c[2], c[3]]);
    }
    table::write_csv(
        "fig7a_cross_rack",
        &[
            "workload_idx",
            "yarn_cs",
            "corral",
            "localshuffle",
            "shufflewatcher",
        ],
        &csv,
    );

    table::section("Figure 7b: % reduction in compute hours vs Yarn-CS (batch)");
    table::row(&["workload", "corral", "localshuffle", "shufflewatcher"]);
    let mut csv = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let h = hours[wi];
        table::row(&[
            w.to_string(),
            table::pct(reduction_pct(h[0], h[1])),
            table::pct(reduction_pct(h[0], h[2])),
            table::pct(reduction_pct(h[0], h[3])),
        ]);
        csv.push(vec![wi as f64, h[0], h[1], h[2], h[3]]);
    }
    table::write_csv(
        "fig7b_compute_hours",
        &[
            "workload_idx",
            "yarn_cs",
            "corral",
            "localshuffle",
            "shufflewatcher",
        ],
        &csv,
    );

    table::section("Figure 7c: avg reduce time per job, W1 batch (percentiles, s)");
    table::row(&["system", "p25", "p50", "p75", "p90"]);
    let mut csv = Vec::new();
    for (label, cdf) in &w1_reduce_cdfs {
        table::row(&[
            label.clone(),
            table::secs(percentile(cdf, 25.0)),
            table::secs(percentile(cdf, 50.0)),
            table::secs(percentile(cdf, 75.0)),
            table::secs(percentile(cdf, 90.0)),
        ]);
        for r in table::cdf_rows(cdf) {
            csv.push(vec![if label == "yarn-cs" { 0.0 } else { 1.0 }, r[0], r[1]]);
        }
    }
    table::write_csv(
        "fig7c_reduce_time_cdf",
        &["system", "avg_reduce_s", "cum_fraction"],
        &csv,
    );

    table::section("§6.2.1 data balance: CoV of per-rack input bytes");
    table::row(&[
        "workload",
        "hdfs (yarn-cs)",
        "corral",
        "paper hdfs",
        "paper corral",
    ]);
    for (wi, w) in workloads.iter().enumerate() {
        table::row(&[
            w.to_string(),
            format!("{:.4}", covs[wi][0]),
            format!("{:.4}", covs[wi][1]),
            "~0.014".to_string(),
            "<=0.004".to_string(),
        ]);
    }
}
