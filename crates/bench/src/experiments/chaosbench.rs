//! Chaos benchmark: the serving stack under deterministic failure
//! injection (`corral-serve` + [`corral_serve::chaos`]). Sweeps churn
//! rate × workload with the §7 fallback on and off, in two modes:
//!
//! * **self-clock cells** — the scheduler alone under W1/W2 arrival
//!   streams merged with a seeded Poisson churn schedule; measures
//!   decision throughput/latency while failures force re-anchors,
//!   dispatch retries, and cache-keyed replans;
//! * **co-sim cells** — [`corral_serve::EngineDriver`] with the *same*
//!   churn schedule injected into the cluster engine
//!   (`SimParams.failures`) and the serve wire, so goodput is execution
//!   ground truth, not a planner prediction.
//!
//! Every chaos schedule is a pure function of its seed, so the decision
//! count of every cell is golden below — drift means failure handling,
//! re-anchoring, or the retry cascade changed behavior. The small cells
//! run with the oracle tripwire armed: every post-failure replan is
//! asserted plan-equal to a fresh `plan_jobs_pinned` on the masked
//! cluster. Writes `BENCH_chaos.json` in the working directory.
//!
//! Not part of `repro all` (robustness artifact, not a paper figure);
//! CI runs `repro chaosbench` as a perf-smoke step. Regenerate the
//! golden table after an *intentional* behavior change by running with
//! `CORRAL_CHAOSBENCH_BLESS=1` and pasting the printed constants.

use crate::table;
use corral_cluster::config::{DataPlacement, SimParams};
use corral_core::Objective;
use corral_model::{Bandwidth, Bytes, ClusterConfig, JobId, JobSpec, MapReduceProfile, SimTime};
use corral_serve::source::events_from_specs;
use corral_serve::{
    chaos, ChaosSpec, EngineDriver, Scheduler, ServeConfig, ServeEvent, ServeStats,
};
use corral_trace::probe;
use corral_workloads::{assign_uniform_arrivals, w1, w2};
use std::time::Instant;

/// One benchmark cell: a workload under a churn rate, fallback on/off.
struct CellSpec {
    name: &'static str,
    /// `"w1"` / `"w2"` self-clock the scheduler on the 210-machine
    /// testbed shape; `"cosim"` drives the engine on the tiny cluster.
    workload: &'static str,
    jobs: usize,
    racks: usize,
    seed: u64,
    /// Per-machine mean time between failures (seconds). The horizon
    /// covers the whole arrival span, so expected machine failures are
    /// `machines · horizon / mtbf`.
    mtbf: f64,
    /// §7 failure fallback: mask dead capacity and re-anchor queued
    /// jobs (`true`), or keep stale pins and lean on dispatch
    /// retry/unpin (`false`).
    fallback: bool,
    /// Oracle tripwire on every replan (all cells here are small
    /// enough to afford the quadratic batch oracle).
    tripwire: bool,
}

/// W1/W2 × low/high churn, the high-churn pair again with the fallback
/// off (the degraded-mode comparison axis), and the co-sim pair. Low
/// churn ≈ 17 expected machine failures over the hour, high ≈ 70.
const CELLS: [CellSpec; 8] = [
    CellSpec {
        name: "w1-lochurn",
        workload: "w1",
        jobs: 40,
        racks: 7,
        seed: 0xC4A1,
        mtbf: 43_200.0,
        fallback: true,
        tripwire: true,
    },
    CellSpec {
        name: "w2-lochurn",
        workload: "w2",
        jobs: 40,
        racks: 7,
        seed: 0xC4A2,
        mtbf: 43_200.0,
        fallback: true,
        tripwire: true,
    },
    CellSpec {
        name: "w1-hichurn",
        workload: "w1",
        jobs: 40,
        racks: 7,
        seed: 0xC4A3,
        mtbf: 10_800.0,
        fallback: true,
        tripwire: true,
    },
    CellSpec {
        name: "w2-hichurn",
        workload: "w2",
        jobs: 40,
        racks: 7,
        seed: 0xC4A4,
        mtbf: 10_800.0,
        fallback: true,
        tripwire: true,
    },
    CellSpec {
        name: "w1-hichurn-nofb",
        workload: "w1",
        jobs: 40,
        racks: 7,
        seed: 0xC4A3,
        mtbf: 10_800.0,
        fallback: false,
        tripwire: true,
    },
    CellSpec {
        name: "w2-hichurn-nofb",
        workload: "w2",
        jobs: 40,
        racks: 7,
        seed: 0xC4A4,
        mtbf: 10_800.0,
        fallback: false,
        tripwire: true,
    },
    CellSpec {
        name: "cosim-fb",
        workload: "cosim",
        jobs: 8,
        racks: 3,
        seed: 0xC4A7,
        mtbf: 400.0,
        fallback: true,
        tripwire: true,
    },
    CellSpec {
        name: "cosim-nofb",
        workload: "cosim",
        jobs: 8,
        racks: 3,
        seed: 0xC4A7,
        mtbf: 400.0,
        fallback: false,
        tripwire: true,
    },
];

/// Golden decision counts per cell. Chaos schedules and the serve loop
/// are both deterministic, so these are exact; drift means the failure
/// path (masking, re-anchoring, retry, or the cache key) changed
/// behavior. Bless deliberately (see module docs) or find the
/// regression.
const GOLDEN_DECISIONS: [(&str, u64); 8] = [
    ("w1-lochurn", 120),
    ("w2-lochurn", 120),
    ("w1-hichurn", 122),
    ("w2-hichurn", 133),
    ("w1-hichurn-nofb", 120),
    ("w2-hichurn-nofb", 120),
    ("cosim-fb", 24),
    ("cosim-nofb", 24),
];

/// Timed repetitions per cell (fresh scheduler each; minimum wall
/// reported). Every repetition's stats must be identical — the
/// determinism tripwire for chaos runs.
const REPEATS: usize = 3;

/// Churn covers the whole arrival span (plus slack for queue drain).
/// Repairs are slow relative to the span so dead capacity accumulates
/// to fractions that actually cross the re-anchor threshold.
const CHURN_HORIZON: f64 = 3600.0;
const MEAN_REPAIR: f64 = 600.0;

/// Re-anchor threshold for the bench cells: a rack counts as degraded
/// once > 10% of its machines are down (the default 50% would need
/// implausible pile-ups at these churn rates — 30 machines per rack).
const THRESHOLD: f64 = 0.1;

fn chaos_spec(c: &CellSpec) -> ChaosSpec {
    ChaosSpec {
        mtbf: SimTime(c.mtbf),
        mean_repair: SimTime(if c.workload == "cosim" {
            60.0
        } else {
            MEAN_REPAIR
        }),
        horizon: SimTime(if c.workload == "cosim" {
            600.0
        } else {
            CHURN_HORIZON
        }),
        seed: c.seed ^ 0xC0441,
    }
}

fn cluster(c: &CellSpec) -> ClusterConfig {
    if c.workload == "cosim" {
        ClusterConfig::tiny_test()
    } else {
        ClusterConfig {
            racks: c.racks,
            ..ClusterConfig::testbed_210()
        }
    }
}

fn config(c: &CellSpec) -> ServeConfig {
    ServeConfig {
        cluster: cluster(c),
        objective: Objective::AvgCompletionTime,
        tripwire: c.tripwire,
        fallback: c.fallback,
        failure_threshold: THRESHOLD,
        ..ServeConfig::default()
    }
}

/// Co-sim job shape (GB-scale map-reduce on the tiny cluster, arrivals
/// every 20 s — the same shape the driver's unit tests use).
fn cosim_spec(id: u32, arrival: f64, gb: f64) -> JobSpec {
    JobSpec::map_reduce(
        JobId(id),
        format!("j{id}"),
        MapReduceProfile {
            input: Bytes::gb(gb),
            shuffle: Bytes::gb(gb / 2.0),
            output: Bytes::gb(gb / 10.0),
            maps: 8,
            reduces: 4,
            map_rate: Bandwidth::mbytes_per_sec(50.0),
            reduce_rate: Bandwidth::mbytes_per_sec(50.0),
        },
    )
    .arriving_at(SimTime(arrival))
}

fn arrivals(c: &CellSpec) -> Vec<ServeEvent> {
    let scale = crate::experiments::bench_scale();
    match c.workload {
        "w1" => {
            let mut jobs = w1::generate(
                &w1::W1Params {
                    jobs: c.jobs,
                    ..w1::W1Params::with_seed(c.seed)
                },
                scale,
            );
            assign_uniform_arrivals(&mut jobs, SimTime::minutes(30.0), c.seed ^ 0xA);
            events_from_specs(&jobs)
        }
        "w2" => {
            let mut jobs = w2::generate(
                &w2::W2Params {
                    jobs: c.jobs,
                    seed: c.seed,
                    ..Default::default()
                },
                scale,
            );
            assign_uniform_arrivals(&mut jobs, SimTime::minutes(30.0), c.seed ^ 0xA);
            events_from_specs(&jobs)
        }
        "cosim" => (1..=c.jobs as u32)
            .map(|i| ServeEvent::Arrival(cosim_spec(i, i as f64 * 20.0, 1.0 + (i % 3) as f64)))
            .collect(),
        other => unreachable!("unknown workload {other}"),
    }
}

/// The cell's full input: arrivals merged with the chaos stream (chaos
/// first at equal times, as the wire guarantees).
fn stream(c: &CellSpec) -> Vec<ServeEvent> {
    chaos::merge(arrivals(c), chaos_spec(c).events(&cluster(c)))
}

/// One timed pass over a cell's stream. Self-clock cells run the bare
/// scheduler; co-sim cells run the engine driver with the *same* churn
/// schedule injected on both sides of the seam.
fn run_once(c: &CellSpec, events: &[ServeEvent]) -> (ServeStats, f64) {
    let t0 = Instant::now();
    if c.workload == "cosim" {
        let params = SimParams {
            cluster: cluster(c),
            placement: DataPlacement::PerPlan,
            failures: chaos_spec(c).schedule(&cluster(c)),
            ..SimParams::testbed()
        };
        let mut out = Vec::new();
        let (stats, report) = EngineDriver::new(config(c), params).run(events, &mut out);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.unfinished, 0,
            "{}: transient churn must not strand jobs in the engine",
            c.name
        );
        assert_eq!(stats.decisions as usize, out.len());
        (stats, wall)
    } else {
        let mut sched = Scheduler::new(config(c));
        let mut out = Vec::with_capacity(events.len() * 3);
        let stats = sched.run(events.iter().cloned(), &mut out);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(stats.decisions as usize, out.len());
        (stats, wall)
    }
}

/// Runs every cell, checks golden decision counts and determinism
/// across repeats, and writes `BENCH_chaos.json`.
pub fn main() {
    table::section("chaosbench: serving under deterministic failure injection");
    let bless = std::env::var_os("CORRAL_CHAOSBENCH_BLESS").is_some();
    let was_enabled = probe::enabled();
    probe::set_enabled(true);

    table::row(&[
        "cell", "jobs", "fb", "decs", "wall", "dec/s", "p99", "fail", "reanch", "retry", "unpin",
        "good%",
    ]);
    let mut cell_json = Vec::new();
    let mut drift = Vec::new();

    for c in &CELLS {
        let events = stream(c);
        // Fresh probe world per cell: the span histogram below belongs
        // to this cell alone.
        probe::reset();
        let mut best: Option<(ServeStats, f64)> = None;
        for _ in 0..REPEATS {
            let (stats, wall) = run_once(c, &events);
            if let Some((prev, _)) = &best {
                assert_eq!(
                    *prev, stats,
                    "{}: non-deterministic chaos repeat (stats diverged)",
                    c.name
                );
            }
            if best.as_ref().is_none_or(|(_, w)| wall < *w) {
                best = Some((stats, wall));
            }
        }
        let (stats, wall) = best.unwrap();
        probe::flush_thread();
        let report = probe::report();
        let span = report
            .span_stat(probe::SpanKind::ServeDecision)
            .expect("chaos cells exercise serve.decision");

        let dec_rate = stats.decisions as f64 / wall.max(1e-9);
        let goodput = 100.0 * stats.completed as f64 / (stats.admitted.max(1)) as f64;
        table::row(&[
            c.name.to_string(),
            c.jobs.to_string(),
            if c.fallback { "on" } else { "off" }.to_string(),
            stats.decisions.to_string(),
            table::secs(wall),
            format!("{dec_rate:.0}"),
            format!("{:.1}us", span.p99_s * 1e6),
            stats.machine_failures.to_string(),
            stats.reanchored.to_string(),
            stats.dispatch_retries.to_string(),
            stats.fallback_dispatches.to_string(),
            format!("{goodput:.0}"),
        ]);

        let golden = GOLDEN_DECISIONS
            .iter()
            .find(|(n, _)| *n == c.name)
            .map(|&(_, v)| v)
            .unwrap();
        if stats.decisions != golden {
            drift.push(format!(
                "(\"{}\", {}),  // was {golden}",
                c.name, stats.decisions
            ));
        }
        cell_json.push(format!(
            "    {{\"cell\": \"{}\", \"jobs\": {}, \"racks\": {}, \"mtbf_s\": {}, \
             \"fallback\": {}, \"cosim\": {}, \"decisions\": {}, \"wall_s\": {:.4}, \
             \"decisions_per_s\": {:.0}, \"decision_p50_us\": {:.2}, \
             \"decision_p99_us\": {:.2}, \"machine_failures\": {}, \"machine_repairs\": {}, \
             \"reanchored\": {}, \"dispatch_retries\": {}, \"fallback_dispatches\": {}, \
             \"admitted\": {}, \"completed\": {}, \"goodput_pct\": {:.1}}}",
            c.name,
            c.jobs,
            c.racks,
            c.mtbf,
            c.fallback,
            c.workload == "cosim",
            stats.decisions,
            wall,
            dec_rate,
            span.p50_s * 1e6,
            span.p99_s * 1e6,
            stats.machine_failures,
            stats.machine_repairs,
            stats.reanchored,
            stats.dispatch_retries,
            stats.fallback_dispatches,
            stats.admitted,
            stats.completed,
            goodput,
        ));
    }

    if !drift.is_empty() {
        if bless {
            println!("   bless mode: update GOLDEN_DECISIONS to:");
            for d in &drift {
                println!("     {d}");
            }
        } else {
            panic!(
                "chaosbench decision-counter drift:\n  {}",
                drift.join("\n  ")
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"chaos_serve\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cell_json.join(",\n")
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("   wrote BENCH_chaos.json");
    probe::set_enabled(was_enabled);
}
