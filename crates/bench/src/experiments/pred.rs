//! §2 predictability claim — the day-type averaging predictor estimates
//! job input size "with a small error of 6.5% on average" over twenty
//! business-critical recurring jobs and one month of history.

use crate::table;
use corral_core::predict::{EwmaPredictor, Predictor};
use corral_workloads::history::production_recurring_jobs;

/// Prints per-job and mean walk-forward MAPE.
pub fn main() {
    table::section("§2 predictor: walk-forward error over 20 recurring jobs, 30 days");
    let predictor = Predictor::default();
    let ewma = EwmaPredictor::default();
    let mut errs = Vec::new();
    let mut ewma_errs = Vec::new();
    let mut csv = Vec::new();
    for job in production_recurring_jobs() {
        let history = job.history(30);
        if let (Some(e), Some(w)) = (predictor.mape(&history), ewma.mape(&history)) {
            errs.push(e);
            ewma_errs.push(w);
            csv.push(vec![job.id as f64, e * 100.0, w * 100.0]);
        }
    }
    let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    let max = errs.iter().copied().fold(0.0, f64::max);
    let ewma_mean = ewma_errs.iter().sum::<f64>() / ewma_errs.len().max(1) as f64;
    table::row(&["jobs", "mean MAPE", "max MAPE", "paper", "EWMA baseline"]);
    table::row(&[
        format!("{}", errs.len()),
        format!("{:.1}%", mean * 100.0),
        format!("{:.1}%", max * 100.0),
        "6.5%".to_string(),
        format!("{:.1}%", ewma_mean * 100.0),
    ]);
    table::write_csv(
        "pred_mape",
        &["job_id", "daytype_mape_pct", "ewma_mape_pct"],
        &csv,
    );
}
