//! Figure 1 — normalized input sizes of six recurring jobs over ten days
//! (log10 y-axis; the motivation for planning ahead).

use crate::table;
use corral_workloads::history::fig1_jobs;

/// Prints the six series and writes `results/fig1_recurring_sizes.csv`.
pub fn main() {
    table::section("Figure 1: input size of six recurring jobs over 10 days (log10 GB)");
    let jobs = fig1_jobs();
    let days = 10;
    let histories: Vec<_> = jobs.iter().map(|j| j.history(days)).collect();

    let mut header = vec!["day".to_string()];
    header.extend(jobs.iter().map(|j| format!("job{}_log10_gb", j.id)));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    table::row(&header_refs);
    for d in 0..days as usize {
        let mut r = vec![d as f64];
        for h in &histories {
            r.push((h[d].value / 1e9).log10());
        }
        rows.push(r.clone());
        let cells: Vec<String> = r.iter().map(|v| format!("{v:.2}")).collect();
        table::row(&cells);
    }
    table::write_csv("fig1_recurring_sizes", &header_refs, &rows);
}
