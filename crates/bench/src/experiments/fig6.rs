//! Figure 6 — reduction in makespan vs Yarn-CS, batch scenario, workloads
//! W1/W2/W3, for Corral, LocalShuffle and ShuffleWatcher.
//!
//! Paper's result: Corral 10–33% reduction (lowest on the highly skewed
//! W2); LocalShuffle mixed (can be negative); ShuffleWatcher significantly
//! negative on all three.

use crate::experiments::workload_shared;
use crate::runner::{run_variant_grid_shared, RunConfig, Variant};
use crate::table;
use corral_cluster::metrics::reduction_pct;
use corral_core::Objective;

/// One workload's makespans under the four systems (seconds).
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Workload label.
    pub workload: String,
    /// Yarn-CS baseline makespan.
    pub yarn_cs: f64,
    /// Corral / LocalShuffle / ShuffleWatcher makespans.
    pub corral: f64,
    /// LocalShuffle makespan.
    pub localshuffle: f64,
    /// ShuffleWatcher makespan.
    pub shufflewatcher: f64,
}

impl Fig6Row {
    /// Reductions relative to Yarn-CS, in the figure's order.
    pub fn reductions(&self) -> [f64; 3] {
        [
            reduction_pct(self.yarn_cs, self.corral),
            reduction_pct(self.yarn_cs, self.localshuffle),
            reduction_pct(self.yarn_cs, self.shufflewatcher),
        ]
    }
}

/// Runs the experiment for the given workloads (default all three) as
/// one parallel `(workload × variant)` sweep.
pub fn run(workloads: &[&str]) -> Vec<Fig6Row> {
    let rc = RunConfig::testbed(Objective::Makespan);
    let jobsets: Vec<_> = workloads.iter().map(|&w| workload_shared(w)).collect();
    let grid = run_variant_grid_shared(&jobsets, &rc);
    let mut rows = Vec::new();
    for (&w, reports) in workloads.iter().zip(&grid) {
        let mut makespans = [0.0; 4];
        for (i, (v, report)) in Variant::ALL.iter().zip(reports).enumerate() {
            assert_eq!(
                report.unfinished,
                0,
                "{w}/{}: {} unfinished jobs",
                v.label(),
                report.unfinished
            );
            makespans[i] = report.makespan.as_secs();
        }
        rows.push(Fig6Row {
            workload: w.to_string(),
            yarn_cs: makespans[0],
            corral: makespans[1],
            localshuffle: makespans[2],
            shufflewatcher: makespans[3],
        });
    }
    rows
}

/// Runs and prints the full figure.
pub fn main() {
    table::section("Figure 6: % reduction in makespan vs Yarn-CS (batch)");
    table::row(&["workload", "corral", "localshuffle", "shufflewatcher"]);
    let rows = run(&["W1", "W2", "W3"]);
    let mut csv = Vec::new();
    for r in &rows {
        let red = r.reductions();
        table::row(&[
            r.workload.clone(),
            table::pct(red[0]),
            table::pct(red[1]),
            table::pct(red[2]),
        ]);
        csv.push(vec![r.yarn_cs, r.corral, r.localshuffle, r.shufflewatcher]);
    }
    table::write_csv(
        "fig6_makespan",
        &[
            "yarn_cs_s",
            "corral_s",
            "localshuffle_s",
            "shufflewatcher_s",
        ],
        &csv,
    );
}
