//! Periodic replanning (§3.1): "The offline planner will periodically
//! receive updated estimates of future workload, rerun the planning
//! problem, and update the guidelines to the cluster scheduler."
//!
//! Setup: the initial plan is built from *forecast* arrivals (a perturbed
//! view of reality, as in Fig. 13b). Every `interval`, the planner reruns
//! over the jobs that have not started yet, now knowing their true
//! arrivals. Compared against (a) the stale single-shot plan and (b) an
//! oracle that planned with true arrivals from the start.

use crate::experiments::workload_online;
use crate::runner::RunConfig;
use crate::table;
use corral_cluster::config::DataPlacement;
use corral_cluster::engine::Engine;
use corral_cluster::metrics::RunReport;
use corral_cluster::scheduler::SchedulerKind;
use corral_core::planner::perturb_arrivals;
use corral_core::{plan_jobs, plan_jobs_pinned, Objective};
use corral_model::{JobSpec, SimTime};
use std::collections::BTreeMap;

/// Runs Corral with an initial (possibly stale) plan and optional periodic
/// replanning every `interval` (None = never).
pub fn run_with_replanning(
    true_jobs: &[JobSpec],
    forecast_jobs: &[JobSpec],
    rc: &RunConfig,
    interval: Option<SimTime>,
) -> RunReport {
    let initial = plan_jobs(&rc.params.cluster, forecast_jobs, rc.objective, &rc.planner);
    let mut params = rc.params.clone();
    params.placement = DataPlacement::PerPlan;
    let mut engine = Engine::new(params, true_jobs.to_vec(), &initial, SchedulerKind::Planned);

    if let Some(step) = interval {
        let mut t = step;
        let mut generation: u32 = 1;
        loop {
            if !engine.run_until(t) {
                break;
            }
            // Replan the not-yet-started jobs with their *true* arrivals
            // (by now the estimates have been corrected by observation).
            let unstarted = engine.unstarted_jobs();
            if !unstarted.is_empty() {
                let remaining: Vec<JobSpec> = true_jobs
                    .iter()
                    .filter(|j| unstarted.iter().any(|(id, _)| *id == j.id))
                    .cloned()
                    .map(|mut j| {
                        // Jobs whose true arrival already passed are ready now.
                        j.arrival = j.arrival.max(engine.now()).max(SimTime::ZERO);
                        j
                    })
                    .collect();
                // Input replicas were written where the *initial* plan put
                // them (§3.1: data placement happens at upload, only the
                // guidelines are updated), so replanning pins each job to
                // its data's racks and re-derives ordering around them.
                let pins: BTreeMap<_, _> = remaining
                    .iter()
                    .filter_map(|j| initial.entry(j.id).map(|e| (j.id, e.racks.clone())))
                    .collect();
                let mut fresh = plan_jobs_pinned(
                    &rc.params.cluster,
                    &remaining,
                    rc.objective,
                    &rc.planner,
                    &pins,
                );
                for (_, e) in fresh.entries.iter_mut() {
                    // Later generations must not outrank jobs that already
                    // started under earlier guidance (no preemption, §4.1).
                    e.priority = e.priority.saturating_add(generation * 100_000);
                }
                engine.apply_plan_update(&fresh);
            }
            t += step;
            generation += 1;
        }
    }
    engine.finish()
}

/// Prints the comparison.
pub fn main() {
    table::section("§3.1 periodic replanning (W1 online, 50% of arrivals off by ±8 min)");
    table::row(&["strategy", "mean jct", "median jct"]);
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);

    let mut agg: Vec<(String, Vec<f64>)> = vec![
        ("stale plan".into(), Vec::new()),
        ("replan 5min".into(), Vec::new()),
        ("oracle plan".into(), Vec::new()),
    ];
    let seeds = crate::config::arrival_seeds();
    // One sweep cell per arrival seed; the three strategies stay serial
    // inside the cell so they share its workload/forecast by reference.
    let per_seed = crate::config::pool().run_all(seeds.len(), |i| {
        let true_jobs = workload_online("W1", seeds[i]);
        let forecast = perturb_arrivals(&true_jobs, 0.5, SimTime::minutes(8.0), seeds[i] ^ 0x8E);
        [
            run_with_replanning(&true_jobs, &forecast, &rc, None),
            run_with_replanning(&true_jobs, &forecast, &rc, Some(SimTime::minutes(5.0))),
            run_with_replanning(&true_jobs, &true_jobs, &rc, None),
        ]
    });
    for runs in &per_seed {
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.unfinished, 0);
            agg[i].1.extend(r.completion_times());
        }
    }
    let mut csv = Vec::new();
    for (i, (label, mut t)) in agg.into_iter().enumerate() {
        t.sort_by(f64::total_cmp);
        let mean = t.iter().sum::<f64>() / t.len().max(1) as f64;
        let median = corral_cluster::metrics::percentile(&t, 50.0);
        table::row(&[label, table::secs(mean), table::secs(median)]);
        csv.push(vec![i as f64, mean, median]);
    }
    println!("   finding: with data anchored at upload-time locations, replanning can only");
    println!("   reorder; most of the stale-plan penalty is placement, which is sunk — the");
    println!("   paper's periodic replanning pays off chiefly for *data not yet uploaded*");
    table::write_csv(
        "replan",
        &["strategy_idx", "mean_jct_s", "median_jct_s"],
        &csv,
    );
}
