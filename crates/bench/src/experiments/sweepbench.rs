//! Sweep-engine wall-clock benchmark: runs a small, fixed smoke subset
//! of the experiment grid serially and under the parallel pool, and
//! records both timings in `BENCH_sweep.json` so the perf trajectory of
//! `repro all` gets data points per commit.
//!
//! Not part of `repro all` (it exists to time the harness, not to
//! reproduce a paper artifact); CI runs `repro sweepbench --jobs 4`
//! under a time budget. The smoke subset is a reduced W1 online
//! workload — 2 arrival seeds × 4 variants = 8 cells — big enough that
//! per-cell runtime dwarfs pool overhead, small enough for CI.

use crate::runner::{RunConfig, Variant};
use crate::table;
use corral_core::Objective;
use corral_model::{JobSpec, SimTime};
use corral_sweep::SweepPool;
use corral_workloads::{assign_uniform_arrivals, w1};
use std::time::Instant;

/// Arrival seeds of the smoke subset (first two of the standard pool).
const SMOKE_SEEDS: [u64; 2] = [0x1, 0xF18];

fn smoke_jobset(seed: u64) -> Vec<JobSpec> {
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 40,
            bytes_per_task: 512e6,
            ..w1::W1Params::with_seed(0xA001)
        },
        crate::experiments::bench_scale(),
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(20.0), seed);
    jobs
}

/// Paired repetitions: serial and parallel passes interleaved, speedup =
/// median of per-pair ratios (the fabricbench/plannerbench methodology).
/// A single pass per path is order-biased on busy CI hosts — the second
/// pass alone can read >10% slow even when both run the same code path.
/// Per-path walls report the minimum.
const REPEATS: usize = 3;

fn run_grid(pool: &SweepPool, jobsets: &[Vec<JobSpec>], rc: &RunConfig) -> f64 {
    let nv = Variant::ALL.len();
    let t = Instant::now();
    let reports = pool.run_all(jobsets.len() * nv, |i| {
        crate::runner::run_variant(Variant::ALL[i % nv], &jobsets[i / nv], rc)
    });
    let elapsed = t.elapsed().as_secs_f64();
    assert_eq!(reports.len(), jobsets.len() * nv);
    elapsed
}

/// Times the smoke subset serially and at the configured `--jobs`, then
/// writes `BENCH_sweep.json` in the working directory.
pub fn main() {
    table::section("sweepbench: serial vs parallel wall-clock, smoke subset");
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);
    let jobsets: Vec<_> = SMOKE_SEEDS.iter().map(|&s| smoke_jobset(s)).collect();
    let cells = jobsets.len() * Variant::ALL.len();
    let jobs = SweepPool::new(crate::config::jobs()).jobs(); // resolve 0 = auto

    let serial_pool = SweepPool::new(1);
    let parallel_pool = SweepPool::new(jobs);
    let mut serial_s = f64::INFINITY;
    let mut parallel_s = f64::INFINITY;
    let mut ratios = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        let s = run_grid(&serial_pool, &jobsets, &rc);
        let p = run_grid(&parallel_pool, &jobsets, &rc);
        ratios.push(s / p.max(1e-9));
        serial_s = serial_s.min(s);
        parallel_s = parallel_s.min(p);
    }
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    // What the host actually exposes (`available_parallelism`, e.g. a
    // container CPU quota) vs what the pool will actually use: never
    // more workers than cells, and serial-inline on a 1-CPU host.
    let host_cpus = corral_sweep::default_jobs();
    let effective_jobs = parallel_pool.effective_jobs(cells);

    table::row(&[
        "cells",
        "jobs",
        "effective",
        "host_cpus",
        "serial",
        "parallel",
        "speedup",
    ]);
    table::row(&[
        cells.to_string(),
        jobs.to_string(),
        effective_jobs.to_string(),
        host_cpus.to_string(),
        table::secs(serial_s),
        table::secs(parallel_s),
        format!("{speedup:.2}x"),
    ]);
    // Explain surprising readings rather than leaving them to guesswork,
    // and persist the explanation in the JSON next to the numbers.
    let note = if host_cpus == 1 && jobs > 1 {
        format!(
            "host exposes 1 CPU: the pool fell back to serial-inline execution \
             (no worker threads) for the {cells}-cell grid, so both passes run \
             the same code path and speedup ≈ 1.0 by construction"
        )
    } else if host_cpus < effective_jobs {
        format!(
            "host exposes {host_cpus} CPU(s) < {effective_jobs} effective worker(s); \
             expected speedup is ~min(jobs, host_cpus, cells), and oversubscribed \
             workers can make the parallel pass slower than serial"
        )
    } else if speedup < 1.0 {
        format!(
            "parallel pass slower than serial at {effective_jobs} worker(s) on \
             {host_cpus} CPU(s): the {cells}-cell smoke grid is too small to \
             amortize pool startup on this host"
        )
    } else {
        String::new()
    };
    if !note.is_empty() {
        println!("   note: {note}");
    }

    let json = format!(
        "{{\n  \"bench\": \"sweep_smoke_subset\",\n  \"cells\": {cells},\n  \
         \"jobs\": {jobs},\n  \"effective_jobs\": {effective_jobs},\n  \
         \"host_cpus\": {host_cpus},\n  \
         \"serial_s\": {serial_s:.3},\n  \"parallel_s\": {parallel_s:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"note\": \"{note}\"\n}}\n"
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("   wrote BENCH_sweep.json");
}
