//! Unified performance report: runs live probe cells for the four hot
//! subsystems (fabric event loop, planner provisioning loop, sweep/engine
//! path, serving loop), measures the probe layer's own overhead, merges
//! the result with
//! every `BENCH_*.json` the other benches have written, and emits
//! `BENCH_report.json` (machine-readable) plus `PERF.md` (human-readable)
//! in the working directory.
//!
//! Not part of `repro all`; CI runs `repro perfreport` after the
//! fabricbench/plannerbench/servebench perf-smoke steps so the report
//! folds their fresh JSON in. The live cells double as *regression
//! tripwires*: the fabric small-scale recompute count, the planner
//! large-scale candidate count, and the serve small-cell decision count
//! must match the same golden constants the benches
//! assert, and drift panics here too (bless via the owning bench's
//! `CORRAL_*BENCH_BLESS=1`, then rerun). Wall-clock numbers — including
//! the probe-overhead measurement — are reported but never asserted.

use crate::experiments::{fabricbench, plannerbench, servebench};
use crate::jsonv::{self, Value};
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_core::Objective;
use corral_model::SimTime;
use corral_trace::probe;
use corral_workloads::{assign_uniform_arrivals, w1};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Repetitions for the probes-on vs probes-off overhead pair (minimum
/// wall of each side; one warmup pass discarded).
const OVERHEAD_REPEATS: usize = 5;

/// Span kinds the live cells are guaranteed to exercise; an empty stat
/// for one of these means the probe wiring regressed, and that *is*
/// asserted (unlike wall-clock, span presence is deterministic).
const REQUIRED_SPANS: [probe::SpanKind; 9] = [
    probe::SpanKind::FabricRecompute,
    probe::SpanKind::FabricMaxMin,
    probe::SpanKind::CandidateEnum,
    probe::SpanKind::CandidateScore,
    probe::SpanKind::Provision,
    probe::SpanKind::PlanDecision,
    probe::SpanKind::EngineEvent,
    probe::SpanKind::SweepCell,
    probe::SpanKind::ServeDecision,
];

/// Probe counters the live cells must leave non-zero; a zero means the
/// counter wiring (or the code path that feeds it) regressed. The split
/// fabric recompute counters are fed by the Varys live cell: the eager
/// pass feeds `recompute_full_eager`, the coflow-incremental pass feeds
/// `recompute_full_boundary` / `recompute_incremental` and the
/// `varys_scratch_elems` footprint gauge.
const REQUIRED_COUNTERS: [&str; 5] = [
    "fabric.recompute_incremental",
    "fabric.recompute_full_eager",
    "fabric.recompute_full_boundary",
    "fabric.varys_scratch_elems",
    "fabric.scratch_grows",
];

/// One golden-counter tripwire result.
struct Tripwire {
    name: &'static str,
    observed: u64,
    golden: u64,
}

impl Tripwire {
    fn ok(&self) -> bool {
        self.observed == self.golden
    }
}

/// Formats a duration with a unit that keeps 3 significant digits
/// readable from nanoseconds up to minutes.
fn fmt_dur(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.0}ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Rounds for JSON embedding: wall-clock seconds to the microsecond,
/// enough for every quantile the histograms resolve.
fn num(v: f64) -> Value {
    Value::Num((v * 1e6).round() / 1e6)
}

/// The engine/sweep live cell: a reduced W1 online grid (1 seed × all
/// variants) through the sweep pool — populates `engine.event`,
/// `planner.plan`, `sweep.cell` (and the worker-path spans when the host
/// has the CPUs for them).
fn run_engine_cell() {
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 12,
            bytes_per_task: 512e6,
            ..w1::W1Params::with_seed(0xA001)
        },
        crate::experiments::bench_scale(),
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(20.0), 0x1);
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);
    let pool = crate::config::pool().progress(false);
    let nv = Variant::ALL.len();
    let reports = pool.run_all(nv, |i| run_variant(Variant::ALL[i], &jobs, &rc));
    assert_eq!(reports.len(), nv);
}

/// Parses every `BENCH_*.json` in the working directory except the
/// report itself. Returns `(key, filename, value)` sorted by key.
fn load_bench_files() -> Vec<(String, String, Value)> {
    let mut out = Vec::new();
    let Ok(dir) = std::fs::read_dir(".") else {
        return out;
    };
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(key) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        if key == "report" {
            continue;
        }
        match std::fs::read_to_string(entry.path()).map_err(|e| e.to_string()) {
            Ok(text) => match jsonv::parse(&text) {
                Ok(v) => out.push((key.to_string(), name, v)),
                Err(e) => println!("   warning: {name}: unparsable ({e}); skipped"),
            },
            Err(e) => println!("   warning: {name}: unreadable ({e}); skipped"),
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Renders one parsed bench file as markdown: scalars as bullets,
/// arrays-of-objects as tables (generic, so new benches show up without
/// touching this module).
fn bench_markdown(md: &mut String, file: &str, v: &Value) {
    let _ = writeln!(md, "### `{file}`\n");
    let Value::Obj(top) = v else {
        let _ = writeln!(md, "```json\n{}\n```\n", v.to_json());
        return;
    };
    for (k, field) in top {
        match field {
            Value::Num(_) | Value::Bool(_) | Value::Str(_) | Value::Null => {
                let _ = writeln!(md, "- `{k}`: {}", field.to_json());
            }
            Value::Obj(_) => {
                let _ = writeln!(md, "- `{k}`: `{}`", field.to_json());
            }
            Value::Arr(rows) => {
                let objs: Vec<&BTreeMap<String, Value>> = rows
                    .iter()
                    .filter_map(|r| match r {
                        Value::Obj(m) => Some(m),
                        _ => None,
                    })
                    .collect();
                if objs.len() == rows.len() && !objs.is_empty() {
                    // Union of keys, first row's order is close enough to
                    // intent because BTreeMap sorts anyway.
                    let mut cols: Vec<&String> = Vec::new();
                    for o in &objs {
                        for c in o.keys() {
                            if !cols.contains(&c) {
                                cols.push(c);
                            }
                        }
                    }
                    let _ = writeln!(
                        md,
                        "\n| {} |",
                        cols.iter()
                            .map(|c| c.as_str())
                            .collect::<Vec<_>>()
                            .join(" | ")
                    );
                    let _ = writeln!(
                        md,
                        "|{}|",
                        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
                    );
                    for o in &objs {
                        let cells: Vec<String> = cols
                            .iter()
                            .map(|c| o.get(*c).map(Value::to_json).unwrap_or_default())
                            .collect();
                        let _ = writeln!(md, "| {} |", cells.join(" | "));
                    }
                    let _ = writeln!(md);
                } else {
                    let _ = writeln!(md, "- `{k}`: `{}`", field.to_json());
                }
            }
        }
    }
    let _ = writeln!(md);
}

/// Runs the live cells, the overhead pair, the merge, and the two
/// writers. See module docs.
pub fn main() {
    table::section("perfreport: live probe cells + merged BENCH_* report");
    let was_enabled = probe::enabled();
    probe::set_enabled(true);
    probe::reset();

    // -- Live cells -------------------------------------------------------
    println!(
        "   running live probe cells (fabric small fair + varys, planner large, \
         engine grid, serve small)"
    );
    let (fab_recomputes, fab_golden) = fabricbench::probe_cell_small();
    let (fab_varys_recomputes, fab_varys_golden) = fabricbench::probe_cell_varys();
    let planner_cell = plannerbench::probe_cell_large();
    let pool = crate::config::pool().progress(false);
    let (planner_cands, _) = planner_cell.run(&pool);
    run_engine_cell();
    let serve_cell = servebench::probe_cell_small();
    let serve_decisions = serve_cell.run();

    // -- Probe overhead on the planner large cell -------------------------
    // Warm once, then min-of-N with probes on vs off. The off passes
    // leave no trace in the report (spans are inert when disabled).
    let _ = planner_cell.run(&pool);
    let mut on_s = f64::INFINITY;
    for _ in 0..OVERHEAD_REPEATS {
        let t0 = Instant::now();
        let _ = planner_cell.run(&pool);
        on_s = on_s.min(t0.elapsed().as_secs_f64());
    }
    probe::set_enabled(false);
    let mut off_s = f64::INFINITY;
    for _ in 0..OVERHEAD_REPEATS {
        let t0 = Instant::now();
        let _ = planner_cell.run(&pool);
        off_s = off_s.min(t0.elapsed().as_secs_f64());
    }
    probe::set_enabled(true);
    let overhead_pct = (on_s - off_s) / off_s.max(1e-9) * 100.0;
    println!(
        "   probe overhead (planner large cell): on {} vs off {} = {overhead_pct:+.1}%",
        fmt_dur(on_s),
        fmt_dur(off_s)
    );
    if overhead_pct >= 5.0 {
        println!("   warning: probe overhead {overhead_pct:.1}% at or above the 5% budget");
    }

    let report = probe::report();

    // -- Span table -------------------------------------------------------
    table::row(&["span", "count", "total", "p50", "p90", "p99", "max"]);
    for s in &report.spans {
        table::row(&[
            s.label.to_string(),
            s.count.to_string(),
            fmt_dur(s.total_s),
            fmt_dur(s.p50_s),
            fmt_dur(s.p90_s),
            fmt_dur(s.p99_s),
            fmt_dur(s.max_s),
        ]);
    }
    for &(label, v) in &report.counters {
        if v > 0 {
            println!("   {label} = {v}");
        }
    }
    println!(
        "   {} thread(s) merged, {} ring record(s) dropped",
        report.threads, report.dropped
    );

    // Span presence is deterministic: an unexercised required kind means
    // the instrumentation wiring regressed.
    let missing: Vec<&str> = REQUIRED_SPANS
        .iter()
        .filter(|&&k| report.span_stat(k).is_none())
        .map(|k| k.label())
        .collect();
    assert!(
        missing.is_empty(),
        "perfreport: live cells left required span(s) empty: {}",
        missing.join(", ")
    );
    let zero_counters: Vec<&str> = REQUIRED_COUNTERS
        .iter()
        .filter(|&&want| {
            !report
                .counters
                .iter()
                .any(|&(label, v)| label == want && v > 0)
        })
        .copied()
        .collect();
    assert!(
        zero_counters.is_empty(),
        "perfreport: live cells left required counter(s) zero: {}",
        zero_counters.join(", ")
    );

    // -- Tripwires --------------------------------------------------------
    let tripwires = [
        Tripwire {
            name: "fabric_small_recomputes",
            observed: fab_recomputes,
            golden: fab_golden,
        },
        Tripwire {
            name: "fabric_varys_small_recomputes",
            observed: fab_varys_recomputes,
            golden: fab_varys_golden,
        },
        Tripwire {
            name: "planner_large_candidates",
            observed: planner_cands,
            golden: planner_cell.golden(),
        },
        Tripwire {
            name: "serve_small_decisions",
            observed: serve_decisions,
            golden: serve_cell.golden(),
        },
    ];
    let drift: Vec<String> = tripwires
        .iter()
        .filter(|t| !t.ok())
        .map(|t| format!("{}: {} != golden {}", t.name, t.observed, t.golden))
        .collect();

    // -- Merge with the other benches' JSON -------------------------------
    let benches = load_bench_files();
    for (_, file, _) in &benches {
        println!("   merged {file}");
    }
    if benches.is_empty() {
        println!("   note: no BENCH_*.json found; run fabricbench/plannerbench/sweepbench first");
    }

    // -- BENCH_report.json ------------------------------------------------
    let spans_json = Value::Arr(
        report
            .spans
            .iter()
            .map(|s| {
                Value::Obj(BTreeMap::from([
                    ("span".into(), Value::Str(s.label.into())),
                    ("count".into(), Value::Num(s.count as f64)),
                    ("total_s".into(), num(s.total_s)),
                    ("p50_s".into(), num(s.p50_s)),
                    ("p90_s".into(), num(s.p90_s)),
                    ("p99_s".into(), num(s.p99_s)),
                    ("max_s".into(), num(s.max_s)),
                ]))
            })
            .collect(),
    );
    let counters_json = Value::Obj(
        report
            .counters
            .iter()
            .map(|&(label, v)| (label.to_string(), Value::Num(v as f64)))
            .collect(),
    );
    let tripwires_json = Value::Arr(
        tripwires
            .iter()
            .map(|t| {
                Value::Obj(BTreeMap::from([
                    ("name".into(), Value::Str(t.name.into())),
                    ("observed".into(), Value::Num(t.observed as f64)),
                    ("golden".into(), Value::Num(t.golden as f64)),
                    ("ok".into(), Value::Bool(t.ok())),
                ]))
            })
            .collect(),
    );
    let overhead_json = Value::Obj(BTreeMap::from([
        ("cell".into(), Value::Str("planner_large_fast".into())),
        ("probes_on_s".into(), num(on_s)),
        ("probes_off_s".into(), num(off_s)),
        (
            "overhead_pct".into(),
            Value::Num((overhead_pct * 10.0).round() / 10.0),
        ),
    ]));
    let root = Value::Obj(BTreeMap::from([
        ("report".into(), Value::Str("corral_perfreport".into())),
        (
            "probe".into(),
            Value::Obj(BTreeMap::from([
                ("spans".into(), spans_json),
                ("counters".into(), counters_json),
                ("threads".into(), Value::Num(report.threads as f64)),
                ("ring_dropped".into(), Value::Num(report.dropped as f64)),
            ])),
        ),
        ("tripwires".into(), tripwires_json),
        ("overhead".into(), overhead_json),
        (
            "benches".into(),
            Value::Obj(
                benches
                    .iter()
                    .map(|(k, _, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
        ),
    ]));
    {
        let _probe = probe::span(probe::SpanKind::Export);
        let mut json = root.to_json();
        json.push('\n');
        std::fs::write("BENCH_report.json", json).expect("write BENCH_report.json");
    }
    println!("   wrote BENCH_report.json");

    // -- PERF.md ----------------------------------------------------------
    let mut md = String::new();
    let _ = writeln!(md, "# Corral performance report\n");
    let _ = writeln!(
        md,
        "Generated by `repro perfreport`: live `corral-probe` cells for the \
         fabric, planner, and engine/sweep hot paths, merged with every \
         `BENCH_*.json` in the working directory. Host wall-clock; only the \
         golden counters below are asserted.\n"
    );
    let _ = writeln!(md, "## Probe spans (live cells)\n");
    let _ = writeln!(md, "| span | count | total | p50 | p90 | p99 | max |");
    let _ = writeln!(md, "|---|---|---|---|---|---|---|");
    for s in &report.spans {
        let _ = writeln!(
            md,
            "| `{}` | {} | {} | {} | {} | {} | {} |",
            s.label,
            s.count,
            fmt_dur(s.total_s),
            fmt_dur(s.p50_s),
            fmt_dur(s.p90_s),
            fmt_dur(s.p99_s),
            fmt_dur(s.max_s),
        );
    }
    let _ = writeln!(
        md,
        "\n{} thread(s) merged; {} span record(s) dropped by the rings.\n",
        report.threads, report.dropped
    );
    let _ = writeln!(md, "## Hot-path counters\n");
    let _ = writeln!(md, "| counter | value |");
    let _ = writeln!(md, "|---|---|");
    for &(label, v) in &report.counters {
        if v > 0 {
            let _ = writeln!(md, "| `{label}` | {v} |");
        }
    }
    let _ = writeln!(md, "\n## Regression tripwires\n");
    let _ = writeln!(md, "| tripwire | observed | golden | status |");
    let _ = writeln!(md, "|---|---|---|---|");
    for t in &tripwires {
        let _ = writeln!(
            md,
            "| `{}` | {} | {} | {} |",
            t.name,
            t.observed,
            t.golden,
            if t.ok() { "ok" } else { "**DRIFT**" },
        );
    }
    let _ = writeln!(
        md,
        "\n## Probe overhead\n\nPlanner large cell (256 jobs, 24 racks), \
         min of {OVERHEAD_REPEATS}: probes on {} vs off {} — \
         **{overhead_pct:+.1}%** (budget < 5%; informational, not asserted).\n",
        fmt_dur(on_s),
        fmt_dur(off_s),
    );
    let _ = writeln!(md, "## Bench files\n");
    if benches.is_empty() {
        let _ = writeln!(md, "_No `BENCH_*.json` found in the working directory._\n");
    }
    for (_, file, v) in &benches {
        bench_markdown(&mut md, file, v);
    }
    {
        let _probe = probe::span(probe::SpanKind::Export);
        std::fs::write("PERF.md", &md).expect("write PERF.md");
    }
    println!("   wrote PERF.md");

    probe::set_enabled(was_enabled);

    if !drift.is_empty() {
        panic!(
            "perfreport golden-counter drift (bless via the owning bench):\n  {}",
            drift.join("\n  ")
        );
    }
}
