//! Figure 14 — large-scale simulation (§6.6): 2000 machines (50 racks ×
//! 40), 200 W1 jobs arriving over 15 minutes, under the four combinations
//! of job scheduler {Yarn-CS, Corral} × network scheduler {TCP, Varys}.
//!
//! Paper's ordering: Yarn-CS+TCP ≪ Yarn-CS+Varys < Corral+TCP <
//! Corral+Varys — i.e. Corral with plain TCP beats Yarn-CS with Varys
//! (proper endpoint placement dominates flow scheduling), and the two
//! techniques compose.

use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_cluster::config::NetPolicy;
use corral_cluster::metrics::percentile;
use corral_core::Objective;
use corral_model::SimTime;
use corral_workloads::{assign_uniform_arrivals, w1};

/// Runs the 2×2 grid and returns (label, sorted completion times).
pub fn run() -> Vec<(String, Vec<f64>)> {
    // 2000 machines with a fluid model is expensive: 40 jobs at a coarser
    // task scale (divisor 16) keep the run tractable while preserving the
    // figure's point — the relative ordering of the four scheduler
    // combinations. See EXPERIMENTS.md.
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 40,
            bytes_per_task: 512e6,
            ..w1::W1Params::with_seed(0xF14)
        },
        corral_workloads::Scale {
            task_divisor: 16.0,
            data_divisor: 1.0,
        },
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(15.0), 0xF14B);

    let mut out = Vec::new();
    for (variant, net) in [
        (Variant::YarnCs, NetPolicy::Tcp),
        (Variant::YarnCs, NetPolicy::Varys),
        (Variant::Corral, NetPolicy::Tcp),
        (Variant::Corral, NetPolicy::Varys),
    ] {
        let mut rc = RunConfig::testbed(Objective::AvgCompletionTime);
        rc.params = corral_cluster::config::SimParams::large_sim();
        // Keep per-machine concurrency moderate so the fluid model stays
        // fast at 2000 machines (see EXPERIMENTS.md): 20 slots in the
        // paper, 4 here with task counts scaled by the same workload rule.
        rc.params.cluster.slots_per_machine = 4;
        rc.params.horizon = SimTime::hours(24.0);
        rc.params.net = net;
        let r = run_variant(variant, &jobs, &rc);
        assert_eq!(r.unfinished, 0, "{}/{net:?}: unfinished", variant.label());
        let label = format!(
            "{}+{}",
            variant.label(),
            match net {
                NetPolicy::Tcp => "tcp",
                NetPolicy::Varys => "varys",
                NetPolicy::TcpReference => "tcp-ref",
            }
        );
        out.push((label, r.completion_times()));
    }
    out
}

/// Prints the four CDFs' percentiles.
pub fn main() {
    table::section("Figure 14: 2000-machine simulation, job × network schedulers");
    table::row(&["system", "p25", "p50", "p75", "p90"]);
    let results = run();
    let mut csv = Vec::new();
    for (si, (label, t)) in results.iter().enumerate() {
        table::row(&[
            label.clone(),
            table::secs(percentile(t, 25.0)),
            table::secs(percentile(t, 50.0)),
            table::secs(percentile(t, 75.0)),
            table::secs(percentile(t, 90.0)),
        ]);
        for r in table::cdf_rows(t) {
            csv.push(vec![si as f64, r[0], r[1]]);
        }
    }
    table::write_csv(
        "fig14_large_sim_cdf",
        &["system_idx", "completion_s", "cum_fraction"],
        &csv,
    );
}
