//! Ablations of Corral's design choices (beyond the paper's figures, but
//! directly probing the decisions DESIGN.md calls out):
//!
//! * **α (data-imbalance penalty, §4.5)** — α = 0 vs the default
//!   (1/rack-core-bandwidth) vs 10×: effect on input balance (CoV) and on
//!   makespan.
//! * **Plan priorities (§3.1)** — Corral with the planner's priority order
//!   vs the same rack sets with flattened priorities (arrival order
//!   decides): how much of the win is *ordering* vs *placement*.
//! * **Delay scheduling (Yarn-CS)** — locality wait 0/3/10 scheduling
//!   opportunities: cross-rack input traffic vs completion time.
//! * **Ingest modeling (§2/§7)** — preloaded input vs simulated upload
//!   with increasing head start: how much upload latency the lead time
//!   hides.

use crate::experiments::{workload, workload_online};
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_cluster::config::{poisson_churn, DataPlacement, IngestMode, StragglerModel};
use corral_cluster::engine::Engine;
use corral_cluster::scheduler::SchedulerKind;
use corral_core::{plan_jobs, Objective};
use corral_model::SimTime;

/// α ablation: balance vs performance.
fn alpha_ablation() {
    table::section("Ablation: imbalance penalty α (W1 batch)");
    table::row(&["alpha", "input CoV", "makespan"]);
    let jobs = workload("W1");
    let mut csv = Vec::new();
    for (label, alpha) in [
        ("0", Some(0.0)),
        ("default", None),
        ("10x", Some(10.0 / 3.75e9)),
    ] {
        let mut rc = RunConfig::testbed(Objective::Makespan);
        rc.planner.response.alpha = alpha;
        let r = run_variant(Variant::Corral, &jobs, &rc);
        table::row(&[
            label.to_string(),
            format!("{:.4}", r.input_balance_cov),
            table::secs(r.makespan.as_secs()),
        ]);
        csv.push(vec![
            alpha.unwrap_or(-1.0),
            r.input_balance_cov,
            r.makespan.as_secs(),
        ]);
    }
    table::write_csv("ablation_alpha", &["alpha", "cov", "makespan_s"], &csv);
}

/// Priority ablation: placement with vs without the planner's ordering.
fn priority_ablation() {
    table::section("Ablation: plan priorities vs flattened (W1 batch)");
    table::row(&["variant", "makespan"]);
    let jobs = workload("W1");
    let rc = RunConfig::testbed(Objective::Makespan);

    let with = run_variant(Variant::Corral, &jobs, &rc).makespan.as_secs();

    // Same rack sets, flattened priorities.
    let mut plan = plan_jobs(&rc.params.cluster, &jobs, rc.objective, &rc.planner);
    for (_, e) in plan.entries.iter_mut() {
        e.priority = 0;
    }
    let mut params = rc.params.clone();
    params.placement = DataPlacement::PerPlan;
    let without = Engine::new(params, jobs.clone(), &plan, SchedulerKind::Planned)
        .run()
        .makespan
        .as_secs();

    table::row(&["planned order".to_string(), table::secs(with)]);
    table::row(&["flattened".to_string(), table::secs(without)]);
    table::write_csv(
        "ablation_priorities",
        &["with_priorities_s", "flattened_s"],
        &[vec![with, without]],
    );
}

/// Delay-scheduling ablation for the Yarn-CS baseline.
fn delay_sched_ablation() {
    table::section("Ablation: Yarn-CS delay-scheduling wait (W1 batch)");
    table::row(&["wait", "cross-rack GB", "makespan"]);
    let jobs = workload("W1");
    let mut csv = Vec::new();
    for wait in [0u32, 3, 10] {
        let mut rc = RunConfig::testbed(Objective::Makespan);
        rc.params.locality_wait_slots = wait;
        let r = run_variant(Variant::YarnCs, &jobs, &rc);
        table::row(&[
            format!("{wait}"),
            format!("{:.0}", r.cross_rack_bytes.as_gb()),
            table::secs(r.makespan.as_secs()),
        ]);
        csv.push(vec![
            wait as f64,
            r.cross_rack_bytes.as_gb(),
            r.makespan.as_secs(),
        ]);
    }
    table::write_csv(
        "ablation_delay_sched",
        &["wait", "cross_rack_gb", "makespan_s"],
        &csv,
    );
}

/// Ingest ablation: upload modeling and lead time. Online arrivals — with
/// a batch (all arrivals at 0) every lead time clamps to zero and the
/// sweep would be degenerate.
fn ingest_ablation() {
    table::section("Ablation: input upload modeling (W1 online, Corral)");
    table::row(&["ingest", "makespan", "median jct"]);
    let jobs = workload_online("W1", 0xAB1);
    let mut csv = Vec::new();
    for (label, mode) in [
        ("preloaded", IngestMode::Preloaded),
        (
            "upload, no lead",
            IngestMode::Simulated {
                lead_time: SimTime::ZERO,
            },
        ),
        (
            "upload, 10min lead",
            IngestMode::Simulated {
                lead_time: SimTime::minutes(10.0),
            },
        ),
        (
            "upload, 60min lead",
            IngestMode::Simulated {
                lead_time: SimTime::minutes(60.0),
            },
        ),
    ] {
        let mut rc = RunConfig::testbed(Objective::AvgCompletionTime);
        rc.params.ingest = mode;
        let r = run_variant(Variant::Corral, &jobs, &rc);
        assert_eq!(r.unfinished, 0, "{label}: unfinished");
        table::row(&[
            label.to_string(),
            table::secs(r.makespan.as_secs()),
            table::secs(r.median_completion_time()),
        ]);
        let lead = match mode {
            IngestMode::Preloaded => -1.0,
            IngestMode::Simulated { lead_time } => lead_time.as_secs(),
        };
        csv.push(vec![lead, r.makespan.as_secs(), r.median_completion_time()]);
    }
    table::write_csv(
        "ablation_ingest",
        &["lead_s", "makespan_s", "median_jct_s"],
        &csv,
    );
}

/// Straggler / speculative-execution ablation (runtime factors the
/// planner's latency model deliberately ignores, §4.3).
fn straggler_ablation() {
    table::section("Ablation: stragglers & speculative execution (W1 batch, Corral)");
    table::row(&["variant", "makespan", "p90 jct"]);
    let jobs = workload("W1");
    let mut csv = Vec::new();
    for (label, model) in [
        ("no stragglers", None),
        (
            "stragglers",
            Some(StragglerModel {
                probability: 0.05,
                slowdown: 5.0,
                speculate: false,
                spec_threshold: 1.5,
            }),
        ),
        (
            "with speculation",
            Some(StragglerModel {
                probability: 0.05,
                slowdown: 5.0,
                speculate: true,
                spec_threshold: 1.5,
            }),
        ),
    ] {
        let mut rc = RunConfig::testbed(Objective::Makespan);
        rc.params.stragglers = model;
        let r = run_variant(Variant::Corral, &jobs, &rc);
        let t = r.completion_times();
        table::row(&[
            label.to_string(),
            table::secs(r.makespan.as_secs()),
            table::secs(corral_cluster::metrics::percentile(&t, 90.0)),
        ]);
        csv.push(vec![
            model.map(|m| m.probability).unwrap_or(0.0),
            model
                .map(|m| if m.speculate { 1.0 } else { 0.0 })
                .unwrap_or(0.0),
            r.makespan.as_secs(),
        ]);
    }
    table::write_csv(
        "ablation_stragglers",
        &["prob", "speculate", "makespan_s"],
        &csv,
    );
}

/// Machine churn ablation (§7 resilience beyond single injected failures).
fn churn_ablation() {
    table::section("Ablation: machine churn (W1 batch)");
    table::row(&["MTBF", "yarn-cs", "corral"]);
    let jobs = workload("W1");
    let mut csv = Vec::new();
    for (label, mtbf_min) in [("none", 0.0), ("60min", 60.0), ("20min", 20.0)] {
        let mut rc = RunConfig::testbed(Objective::Makespan);
        if mtbf_min > 0.0 {
            rc.params.failures = poisson_churn(
                &rc.params.cluster,
                corral_model::SimTime::minutes(mtbf_min),
                corral_model::SimTime::minutes(2.0),
                corral_model::SimTime::hours(6.0),
                0xC1124,
            );
        }
        let y = run_variant(Variant::YarnCs, &jobs, &rc);
        let c = run_variant(Variant::Corral, &jobs, &rc);
        assert_eq!(y.unfinished + c.unfinished, 0, "churn must not strand jobs");
        table::row(&[
            label.to_string(),
            table::secs(y.makespan.as_secs()),
            table::secs(c.makespan.as_secs()),
        ]);
        csv.push(vec![mtbf_min, y.makespan.as_secs(), c.makespan.as_secs()]);
    }
    table::write_csv("ablation_churn", &["mtbf_min", "yarn_s", "corral_s"], &csv);
}

/// Runs all ablations.
pub fn main() {
    alpha_ablation();
    priority_ablation();
    delay_sched_ablation();
    ingest_ablation();
    straggler_ablation();
    churn_ablation();
}
