//! Fabric hot-path microbenchmark: times the event loop of the flow-level
//! simulator under synthetic arrival/completion churn at several cluster
//! scales, comparing the optimized CSR max-min path
//! ([`corral_simnet::FairShare`]) against the pre-optimization reference
//! ([`corral_simnet::ReferenceFairShare`]), plus one interleaved Varys
//! cell pair — the verbatim eager per-event SEBF solve
//! ([`Fabric::new_eager`]) against the coflow-incremental mode — and one
//! real fig6-shaped scheduling cell (Corral on the W1 smoke workload,
//! `Tcp` vs `TcpReference`). Writes `BENCH_fabric.json` in the working
//! directory (each synthetic cell carries a `policy` field).
//!
//! Not part of `repro all` (it times the simulator, not a paper artifact);
//! CI runs `repro fabricbench` as a perf-smoke step. Because both
//! allocators are bit-identical by construction, the *recompute counts* of
//! every cell are deterministic; they are embedded below as golden values
//! and any drift fails the run — a cheap end-to-end tripwire for
//! accidental changes to event ordering or rate arithmetic. Wall-clock
//! numbers are recorded but never asserted (CI timing is noisy).
//!
//! Regenerate the golden table after an *intentional* event-order change
//! by running with `CORRAL_FABRICBENCH_BLESS=1` and pasting the printed
//! constants.

use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_cluster::config::NetPolicy;
use corral_core::Objective;
use corral_model::{Bytes, ClusterConfig, MachineId, SimTime};
use corral_simnet::{
    CoflowId, Fabric, FairShare, FlowKind, FlowSpec, FlowTag, RateAllocator, ReferenceFairShare,
    VarysSebf,
};
use corral_trace::CounterSet;
use corral_workloads::{assign_uniform_arrivals, w1};
use std::time::Instant;

/// One synthetic churn scale.
struct ScaleSpec {
    name: &'static str,
    racks: usize,
    machines_per_rack: usize,
    /// Concurrent flows maintained throughout the run.
    concurrency: usize,
    /// Flow completions to process before stopping the clock.
    completions: u64,
    seed: u64,
}

/// Small / medium / large synthetic fabrics. The large scale (20 racks ×
/// 16 machines, 640 concurrent flows) was the original acceptance cell
/// (CSR ≥ 2× over reference). Since the incremental fabric landed, both
/// allocators share the component decomposition and only the per-component
/// kernel differs, so the gap here is structurally smaller; the scale-out
/// story lives in fig14-xl (`BENCH_scale.json`) instead.
const SCALES: [ScaleSpec; 3] = [
    ScaleSpec {
        name: "small",
        racks: 3,
        machines_per_rack: 4,
        concurrency: 48,
        completions: 4000,
        seed: 0xFAB_0001,
    },
    ScaleSpec {
        name: "medium",
        racks: 10,
        machines_per_rack: 16,
        concurrency: 512,
        completions: 6000,
        seed: 0xFAB_0002,
    },
    ScaleSpec {
        name: "large",
        racks: 20,
        machines_per_rack: 16,
        concurrency: 640,
        completions: 12000,
        seed: 0xFAB_0003,
    },
];

/// Golden recompute counts per synthetic scale (identical for both
/// allocators — that identity is itself asserted). Drift here means the
/// fabric's event ordering or rate arithmetic changed; bless deliberately
/// (see module docs) or find the regression.
const GOLDEN_RECOMPUTES: [(&str, u64); 3] = [("small", 7996), ("medium", 11954), ("large", 23940)];

/// Golden recompute counts of the *coflow-incremental* Varys pass (the
/// eager pass recomputes per event batch by construction and is the
/// wall-clock baseline, not a counter oracle). `varys-small` backs the
/// perfreport tripwire, `varys-medium` the interleaved bench cell.
const GOLDEN_VARYS_RECOMPUTES: [(&str, u64); 2] =
    [("varys-small", 7913), ("varys-medium", 11904)];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Starts one flow: sources cycle round-robin over the machines and every
/// flow goes to the same position in the next rack, so per-link flow
/// counts stay near-uniform (the balanced all-to-all traffic of a large
/// shuffle) and every flow crosses the oversubscribed core — the regime
/// the paper's fluid simulations exercise hardest. Sizes are random
/// (8–263 MB), so completion *order* — and with it the churn the
/// allocator sees — stays irregular. Roughly half the flows are grouped
/// into one of 24 coflows.
fn spawn_flow(
    fab: &mut Fabric,
    total_machines: u64,
    machines_per_rack: u64,
    seq: &mut u64,
    rng: &mut u64,
) {
    let src = *seq % total_machines;
    *seq += 1;
    let dst = (src + machines_per_rack) % total_machines;
    let bytes = Bytes::mb(8.0 + (splitmix64(rng) % 256) as f64);
    let group = splitmix64(rng) % 48;
    let coflow = (group < 24).then_some(CoflowId(group));
    fab.start_flow(FlowSpec {
        src: MachineId::from_index(src as usize),
        dst: MachineId::from_index(dst as usize),
        bytes,
        tag: FlowTag::infrastructure(FlowKind::Shuffle),
        coflow,
    });
}

/// Result of one (scale, allocator) churn cell.
struct CellResult {
    wall_s: f64,
    events: u64,
    recomputes: u64,
    maxmin_rounds: u64,
    scratch_grows: u64,
}

impl CellResult {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }

    /// Mean waterfilling rounds per recompute — the per-event cost the
    /// incremental fabric is supposed to hold flat as scale grows.
    fn rounds_per_recompute(&self) -> f64 {
        self.maxmin_rounds as f64 / self.recomputes.max(1) as f64
    }
}

/// Wall-clock repetitions per cell. Reference and CSR passes are
/// interleaved (one pair per repeat) so both see the same host
/// conditions; the reported speedup is the *median of per-pair ratios*,
/// which is robust to load bursts that would skew a ratio of two
/// independently-taken minima. Per-allocator walls report the minimum.
const REPEATS: usize = 7;

/// Runs one churn pass: fill the fabric to `concurrency` flows, then
/// replace every completed flow with a fresh one until `completions`
/// events have been processed, timing the whole event loop.
fn run_once(sc: &ScaleSpec, allocator: Box<dyn RateAllocator>) -> CellResult {
    run_once_with(sc, allocator, false)
}

/// [`run_once`] with an engine selector: `eager` forces the verbatim
/// per-event full-recompute fabric ([`Fabric::new_eager`]) — the
/// baseline side of the Varys pair.
fn run_once_with(sc: &ScaleSpec, allocator: Box<dyn RateAllocator>, eager: bool) -> CellResult {
    let cfg = ClusterConfig {
        racks: sc.racks,
        machines_per_rack: sc.machines_per_rack,
        ..ClusterConfig::tiny_test()
    };
    let nm = cfg.total_machines() as u64;
    let mpr = cfg.machines_per_rack as u64;
    let mut fab = if eager {
        Fabric::new_eager(cfg, allocator)
    } else {
        Fabric::new(cfg, allocator)
    };
    fab.set_full_oracle(false);
    let mut rng = sc.seed;
    let mut seq = 0u64;
    for _ in 0..sc.concurrency {
        spawn_flow(&mut fab, nm, mpr, &mut seq, &mut rng);
    }
    let mut done = Vec::new();
    let mut events = 0u64;
    let t0 = Instant::now();
    while events < sc.completions {
        let Some(tc) = fab.next_completion() else {
            break;
        };
        done.clear();
        fab.advance_collect(tc, &mut done);
        events += done.len() as u64;
        for _ in 0..done.len() {
            spawn_flow(&mut fab, nm, mpr, &mut seq, &mut rng);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let st = fab.stats();
    CellResult {
        wall_s,
        events,
        recomputes: st.recomputes,
        maxmin_rounds: st.maxmin_rounds,
        scratch_grows: st.scratch_grows,
    }
}

/// Runs one scale [`REPEATS`] times as back-to-back (reference, CSR)
/// pairs with a fresh fabric each pass. Every pass is deterministic, so
/// the event/recompute counters must agree across repeats *and* across
/// allocators (asserted — the runtime form of the bit-identity claim).
/// Returns (reference best, CSR best, median paired speedup).
fn run_pair(sc: &ScaleSpec) -> (CellResult, CellResult, f64) {
    let mut best_ref: Option<CellResult> = None;
    let mut best_csr: Option<CellResult> = None;
    let mut ratios = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        let r = run_once(sc, Box::new(ReferenceFairShare));
        let c = run_once(sc, Box::new(FairShare));
        assert_eq!(
            r.events, c.events,
            "{}: allocators disagree on completion count",
            sc.name
        );
        assert_eq!(
            r.recomputes, c.recomputes,
            "{}: allocators disagree on recompute count (bit-identity broken?)",
            sc.name
        );
        if let Some(b) = &best_ref {
            assert_eq!(b.events, r.events, "{}: non-deterministic repeat", sc.name);
            assert_eq!(
                b.recomputes, r.recomputes,
                "{}: non-deterministic repeat",
                sc.name
            );
        }
        ratios.push(r.wall_s / c.wall_s.max(1e-9));
        if best_ref.as_ref().is_none_or(|b| r.wall_s < b.wall_s) {
            best_ref = Some(r);
        }
        if best_csr.as_ref().is_none_or(|b| c.wall_s < b.wall_s) {
            best_csr = Some(c);
        }
    }
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    (best_ref.unwrap(), best_csr.unwrap(), speedup)
}

/// Runs one scale as interleaved (eager, coflow-incremental) Varys
/// pairs — same churn script, same coflow tagging, two engines. Repeat
/// determinism is asserted per engine; the *cross*-engine counters are
/// not compared (the eager path schedules on live remaining bytes, the
/// incremental path on frozen-at-admission bytes — same SEBF family,
/// different clairvoyance; bit-identity of the incremental path is
/// asserted against the from-scratch oracle in fig14-xl and the simnet
/// property tests). Returns (eager best, incremental best, median
/// paired speedup).
fn run_varys_pair(sc: &ScaleSpec) -> (CellResult, CellResult, f64) {
    let mut best_eager: Option<CellResult> = None;
    let mut best_inc: Option<CellResult> = None;
    let mut ratios = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        let e = run_once_with(sc, Box::new(VarysSebf), true);
        let c = run_once_with(sc, Box::new(VarysSebf), false);
        if let Some(b) = &best_eager {
            assert_eq!(b.events, e.events, "{}: non-deterministic repeat", sc.name);
            assert_eq!(
                b.recomputes, e.recomputes,
                "{}: non-deterministic repeat",
                sc.name
            );
        }
        if let Some(b) = &best_inc {
            assert_eq!(b.events, c.events, "{}: non-deterministic repeat", sc.name);
            assert_eq!(
                b.recomputes, c.recomputes,
                "{}: non-deterministic repeat",
                sc.name
            );
        }
        ratios.push(e.wall_s / c.wall_s.max(1e-9));
        if best_eager.as_ref().is_none_or(|b| e.wall_s < b.wall_s) {
            best_eager = Some(e);
        }
        if best_inc.as_ref().is_none_or(|b| c.wall_s < b.wall_s) {
            best_inc = Some(c);
        }
    }
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    (best_eager.unwrap(), best_inc.unwrap(), speedup)
}

/// One small-scale churn pass on the CSR allocator, for `repro
/// perfreport`: populates the fabric probe spans and counters with live
/// data. Returns `(recomputes, golden_recomputes)` so the report can
/// re-check the small-cell tripwire without re-running the full bench.
pub(crate) fn probe_cell_small() -> (u64, u64) {
    let c = run_once(&SCALES[0], Box::new(FairShare));
    (c.recomputes, GOLDEN_RECOMPUTES[0].1)
}

/// The Varys companion to [`probe_cell_small`]: one eager and one
/// coflow-incremental churn pass at the small scale, so the probe
/// report sees both sides of the split recompute counters
/// (`fabric.recompute_full_eager` from the eager pass,
/// `fabric.recompute_full_boundary` / `fabric.recompute_incremental` /
/// `fabric.varys_scratch_elems` from the incremental one). Returns the
/// incremental pass's `(recomputes, golden_recomputes)` tripwire pair.
pub(crate) fn probe_cell_varys() -> (u64, u64) {
    let _ = run_once_with(&SCALES[0], Box::new(VarysSebf), true);
    let c = run_once_with(&SCALES[0], Box::new(VarysSebf), false);
    (c.recomputes, GOLDEN_VARYS_RECOMPUTES[0].1)
}

/// The fig6-shaped real cell: Corral on the W1 smoke workload (same jobset
/// family sweepbench uses), timed under `Tcp` and `TcpReference`. Returns
/// (tcp_s, reference_s, summaries_identical).
fn run_fig6_cell() -> (f64, f64, bool) {
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 40,
            bytes_per_task: 512e6,
            ..w1::W1Params::with_seed(0xA001)
        },
        crate::experiments::bench_scale(),
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(20.0), 0x1);
    let time_with = |net: NetPolicy| {
        let mut rc = RunConfig::testbed(Objective::Makespan);
        rc.params.net = net;
        let t0 = Instant::now();
        let r = run_variant(Variant::Corral, &jobs, &rc);
        (t0.elapsed().as_secs_f64(), r.summary.to_string())
    };
    let (tcp_s, tcp_summary) = time_with(NetPolicy::Tcp);
    let (ref_s, ref_summary) = time_with(NetPolicy::TcpReference);
    (tcp_s, ref_s, tcp_summary == ref_summary)
}

/// Runs the synthetic scales under both allocators plus the fig6-shaped
/// cell, checks golden recompute counts, and writes `BENCH_fabric.json`.
pub fn main() {
    table::section("fabricbench: fabric event-loop, reference vs CSR fast path");
    let bless = std::env::var_os("CORRAL_FABRICBENCH_BLESS").is_some();
    let counters = CounterSet::new(&[
        "fabric.completions",
        "fabric.recomputes",
        "fabric.maxmin_rounds",
        "fabric.scratch_grows",
    ]);

    table::row(&[
        "scale", "alloc", "events", "wall", "events/s", "recomp", "rounds", "grows", "speedup",
    ]);
    let mut cell_json = Vec::new();
    let mut drift = Vec::new();
    for sc in &SCALES {
        let (reference, optimized, speedup) = run_pair(sc);
        counters.add("fabric.completions", optimized.events);
        counters.add("fabric.recomputes", optimized.recomputes);
        counters.add("fabric.maxmin_rounds", optimized.maxmin_rounds);
        counters.add("fabric.scratch_grows", optimized.scratch_grows);
        for (label, c) in [("reference", &reference), ("csr", &optimized)] {
            table::row(&[
                sc.name.to_string(),
                label.to_string(),
                c.events.to_string(),
                table::secs(c.wall_s),
                format!("{:.0}", c.events_per_sec()),
                c.recomputes.to_string(),
                c.maxmin_rounds.to_string(),
                c.scratch_grows.to_string(),
                if label == "csr" {
                    format!("{speedup:.2}x")
                } else {
                    "-".into()
                },
            ]);
        }
        let golden = GOLDEN_RECOMPUTES
            .iter()
            .find(|(n, _)| *n == sc.name)
            .map(|&(_, v)| v)
            .unwrap();
        if optimized.recomputes != golden {
            drift.push(format!(
                "{}: recomputes {} != golden {}",
                sc.name, optimized.recomputes, golden
            ));
        }
        cell_json.push(format!(
            "    {{\"scale\": \"{}\", \"policy\": \"fair\", \"events\": {}, \
             \"reference_s\": {:.3}, \
             \"csr_s\": {:.3}, \"speedup\": {:.3}, \"recomputes\": {}, \
             \"maxmin_rounds\": {}, \"rounds_per_recompute\": {:.3}, \
             \"scratch_grows\": {}}}",
            sc.name,
            optimized.events,
            reference.wall_s,
            optimized.wall_s,
            speedup,
            optimized.recomputes,
            optimized.maxmin_rounds,
            optimized.rounds_per_recompute(),
            optimized.scratch_grows,
        ));
        if sc.name == "large" && speedup < 2.0 {
            println!("   warning: large-scale speedup {speedup:.2}x below the 2x target");
        }
    }

    // Varys pair: the eager (per-event full SEBF solve) fabric against
    // the coflow-incremental one, medium scale, same interleaved-pair
    // protocol as the fair cells.
    {
        let sc = &SCALES[1];
        let (eager, inc, speedup) = run_varys_pair(sc);
        for (label, c) in [("eager", &eager), ("coflow", &inc)] {
            table::row(&[
                "varys-med".to_string(),
                label.to_string(),
                c.events.to_string(),
                table::secs(c.wall_s),
                format!("{:.0}", c.events_per_sec()),
                c.recomputes.to_string(),
                c.maxmin_rounds.to_string(),
                c.scratch_grows.to_string(),
                if label == "coflow" {
                    format!("{speedup:.2}x")
                } else {
                    "-".into()
                },
            ]);
        }
        let golden = GOLDEN_VARYS_RECOMPUTES[1].1;
        if inc.recomputes != golden {
            drift.push(format!(
                "varys-medium: recomputes {} != golden {golden}",
                inc.recomputes
            ));
        }
        cell_json.push(format!(
            "    {{\"scale\": \"medium\", \"policy\": \"varys\", \"events\": {}, \
             \"reference_s\": {:.3}, \
             \"csr_s\": {:.3}, \"speedup\": {:.3}, \"recomputes\": {}, \
             \"maxmin_rounds\": {}, \"rounds_per_recompute\": {:.3}, \
             \"scratch_grows\": {}}}",
            inc.events,
            eager.wall_s,
            inc.wall_s,
            speedup,
            inc.recomputes,
            inc.maxmin_rounds,
            inc.rounds_per_recompute(),
            inc.scratch_grows,
        ));
    }

    let (tcp_s, ref_s, identical) = run_fig6_cell();
    assert!(
        identical,
        "fig6-shaped cell: Tcp and TcpReference summaries differ (bit-identity broken)"
    );
    let fig6_speedup = ref_s / tcp_s.max(1e-9);
    table::row(&[
        "fig6-w1".into(),
        "engine".into(),
        "-".into(),
        table::secs(tcp_s),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{fig6_speedup:.2}x"),
    ]);

    for (name, v) in counters.snapshot() {
        println!("   {name} = {v}");
    }

    if !drift.is_empty() {
        if bless {
            println!(
                "   bless mode: update GOLDEN_RECOMPUTES / GOLDEN_VARYS_RECOMPUTES \
                 to the counts above"
            );
        } else {
            panic!(
                "fabricbench recompute-counter drift:\n  {}",
                drift.join("\n  ")
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"fabric_fast_path\",\n  \"cells\": [\n{}\n  ],\n  \
         \"fig6_cell\": {{\"variant\": \"corral\", \"workload\": \"w1_smoke\", \
         \"tcp_s\": {tcp_s:.3}, \"tcp_reference_s\": {ref_s:.3}, \
         \"speedup\": {fig6_speedup:.3}, \"identical\": {identical}}}\n}}\n",
        cell_json.join(",\n")
    );
    std::fs::write("BENCH_fabric.json", &json).expect("write BENCH_fabric.json");
    println!("   wrote BENCH_fabric.json");
}
