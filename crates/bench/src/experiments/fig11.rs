//! Figure 11 — mixed recurring + ad hoc workload (§6.4): 100 recurring W1
//! jobs arriving over [0, 60 min] (planned by Corral) and 50 ad hoc W1
//! jobs submitted as a batch (always scheduled Yarn-CS-style). Paper:
//! planning the recurring jobs improves recurring completion times by ~33%
//! (mean) / 27% (median) *and* speeds up the ad hoc jobs (~37% at the 90th
//! percentile, ~28% better makespan) because planned jobs free core
//! bandwidth.

use crate::experiments::bench_scale;
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_cluster::metrics::{percentile, reduction_pct};
use corral_core::Objective;
use corral_model::{JobId, JobSpec, SimTime};
use corral_workloads::{assign_uniform_arrivals, w1};

/// Builds the mix. Returns (jobs, recurring ids, ad hoc ids).
pub fn mixed_workload() -> (Vec<JobSpec>, Vec<JobId>, Vec<JobId>) {
    let mut recurring = w1::generate(
        &w1::W1Params {
            jobs: 100,
            bytes_per_task: 512e6,
            ..w1::W1Params::with_seed(0xF11A)
        },
        bench_scale(),
    );
    assign_uniform_arrivals(&mut recurring, SimTime::minutes(60.0), 0xF11B);
    let rec_ids: Vec<JobId> = recurring.iter().map(|j| j.id).collect();

    // Ad hoc jobs are the small research/testing jobs of §6.4 — a
    // small/medium W1 mix (a batch as heavy as the planned workload would
    // simply saturate the cluster for both systems).
    let mut adhoc = w1::generate(
        &w1::W1Params {
            jobs: 50,
            mix: [0.7, 0.3, 0.0],
            bytes_per_task: 512e6,
            ..w1::W1Params::with_seed(0xF11C)
        },
        bench_scale(),
    );
    let mut adhoc_ids = Vec::new();
    for (i, j) in adhoc.iter_mut().enumerate() {
        j.id = JobId(1000 + i as u32);
        j.plannable = false;
        j.arrival = SimTime::ZERO;
        adhoc_ids.push(j.id);
    }
    let mut jobs = recurring;
    jobs.extend(adhoc);
    (jobs, rec_ids, adhoc_ids)
}

fn times_of(r: &corral_cluster::metrics::RunReport, ids: &[JobId]) -> Vec<f64> {
    let mut v: Vec<f64> = ids
        .iter()
        .filter_map(|id| r.jobs.get(id))
        .filter_map(|m| m.completion_time().map(|t| t.as_secs()))
        .collect();
    v.sort_by(f64::total_cmp);
    v
}

/// Prints recurring and ad hoc CDpercentiles under both systems.
pub fn main() {
    table::section("Figure 11: recurring + ad hoc mix (completion-time percentiles, s)");
    let (jobs, rec_ids, adhoc_ids) = mixed_workload();
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);

    let mut rows: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for v in [Variant::YarnCs, Variant::Corral] {
        let r = run_variant(v, &jobs, &rc);
        assert_eq!(r.unfinished, 0, "{}: unfinished", v.label());
        rows.push((
            v.label().to_string(),
            times_of(&r, &rec_ids),
            times_of(&r, &adhoc_ids),
        ));
    }

    let mut csv = Vec::new();
    for (group_idx, group) in ["recurring", "ad-hoc"].iter().enumerate() {
        table::row(&[group.to_string(), "p50".into(), "p90".into(), "mean".into()]);
        for (si, (label, rec, adhoc)) in rows.iter().enumerate() {
            let t = if group_idx == 0 { rec } else { adhoc };
            let mean = t.iter().sum::<f64>() / t.len().max(1) as f64;
            table::row(&[
                format!("  {label}"),
                table::secs(percentile(t, 50.0)),
                table::secs(percentile(t, 90.0)),
                table::secs(mean),
            ]);
            for r in table::cdf_rows(t) {
                csv.push(vec![group_idx as f64, si as f64, r[0], r[1]]);
            }
        }
    }
    let rec_gain = reduction_pct(
        rows[0].1.iter().sum::<f64>() / rows[0].1.len().max(1) as f64,
        rows[1].1.iter().sum::<f64>() / rows[1].1.len().max(1) as f64,
    );
    let adhoc_gain = reduction_pct(percentile(&rows[0].2, 90.0), percentile(&rows[1].2, 90.0));
    println!(
        "   corral gains: recurring mean {} | ad hoc p90 {}",
        table::pct(rec_gain),
        table::pct(adhoc_gain)
    );
    table::write_csv(
        "fig11_mix_cdf",
        &["group_idx", "system_idx", "completion_s", "cum_fraction"],
        &csv,
    );
}
