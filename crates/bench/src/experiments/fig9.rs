//! Figure 9 — reduction in *average* job completion time vs Yarn-CS for
//! workload W1 in the online scenario, binned by job size. The paper:
//! Corral gains 30–36% across all bins; ShuffleWatcher helps small/medium
//! jobs but hurts large ones.

use crate::experiments::workload_online;
use crate::runner::{run_variant_grid, RunConfig, Variant};
use crate::table;
use corral_cluster::metrics::{reduction_pct, RunReport};
use corral_core::Objective;
use corral_model::JobSpec;
use corral_workloads::w1::SizeClass;

fn bin_means(jobs: &[JobSpec], report: &RunReport, slots_per_rack: usize) -> [f64; 3] {
    let mut sums = [0.0; 3];
    let mut counts = [0usize; 3];
    for j in jobs {
        let Some(m) = report.jobs.get(&j.id) else {
            continue;
        };
        let Some(ct) = m.completion_time() else {
            continue;
        };
        let class = SizeClass::of_slots(m.slots_requested, slots_per_rack);
        let b = match class {
            SizeClass::Small => 0,
            SizeClass::Medium => 1,
            SizeClass::Large => 2,
        };
        sums[b] += ct.as_secs();
        counts[b] += 1;
    }
    let mut out = [0.0; 3];
    for b in 0..3 {
        out[b] = if counts[b] > 0 {
            sums[b] / counts[b] as f64
        } else {
            0.0
        };
    }
    out
}

/// Prints the per-bin reductions (pooled over the configured
/// arrival-seed pool, run as one parallel `(seed × variant)` sweep).
pub fn main() {
    table::section("Figure 9: % reduction in avg completion time by job size, W1 online");
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);
    let spr = rc.params.cluster.slots_per_rack();

    let seeds = crate::config::arrival_seeds();
    let jobsets: Vec<_> = seeds.iter().map(|&s| workload_online("W1", s)).collect();
    let grid = run_variant_grid(&jobsets, &rc);
    let mut means = vec![[0.0f64; 3]; Variant::ALL.len()];
    for (jobs, per_seed) in jobsets.iter().zip(&grid) {
        for (vi, r) in per_seed.iter().enumerate() {
            let m = bin_means(jobs, r, spr);
            for b in 0..3 {
                means[vi][b] += m[b] / seeds.len() as f64;
            }
        }
    }
    table::row(&["size", "corral", "localshuffle", "shufflewatcher"]);
    let labels = ["small", "medium", "large"];
    let mut csv = Vec::new();
    for b in 0..3 {
        table::row(&[
            labels[b].to_string(),
            table::pct(reduction_pct(means[0][b], means[1][b])),
            table::pct(reduction_pct(means[0][b], means[2][b])),
            table::pct(reduction_pct(means[0][b], means[3][b])),
        ]);
        csv.push(vec![
            b as f64,
            means[0][b],
            means[1][b],
            means[2][b],
            means[3][b],
        ]);
    }
    table::write_csv(
        "fig9_size_bins",
        &[
            "bin",
            "yarn_cs_s",
            "corral_s",
            "localshuffle_s",
            "shufflewatcher_s",
        ],
        &csv,
    );
}
