//! fig14-xl — fabric scale-out: incremental vs full recomputation from
//! 2k to 50k machines.
//!
//! Fig. 14's scheduling sweep tops out near testbed scale; this bench
//! asks the question the incremental fabric was built for: does the
//! event loop hold its per-event cost as the *fabric* grows to 50k
//! machines? Each cell drives synthetic flow churn shaped like W1 or W2
//! — flow sizes are drawn from the memoized paper workloads
//! ([`crate::experiments::workload_shared`]), so W2 cells inherit its
//! heavy skew — with traffic confined to bands of racks. Banding matters:
//! it keeps the link↔flow graph split into many independent components
//! (as real per-job shuffles do), which is the structure the incremental
//! recompute exploits; an all-to-all ring would collapse into one
//! component and show nothing.
//!
//! Two cell families:
//!
//! * **fair** — the memoryless max-min path. The "full" pass is the same
//!   run with the shadow oracle armed ([`Fabric::set_full_oracle`]):
//!   every recompute additionally re-solves the entire alive flow set
//!   from scratch — exactly what the pre-incremental fabric did per
//!   event — and asserts rate-bit equality with the incremental table
//!   while it's at it. Oracle-on and oracle-off passes must agree on
//!   every deterministic counter *and* on a digest of the completion
//!   stream (asserted).
//! * **varys** — the stateful Varys/SEBF path, flows grouped into
//!   band-local coflows. The "full" pass is the verbatim eager fabric
//!   ([`Fabric::new_eager`]): the whole SEBF + MADD + backfill solve per
//!   event batch, untouched pre-incremental code. The "incremental" pass
//!   is the coflow-local mode (frozen-at-admission SEBF bytes, dirty
//!   coflow re-rank, per-component backfill). The two engines schedule
//!   under *different* SEBF byte semantics (live vs frozen remaining),
//!   so their completion streams are not comparable; correctness is
//!   instead asserted by one extra untimed pass per cell with the
//!   from-scratch oracle armed, which must match the timed incremental
//!   pass on every counter and on the completion digest while asserting
//!   per-flow `rate.to_bits()` equality on every recompute internally.
//!
//! The reported speedup is the median paired wall ratio
//! (full / incremental). Writes `BENCH_scale.json` in the working
//! directory (each cell carries a `policy` field).
//!
//! Not part of `repro all` (it times the simulator, not a paper
//! artifact); CI runs the 2k-machine cells of both families as
//! `repro scalebench`. Cells outside the selected subset are logged as
//! skipped, never silently dropped. The recompute and waterfilling-round
//! counts per cell are golden below: drift means event ordering, the
//! dirty-set propagation, or the rate arithmetic changed. Regenerate
//! after an *intentional* change with `CORRAL_SCALEBENCH_BLESS=1` and
//! paste the printed constants.

use crate::table;
use corral_model::{Bytes, ClusterConfig, MachineId};
use corral_simnet::{CoflowId, Fabric, FairShare, FlowKind, FlowSpec, FlowTag, VarysSebf};
use std::time::Instant;

/// Racks per traffic band: flows never leave their band, so each band is
/// (at most) one connected component of the link↔flow graph.
const BAND_RACKS: usize = 5;

/// Consecutive same-band spawns grouped into one coflow under the varys
/// policy (≈ one small shuffle wave per band).
const COFLOW_WIDTH: u64 = 4;

/// Network scheduling policy of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// Memoryless max-min fair sharing ([`FairShare`]).
    Fair,
    /// Varys SEBF + MADD + backfill ([`VarysSebf`]), coflow-tagged flows.
    Varys,
}

impl Policy {
    fn label(self) -> &'static str {
        match self {
            Policy::Fair => "fair",
            Policy::Varys => "varys",
        }
    }
}

/// One scale-out cell: a workload shape at a machine count.
struct CellSpec {
    name: &'static str,
    /// Workload whose per-task shuffle sizes shape the flow sizes.
    workload: &'static str,
    policy: Policy,
    racks: usize,
    machines_per_rack: usize,
    /// Concurrent flows maintained throughout the run.
    concurrency: usize,
    /// Flow completions to process before stopping the clock.
    completions: u64,
    seed: u64,
}

impl CellSpec {
    fn machines(&self) -> usize {
        self.racks * self.machines_per_rack
    }
}

/// {2k, 10k, 50k} machines × {W1, W2} × {fair, varys}. The 50k cells are
/// the acceptance cells: each incremental path must beat its full
/// re-solve by ≥ 5× there. The first four (2k) cells double as the CI
/// smoke subset, so the coflow-incremental path is smoke-covered too.
static CELLS: [CellSpec; 12] = [
    CellSpec {
        name: "w1-2k",
        workload: "W1",
        policy: Policy::Fair,
        racks: 50,
        machines_per_rack: 40,
        concurrency: 1000,
        completions: 2000,
        seed: 0x5CA1_0001,
    },
    CellSpec {
        name: "w2-2k",
        workload: "W2",
        policy: Policy::Fair,
        racks: 50,
        machines_per_rack: 40,
        concurrency: 1000,
        completions: 2000,
        seed: 0x5CA1_0002,
    },
    CellSpec {
        name: "varys-w1-2k",
        workload: "W1",
        policy: Policy::Varys,
        racks: 50,
        machines_per_rack: 40,
        concurrency: 1000,
        completions: 2000,
        seed: 0x5CA1_1001,
    },
    CellSpec {
        name: "varys-w2-2k",
        workload: "W2",
        policy: Policy::Varys,
        racks: 50,
        machines_per_rack: 40,
        concurrency: 1000,
        completions: 2000,
        seed: 0x5CA1_1002,
    },
    CellSpec {
        name: "w1-10k",
        workload: "W1",
        policy: Policy::Fair,
        racks: 250,
        machines_per_rack: 40,
        concurrency: 2500,
        completions: 2500,
        seed: 0x5CA1_0003,
    },
    CellSpec {
        name: "w2-10k",
        workload: "W2",
        policy: Policy::Fair,
        racks: 250,
        machines_per_rack: 40,
        concurrency: 2500,
        completions: 2500,
        seed: 0x5CA1_0004,
    },
    CellSpec {
        name: "varys-w1-10k",
        workload: "W1",
        policy: Policy::Varys,
        racks: 250,
        machines_per_rack: 40,
        concurrency: 2500,
        completions: 2500,
        seed: 0x5CA1_1003,
    },
    CellSpec {
        name: "varys-w2-10k",
        workload: "W2",
        policy: Policy::Varys,
        racks: 250,
        machines_per_rack: 40,
        concurrency: 2500,
        completions: 2500,
        seed: 0x5CA1_1004,
    },
    CellSpec {
        name: "w1-50k",
        workload: "W1",
        policy: Policy::Fair,
        racks: 1250,
        machines_per_rack: 40,
        concurrency: 6000,
        completions: 3000,
        seed: 0x5CA1_0005,
    },
    CellSpec {
        name: "w2-50k",
        workload: "W2",
        policy: Policy::Fair,
        racks: 1250,
        machines_per_rack: 40,
        concurrency: 6000,
        completions: 3000,
        seed: 0x5CA1_0006,
    },
    CellSpec {
        name: "varys-w1-50k",
        workload: "W1",
        policy: Policy::Varys,
        racks: 1250,
        machines_per_rack: 40,
        concurrency: 6000,
        completions: 3000,
        seed: 0x5CA1_1005,
    },
    CellSpec {
        name: "varys-w2-50k",
        workload: "W2",
        policy: Policy::Varys,
        racks: 1250,
        machines_per_rack: 40,
        concurrency: 6000,
        completions: 3000,
        seed: 0x5CA1_1006,
    },
];

/// Golden `(recomputes, maxmin_rounds)` of the timed incremental pass
/// per cell. For fair cells these are identical between the oracle-on
/// and oracle-off passes (that identity is itself asserted — the oracle
/// must not perturb the run); for varys cells the identity is asserted
/// against the extra oracle-armed pass. Drift against these constants
/// means the fabric's behavior changed. Bless deliberately (module docs)
/// or find the regression.
const GOLDEN: [(&str, u64, u64); 12] = [
    ("w1-2k", 3985, 45448),
    ("w2-2k", 3990, 45376),
    ("varys-w1-2k", 3928, 61170),
    ("varys-w2-2k", 3915, 66920),
    ("w1-10k", 4616, 21922),
    ("w2-10k", 4801, 22531),
    ("varys-w1-10k", 3864, 96117),
    ("varys-w2-10k", 3915, 94923),
    ("w1-50k", 3805, 13751),
    ("w2-50k", 4187, 13569),
    ("varys-w1-50k", 1380, 83595),
    ("varys-w2-50k", 1693, 85628),
];

/// Timed (full, incremental) pairs per cell in the full bench; the smoke
/// subset runs one pair.
const REPEATS: usize = 3;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Empirical per-task shuffle sizes of a paper workload, sorted for
/// determinism. Built once per workload via the process-wide memoized
/// jobsets — all same-workload cells share one construction.
fn size_table(workload: &str) -> Vec<f64> {
    let jobs = crate::experiments::workload_shared(workload);
    let mut sizes: Vec<f64> = jobs
        .iter()
        .map(|j| {
            let tasks = j.profile.total_tasks().max(1) as f64;
            (j.profile.total_shuffle().0 / tasks).max(1e6)
        })
        .collect();
    sizes.sort_by(f64::total_cmp);
    sizes
}

/// Starts one flow: round-robin over bands, random endpoints within the
/// band (source and destination racks forced distinct, so every flow
/// crosses the oversubscribed core), size drawn from the workload's
/// per-task shuffle table. Under the varys policy, [`COFLOW_WIDTH`]
/// consecutive same-band spawns share a coflow id (band in the high
/// half, wave in the low — band-local coflows keep the coflow↔component
/// structure the incremental path exploits).
fn spawn_flow(fab: &mut Fabric, c: &CellSpec, sizes: &[f64], seq: &mut u64, rng: &mut u64) {
    let bands = c.racks / BAND_RACKS;
    let band = (*seq as usize) % bands;
    let coflow = match c.policy {
        Policy::Fair => None,
        Policy::Varys => {
            let wave = (*seq / bands as u64) / COFLOW_WIDTH;
            Some(CoflowId(((band as u64) << 32) | wave))
        }
    };
    *seq += 1;
    let r = splitmix64(rng);
    let src_rack = band * BAND_RACKS + (r as usize >> 8) % BAND_RACKS;
    let src_m = (r as usize >> 24) % c.machines_per_rack;
    let r2 = splitmix64(rng);
    let mut dst_rack = band * BAND_RACKS + (r2 as usize >> 8) % BAND_RACKS;
    if dst_rack == src_rack {
        dst_rack = band * BAND_RACKS + (src_rack - band * BAND_RACKS + 1) % BAND_RACKS;
    }
    let dst_m = (r2 as usize >> 24) % c.machines_per_rack;
    let bytes = Bytes(sizes[splitmix64(rng) as usize % sizes.len()]);
    fab.start_flow(FlowSpec {
        src: MachineId::from_index(src_rack * c.machines_per_rack + src_m),
        dst: MachineId::from_index(dst_rack * c.machines_per_rack + dst_m),
        bytes,
        tag: FlowTag::infrastructure(FlowKind::Shuffle),
        coflow,
    });
}

/// Deterministic counters of one pass (wall excluded). `digest` folds
/// every completion's `(id, finished-time bits, byte bits)` through
/// FNV-1a in completion order — byte-identical completion streams and
/// nothing less.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct PassCounts {
    events: u64,
    recomputes: u64,
    recomputes_incremental: u64,
    recomputes_full_boundary: u64,
    maxmin_rounds: u64,
    dirty_flows: u64,
    digest: u64,
}

struct PassResult {
    wall_s: f64,
    counts: PassCounts,
    links: usize,
}

/// Which engine/oracle combination a pass runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pass {
    /// The timed baseline. Fair: the incremental fabric with the shadow
    /// from-scratch oracle armed (the pre-incremental per-event cost).
    /// Varys: the verbatim eager fabric ([`Fabric::new_eager`]).
    Full,
    /// The timed incremental pass, oracle off.
    Incremental,
    /// Untimed correctness pass (varys only): the incremental fabric
    /// with the from-scratch oracle armed.
    Check,
}

fn fnv1a(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One churn pass: fill to `concurrency`, replace each completion until
/// `completions` events, timing the whole loop.
fn run_once(c: &CellSpec, sizes: &[f64], pass: Pass) -> PassResult {
    let cfg = ClusterConfig {
        racks: c.racks,
        machines_per_rack: c.machines_per_rack,
        ..ClusterConfig::tiny_test()
    };
    let mut fab = match (c.policy, pass) {
        (Policy::Fair, _) => Fabric::new(cfg, Box::new(FairShare)),
        (Policy::Varys, Pass::Full) => Fabric::new_eager(cfg, Box::new(VarysSebf)),
        (Policy::Varys, _) => Fabric::new(cfg, Box::new(VarysSebf)),
    };
    fab.set_full_oracle(match c.policy {
        Policy::Fair => pass == Pass::Full,
        Policy::Varys => pass == Pass::Check,
    });
    let links = fab.topology().links().len();
    let mut rng = c.seed;
    let mut seq = 0u64;
    let mut done = Vec::new();
    let mut events = 0u64;
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let t0 = Instant::now();
    for _ in 0..c.concurrency {
        spawn_flow(&mut fab, c, sizes, &mut seq, &mut rng);
    }
    while events < c.completions {
        let Some(tc) = fab.next_completion() else {
            break;
        };
        done.clear();
        fab.advance_collect(tc, &mut done);
        events += done.len() as u64;
        for f in &done {
            digest = fnv1a(digest, f.id.0);
            digest = fnv1a(digest, f.finished.0.to_bits());
            digest = fnv1a(digest, f.bytes.0.to_bits());
        }
        for _ in 0..done.len() {
            spawn_flow(&mut fab, c, sizes, &mut seq, &mut rng);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let st = fab.stats();
    PassResult {
        wall_s,
        counts: PassCounts {
            events,
            recomputes: st.recomputes,
            recomputes_incremental: st.recomputes_incremental,
            recomputes_full_boundary: st.recomputes_full_boundary,
            maxmin_rounds: st.maxmin_rounds,
            dirty_flows: st.dirty_flows,
            digest,
        },
        links,
    }
}

/// One cell's collected result.
struct CellResult {
    name: &'static str,
    workload: &'static str,
    policy: Policy,
    machines: usize,
    links: usize,
    /// Counters of the timed incremental pass (golden-checked).
    counts: PassCounts,
    full_s: f64,
    incremental_s: f64,
    /// Median paired wall ratio full / incremental.
    speedup: f64,
}

/// Runs one cell `repeats` times as (full, incremental) pairs, asserting
/// every deterministic counter identical across repeats. Fair cells
/// additionally assert the oracle-armed pass identical to the plain one
/// (counters *and* completion digest); varys cells run one extra untimed
/// oracle-armed incremental pass and assert the same identity against it
/// (the eager baseline schedules under live-remaining SEBF, so it is a
/// wall-clock baseline only).
fn run_cell(c: &CellSpec, sizes: &[f64], repeats: usize) -> CellResult {
    let mut best_full = f64::INFINITY;
    let mut best_inc = f64::INFINITY;
    let mut full_counts: Option<PassCounts> = None;
    let mut inc_counts: Option<PassCounts> = None;
    let mut links = 0;
    let mut ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let full = run_once(c, sizes, Pass::Full);
        let inc = run_once(c, sizes, Pass::Incremental);
        if c.policy == Policy::Fair {
            assert_eq!(
                full.counts, inc.counts,
                "{}: oracle-armed pass diverged from the plain pass — the oracle \
                 must be observation-only",
                c.name
            );
        }
        if let Some(prev) = &full_counts {
            assert_eq!(*prev, full.counts, "{}: non-deterministic repeat", c.name);
        }
        if let Some(prev) = &inc_counts {
            assert_eq!(*prev, inc.counts, "{}: non-deterministic repeat", c.name);
        }
        full_counts = Some(full.counts);
        inc_counts = Some(inc.counts);
        links = inc.links;
        ratios.push(full.wall_s / inc.wall_s.max(1e-9));
        best_full = best_full.min(full.wall_s);
        best_inc = best_inc.min(inc.wall_s);
    }
    let inc_counts = inc_counts.unwrap();
    if c.policy == Policy::Varys {
        let check = run_once(c, sizes, Pass::Check);
        assert_eq!(
            check.counts, inc_counts,
            "{}: oracle-armed coflow pass diverged from the plain pass — the \
             oracle must be observation-only",
            c.name
        );
    }
    ratios.sort_by(f64::total_cmp);
    CellResult {
        name: c.name,
        workload: c.workload,
        policy: c.policy,
        machines: c.machines(),
        links,
        counts: inc_counts,
        full_s: best_full,
        incremental_s: best_inc,
        speedup: ratios[ratios.len() / 2],
    }
}

/// Shared driver: runs `cells` under the sweep pool, prints the table,
/// checks goldens, logs skipped cells, and writes `BENCH_scale.json`.
fn run(cells: &[CellSpec], repeats: usize, smoke: bool) {
    table::section(if smoke {
        "scalebench: fig14-xl smoke subset (2k machines, fair + varys)"
    } else {
        "fig14-xl: fabric scale-out, incremental vs full recompute"
    });
    let bless = std::env::var_os("CORRAL_SCALEBENCH_BLESS").is_some();
    for c in &CELLS {
        if !cells.iter().any(|s| s.name == c.name) {
            println!("   skipping cell {} (not in this subset)", c.name);
        }
    }
    // Same-workload cells share one memoized jobset; build the two size
    // tables up front so pooled cells only read.
    let w1_sizes = size_table("W1");
    let w2_sizes = size_table("W2");
    let sizes_of = |w: &str| -> &[f64] {
        if w == "W1" {
            &w1_sizes
        } else {
            &w2_sizes
        }
    };

    let results: Vec<CellResult> = crate::config::pool()
        .run_all(cells.len(), |i| {
            run_cell(&cells[i], sizes_of(cells[i].workload), repeats)
        })
        .into_iter()
        .collect();

    table::row(&[
        "cell", "machines", "links", "events", "recomp", "rounds", "dirty/rc", "full", "incr",
        "speedup",
    ]);
    let mut cell_json = Vec::new();
    let mut drift = Vec::new();
    for r in &results {
        let dirty_per = r.counts.dirty_flows as f64 / r.counts.recomputes.max(1) as f64;
        let rounds_per = r.counts.maxmin_rounds as f64 / r.counts.recomputes.max(1) as f64;
        table::row(&[
            r.name.to_string(),
            r.machines.to_string(),
            r.links.to_string(),
            r.counts.events.to_string(),
            r.counts.recomputes.to_string(),
            r.counts.maxmin_rounds.to_string(),
            format!("{dirty_per:.1}"),
            table::secs(r.full_s),
            table::secs(r.incremental_s),
            format!("{:.2}x", r.speedup),
        ]);
        match r.policy {
            Policy::Fair => assert_eq!(
                r.counts.recomputes, r.counts.recomputes_incremental,
                "{}: FairShare cells must run fully incremental",
                r.name
            ),
            Policy::Varys => {
                assert!(
                    r.counts.recomputes_incremental > 0,
                    "{}: varys cells must exercise the coflow-incremental path",
                    r.name
                );
                assert_eq!(
                    r.counts.recomputes,
                    r.counts.recomputes_incremental + r.counts.recomputes_full_boundary,
                    "{}: varys recomputes must split into incremental + boundary-full \
                     (an Unsupported fallback leaked in)",
                    r.name
                );
            }
        }
        if let Some(&(_, g_rc, g_rounds)) = GOLDEN.iter().find(|(n, _, _)| *n == r.name) {
            if (r.counts.recomputes, r.counts.maxmin_rounds) != (g_rc, g_rounds) {
                drift.push(format!(
                    "{}: (recomputes, rounds) = ({}, {}) != golden ({g_rc}, {g_rounds})",
                    r.name, r.counts.recomputes, r.counts.maxmin_rounds
                ));
            }
        }
        if r.name.ends_with("-50k") && r.speedup < 5.0 {
            println!(
                "   warning: {} speedup {:.2}x below the 5x acceptance target",
                r.name, r.speedup
            );
        }
        cell_json.push(format!(
            "    {{\"cell\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
             \"machines\": {}, \"links\": {}, \
             \"events\": {}, \"recomputes\": {}, \"maxmin_rounds\": {}, \
             \"rounds_per_recompute\": {rounds_per:.3}, \"dirty_per_recompute\": {dirty_per:.3}, \
             \"full_s\": {:.4}, \"incremental_s\": {:.4}, \"speedup\": {:.3}}}",
            r.name,
            r.workload,
            r.policy.label(),
            r.machines,
            r.links,
            r.counts.events,
            r.counts.recomputes,
            r.counts.maxmin_rounds,
            r.full_s,
            r.incremental_s,
            r.speedup,
        ));
    }

    if bless {
        println!("   bless mode: paste into GOLDEN:");
        for r in &results {
            println!(
                "    (\"{}\", {}, {}),",
                r.name, r.counts.recomputes, r.counts.maxmin_rounds
            );
        }
    } else if !drift.is_empty() {
        panic!("fig14-xl counter drift:\n  {}", drift.join("\n  "));
    }

    let json = format!(
        "{{\n  \"bench\": \"fabric_scale\",\n  \"smoke\": {smoke},\n  \"cells\": [\n{}\n  ]\n}}\n",
        cell_json.join(",\n")
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("   wrote BENCH_scale.json");
}

/// The full sweep: all twelve cells, [`REPEATS`] timed pairs each.
pub fn main() {
    run(&CELLS, REPEATS, false);
}

/// CI smoke subset (`repro scalebench`): the four 2k-machine cells —
/// both policies — one timed pair each; same goldens, a fraction of the
/// wall time.
pub fn smoke() {
    run(&CELLS[..4], 1, true);
}
