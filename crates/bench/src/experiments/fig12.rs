//! Figure 12 — Corral's benefit vs Yarn-CS as background traffic grows:
//! per-rack core usage 30 / 35 / 40 Gbps of the 60 Gbps uplinks. Paper:
//! gains more than double from 30 to 40 Gbps, for both batch makespan and
//! online average job time (workload W1).

use crate::experiments::{workload, workload_online};
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_cluster::metrics::reduction_pct;
use corral_core::Objective;

/// Returns `(batch makespan reduction %, online avg-time reduction %)` for
/// one background level.
pub fn gains_at(gbps_equiv: f64) -> (f64, f64) {
    // `gbps_equiv` is in paper units: Gbps of the testbed's 60 Gbps rack
    // uplink; the scaled cluster applies the same *fraction*.
    let frac = gbps_equiv / 60.0;
    let mut rc = RunConfig::testbed(Objective::Makespan);
    rc.params.background = crate::runner::background_fraction(&rc.params.cluster, frac);
    let batch_jobs = workload("W1");
    let yarn = run_variant(Variant::YarnCs, &batch_jobs, &rc)
        .makespan
        .as_secs();
    let corral = run_variant(Variant::Corral, &batch_jobs, &rc)
        .makespan
        .as_secs();
    let batch_gain = reduction_pct(yarn, corral);

    let mut rc = RunConfig::testbed(Objective::AvgCompletionTime);
    rc.params.background = crate::runner::background_fraction(&rc.params.cluster, frac);
    let online_jobs = workload_online("W1", 0xF12);
    let yarn = run_variant(Variant::YarnCs, &online_jobs, &rc).avg_completion_time();
    let corral = run_variant(Variant::Corral, &online_jobs, &rc).avg_completion_time();
    let online_gain = reduction_pct(yarn, corral);
    (batch_gain, online_gain)
}

/// Prints the sweep.
pub fn main() {
    table::section("Figure 12: Corral gains vs Yarn-CS as background traffic grows (W1)");
    table::row(&["background", "makespan (batch)", "avg job time (online)"]);
    let mut csv = Vec::new();
    for &g in &[30.0, 35.0, 40.0] {
        let (batch, online) = gains_at(g);
        table::row(&[format!("{g:.0}Gbps"), table::pct(batch), table::pct(online)]);
        csv.push(vec![g, batch, online]);
    }
    table::write_csv(
        "fig12_background_sweep",
        &["background_gbps", "batch_gain_pct", "online_gain_pct"],
        &csv,
    );
}
