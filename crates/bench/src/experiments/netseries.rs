//! Core-utilization time series — the paper's central resource claim made
//! visible: "jobs run with Corral use significantly lower core bandwidth"
//! (§6.4), freeing the oversubscribed links for everything else.

use crate::experiments::workload_online;
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_core::Objective;
use corral_model::SimTime;

/// Runs W1 online under Yarn-CS and Corral with utilization sampling and
/// prints summary stats; full series go to CSV for the viz renderer.
pub fn main() {
    table::section("Core utilization over time, W1 online (job traffic only)");
    table::row(&["system", "mean util", "peak util", "busy>50%"]);
    let mut rc = RunConfig::testbed(Objective::AvgCompletionTime);
    rc.params.sample_core_utilization = Some(SimTime::secs(30.0));
    let jobs = workload_online("W1", 0xF18);

    let mut csv = Vec::new();
    for (si, v) in [Variant::YarnCs, Variant::Corral].iter().enumerate() {
        let r = run_variant(*v, &jobs, &rc);
        let series = &r.core_utilization_series;
        assert!(!series.is_empty(), "sampling must be on");
        let mean = series.iter().map(|&(_, u)| u).sum::<f64>() / series.len() as f64;
        let peak = series.iter().map(|&(_, u)| u).fold(0.0, f64::max);
        let busy = series.iter().filter(|&&(_, u)| u > 0.5).count() as f64 / series.len() as f64;
        table::row(&[
            v.label().to_string(),
            format!("{:.1}%", mean * 100.0),
            format!("{:.1}%", peak * 100.0),
            format!("{:.1}%", busy * 100.0),
        ]);
        for &(t, u) in series {
            csv.push(vec![si as f64, t, u * 100.0]);
        }
    }
    println!("   (fractions of aggregate rack-uplink capacity; background excluded)");
    table::write_csv("netseries", &["system_idx", "t_s", "core_util_pct"], &csv);
}
