//! §4.2 heuristic quality — the provisioning+prioritization heuristics vs
//! the LP lower bounds of Appendix A. Paper: within 3% of the LP for
//! makespan (batch) and 15% for average completion time (online).
//!
//! Both sides are evaluated in *planning-model space* (the latency response
//! functions), exactly as the paper does: the LP bounds any algorithm that
//! plans at rack granularity under the same latency model.

use crate::experiments::bench_scale;
use crate::table;
use corral_core::latency::{LatencyModel, ResponseOptions};
use corral_core::lp::{batch_lower_bound, online_lower_bound};
use corral_core::provision::{provision, provision_with_mode, ProvisionMode};
use corral_core::Objective;
use corral_model::{ClusterConfig, SimTime};
use corral_workloads::{assign_uniform_arrivals, w1, w3};

fn latency_tables(
    jobs: &[corral_model::JobSpec],
    cfg: &ClusterConfig,
) -> (Vec<LatencyModel>, Vec<Vec<f64>>) {
    let opts = ResponseOptions::default();
    let models: Vec<LatencyModel> = jobs
        .iter()
        .map(|j| LatencyModel::build(&j.profile, cfg, &opts))
        .collect();
    let tables: Vec<Vec<f64>> = models
        .iter()
        .map(|m| (1..=cfg.racks).map(|r| m.latency(r).as_secs()).collect())
        .collect();
    (models, tables)
}

/// Batch gap for one workload: (heuristic makespan, LP bound, gap %).
pub fn batch_gap(jobs: &[corral_model::JobSpec], cfg: &ClusterConfig) -> (f64, f64, f64) {
    let (models, tables) = latency_tables(jobs, cfg);
    let meta: Vec<_> = jobs.iter().map(|j| (j.id, SimTime::ZERO)).collect();
    let heur = provision(&models, &meta, cfg.racks, Objective::Makespan).objective_value;
    let lp = batch_lower_bound(&tables, cfg.racks).expect("LP solve");
    (heur, lp, (heur - lp) / lp * 100.0)
}

/// The §4.2 design note quantified: the paper runs the provisioning loop
/// to exhaustion instead of Belkhale–Banerjee's early stop. Returns the two
/// heuristics' makespans (model space).
pub fn heuristic_variants(
    jobs: &[corral_model::JobSpec],
    cfg: &ClusterConfig,
    objective: Objective,
) -> (f64, f64) {
    let (models, _) = latency_tables(jobs, cfg);
    let meta: Vec<_> = jobs.iter().map(|j| (j.id, j.arrival)).collect();
    let full = provision_with_mode(
        &models,
        &meta,
        cfg.racks,
        objective,
        ProvisionMode::Exhaustive,
    )
    .objective_value;
    let early = provision_with_mode(
        &models,
        &meta,
        cfg.racks,
        objective,
        ProvisionMode::EarlyStop,
    )
    .objective_value;
    (full, early)
}

/// Online gap: (heuristic avg completion, LP bound, gap %).
pub fn online_gap(
    jobs: &[corral_model::JobSpec],
    cfg: &ClusterConfig,
    epochs: usize,
) -> (f64, f64, f64) {
    let (models, tables) = latency_tables(jobs, cfg);
    let meta: Vec<_> = jobs.iter().map(|j| (j.id, j.arrival)).collect();
    let out = provision(&models, &meta, cfg.racks, Objective::AvgCompletionTime);
    let heur = out.objective_value;
    let horizon = out
        .schedule
        .iter()
        .map(|s| s.finish.as_secs())
        .fold(0.0, f64::max)
        * 1.05;
    let arrivals: Vec<f64> = jobs.iter().map(|j| j.arrival.as_secs()).collect();
    let lp = online_lower_bound(&tables, &arrivals, cfg.racks, horizon, epochs)
        .expect("online LP solve");
    (heur, lp, (heur - lp) / lp * 100.0)
}

/// Prints both gaps over W1 and W3 subsets.
pub fn main() {
    let cfg = ClusterConfig::testbed_210();
    table::section("§4.2 heuristic vs LP lower bound (planning-model space)");
    table::row(&["case", "heuristic", "LP bound", "gap"]);

    let mut csv = Vec::new();
    for (name, jobs) in [
        (
            "W1 batch",
            w1::generate(
                &w1::W1Params {
                    jobs: 40,
                    ..w1::W1Params::with_seed(0x17A)
                },
                bench_scale(),
            ),
        ),
        (
            "W3 batch",
            w3::generate(
                &w3::W3Params {
                    jobs: 40,
                    ..Default::default()
                },
                bench_scale(),
            ),
        ),
    ] {
        let (h, lp, gap) = batch_gap(&jobs, &cfg);
        table::row(&[
            name.to_string(),
            table::secs(h),
            table::secs(lp),
            table::pct(gap),
        ]);
        csv.push(vec![0.0, h, lp, gap]);
    }

    {
        let (name, mut jobs) = (
            "W1 online",
            w1::generate(
                &w1::W1Params {
                    jobs: 25,
                    ..w1::W1Params::with_seed(0x17B)
                },
                bench_scale(),
            ),
        );
        assign_uniform_arrivals(&mut jobs, SimTime::minutes(30.0), 0x17C);
        let (h, lp, gap) = online_gap(&jobs, &cfg, 200);
        table::row(&[
            name.to_string(),
            table::secs(h),
            table::secs(lp),
            table::pct(gap),
        ]);
        csv.push(vec![1.0, h, lp, gap]);
    }
    println!("   paper: batch within 3%, online within 15% (their LP formulations)");

    // The exhaustive/early-stop difference shows when widening decisions
    // matter: few jobs relative to racks (batch) and the average-completion
    // objective the early-stop rule was never designed for (§4.2).
    table::section("§4.2 provisioning variants: exhaustive (paper) vs early-stop [19]");
    table::row(&["case", "exhaustive", "early-stop", "advantage"]);
    // A 100-rack cluster (the fig5 geometry), where widening decisions have
    // real range; on the 7-rack testbed both variants find the same plans.
    let big_cluster = ClusterConfig {
        racks: 100,
        machines_per_rack: 40,
        slots_per_machine: 1,
        ..cfg.clone()
    };
    let few_big = w3::generate(
        &w3::W3Params {
            jobs: 8,
            ..Default::default()
        },
        corral_workloads::Scale::full(),
    );
    let mut online = w1::generate(
        &w1::W1Params {
            jobs: 30,
            ..w1::W1Params::with_seed(0x17D)
        },
        corral_workloads::Scale::full(),
    );
    assign_uniform_arrivals(&mut online, SimTime::minutes(20.0), 0x17E);
    for (name, jobs, obj) in [
        ("8 W3 jobs, 100 racks", few_big, Objective::Makespan),
        ("W1 online, 100 racks", online, Objective::AvgCompletionTime),
    ] {
        let (full, early) = heuristic_variants(&jobs, &big_cluster, obj);
        table::row(&[
            name.to_string(),
            table::secs(full),
            table::secs(early),
            table::pct((early - full) / early * 100.0),
        ]);
    }
    table::write_csv(
        "lpgap",
        &["scenario_idx", "heuristic_s", "lp_bound_s", "gap_pct"],
        &csv,
    );
}
