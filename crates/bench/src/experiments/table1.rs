//! Table 1 — characteristics of workload W3 (Microsoft Cosmos):
//! 50th/95th percentiles of task count, input size and shuffle size.

use crate::table;
use corral_model::JobProfile;
use corral_workloads::w3::{self, pctile, W3Params};
use corral_workloads::Scale;

/// Prints generated-vs-paper percentiles.
pub fn main() {
    table::section("Table 1: workload W3 characteristics (paper vs generated)");
    // Generate at full scale with a large sample for tight percentiles.
    let jobs = w3::generate(
        &W3Params {
            jobs: 4000,
            ..Default::default()
        },
        Scale::full(),
    );
    let mut tasks = Vec::new();
    let mut input = Vec::new();
    let mut shuffle = Vec::new();
    for j in &jobs {
        if let JobProfile::MapReduce(mr) = &j.profile {
            tasks.push((mr.maps + mr.reduces) as f64);
            input.push(mr.input.0 / 1e9);
            shuffle.push(mr.shuffle.0 / 1e9);
        }
    }
    table::row(&["metric", "paper 50%", "gen 50%", "paper 95%", "gen 95%"]);
    let rows = [
        (
            "tasks",
            180.0,
            pctile(&mut tasks, 50.0),
            2060.0,
            pctile(&mut tasks, 95.0),
        ),
        (
            "input GB",
            7.1,
            pctile(&mut input, 50.0),
            162.3,
            pctile(&mut input, 95.0),
        ),
        (
            "shuffle GB",
            6.0,
            pctile(&mut shuffle, 50.0),
            71.5,
            pctile(&mut shuffle, 95.0),
        ),
    ];
    let mut csv = Vec::new();
    for (i, (name, p50, g50, p95, g95)) in rows.iter().enumerate() {
        table::row(&[
            name.to_string(),
            format!("{p50:.1}"),
            format!("{g50:.1}"),
            format!("{p95:.1}"),
            format!("{g95:.1}"),
        ]);
        csv.push(vec![i as f64, *p50, *g50, *p95, *g95]);
    }
    table::write_csv(
        "table1_w3",
        &["metric_idx", "paper_p50", "gen_p50", "paper_p95", "gen_p95"],
        &csv,
    );
}
