//! Planner hot-path microbenchmark: times the provisioning loop —
//! `J·(R−1)` candidate allocations, each scored by a full prioritization
//! pass — comparing the fast path (heap-enumerated trajectory, persistent
//! scratch, pooled candidate scoring; [`corral_core::provision_pinned_pooled`])
//! against the frozen pre-optimization oracle
//! ([`corral_core::provision_reference`]), plus one replan-shaped real
//! cell (W1 online, pins anchored to an initial forecast plan, the
//! average-completion objective — the exact shape `repro replan` reruns
//! every 5 simulated minutes). Writes `BENCH_planner.json` in the working
//! directory.
//!
//! Not part of `repro all` (it times the planner, not a paper artifact);
//! CI runs `repro plannerbench` as a perf-smoke step. Both paths are
//! bit-identical by construction (held down by
//! `crates/core/tests/prop_provision.rs`), so every cell's *candidate
//! count* is deterministic; the counts are embedded below as golden
//! values and any drift fails the run — a tripwire for accidental changes
//! to the widening trajectory or the early-stop rule. Wall-clock numbers
//! are recorded but never asserted (CI timing is noisy).
//!
//! Regenerate the golden table after an *intentional* trajectory change
//! by running with `CORRAL_PLANNERBENCH_BLESS=1` and pasting the printed
//! constants.

use crate::runner::RunConfig;
use crate::table;
use corral_core::latency::{LatencyModel, ResponseOptions};
use corral_core::planner::perturb_arrivals;
use corral_core::provision::{
    provision_pinned_pooled, provision_reference, ProvisionMode, ProvisionOutcome, PLANNER_COUNTERS,
};
use corral_core::{plan_jobs, Objective};
use corral_model::{
    Bandwidth, Bytes, ClusterConfig, JobId, JobProfile, MapReduceProfile, RackId, SimTime,
};
use corral_sweep::SweepPool;
use corral_trace::CounterSet;
use std::time::Instant;

/// One synthetic planning scale.
struct ScaleSpec {
    name: &'static str,
    jobs: usize,
    racks: usize,
    seed: u64,
}

/// Small / medium / large synthetic job sets. The large scale (256 jobs
/// on a 24-rack cluster, 5889 candidate allocations) is the acceptance
/// cell: the fast path must beat the reference by ≥ 2× there at
/// `--jobs 8`.
const SCALES: [ScaleSpec; 3] = [
    ScaleSpec {
        name: "small",
        jobs: 24,
        racks: 7,
        seed: 0x91A_0001,
    },
    ScaleSpec {
        name: "medium",
        jobs: 96,
        racks: 14,
        seed: 0x91A_0002,
    },
    ScaleSpec {
        name: "large",
        jobs: 256,
        racks: 24,
        seed: 0x91A_0003,
    },
];

/// Golden candidate counts per cell (identical for both paths — that
/// identity is itself asserted every repeat). The synthetic scales follow
/// the paper's formula `1 + J·(R−1)` exactly because no job is pinned;
/// the replan cell's count also reflects its pinned jobs sitting out the
/// widening loop. Drift means the trajectory or the stopping rule
/// changed; bless deliberately (see module docs) or find the regression.
const GOLDEN_CANDIDATES: [(&str, u64); 4] = [
    ("small", 145),
    ("medium", 1249),
    ("large", 5889),
    ("replan-w1", 463),
];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(rng: &mut u64) -> f64 {
    (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64
}

/// One synthetic planning problem: latency models + arrivals, sizes
/// log-uniform over ~3 decades (a production mix: mostly small jobs, a
/// heavy tail that dominates the makespan — the regime where widening
/// decisions actually matter).
struct PlanProblem {
    cluster: ClusterConfig,
    models: Vec<LatencyModel>,
    jobs: Vec<(JobId, SimTime)>,
    pins: Vec<Option<Vec<RackId>>>,
    objective: Objective,
}

fn synthetic_problem(sc: &ScaleSpec) -> PlanProblem {
    let cluster = ClusterConfig {
        racks: sc.racks,
        ..ClusterConfig::testbed_210()
    };
    let mut rng = sc.seed;
    let mut models = Vec::with_capacity(sc.jobs);
    let mut jobs = Vec::with_capacity(sc.jobs);
    for i in 0..sc.jobs {
        let input_gb = 10f64.powf(unit(&mut rng) * 3.0) * 0.5; // 0.5 GB – 500 GB
        let tasks = ((input_gb * 4.0) as usize).clamp(4, 4000);
        let mr = MapReduceProfile {
            input: Bytes::gb(input_gb),
            shuffle: Bytes::gb(input_gb * (0.2 + 0.6 * unit(&mut rng))),
            output: Bytes::gb(input_gb / 10.0),
            maps: tasks,
            reduces: (tasks / 2).max(1),
            map_rate: Bandwidth::mbytes_per_sec(100.0),
            reduce_rate: Bandwidth::mbytes_per_sec(100.0),
        };
        models.push(LatencyModel::build(
            &JobProfile::MapReduce(mr),
            &cluster,
            &ResponseOptions::default(),
        ));
        jobs.push((JobId(i as u32), SimTime(unit(&mut rng) * 3600.0)));
    }
    PlanProblem {
        cluster,
        models,
        jobs,
        pins: vec![None; sc.jobs],
        objective: Objective::Makespan,
    }
}

/// The replan-shaped real cell: the W1 online workload planned once from
/// forecast arrivals, then re-provisioned mid-horizon with true arrivals
/// — the §3.1 planning problem. Jobs arriving in the first half of the
/// hour have their input already uploaded, so they stay pinned to their
/// initial racks (only their ordering can change); later jobs' data is
/// not yet placed, so they re-enter the widening loop — the one case the
/// replan experiment finds replanning actually pays for. Built directly
/// at the provisioning layer so the timer sees only the planner.
fn replan_problem() -> PlanProblem {
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);
    let true_jobs = crate::experiments::workload_online("W1", 0x1);
    let forecast = perturb_arrivals(&true_jobs, 0.5, SimTime::minutes(8.0), 0x1 ^ 0x8E);
    let initial = plan_jobs(&rc.params.cluster, &forecast, rc.objective, &rc.planner);
    let uploaded = SimTime::minutes(30.0);
    let models = true_jobs
        .iter()
        .map(|j| LatencyModel::build(&j.profile, &rc.params.cluster, &rc.planner.response))
        .collect();
    let jobs = true_jobs.iter().map(|j| (j.id, j.arrival)).collect();
    let pins = true_jobs
        .iter()
        .map(|j| {
            (j.arrival <= uploaded)
                .then(|| initial.entry(j.id).map(|e| e.racks.clone()))
                .flatten()
        })
        .collect();
    PlanProblem {
        cluster: rc.params.cluster.clone(),
        models,
        jobs,
        pins,
        objective: rc.objective,
    }
}

/// Result of one (problem, path) timing pass.
struct CellResult {
    wall_s: f64,
    outcome: ProvisionOutcome,
}

/// Wall-clock repetitions per cell. Reference and fast passes are
/// interleaved (one pair per repeat) so both see the same host
/// conditions; the reported speedup is the *median of per-pair ratios*,
/// robust to load bursts that would skew a ratio of two independently
/// taken minima. Per-path walls report the minimum.
const REPEATS: usize = 7;

fn time_reference(p: &PlanProblem) -> CellResult {
    let t0 = Instant::now();
    let outcome = provision_reference(
        &p.models,
        &p.jobs,
        &p.pins,
        p.cluster.racks,
        p.objective,
        ProvisionMode::Exhaustive,
    );
    CellResult {
        wall_s: t0.elapsed().as_secs_f64(),
        outcome,
    }
}

fn time_fast(p: &PlanProblem, pool: &SweepPool) -> CellResult {
    let t0 = Instant::now();
    let outcome = provision_pinned_pooled(
        pool,
        &p.models,
        &p.jobs,
        &p.pins,
        p.cluster.racks,
        p.objective,
        ProvisionMode::Exhaustive,
    );
    CellResult {
        wall_s: t0.elapsed().as_secs_f64(),
        outcome,
    }
}

/// Handle for `repro perfreport`: the large synthetic problem built
/// once, re-runnable under the fast path (probes on or off) without
/// paying the latency-model construction cost on every pass — exactly
/// what the probe-overhead measurement needs.
pub(crate) struct ProbeCell(PlanProblem);

/// Builds the large-scale probe cell (256 jobs, 24 racks — the
/// acceptance cell of this bench).
pub(crate) fn probe_cell_large() -> ProbeCell {
    ProbeCell(synthetic_problem(&SCALES[2]))
}

impl ProbeCell {
    /// Runs the fast path once; returns `(candidates, wall_s)`.
    pub(crate) fn run(&self, pool: &SweepPool) -> (u64, f64) {
        let c = time_fast(&self.0, pool);
        (c.outcome.stats.candidates, c.wall_s)
    }

    /// Golden candidate count for the large cell (the perfreport
    /// tripwire; same constant the bench itself asserts).
    pub(crate) fn golden(&self) -> u64 {
        GOLDEN_CANDIDATES[2].1
    }
}

/// Runs one problem [`REPEATS`] times as back-to-back (reference, fast)
/// pairs, asserting the runtime form of the bit-identity claim on every
/// pair. Returns (reference best, fast best, median paired speedup).
fn run_pair(name: &str, p: &PlanProblem, pool: &SweepPool) -> (CellResult, CellResult, f64) {
    let mut best_ref: Option<CellResult> = None;
    let mut best_fast: Option<CellResult> = None;
    let mut ratios = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        let r = time_reference(p);
        let f = time_fast(p, pool);
        assert_eq!(
            r.outcome.objective_value.to_bits(),
            f.outcome.objective_value.to_bits(),
            "{name}: objective bits diverge (bit-identity broken?)"
        );
        assert_eq!(
            r.outcome.racks, f.outcome.racks,
            "{name}: allocations diverge"
        );
        assert_eq!(
            r.outcome.stats.candidates, f.outcome.stats.candidates,
            "{name}: candidate counts diverge"
        );
        if let Some(b) = &best_ref {
            assert_eq!(
                b.outcome.stats.candidates, r.outcome.stats.candidates,
                "{name}: non-deterministic repeat"
            );
        }
        ratios.push(r.wall_s / f.wall_s.max(1e-9));
        if best_ref.as_ref().is_none_or(|b| r.wall_s < b.wall_s) {
            best_ref = Some(r);
        }
        if best_fast.as_ref().is_none_or(|b| f.wall_s < b.wall_s) {
            best_fast = Some(f);
        }
    }
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    (best_ref.unwrap(), best_fast.unwrap(), speedup)
}

/// Runs the synthetic scales and the replan-shaped cell under both paths,
/// checks golden candidate counts, and writes `BENCH_planner.json`.
pub fn main() {
    table::section("plannerbench: provisioning loop, reference vs fast path");
    let bless = std::env::var_os("CORRAL_PLANNERBENCH_BLESS").is_some();
    let pool = crate::config::pool().progress(false);
    let counters = CounterSet::new(&PLANNER_COUNTERS);

    table::row(&[
        "cell", "path", "jobs", "racks", "cands", "grows", "wall", "cands/s", "speedup",
    ]);
    let mut cell_json = Vec::new();
    let mut drift = Vec::new();
    let mut cells: Vec<(&str, PlanProblem)> = SCALES
        .iter()
        .map(|sc| (sc.name, synthetic_problem(sc)))
        .collect();
    cells.push(("replan-w1", replan_problem()));

    for (name, p) in &cells {
        let (reference, fast, speedup) = run_pair(name, p, &pool);
        let stats = fast.outcome.stats;
        counters.add("planner.candidates", stats.candidates);
        counters.add("planner.heap_pops", stats.heap_pops);
        counters.add("planner.scratch_grows", stats.scratch_grows);
        for (label, c) in [("reference", &reference), ("fast", &fast)] {
            table::row(&[
                name.to_string(),
                label.to_string(),
                p.jobs.len().to_string(),
                p.cluster.racks.to_string(),
                c.outcome.stats.candidates.to_string(),
                c.outcome.stats.scratch_grows.to_string(),
                table::secs(c.wall_s),
                format!(
                    "{:.0}",
                    c.outcome.stats.candidates as f64 / c.wall_s.max(1e-9)
                ),
                if label == "fast" {
                    format!("{speedup:.2}x")
                } else {
                    "-".into()
                },
            ]);
        }
        let golden = GOLDEN_CANDIDATES
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap();
        if stats.candidates != golden {
            drift.push(format!(
                "{name}: candidates {} != golden {golden}",
                stats.candidates
            ));
        }
        cell_json.push(format!(
            "    {{\"cell\": \"{}\", \"jobs\": {}, \"racks\": {}, \"candidates\": {}, \
             \"reference_s\": {:.4}, \"fast_s\": {:.4}, \"speedup\": {:.3}, \
             \"heap_pops\": {}, \"scratch_grows\": {}}}",
            name,
            p.jobs.len(),
            p.cluster.racks,
            stats.candidates,
            reference.wall_s,
            fast.wall_s,
            speedup,
            stats.heap_pops,
            stats.scratch_grows,
        ));
        if *name == "large" && speedup < 2.0 {
            println!("   warning: large-scale speedup {speedup:.2}x below the 2x target");
        }
    }

    for (name, v) in counters.snapshot() {
        println!("   {name} = {v}");
    }

    if !drift.is_empty() {
        if bless {
            println!("   bless mode: update GOLDEN_CANDIDATES to the counts above");
        } else {
            panic!(
                "plannerbench candidate-counter drift:\n  {}",
                drift.join("\n  ")
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"planner_fast_path\",\n  \"pool_jobs\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        pool.jobs(),
        cell_json.join(",\n")
    );
    std::fs::write("BENCH_planner.json", &json).expect("write BENCH_planner.json");
    println!("   wrote BENCH_planner.json");
}
