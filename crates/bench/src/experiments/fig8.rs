//! Figure 8 — online scenario (arrivals uniform in [0, 60 min]): CDFs of
//! job completion time for W1/W2/W3 under all four systems. The paper:
//! Corral improves the median by 30–56% and the mean by 26–36% vs Yarn-CS;
//! ShuffleWatcher tracks Corral at low percentiles but collapses at the
//! tail.

use crate::experiments::workload_online;
use crate::runner::{run_variant_grid, RunConfig, Variant};
use crate::table;
use corral_cluster::metrics::{percentile, reduction_pct};
use corral_core::Objective;

/// Completion-time distributions per system for one workload, pooled
/// over the configured arrival-seed pool
/// ([`crate::config::arrival_seeds`], default 8 seeds — Yarn-CS
/// completion times vary a lot with the arrival pattern while Corral's
/// are stable, the isolation the paper sells, so single-seed results
/// are noisy). The `(seed × variant)` grid runs on the sweep pool;
/// pooling order is seed-major and deterministic.
pub fn run(workload_name: &str) -> Vec<(String, Vec<f64>)> {
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);
    let seeds = crate::config::arrival_seeds();
    let jobsets: Vec<_> = seeds
        .iter()
        .map(|&s| workload_online(workload_name, s))
        .collect();
    let grid = run_variant_grid(&jobsets, &rc);
    let mut out: Vec<(String, Vec<f64>)> = Variant::ALL
        .iter()
        .map(|v| (v.label().to_string(), Vec::new()))
        .collect();
    for per_seed in &grid {
        for (vi, (v, r)) in Variant::ALL.iter().zip(per_seed).enumerate() {
            assert_eq!(r.unfinished, 0, "{}: unfinished jobs", v.label());
            out[vi].1.extend(r.completion_times());
        }
    }
    for (_, t) in out.iter_mut() {
        t.sort_by(f64::total_cmp);
    }
    out
}

/// Prints the three workloads' percentile tables and CSVs.
pub fn main() {
    for w in ["W1", "W2", "W3"] {
        table::section(&format!(
            "Figure 8: job completion time CDF, {w} online (percentiles, s)"
        ));
        table::row(&["system", "p25", "p50", "p75", "p90", "mean"]);
        let results = run(w);
        let yarn_median = percentile(&results[0].1, 50.0);
        let yarn_mean = results[0].1.iter().sum::<f64>() / results[0].1.len().max(1) as f64;
        let mut csv = Vec::new();
        for (si, (label, cdf)) in results.iter().enumerate() {
            let mean = cdf.iter().sum::<f64>() / cdf.len().max(1) as f64;
            table::row(&[
                label.clone(),
                table::secs(percentile(cdf, 25.0)),
                table::secs(percentile(cdf, 50.0)),
                table::secs(percentile(cdf, 75.0)),
                table::secs(percentile(cdf, 90.0)),
                table::secs(mean),
            ]);
            for r in table::cdf_rows(cdf) {
                csv.push(vec![si as f64, r[0], r[1]]);
            }
        }
        let corral_median = percentile(&results[1].1, 50.0);
        let corral_mean = results[1].1.iter().sum::<f64>() / results[1].1.len().max(1) as f64;
        println!(
            "   corral vs yarn-cs: median {} | mean {}",
            table::pct(reduction_pct(yarn_median, corral_median)),
            table::pct(reduction_pct(yarn_mean, corral_mean)),
        );
        table::write_csv(
            &format!("fig8_{}_jct_cdf", w.to_lowercase()),
            &["system_idx", "completion_s", "cum_fraction"],
            &csv,
        );
    }
}
