//! Latency-model validation (§4.3).
//!
//! The paper's response functions are "proxies for the actual latencies,
//! and need not be highly accurate" — what matters is that they *rank*
//! configurations correctly so the planner picks good allocations. This
//! experiment quantifies that: for every planned job, compare the planner's
//! predicted latency `L_j(r_j)` against the job's simulated execution time
//! (start → finish, queueing excluded), and report the median absolute
//! error plus the Spearman rank correlation.

use crate::experiments::workload;
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_core::{plan_jobs, Objective};

/// Spearman rank correlation of two equal-length samples.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(a);
    let rb = rank(b);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        cov += (ra[i] - mean) * (rb[i] - mean);
        va += (ra[i] - mean).powi(2);
        vb += (rb[i] - mean).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

/// Runs the validation over a workload; returns
/// `(median |err| %, spearman)`.
pub fn validate(workload_name: &str) -> (f64, f64) {
    let rc = RunConfig::testbed(Objective::Makespan);
    let jobs = workload(workload_name);
    let plan = plan_jobs(&rc.params.cluster, &jobs, rc.objective, &rc.planner);
    let report = run_variant(Variant::Corral, &jobs, &rc);

    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    let mut errors = Vec::new();
    for j in &jobs {
        let (Some(e), Some(m)) = (plan.entry(j.id), report.jobs.get(&j.id)) else {
            continue;
        };
        let (Some(start), Some(fin)) = (m.started, m.finished) else {
            continue;
        };
        let run = (fin - start).as_secs();
        let pred = e.predicted_latency.as_secs();
        if run <= 0.0 {
            continue;
        }
        predicted.push(pred);
        actual.push(run);
        errors.push(((pred - run) / run).abs() * 100.0);
    }
    errors.sort_by(f64::total_cmp);
    let median_err = corral_cluster::metrics::percentile(&errors, 50.0);
    (median_err, spearman(&predicted, &actual))
}

/// Prints the validation table.
pub fn main() {
    table::section("§4.3 latency-model validation: predicted L_j(r) vs simulated runtime");
    table::row(&["workload", "median |err|", "rank corr"]);
    let mut csv = Vec::new();
    for (wi, w) in ["W1", "W3"].iter().enumerate() {
        let (err, rho) = validate(w);
        table::row(&[w.to_string(), format!("{err:.0}%"), format!("{rho:.2}")]);
        csv.push(vec![wi as f64, err, rho]);
    }
    println!("   the model is a coarse proxy (errors expected); planning only needs the ranking");
    table::write_csv(
        "latmodel",
        &["workload_idx", "median_abs_err_pct", "spearman"],
        &csv,
    );
}

#[cfg(test)]
mod tests {
    use super::spearman;

    #[test]
    fn spearman_basics() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
        let mid = spearman(&[1.0, 2.0, 3.0, 4.0], &[2.0, 1.0, 4.0, 3.0]);
        assert!(mid > 0.0 && mid < 1.0);
    }
}
