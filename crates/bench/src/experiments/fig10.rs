//! Figure 10 — TPC-H (Hive) queries scheduled with Corral vs Yarn-CS.
//!
//! Fifteen queries over a 200 GB database arrive uniformly over 25 minutes
//! and are treated as recurring (plannable). "To emulate conditions in a
//! real cluster, along with the queries, we also submit a batch of
//! MapReduce jobs chosen from the workload W1, which are run using
//! Yarn-CS" — we mark those ad hoc so the Planned scheduler handles them
//! with the capacity-style fallback path in both runs. Paper: ~18.5%
//! median / ~21% mean improvement.

use crate::experiments::bench_scale;
use crate::runner::{run_variant, RunConfig, Variant};
use crate::table;
use corral_cluster::metrics::{percentile, reduction_pct};
use corral_core::Objective;
use corral_model::{JobId, JobSpec, SimTime};
use corral_workloads::{assign_uniform_arrivals, tpch, w1};

/// Builds the mixed workload: 15 plannable TPC-H queries + W1 background
/// batch (ad hoc). Returns (jobs, query ids).
pub fn mixed_workload() -> (Vec<JobSpec>, Vec<JobId>) {
    let mut queries = tpch::generate(200e9, bench_scale());
    assign_uniform_arrivals(&mut queries, SimTime::minutes(25.0), 0xF10);
    let query_ids: Vec<JobId> = queries.iter().map(|q| q.id).collect();

    // A moderate background batch: heavy enough that queries feel the
    // contention (the paper's point), light enough that Yarn-CS can still
    // schedule queries at all.
    let mut background = w1::generate(
        &w1::W1Params {
            jobs: 40,
            ..w1::W1Params::with_seed(0xB6)
        },
        bench_scale(),
    );
    for (i, b) in background.iter_mut().enumerate() {
        b.id = JobId(100 + i as u32);
        b.plannable = false; // scheduled by the fallback (Yarn-CS-like) path
        b.arrival = SimTime::ZERO;
    }
    let mut jobs = queries;
    jobs.extend(background);
    (jobs, query_ids)
}

/// Prints query-completion percentiles for both systems.
pub fn main() {
    table::section("Figure 10: TPC-H query completion times, Corral vs Yarn-CS");
    let (jobs, query_ids) = mixed_workload();
    let rc = RunConfig::testbed(Objective::AvgCompletionTime);

    let mut results: Vec<(String, Vec<f64>)> = Vec::new();
    for v in [Variant::YarnCs, Variant::Corral] {
        let r = run_variant(v, &jobs, &rc);
        let mut times: Vec<f64> = query_ids
            .iter()
            .filter_map(|id| r.jobs.get(id))
            .filter_map(|m| m.completion_time().map(|t| t.as_secs()))
            .collect();
        times.sort_by(f64::total_cmp);
        assert_eq!(
            times.len(),
            query_ids.len(),
            "{}: queries unfinished",
            v.label()
        );
        results.push((v.label().to_string(), times));
    }

    table::row(&["system", "p25", "p50", "p75", "mean"]);
    let mut csv = Vec::new();
    for (si, (label, t)) in results.iter().enumerate() {
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        table::row(&[
            label.clone(),
            table::secs(percentile(t, 25.0)),
            table::secs(percentile(t, 50.0)),
            table::secs(percentile(t, 75.0)),
            table::secs(mean),
        ]);
        for r in table::cdf_rows(t) {
            csv.push(vec![si as f64, r[0], r[1]]);
        }
    }
    let y = &results[0].1;
    let c = &results[1].1;
    println!(
        "   corral vs yarn-cs: median {} | mean {}",
        table::pct(reduction_pct(percentile(y, 50.0), percentile(c, 50.0))),
        table::pct(reduction_pct(
            y.iter().sum::<f64>() / y.len() as f64,
            c.iter().sum::<f64>() / c.len() as f64
        )),
    );
    table::write_csv(
        "fig10_tpch_cdf",
        &["system_idx", "completion_s", "cum_fraction"],
        &csv,
    );
}
