//! Figure 2 — CDF of compute slots requested per job across three
//! production clusters; 75% / 87% / 95% of jobs fit under one rack
//! (240 slots).

use crate::table;
use corral_workloads::slots::{cdf_at, CLUSTERS, RACK_SLOTS};

/// Prints the under-one-rack fractions and writes the three CDFs.
pub fn main() {
    table::section("Figure 2: CDF of slots requested per job (240 slots = 1 rack)");
    table::row(&["cluster", "P[slots<240]", "p99_slots"]);
    let n = 20_000;
    let mut csv_rows: Vec<Vec<f64>> = Vec::new();
    for (ci, c) in CLUSTERS.iter().enumerate() {
        let mut sample = c.sample(n, 0xF162 + ci as u64);
        sample.sort_by(f64::total_cmp);
        let under = cdf_at(&sample, RACK_SLOTS);
        let p99 = sample[(n as f64 * 0.99) as usize];
        table::row(&[
            c.name.to_string(),
            format!("{:.1}%", under * 100.0),
            format!("{p99:.0}"),
        ]);
        // Sampled CDF at log-spaced slot counts.
        for &x in &[1.0, 3.0, 10.0, 30.0, 100.0, 240.0, 1000.0, 3000.0, 10000.0] {
            csv_rows.push(vec![ci as f64, x, cdf_at(&sample, x)]);
        }
    }
    table::write_csv(
        "fig2_slots_cdf",
        &["cluster", "slots", "cum_fraction"],
        &csv_rows,
    );
}
