//! Plain-text table printing and CSV output for experiment results.
//!
//! Output hygiene under the parallel sweep engine: sweep *cells* (the
//! `run_variant` calls) never write files — only experiment `main()`s
//! do, after collecting all cells — and this module keeps that safe in
//! depth: every CSV is staged to a temp file and atomically renamed
//! into place, and a process-wide registry flags any second write to
//! the same path (panicking in debug builds), so a concurrency bug
//! upstream turns into a loud failure instead of a torn results file.

use std::collections::HashSet;
use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Directory where experiments drop their CSV series.
pub fn results_dir() -> PathBuf {
    let p = PathBuf::from("results");
    let _ = fs::create_dir_all(&p);
    p
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// Prints one aligned row of cells.
pub fn row<D: Display>(cells: &[D]) {
    let line = cells
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{line}");
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Formats seconds.
pub fn secs(v: f64) -> String {
    format!("{v:.1}s")
}

/// Writes rows of `(x, columns...)` as CSV under `results/<name>.csv`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<f64>]) -> PathBuf {
    let path = results_dir().join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in rows {
        let line = r
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&line);
        out.push('\n');
    }
    write_file(&path, &out);
    path
}

/// Paths written by this process — a second write to the same results
/// file means two experiments (or, worse, two sweep cells) are racing
/// on one output.
static WRITTEN: Mutex<Option<HashSet<PathBuf>>> = Mutex::new(None);

fn write_file(path: &Path, contents: &str) {
    // Export attribution for the probe layer (no-op when disabled).
    let _probe = corral_trace::probe::span(corral_trace::probe::SpanKind::Export);
    {
        let mut written = WRITTEN.lock().unwrap();
        let set = written.get_or_insert_with(HashSet::new);
        if !set.insert(path.to_path_buf()) {
            debug_assert!(false, "{} written twice in one process", path.display());
            eprintln!(
                "warning: {} written twice in one process — overwriting",
                path.display()
            );
        }
    }
    // Stage then rename: readers (and a crash mid-write) never observe a
    // half-written results file.
    let staged = path.with_extension("csv.tmp");
    {
        let mut f = fs::File::create(&staged).expect("create results file");
        f.write_all(contents.as_bytes())
            .expect("write results file");
    }
    fs::rename(&staged, path).expect("publish results file");
}

/// CDF rows `(value, cumulative_fraction)` from an unsorted sample.
pub fn cdf_rows(sample: &[f64]) -> Vec<Vec<f64>> {
    let mut v = sample.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len().max(1) as f64;
    v.iter()
        .enumerate()
        .map(|(i, &x)| vec![x, (i + 1) as f64 / n])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_rows_are_monotone() {
        let rows = cdf_rows(&[3.0, 1.0, 2.0]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![1.0, 1.0 / 3.0]);
        assert_eq!(rows[2], vec![3.0, 1.0]);
    }

    #[test]
    fn formatting() {
        assert_eq!(pct(12.34), "+12.3%");
        assert_eq!(pct(-3.0), "-3.0%");
        assert_eq!(secs(1.25), "1.2s");
    }

    #[test]
    fn csv_roundtrip() {
        let p = write_csv(
            "test_table_unit",
            &["x", "y"],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
        );
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.starts_with("x,y\n1,2\n3,4\n"));
        let _ = std::fs::remove_file(p);
    }
}
