//! Regenerates the golden fingerprints embedded in
//! `tests/fabric_golden.rs`. Run after an *intentional* output change:
//!
//! ```text
//! cargo run --release -p corral-bench --example golden_dump
//! ```
//!
//! and paste the printed constants into the test. The workload here must
//! stay in lockstep with `fabric_golden::golden_jobsets`.

use corral_bench::runner::{run_variant, RunConfig, Variant};
use corral_cluster::config::SimParams;
use corral_core::{Objective, PlannerConfig};
use corral_model::{ClusterConfig, SimTime};
use corral_workloads::{assign_uniform_arrivals, w1, Scale};

fn main() {
    let mut params = SimParams::testbed();
    params.cluster = ClusterConfig::tiny_test();
    params.horizon = SimTime::hours(10.0);
    let rc = RunConfig {
        params,
        objective: Objective::Makespan,
        planner: PlannerConfig::default(),
    };
    let mut jobs = w1::generate(
        &w1::W1Params {
            jobs: 8,
            ..w1::W1Params::with_seed(17)
        },
        Scale {
            task_divisor: 10.0,
            data_divisor: 10.0,
        },
    );
    assign_uniform_arrivals(&mut jobs, SimTime::minutes(5.0), 0x1);

    println!("// (variant, makespan_bits, avg_jct_bits, cross_rack_bits, network_bits)");
    for v in Variant::ALL {
        let r = run_variant(v, &jobs, &rc);
        println!(
            "    (\"{}\", 0x{:016x}, 0x{:016x}, 0x{:016x}, 0x{:016x}),",
            v.label(),
            r.makespan.0.to_bits(),
            r.avg_completion_time().to_bits(),
            r.cross_rack_bytes.0.to_bits(),
            r.network_bytes.0.to_bits(),
        );
        println!("// summary[{}]: {}", v.label(), r.summary);
    }
}
