//! Criterion bench: offline planner runtime (the paper's Figure 5 axes —
//! number of jobs on a 100-rack / 4000-machine cluster). The paper's Java
//! implementation needs ~55 s for 500 jobs; the full 500-job point is
//! measured once by `repro fig5`, while this bench tracks the smaller
//! points precisely.

use corral_core::{plan_jobs, Objective, PlannerConfig};
use corral_model::{Bandwidth, Bytes, ClusterConfig};
use corral_workloads::w3::{self, W3Params};
use corral_workloads::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn planner_cluster() -> ClusterConfig {
    ClusterConfig {
        racks: 100,
        machines_per_rack: 40,
        slots_per_machine: 1,
        nic_bandwidth: Bandwidth::gbps(10.0),
        oversubscription: 5.0,
        chunk_size: Bytes::mb(256.0),
        replication: 3,
    }
}

fn bench_planner(c: &mut Criterion) {
    let cfg = planner_cluster();
    let mut group = c.benchmark_group("planner_fig5");
    group.sample_size(10);
    for jobs in [25usize, 50, 100] {
        let specs = w3::generate(
            &W3Params {
                jobs,
                ..Default::default()
            },
            Scale::full(),
        );
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &specs, |b, specs| {
            b.iter(|| {
                let plan = plan_jobs(&cfg, specs, Objective::Makespan, &PlannerConfig::default());
                assert_eq!(plan.len(), specs.len());
                plan.objective_value
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
