//! Criterion bench: the dense two-phase simplex on LP-Batch instances of
//! increasing size (the Appendix-A relaxation the lpgap experiment solves).

use corral_core::latency::{LatencyModel, ResponseOptions};
use corral_core::lp::batch_lower_bound;
use corral_model::ClusterConfig;
use corral_workloads::w1::{self, W1Params};
use corral_workloads::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_lp_batch(c: &mut Criterion) {
    let cfg = ClusterConfig::testbed_210();
    let opts = ResponseOptions::default();
    let mut group = c.benchmark_group("lp_batch");
    group.sample_size(10);
    for jobs in [10usize, 25, 50] {
        let specs = w1::generate(
            &W1Params {
                jobs,
                ..W1Params::with_seed(5)
            },
            Scale::bench_default(),
        );
        let tables: Vec<Vec<f64>> = specs
            .iter()
            .map(|j| {
                let m = LatencyModel::build(&j.profile, &cfg, &opts);
                (1..=cfg.racks).map(|r| m.latency(r).as_secs()).collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &tables, |b, t| {
            b.iter(|| batch_lower_bound(t, cfg.racks).expect("lp optimal"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp_batch);
criterion_main!(benches);
