//! Criterion bench: whole-simulation throughput — a small W1 batch run end
//! to end under Yarn-CS and under Corral (planning included). Tracks
//! regressions in the event loop, fabric and scheduler hot paths.

use corral_bench::{run_variant, RunConfig, Variant};
use corral_core::Objective;
use corral_workloads::{w1, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_end_to_end(c: &mut Criterion) {
    let jobs = w1::generate(
        &w1::W1Params {
            jobs: 15,
            ..w1::W1Params::with_seed(9)
        },
        Scale {
            task_divisor: 10.0,
            data_divisor: 4.0,
        },
    );
    let rc = RunConfig::testbed(Objective::Makespan);

    let mut group = c.benchmark_group("end_to_end_w1_15jobs");
    group.sample_size(10);
    group.bench_function("yarn_cs", |b| {
        b.iter(|| {
            let r = run_variant(Variant::YarnCs, &jobs, &rc);
            assert_eq!(r.unfinished, 0);
            r.makespan.0
        })
    });
    group.bench_function("corral_plan_and_run", |b| {
        b.iter(|| {
            let r = run_variant(Variant::Corral, &jobs, &rc);
            assert_eq!(r.unfinished, 0);
            r.makespan.0
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
