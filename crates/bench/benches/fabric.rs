//! Criterion bench: the fluid-fabric kernels — max-min progressive filling
//! and Varys SEBF allocation — at realistic flow counts, plus end-to-end
//! fabric drain throughput.

use corral_model::Bandwidth;
use corral_model::{Bytes, ClusterConfig, MachineId};
use corral_simnet::allocator::{FlowView, RateAllocator};
use corral_simnet::{CoflowId, Topology};
use corral_simnet::{Fabric, FairShare, FlowKind, FlowSpec, FlowTag, VarysSebf};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a deterministic set of `n` flow views on the testbed topology.
fn flow_set(
    topo: &Topology,
    n: usize,
) -> (
    Vec<Vec<corral_simnet::LinkId>>,
    Vec<Bytes>,
    Vec<Option<CoflowId>>,
) {
    let m = topo.config().total_machines();
    let mut paths = Vec::with_capacity(n);
    let mut sizes = Vec::with_capacity(n);
    let mut coflows = Vec::with_capacity(n);
    for i in 0..n {
        let src = MachineId(((i * 37) % m) as u32);
        let dst = MachineId(((i * 101 + 13) % m) as u32);
        if src == dst {
            continue;
        }
        paths.push(topo.path(src, dst).as_slice().to_vec());
        sizes.push(Bytes::mb(64.0 + (i % 100) as f64));
        coflows.push(Some(CoflowId((i % 24) as u64)));
    }
    (paths, sizes, coflows)
}

fn bench_allocators(c: &mut Criterion) {
    let topo = Topology::new(ClusterConfig::testbed_210());
    let mut group = c.benchmark_group("rate_allocation");
    for &n in &[500usize, 2000] {
        let (paths, sizes, coflows) = flow_set(&topo, n);
        let views: Vec<FlowView<'_>> = paths
            .iter()
            .zip(&sizes)
            .zip(&coflows)
            .map(|((p, &s), &cf)| FlowView {
                path: p,
                remaining: s,
                coflow: cf,
            })
            .collect();
        let mut rates = vec![Bandwidth::ZERO; views.len()];

        group.bench_with_input(BenchmarkId::new("maxmin", n), &views, |b, views| {
            let mut alloc = FairShare;
            b.iter(|| alloc.allocate(topo.links(), views, &mut rates));
        });
        group.bench_with_input(BenchmarkId::new("varys_sebf", n), &views, |b, views| {
            let mut alloc = VarysSebf;
            b.iter(|| alloc.allocate(topo.links(), views, &mut rates));
        });
    }
    group.finish();
}

fn bench_fabric_drain(c: &mut Criterion) {
    c.bench_function("fabric_drain_1000_flows", |b| {
        b.iter(|| {
            let mut fabric = Fabric::new(ClusterConfig::testbed_210(), Box::new(FairShare));
            let m = fabric.topology().config().total_machines();
            for i in 0..1000u32 {
                fabric.start_flow(FlowSpec {
                    src: MachineId((i as usize * 29 % m) as u32),
                    dst: MachineId((i as usize * 53 + 7) as u32 % m as u32),
                    bytes: Bytes::mb(32.0),
                    tag: FlowTag::infrastructure(FlowKind::Shuffle),
                    coflow: None,
                });
            }
            let done = fabric.drain();
            assert_eq!(done.len(), 1000);
            done.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_allocators, bench_fabric_drain
}
criterion_main!(benches);
