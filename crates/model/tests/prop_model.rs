//! Property tests for the shared domain types.

use corral_model::{
    Bandwidth, Bytes, ClusterConfig, DagEdge, DagProfile, EdgeKind, SimTime, StageId, StageProfile,
};
use proptest::prelude::*;

proptest! {
    /// volume / rate · rate ≈ volume (dimensional arithmetic roundtrip).
    #[test]
    fn bytes_bandwidth_roundtrip(gb in 0.001f64..1e4, gbps in 0.001f64..1e3) {
        let d = Bytes::gb(gb);
        let r = Bandwidth::gbps(gbps);
        let t: SimTime = d / r;
        let back = r * t;
        prop_assert!((back.0 - d.0).abs() <= 1e-9 * d.0.max(1.0));
    }

    /// Clamp never produces negatives and preserves non-negative values.
    #[test]
    fn clamp_non_negative(v in -1e12f64..1e12) {
        let c = Bytes(v).clamp_non_negative();
        prop_assert!(c.0 >= 0.0);
        if v >= 0.0 {
            prop_assert_eq!(c.0, v);
        }
    }

    /// rack_of and machines_in_rack are mutually consistent for arbitrary
    /// cluster geometries.
    #[test]
    fn rack_machine_consistency(racks in 1usize..20, k in 1usize..40) {
        let cfg = ClusterConfig {
            racks,
            machines_per_rack: k,
            slots_per_machine: 2,
            nic_bandwidth: Bandwidth::gbps(10.0),
            oversubscription: 4.0,
            chunk_size: Bytes::mb(64.0),
            replication: 1,
        };
        prop_assert_eq!(cfg.total_machines(), racks * k);
        for r in cfg.all_racks() {
            for m in cfg.machines_in_rack(r) {
                prop_assert_eq!(cfg.rack_of(m), r);
            }
        }
    }
}

/// Strategy: a random layered DAG (edges only go to later stages, so it is
/// acyclic by construction).
fn layered_dag() -> impl Strategy<Value = DagProfile> {
    (2usize..8).prop_flat_map(|n| {
        let stages: Vec<StageProfile> = (0..n)
            .map(|i| StageProfile::new(format!("s{i}"), 2 + i, Bandwidth::mbytes_per_sec(50.0)))
            .collect();
        proptest::collection::vec((0..n - 1, 1usize..n, 1.0f64..1e9), 1..12).prop_map(
            move |raw_edges| {
                let edges: Vec<DagEdge> = raw_edges
                    .into_iter()
                    .filter(|(a, b, _)| a < b)
                    .map(|(a, b, bytes)| DagEdge {
                        from: StageId::from_index(a),
                        to: StageId::from_index(b),
                        bytes: Bytes(bytes),
                        kind: EdgeKind::Shuffle,
                    })
                    .collect();
                DagProfile {
                    stages: stages.clone(),
                    edges,
                }
            },
        )
    })
}

proptest! {
    /// topo_order returns every stage exactly once, with all edges forward.
    #[test]
    fn topo_order_is_topological(dag in layered_dag()) {
        let order = dag.topo_order().expect("layered DAGs are acyclic");
        prop_assert_eq!(order.len(), dag.stages.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for e in &dag.edges {
            prop_assert!(pos[&e.from] < pos[&e.to], "edge {:?}->{:?}", e.from, e.to);
        }
    }

    /// Volume accounting: total input of all stages equals DFS input plus
    /// total edge traffic (for shuffle-only DAGs).
    #[test]
    fn stage_volume_conservation(dag in layered_dag()) {
        let total_in: f64 = dag
            .stage_ids()
            .map(|s| dag.stage_total_input(s).0)
            .sum();
        let dfs: f64 = dag.stage_ids().map(|s| dag.stage(s).dfs_input.0).sum();
        let edges: f64 = dag.edges.iter().map(|e| e.bytes.0).sum();
        prop_assert!((total_in - dfs - edges).abs() < 1e-6 * (total_in.max(1.0)));
    }
}
