//! Error type shared across the workspace.

use std::fmt;

/// Errors produced while validating or manipulating model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A configuration failed validation; the payload describes the problem.
    InvalidConfig(String),
    /// A job/DAG description failed validation.
    InvalidJob(String),
    /// A referenced entity does not exist.
    NotFound(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            ModelError::InvalidJob(s) => write!(f, "invalid job: {s}"),
            ModelError::NotFound(s) => write!(f, "not found: {s}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = ModelError::InvalidJob("stage cycle".into());
        assert_eq!(e.to_string(), "invalid job: stage cycle");
        let e = ModelError::NotFound("job j7".into());
        assert!(e.to_string().contains("j7"));
    }
}
