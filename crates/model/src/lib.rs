//! # corral-model
//!
//! Shared domain types for the Corral scheduling framework and its simulation
//! substrates (reproduction of *"Network-Aware Scheduling for Data-Parallel
//! Jobs: Plan When You Can"*, SIGCOMM 2015).
//!
//! This crate is dependency-light on purpose: every other crate in the
//! workspace (`corral-simnet`, `corral-dfs`, `corral-cluster`, `corral-core`,
//! `corral-workloads`) builds on these types, so they must not pull in any of
//! the heavier machinery.
//!
//! The main exports are:
//!
//! * [`ids`] — strongly-typed identifiers (`MachineId`, `RackId`, `JobId`, …).
//! * [`units`] — physical quantities (`Bytes`, `Bandwidth`, `SimTime`) with
//!   unit-preserving arithmetic.
//! * [`cluster`] — [`cluster::ClusterConfig`], the static
//!   description of a cluster (racks, machines, slots, NIC speed,
//!   oversubscription) shared by the planner and the simulator.
//! * [`job`] — job descriptions: the paper's MapReduce 5-tuple
//!   ⟨D_I, D_S, D_O, N_M, N_R⟩ plus processing rates, and general
//!   DAG-structured jobs (Hive/Tez-style stage graphs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod ids;
pub mod job;
pub mod units;

pub use cluster::ClusterConfig;
pub use error::{ModelError, Result};
pub use ids::{ChunkId, FileId, FlowId, JobId, MachineId, RackId, StageId, TaskId};
pub use job::{DagEdge, DagProfile, EdgeKind, JobProfile, JobSpec, MapReduceProfile, StageProfile};
pub use units::{Bandwidth, Bytes, SimTime};
