//! Job descriptions.
//!
//! The paper characterizes a MapReduce job by the 5-tuple
//! ⟨D_I, D_S, D_O, N_M, N_R⟩ (input / shuffle / output bytes, map / reduce
//! task counts) plus the per-task processing rates B_M and B_R estimated
//! from previous runs (§4.3). General DAG-structured jobs (Hive / Tez) are
//! described by a stage graph where every stage is modeled as a
//! MapReduce-like unit (§4.3, "General DAGs").
//!
//! A [`JobSpec`] is a *static description* used both by the offline planner
//! (through the latency response functions in `corral-core`) and by the
//! cluster simulator (which instantiates runtime tasks from it). The
//! simulator executes every job as a DAG; [`MapReduceProfile::to_dag`]
//! performs the canonical 2-stage conversion.

use crate::error::{ModelError, Result};
use crate::ids::{JobId, StageId};
use crate::units::{Bandwidth, Bytes, SimTime};
use serde::{Deserialize, Serialize};

/// How data moves along a DAG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// All-to-all repartitioning: every upstream task sends a share to every
    /// downstream task (MapReduce shuffle, Hive GROUP BY / JOIN exchanges).
    Shuffle,
    /// Every downstream task reads the *entire* upstream output (map-join /
    /// replicated broadcast). The edge's `bytes` is the upstream output
    /// size; total traffic is `bytes × downstream tasks`.
    Broadcast,
}

/// A data dependency between two stages of a DAG job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagEdge {
    /// Producing stage.
    pub from: StageId,
    /// Consuming stage.
    pub to: StageId,
    /// Data volume carried by the edge (see [`EdgeKind`] for the broadcast
    /// convention).
    pub bytes: Bytes,
    /// Communication pattern.
    pub kind: EdgeKind,
}

/// One stage of a DAG job: a set of identical parallel tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Human-readable stage name ("map", "reduce", "join-2", …).
    pub name: String,
    /// Number of parallel tasks in the stage.
    pub tasks: usize,
    /// Bytes this stage reads from the distributed filesystem (non-zero for
    /// source stages such as map / extract).
    pub dfs_input: Bytes,
    /// Bytes this stage writes back to the distributed filesystem (non-zero
    /// for sink stages).
    pub dfs_output: Bytes,
    /// Average per-task processing rate over the stage's total input
    /// (the paper's B_M / B_R, estimated from previous runs of the job).
    pub rate: Bandwidth,
}

impl StageProfile {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, tasks: usize, rate: Bandwidth) -> Self {
        StageProfile {
            name: name.into(),
            tasks,
            dfs_input: Bytes::ZERO,
            dfs_output: Bytes::ZERO,
            rate,
        }
    }

    /// Builder-style: set DFS input volume.
    pub fn with_dfs_input(mut self, bytes: Bytes) -> Self {
        self.dfs_input = bytes;
        self
    }

    /// Builder-style: set DFS output volume.
    pub fn with_dfs_output(mut self, bytes: Bytes) -> Self {
        self.dfs_output = bytes;
        self
    }
}

/// A general DAG-structured job (Hive / Tez style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagProfile {
    /// Stages, indexed by [`StageId`] (`stages[s.index()]`).
    pub stages: Vec<StageProfile>,
    /// Data dependencies. Parallel edges between the same stage pair are
    /// allowed (and summed where volumes matter).
    pub edges: Vec<DagEdge>,
}

impl DagProfile {
    /// Stage ids in definition order.
    pub fn stage_ids(&self) -> impl Iterator<Item = StageId> {
        (0..self.stages.len()).map(StageId::from_index)
    }

    /// The stage profile for `s`.
    pub fn stage(&self, s: StageId) -> &StageProfile {
        &self.stages[s.index()]
    }

    /// Incoming edges of stage `s`.
    pub fn in_edges(&self, s: StageId) -> impl Iterator<Item = &DagEdge> {
        self.edges.iter().filter(move |e| e.to == s)
    }

    /// Outgoing edges of stage `s`.
    pub fn out_edges(&self, s: StageId) -> impl Iterator<Item = &DagEdge> {
        self.edges.iter().filter(move |e| e.from == s)
    }

    /// Total bytes stage `s` consumes: DFS input plus all incoming edge
    /// traffic (broadcast edges count once per downstream task).
    pub fn stage_total_input(&self, s: StageId) -> Bytes {
        let tasks = self.stage(s).tasks as f64;
        let edge_bytes: Bytes = self
            .in_edges(s)
            .map(|e| match e.kind {
                EdgeKind::Shuffle => e.bytes,
                EdgeKind::Broadcast => e.bytes * tasks,
            })
            .sum();
        self.stage(s).dfs_input + edge_bytes
    }

    /// Total bytes stage `s` produces over its outgoing edges (broadcast
    /// counted once — it is the upstream output size) plus DFS output.
    pub fn stage_total_output(&self, s: StageId) -> Bytes {
        let edge_bytes: Bytes = self.out_edges(s).map(|e| e.bytes).sum();
        self.stage(s).dfs_output + edge_bytes
    }

    /// Source stages (no incoming edges).
    pub fn sources(&self) -> Vec<StageId> {
        self.stage_ids()
            .filter(|&s| self.in_edges(s).next().is_none())
            .collect()
    }

    /// Sink stages (no outgoing edges).
    pub fn sinks(&self) -> Vec<StageId> {
        self.stage_ids()
            .filter(|&s| self.out_edges(s).next().is_none())
            .collect()
    }

    /// Kahn topological order. Fails if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<StageId>> {
        let n = self.stages.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to.index()] += 1;
        }
        // Deterministic: process ready stages in increasing id order.
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < ready.len() {
            let u = ready[head];
            head += 1;
            order.push(StageId::from_index(u));
            let mut newly: Vec<usize> = Vec::new();
            for e in self.edges.iter().filter(|e| e.from.index() == u) {
                let v = e.to.index();
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    newly.push(v);
                }
            }
            newly.sort_unstable();
            ready.extend(newly);
        }
        if order.len() != n {
            return Err(ModelError::InvalidJob("stage graph has a cycle".into()));
        }
        Ok(order)
    }

    /// Validates the DAG: non-empty, edges in range, no self loops, acyclic,
    /// positive task counts and rates.
    pub fn validate(&self) -> Result<()> {
        if self.stages.is_empty() {
            return Err(ModelError::InvalidJob("job has no stages".into()));
        }
        for (i, st) in self.stages.iter().enumerate() {
            if st.tasks == 0 {
                return Err(ModelError::InvalidJob(format!(
                    "stage {i} ({}) has zero tasks",
                    st.name
                )));
            }
            if st.rate.0 <= 0.0 || st.rate.0.is_nan() {
                return Err(ModelError::InvalidJob(format!(
                    "stage {i} ({}) has non-positive rate",
                    st.name
                )));
            }
            if st.dfs_input.0 < 0.0 || st.dfs_output.0 < 0.0 {
                return Err(ModelError::InvalidJob(format!(
                    "stage {i} ({}) has negative data volume",
                    st.name
                )));
            }
        }
        for e in &self.edges {
            if e.from.index() >= self.stages.len() || e.to.index() >= self.stages.len() {
                return Err(ModelError::InvalidJob(
                    "edge references unknown stage".into(),
                ));
            }
            if e.from == e.to {
                return Err(ModelError::InvalidJob("self-loop edge".into()));
            }
            if e.bytes.0 < 0.0 {
                return Err(ModelError::InvalidJob("edge with negative volume".into()));
            }
        }
        self.topo_order()?;
        Ok(())
    }
}

/// The paper's MapReduce 5-tuple ⟨D_I, D_S, D_O, N_M, N_R⟩ plus the per-task
/// processing rates B_M / B_R (§4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapReduceProfile {
    /// Input data size D_I, read from the DFS by map tasks.
    pub input: Bytes,
    /// Shuffle (intermediate) data size D_S, repartitioned map→reduce.
    pub shuffle: Bytes,
    /// Output data size D_O, written back to the DFS by reduce tasks.
    pub output: Bytes,
    /// Number of map tasks N_M.
    pub maps: usize,
    /// Number of reduce tasks N_R.
    pub reduces: usize,
    /// Average map-task processing rate B_M.
    pub map_rate: Bandwidth,
    /// Average reduce-task processing rate B_R.
    pub reduce_rate: Bandwidth,
}

impl MapReduceProfile {
    /// Canonical conversion to a 2-stage DAG (map →shuffle→ reduce); the
    /// cluster simulator executes everything in DAG form.
    pub fn to_dag(&self) -> DagProfile {
        DagProfile {
            stages: vec![
                StageProfile::new("map", self.maps, self.map_rate).with_dfs_input(self.input),
                StageProfile::new("reduce", self.reduces, self.reduce_rate)
                    .with_dfs_output(self.output),
            ],
            edges: vec![DagEdge {
                from: StageId(0),
                to: StageId(1),
                bytes: self.shuffle,
                kind: EdgeKind::Shuffle,
            }],
        }
    }

    /// Validates the profile.
    pub fn validate(&self) -> Result<()> {
        if self.maps == 0 || self.reduces == 0 {
            return Err(ModelError::InvalidJob("zero map or reduce tasks".into()));
        }
        if self.map_rate.0 <= 0.0
            || self.map_rate.0.is_nan()
            || self.reduce_rate.0 <= 0.0
            || self.reduce_rate.0.is_nan()
        {
            return Err(ModelError::InvalidJob("non-positive task rate".into()));
        }
        if self.input.0 < 0.0 || self.shuffle.0 < 0.0 || self.output.0 < 0.0 {
            return Err(ModelError::InvalidJob("negative data volume".into()));
        }
        Ok(())
    }
}

/// Structure of a job: plain MapReduce or a general DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobProfile {
    /// A simple MapReduce job described by the paper's 5-tuple.
    MapReduce(MapReduceProfile),
    /// A DAG-structured job (Hive / Tez).
    Dag(DagProfile),
}

impl JobProfile {
    /// The job in canonical DAG form (identity for DAG jobs).
    pub fn as_dag(&self) -> DagProfile {
        match self {
            JobProfile::MapReduce(mr) => mr.to_dag(),
            JobProfile::Dag(d) => d.clone(),
        }
    }

    /// Total DFS input bytes (D_I for MapReduce).
    pub fn total_input(&self) -> Bytes {
        match self {
            JobProfile::MapReduce(mr) => mr.input,
            JobProfile::Dag(d) => d.stage_ids().map(|s| d.stage(s).dfs_input).sum(),
        }
    }

    /// Total bytes moved between stages (D_S for MapReduce).
    pub fn total_shuffle(&self) -> Bytes {
        match self {
            JobProfile::MapReduce(mr) => mr.shuffle,
            JobProfile::Dag(d) => d
                .stage_ids()
                .map(|s| d.stage_total_input(s) - d.stage(s).dfs_input)
                .sum(),
        }
    }

    /// Total DFS output bytes (D_O for MapReduce).
    pub fn total_output(&self) -> Bytes {
        match self {
            JobProfile::MapReduce(mr) => mr.output,
            JobProfile::Dag(d) => d.stage_ids().map(|s| d.stage(s).dfs_output).sum(),
        }
    }

    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> usize {
        match self {
            JobProfile::MapReduce(mr) => mr.maps + mr.reduces,
            JobProfile::Dag(d) => d.stages.iter().map(|s| s.tasks).sum(),
        }
    }

    /// The number of compute slots the job requests: the width of its widest
    /// stage (this is the "slots per job" statistic of the paper's Fig. 2).
    pub fn slots_requested(&self) -> usize {
        match self {
            JobProfile::MapReduce(mr) => mr.maps.max(mr.reduces),
            JobProfile::Dag(d) => d.stages.iter().map(|s| s.tasks).max().unwrap_or(0),
        }
    }

    /// Validates the profile.
    pub fn validate(&self) -> Result<()> {
        match self {
            JobProfile::MapReduce(mr) => mr.validate(),
            JobProfile::Dag(d) => d.validate(),
        }
    }
}

/// A job submission: identity, arrival time, predictability class, and the
/// structural/volume profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job id within a workload.
    pub id: JobId,
    /// Human-readable name (e.g. "W1-med-017", "tpch-q5").
    pub name: String,
    /// Submission time. In the batch scenario all arrivals are `0`.
    pub arrival: SimTime,
    /// Whether the job is recurring / known-in-advance (plannable by the
    /// offline planner) or ad hoc (scheduled with fallback policies only).
    pub plannable: bool,
    /// Structure and data volumes.
    pub profile: JobProfile,
}

impl JobSpec {
    /// Convenience constructor for a plannable MapReduce job arriving at t=0.
    pub fn map_reduce(id: JobId, name: impl Into<String>, mr: MapReduceProfile) -> Self {
        JobSpec {
            id,
            name: name.into(),
            arrival: SimTime::ZERO,
            plannable: true,
            profile: JobProfile::MapReduce(mr),
        }
    }

    /// Builder-style: set the arrival time.
    pub fn arriving_at(mut self, t: SimTime) -> Self {
        self.arrival = t;
        self
    }

    /// Builder-style: mark the job ad hoc (not plannable).
    pub fn ad_hoc(mut self) -> Self {
        self.plannable = false;
        self
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<()> {
        if !self.arrival.is_finite() || self.arrival.0 < 0.0 {
            return Err(ModelError::InvalidJob(format!(
                "job {} has invalid arrival time",
                self.id
            )));
        }
        self.profile.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mr() -> MapReduceProfile {
        MapReduceProfile {
            input: Bytes::gb(10.0),
            shuffle: Bytes::gb(5.0),
            output: Bytes::gb(1.0),
            maps: 40,
            reduces: 10,
            map_rate: Bandwidth::mbytes_per_sec(50.0),
            reduce_rate: Bandwidth::mbytes_per_sec(50.0),
        }
    }

    #[test]
    fn mapreduce_to_dag_preserves_volumes() {
        let p = JobProfile::MapReduce(mr());
        let d = p.as_dag();
        d.validate().unwrap();
        assert_eq!(d.stages.len(), 2);
        assert_eq!(d.stage_total_input(StageId(0)), Bytes::gb(10.0));
        assert_eq!(d.stage_total_input(StageId(1)), Bytes::gb(5.0));
        assert_eq!(d.stage_total_output(StageId(1)), Bytes::gb(1.0));
        assert_eq!(JobProfile::Dag(d.clone()).total_input(), p.total_input());
        assert_eq!(
            JobProfile::Dag(d.clone()).total_shuffle(),
            p.total_shuffle()
        );
        assert_eq!(JobProfile::Dag(d).total_output(), p.total_output());
    }

    #[test]
    fn slots_requested_is_widest_stage() {
        assert_eq!(JobProfile::MapReduce(mr()).slots_requested(), 40);
        let d = DagProfile {
            stages: vec![
                StageProfile::new("a", 3, Bandwidth(1.0)),
                StageProfile::new("b", 9, Bandwidth(1.0)),
                StageProfile::new("c", 5, Bandwidth(1.0)),
            ],
            edges: vec![
                DagEdge {
                    from: StageId(0),
                    to: StageId(1),
                    bytes: Bytes(1.0),
                    kind: EdgeKind::Shuffle,
                },
                DagEdge {
                    from: StageId(1),
                    to: StageId(2),
                    bytes: Bytes(1.0),
                    kind: EdgeKind::Shuffle,
                },
            ],
        };
        assert_eq!(JobProfile::Dag(d).slots_requested(), 9);
    }

    #[test]
    fn topo_order_is_deterministic_and_valid() {
        // Diamond: 0 -> {1,2} -> 3
        let d = DagProfile {
            stages: (0..4)
                .map(|i| StageProfile::new(format!("s{i}"), 1, Bandwidth(1.0)))
                .collect(),
            edges: vec![
                DagEdge {
                    from: StageId(0),
                    to: StageId(1),
                    bytes: Bytes(1.0),
                    kind: EdgeKind::Shuffle,
                },
                DagEdge {
                    from: StageId(0),
                    to: StageId(2),
                    bytes: Bytes(1.0),
                    kind: EdgeKind::Shuffle,
                },
                DagEdge {
                    from: StageId(1),
                    to: StageId(3),
                    bytes: Bytes(1.0),
                    kind: EdgeKind::Shuffle,
                },
                DagEdge {
                    from: StageId(2),
                    to: StageId(3),
                    bytes: Bytes(1.0),
                    kind: EdgeKind::Shuffle,
                },
            ],
        };
        let order = d.topo_order().unwrap();
        assert_eq!(order, vec![StageId(0), StageId(1), StageId(2), StageId(3)]);
        assert_eq!(d.sources(), vec![StageId(0)]);
        assert_eq!(d.sinks(), vec![StageId(3)]);
    }

    #[test]
    fn cycle_is_rejected() {
        let d = DagProfile {
            stages: vec![
                StageProfile::new("a", 1, Bandwidth(1.0)),
                StageProfile::new("b", 1, Bandwidth(1.0)),
            ],
            edges: vec![
                DagEdge {
                    from: StageId(0),
                    to: StageId(1),
                    bytes: Bytes(1.0),
                    kind: EdgeKind::Shuffle,
                },
                DagEdge {
                    from: StageId(1),
                    to: StageId(0),
                    bytes: Bytes(1.0),
                    kind: EdgeKind::Shuffle,
                },
            ],
        };
        assert!(d.validate().is_err());
    }

    #[test]
    fn broadcast_multiplies_by_downstream_tasks() {
        let d = DagProfile {
            stages: vec![
                StageProfile::new("small", 2, Bandwidth(1.0)),
                StageProfile::new("probe", 10, Bandwidth(1.0)),
            ],
            edges: vec![DagEdge {
                from: StageId(0),
                to: StageId(1),
                bytes: Bytes::mb(100.0),
                kind: EdgeKind::Broadcast,
            }],
        };
        assert_eq!(d.stage_total_input(StageId(1)), Bytes::gb(1.0));
        // Output side counts the broadcast once.
        assert_eq!(d.stage_total_output(StageId(0)), Bytes::mb(100.0));
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let mut bad = mr();
        bad.maps = 0;
        assert!(bad.validate().is_err());

        let mut bad = mr();
        bad.map_rate = Bandwidth::ZERO;
        assert!(bad.validate().is_err());

        let spec = JobSpec::map_reduce(JobId(0), "x", mr()).arriving_at(SimTime(-1.0));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn builders() {
        let s = JobSpec::map_reduce(JobId(1), "j", mr())
            .arriving_at(SimTime::minutes(5.0))
            .ad_hoc();
        assert!(!s.plannable);
        assert_eq!(s.arrival.as_secs(), 300.0);
        s.validate().unwrap();
    }
}
