//! Physical quantities used throughout the simulator.
//!
//! Three quantities appear everywhere: data volumes ([`Bytes`]), link/task
//! processing rates ([`Bandwidth`], in bytes per second), and simulated time
//! ([`SimTime`], in seconds). Keeping them as newtypes gives dimensional
//! arithmetic: `Bytes / Bandwidth = seconds`, `Bandwidth * seconds = Bytes`,
//! and prevents a whole family of "seconds where bytes expected" mistakes.
//!
//! Data volumes are `f64` internally: the fluid network model transfers
//! fractional bytes, and volumes up to tens of terabytes comfortably fit in
//! the 2^53 exactly-representable integer range.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A data volume in bytes (fractional: the fluid model moves real-valued
/// amounts of data).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bytes(pub f64);

/// A data rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Bandwidth(pub f64);

/// A point in (or duration of) simulated time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SimTime(pub f64);

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0.0);

    /// Constructs a volume from kibi-free decimal kilobytes (10^3).
    pub fn kb(v: f64) -> Bytes {
        Bytes(v * 1e3)
    }

    /// Constructs a volume from decimal megabytes (10^6).
    pub fn mb(v: f64) -> Bytes {
        Bytes(v * 1e6)
    }

    /// Constructs a volume from decimal gigabytes (10^9).
    pub fn gb(v: f64) -> Bytes {
        Bytes(v * 1e9)
    }

    /// Constructs a volume from decimal terabytes (10^12).
    pub fn tb(v: f64) -> Bytes {
        Bytes(v * 1e12)
    }

    /// The volume expressed in decimal gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 / 1e9
    }

    /// True if the remaining volume is negligible (below one byte), the
    /// threshold used by the fluid model to declare a transfer complete.
    pub fn is_negligible(self) -> bool {
        self.0 < 1.0
    }

    /// Clamps a (possibly slightly negative, from floating-point drift)
    /// volume to zero.
    pub fn clamp_non_negative(self) -> Bytes {
        Bytes(self.0.max(0.0))
    }

    /// Numerically safe minimum.
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// Numerically safe maximum.
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}
impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}
impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}
impl SubAssign for Bytes {
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}
impl Mul<f64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: f64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}
impl Div<f64> for Bytes {
    type Output = Bytes;
    fn div(self, rhs: f64) -> Bytes {
        Bytes(self.0 / rhs)
    }
}
impl Div<Bytes> for Bytes {
    type Output = f64;
    fn div(self, rhs: Bytes) -> f64 {
        self.0 / rhs.0
    }
}
/// `volume / rate = duration`
impl Div<Bandwidth> for Bytes {
    type Output = SimTime;
    fn div(self, rhs: Bandwidth) -> SimTime {
        SimTime(self.0 / rhs.0)
    }
}
impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}
impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v >= 1e12 {
            write!(f, "{:.2}TB", v / 1e12)
        } else if v >= 1e9 {
            write!(f, "{:.2}GB", v / 1e9)
        } else if v >= 1e6 {
            write!(f, "{:.2}MB", v / 1e6)
        } else if v >= 1e3 {
            write!(f, "{:.2}KB", v / 1e3)
        } else {
            write!(f, "{:.0}B", v)
        }
    }
}

// ---------------------------------------------------------------------------
// Bandwidth
// ---------------------------------------------------------------------------

impl Bandwidth {
    /// Zero rate.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Constructs a rate from gigabits per second (the customary unit for
    /// NIC and uplink capacities; note bits, not bytes).
    pub fn gbps(v: f64) -> Bandwidth {
        Bandwidth(v * 1e9 / 8.0)
    }

    /// Constructs a rate from megabytes per second (the customary unit for
    /// per-task processing rates such as the paper's B_M and B_R).
    pub fn mbytes_per_sec(v: f64) -> Bandwidth {
        Bandwidth(v * 1e6)
    }

    /// The rate expressed in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 * 8.0 / 1e9
    }

    /// Numerically safe minimum.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// Numerically safe maximum.
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// True if the rate is effectively zero (< 1 byte/s). A flow allocated
    /// a negligible rate is treated as stalled.
    pub fn is_negligible(self) -> bool {
        self.0 < 1.0
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}
impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}
impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}
impl SubAssign for Bandwidth {
    fn sub_assign(&mut self, rhs: Bandwidth) {
        self.0 -= rhs.0;
    }
}
impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}
impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}
impl Div<Bandwidth> for Bandwidth {
    type Output = f64;
    fn div(self, rhs: Bandwidth) -> f64 {
        self.0 / rhs.0
    }
}
/// `rate * duration = volume`
impl Mul<SimTime> for Bandwidth {
    type Output = Bytes;
    fn mul(self, rhs: SimTime) -> Bytes {
        Bytes(self.0 * rhs.0)
    }
}
impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        Bandwidth(iter.map(|b| b.0).sum())
    }
}
impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Gbps", self.as_gbps())
    }
}

// ---------------------------------------------------------------------------
// SimTime
// ---------------------------------------------------------------------------

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// "Never": a time beyond any event horizon.
    pub const INFINITY: SimTime = SimTime(f64::INFINITY);

    /// Constructs a time from seconds.
    pub fn secs(v: f64) -> SimTime {
        SimTime(v)
    }

    /// Constructs a time from minutes.
    pub fn minutes(v: f64) -> SimTime {
        SimTime(v * 60.0)
    }

    /// Constructs a time from hours.
    pub fn hours(v: f64) -> SimTime {
        SimTime(v * 3600.0)
    }

    /// The time expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// True if this is a finite instant.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Numerically safe minimum.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Numerically safe maximum.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Total ordering for use as an event-queue key. `NaN` is a logic error
    /// in the simulator and is ordered last (and will be caught by debug
    /// assertions at event insertion).
    pub fn total_cmp(self, other: SimTime) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}
impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}
impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}
impl Neg for SimTime {
    type Output = SimTime;
    fn neg(self) -> SimTime {
        SimTime(-self.0)
    }
}
/// `duration * rate = volume`
impl Mul<Bandwidth> for SimTime {
    type Output = Bytes;
    fn mul(self, rhs: Bandwidth) -> Bytes {
        Bytes(self.0 * rhs.0)
    }
}
impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensional_arithmetic() {
        let d = Bytes::gb(10.0);
        let r = Bandwidth::gbps(10.0); // 1.25 GB/s
        let t = d / r;
        assert!((t.as_secs() - 8.0).abs() < 1e-9);
        let back = r * t;
        assert!((back.0 - d.0).abs() < 1e-3);
    }

    #[test]
    fn gbps_is_bits() {
        assert!((Bandwidth::gbps(8.0).0 - 1e9).abs() < 1e-6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bytes::gb(2.5).to_string(), "2.50GB");
        assert_eq!(Bytes::tb(1.2).to_string(), "1.20TB");
        assert_eq!(Bytes(512.0).to_string(), "512B");
        assert_eq!(SimTime::secs(1.5).to_string(), "1.500s");
    }

    #[test]
    fn negligible_thresholds() {
        assert!(Bytes(0.5).is_negligible());
        assert!(!Bytes(2.0).is_negligible());
        assert!(Bandwidth(0.1).is_negligible());
    }

    #[test]
    fn time_helpers() {
        assert_eq!(SimTime::minutes(2.0).as_secs(), 120.0);
        assert_eq!(SimTime::hours(1.0).as_secs(), 3600.0);
        assert!(SimTime::INFINITY > SimTime::hours(1e9));
        assert!(!SimTime::INFINITY.is_finite());
    }

    #[test]
    fn total_cmp_is_total() {
        let mut v = vec![SimTime(3.0), SimTime(1.0), SimTime(2.0)];
        v.sort_by(|a, b| a.total_cmp(*b));
        assert_eq!(v, vec![SimTime(1.0), SimTime(2.0), SimTime(3.0)]);
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(Bytes(-1e-9).clamp_non_negative(), Bytes(0.0));
        assert_eq!(Bytes(5.0).clamp_non_negative(), Bytes(5.0));
    }

    #[test]
    fn sums() {
        let total: Bytes = [Bytes::gb(1.0), Bytes::gb(2.0)].into_iter().sum();
        assert!((total.as_gb() - 3.0).abs() < 1e-12);
    }
}
