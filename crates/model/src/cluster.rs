//! Static cluster description shared by the offline planner and the
//! discrete-event simulator.
//!
//! The paper's testbed (§6.1): 210 machines in 7 racks of 30, 10 Gbps NICs,
//! folded-CLOS with 5:1 oversubscription (each rack has a 60 Gbps connection
//! to the core); the large-scale simulation (§6.6): 2000 machines, 50 racks
//! of 40, 1 Gbps NICs, 20 slots per machine, again 5:1. Both are expressible
//! as a [`ClusterConfig`].

use crate::ids::{MachineId, RackId};
use crate::units::{Bandwidth, Bytes};
use serde::{Deserialize, Serialize};

/// Static description of a cluster: topology shape, slot capacity, and
/// link speeds. All Corral components (planner, DFS, network fabric, cluster
/// engine) derive their geometry from one shared `ClusterConfig`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of racks, `R` in the paper.
    pub racks: usize,
    /// Machines per rack, `k` in the paper.
    pub machines_per_rack: usize,
    /// Concurrent task slots per machine. (The paper's testbed machines have
    /// 32 cores; we default to a smaller number and scale task counts, see
    /// DESIGN.md §1.)
    pub slots_per_machine: usize,
    /// Per-machine NIC bandwidth `B` (full duplex: this capacity applies
    /// independently in each direction).
    pub nic_bandwidth: Bandwidth,
    /// Rack-to-core oversubscription ratio `V` (> 1 means the rack uplink
    /// carries `k·B/V`). `V = 1` models full bisection bandwidth.
    pub oversubscription: f64,
    /// DFS chunk (block) size. HDFS-style default: 256 MB.
    pub chunk_size: Bytes,
    /// DFS replication factor. HDFS-style default: 3 (two replicas on one
    /// rack, the third on a different rack).
    pub replication: usize,
}

impl ClusterConfig {
    /// The paper's 210-machine testbed (§6.1): 7 racks × 30 machines,
    /// 10 Gbps NICs, 5:1 oversubscription (60 Gbps per-rack uplink).
    pub fn testbed_210() -> Self {
        ClusterConfig {
            racks: 7,
            machines_per_rack: 30,
            slots_per_machine: 4,
            nic_bandwidth: Bandwidth::gbps(10.0),
            oversubscription: 5.0,
            chunk_size: Bytes::mb(256.0),
            replication: 3,
        }
    }

    /// The paper's 2000-machine simulated topology (§6.6): 50 racks × 40
    /// machines, 1 Gbps NICs, 20 slots per machine, 5:1 oversubscription.
    pub fn sim_2000() -> Self {
        ClusterConfig {
            racks: 50,
            machines_per_rack: 40,
            slots_per_machine: 20,
            nic_bandwidth: Bandwidth::gbps(1.0),
            oversubscription: 5.0,
            chunk_size: Bytes::mb(256.0),
            replication: 3,
        }
    }

    /// A small cluster useful in unit tests: 3 racks × 4 machines, 2 slots,
    /// 10 Gbps NICs, 4:1 oversubscription.
    pub fn tiny_test() -> Self {
        ClusterConfig {
            racks: 3,
            machines_per_rack: 4,
            slots_per_machine: 2,
            nic_bandwidth: Bandwidth::gbps(10.0),
            oversubscription: 4.0,
            chunk_size: Bytes::mb(64.0),
            replication: 3,
        }
    }

    /// Total number of machines in the cluster.
    pub fn total_machines(&self) -> usize {
        self.racks * self.machines_per_rack
    }

    /// Total number of task slots in the cluster.
    pub fn total_slots(&self) -> usize {
        self.total_machines() * self.slots_per_machine
    }

    /// Task slots per rack (the "one rack worth of compute" unit of Fig. 2).
    pub fn slots_per_rack(&self) -> usize {
        self.machines_per_rack * self.slots_per_machine
    }

    /// The rack hosting a machine. Machines are numbered rack-major.
    pub fn rack_of(&self, m: MachineId) -> RackId {
        debug_assert!(m.index() < self.total_machines(), "machine out of range");
        RackId::from_index(m.index() / self.machines_per_rack)
    }

    /// The machines of rack `r`, in increasing id order.
    pub fn machines_in_rack(&self, r: RackId) -> impl Iterator<Item = MachineId> + '_ {
        debug_assert!(r.index() < self.racks, "rack out of range");
        let base = r.index() * self.machines_per_rack;
        (base..base + self.machines_per_rack).map(MachineId::from_index)
    }

    /// Iterator over all machine ids.
    pub fn all_machines(&self) -> impl Iterator<Item = MachineId> {
        (0..self.total_machines()).map(MachineId::from_index)
    }

    /// Iterator over all rack ids.
    pub fn all_racks(&self) -> impl Iterator<Item = RackId> {
        (0..self.racks).map(RackId::from_index)
    }

    /// Capacity of a rack's uplink (and downlink) to the core: `k·B/V`.
    pub fn rack_core_bandwidth(&self) -> Bandwidth {
        self.nic_bandwidth * (self.machines_per_rack as f64 / self.oversubscription)
    }

    /// Validates internal consistency; returns a human-readable description
    /// of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.racks == 0 {
            return Err("cluster must have at least one rack".into());
        }
        if self.machines_per_rack == 0 {
            return Err("racks must have at least one machine".into());
        }
        if self.slots_per_machine == 0 {
            return Err("machines must have at least one slot".into());
        }
        // `is_nan()` spelled out: NaN must be rejected, not just <= 0.
        if self.nic_bandwidth.0 <= 0.0 || self.nic_bandwidth.0.is_nan() {
            return Err("NIC bandwidth must be positive".into());
        }
        if self.oversubscription < 1.0 || self.oversubscription.is_nan() {
            return Err("oversubscription ratio must be >= 1".into());
        }
        if self.chunk_size.0 <= 0.0 || self.chunk_size.0.is_nan() {
            return Err("chunk size must be positive".into());
        }
        if self.replication == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.replication > self.total_machines() {
            return Err(format!(
                "replication factor {} exceeds machine count {}",
                self.replication,
                self.total_machines()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_geometry_matches_paper() {
        let c = ClusterConfig::testbed_210();
        assert_eq!(c.total_machines(), 210);
        assert_eq!(c.racks, 7);
        // 5:1 oversubscription of 30 x 10G = 60 Gbps to the core.
        assert!((c.rack_core_bandwidth().as_gbps() - 60.0).abs() < 1e-9);
        c.validate().unwrap();
    }

    #[test]
    fn sim_2000_geometry_matches_paper() {
        let c = ClusterConfig::sim_2000();
        assert_eq!(c.total_machines(), 2000);
        assert_eq!(c.slots_per_machine, 20);
        assert!((c.rack_core_bandwidth().as_gbps() - 8.0).abs() < 1e-9);
        c.validate().unwrap();
    }

    #[test]
    fn rack_of_is_rack_major() {
        let c = ClusterConfig::tiny_test();
        assert_eq!(c.rack_of(MachineId(0)), RackId(0));
        assert_eq!(c.rack_of(MachineId(3)), RackId(0));
        assert_eq!(c.rack_of(MachineId(4)), RackId(1));
        assert_eq!(c.rack_of(MachineId(11)), RackId(2));
    }

    #[test]
    fn machines_in_rack_enumerates_consistently() {
        let c = ClusterConfig::tiny_test();
        for r in c.all_racks() {
            for m in c.machines_in_rack(r) {
                assert_eq!(c.rack_of(m), r);
            }
        }
        let total: usize = c.all_racks().map(|r| c.machines_in_rack(r).count()).sum();
        assert_eq!(total, c.total_machines());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = ClusterConfig::tiny_test();
        c.oversubscription = 0.5;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::tiny_test();
        c.racks = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::tiny_test();
        c.replication = 1000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn slot_accounting() {
        let c = ClusterConfig::testbed_210();
        assert_eq!(c.total_slots(), 210 * 4);
        assert_eq!(c.slots_per_rack(), 120);
    }
}
