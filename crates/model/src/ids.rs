//! Strongly-typed identifiers.
//!
//! Every entity in the simulator (machines, racks, jobs, stages, tasks, DFS
//! files/chunks, network flows) is referred to by a small copyable newtype
//! over `u32`/`u64`. Using distinct types (rather than bare integers) makes
//! it impossible to, say, index a rack table with a machine id — a class of
//! bug that is otherwise easy to introduce in a simulator with this many
//! parallel index spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize,
            Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw `usize` index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in the id's backing integer.
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                Self(<$repr>::try_from(idx).expect("id index overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(idx: usize) -> Self {
                Self::from_index(idx)
            }
        }
    };
}

id_type!(
    /// A physical machine (worker node). Machines are numbered densely,
    /// `0..total_machines`, rack-major: machine `m` lives in rack
    /// `m / machines_per_rack`.
    MachineId,
    u32,
    "m"
);

id_type!(
    /// A rack (top-of-rack switch domain). Numbered `0..racks`.
    RackId,
    u32,
    "r"
);

id_type!(
    /// A job submitted to the cluster.
    JobId,
    u32,
    "j"
);

id_type!(
    /// A stage within a job's DAG (e.g. map, reduce, a Hive operator stage).
    /// Stage ids are job-local, numbered in topological order of definition.
    StageId,
    u32,
    "s"
);

id_type!(
    /// A task within a stage. Task ids are globally unique within one
    /// simulation run.
    TaskId,
    u64,
    "t"
);

id_type!(
    /// A file in the distributed filesystem.
    FileId,
    u64,
    "f"
);

id_type!(
    /// A chunk (block) of a DFS file.
    ChunkId,
    u64,
    "c"
);

id_type!(
    /// A fluid flow in the network fabric.
    FlowId,
    u64,
    "fl"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let m = MachineId::from_index(17);
        assert_eq!(m.index(), 17);
        assert_eq!(m, MachineId(17));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(RackId(3).to_string(), "r3");
        assert_eq!(TaskId(42).to_string(), "t42");
        assert_eq!(FlowId(7).to_string(), "fl7");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(JobId(2) < JobId(10));
        let mut v = vec![StageId(3), StageId(1), StageId(2)];
        v.sort();
        assert_eq!(v, vec![StageId(1), StageId(2), StageId(3)]);
    }

    #[test]
    #[should_panic(expected = "id index overflow")]
    fn overflow_panics() {
        let _ = MachineId::from_index(usize::MAX);
    }

    #[test]
    fn serde_transparent() {
        let j = JobId(9);
        let s = serde_json_like(&j);
        assert_eq!(s, "9");
    }

    /// Minimal serialization check without pulling in serde_json: use the
    /// `serde::Serialize` impl through a tiny custom serializer is overkill;
    /// instead verify via `bincode`-free debug of the transparent repr.
    fn serde_json_like(j: &JobId) -> String {
        // The `#[serde(transparent)]` attribute guarantees the id serializes
        // exactly like its inner integer; we assert the invariant we rely on
        // (inner value accessibility) here.
        format!("{}", j.0)
    }
}
