//! # corral-probe — self-profiling for the simulator's own hot paths.
//!
//! Everything else in this crate observes the *simulated* world; this
//! module observes the *simulator*: where host wall-clock goes
//! (`fabric::recompute`, max-min rounds, candidate enumeration and
//! scoring, sweep cells, export) and why (recompute trigger kinds, heap
//! pops, early stops, scratch growths, pool queue depth).
//!
//! Design rules:
//!
//! * **Strictly outside the sim-trace stream.** Probes never touch
//!   [`crate::Tracer`] sinks, never read or write simulation state, and
//!   never feed numbers back into any decision. Same-seed runs with
//!   probes on and off produce byte-identical sim traces (asserted by
//!   `tests/probe_neutrality.rs`).
//! * **Near-zero cost when off.** The enable flag is a single relaxed
//!   atomic load; a disabled [`span`] returns an inert guard without
//!   touching thread-local state.
//! * **Zero-alloc on the hot path when on.** Each thread owns a
//!   fixed-capacity span stack and a preallocated ring of closed span
//!   records; closing a span updates flat per-kind aggregates
//!   (count/total + a [`LogHistogram`]). Allocation happens once per
//!   thread, at first use.
//! * **Crash-proof span stack.** Guards carry a generation number;
//!   dropping guards out of order (or leaking them past a panic) can
//!   mis-attribute at worst — it counts `probe.unbalanced_spans` and can
//!   never corrupt the stack or attribute a span to the wrong kind.
//!
//! Per-thread state merges into a process-wide accumulator on an
//! explicit [`flush_thread`] (sweep workers flush before their closure
//! returns; the TLS destructor is only a backstop — thread teardown is
//! not ordered before `join`). [`report`]
//! snapshots the accumulator as a [`ProbeReport`], which renders as a
//! Prometheus-style text exposition ([`ProbeReport::prometheus`]) or as
//! extra slices on the Chrome/Perfetto timeline
//! ([`crate::perfetto::chrome_trace_with_probe`]).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::histogram::LogHistogram;

/// The instrumented hot-path sections, one label per RAII span site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// One `Fabric::recompute` (CSR rebuild + allocation + rate apply).
    FabricRecompute = 0,
    /// The max-min water-filling allocation inside a recompute.
    FabricMaxMin,
    /// Candidate-trajectory enumeration in `provision_fast`.
    CandidateEnum,
    /// Scoring one candidate allocation (runs on pool workers too).
    CandidateScore,
    /// One full `provision_fast` call (enumeration + scoring + argmin).
    Provision,
    /// One full `plan_jobs` decision (the per-plan latency histogram).
    PlanDecision,
    /// One cluster-engine event dispatch (the per-event latency
    /// histogram — the seam `corral-serve` will report against).
    EngineEvent,
    /// One sweep cell executing on a pool worker (setup + run).
    SweepCell,
    /// Collecting/reducing sweep cell results back on the caller.
    SweepReduce,
    /// Serde/export work: CSV, JSONL flush, Perfetto rendering.
    Export,
    /// One `corral-serve` service decision: event intake, admission,
    /// cache probe, and (on misses) the replan (the per-decision
    /// latency histogram of the scheduling service).
    ServeDecision,
}

impl SpanKind {
    /// Every kind, in stable report order.
    pub const ALL: [SpanKind; 11] = [
        SpanKind::FabricRecompute,
        SpanKind::FabricMaxMin,
        SpanKind::CandidateEnum,
        SpanKind::CandidateScore,
        SpanKind::Provision,
        SpanKind::PlanDecision,
        SpanKind::EngineEvent,
        SpanKind::SweepCell,
        SpanKind::SweepReduce,
        SpanKind::Export,
        SpanKind::ServeDecision,
    ];

    /// Stable dotted label used in expositions and reports.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::FabricRecompute => "fabric.recompute",
            SpanKind::FabricMaxMin => "fabric.maxmin",
            SpanKind::CandidateEnum => "planner.enumerate",
            SpanKind::CandidateScore => "planner.score",
            SpanKind::Provision => "planner.provision",
            SpanKind::PlanDecision => "planner.plan",
            SpanKind::EngineEvent => "engine.event",
            SpanKind::SweepCell => "sweep.cell",
            SpanKind::SweepReduce => "sweep.reduce",
            SpanKind::Export => "export.write",
            SpanKind::ServeDecision => "serve.decision",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Hot-path cause counters: *why* the expensive sections ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProbeCounter {
    /// Fabric marked dirty by a flow start (incl. ingress flows).
    RecomputeFlowStart = 0,
    /// Fabric marked dirty by a flow cancellation.
    RecomputeFlowCancel,
    /// Fabric marked dirty by a background-traffic epoch change.
    RecomputeBackground,
    /// Fabric marked dirty by a flow draining to completion.
    RecomputeCompletion,
    /// Max-min water-filling rounds executed.
    MaxMinRounds,
    /// Fabric CSR scratch footprint growths (reallocation events).
    FabricScratchGrow,
    /// Candidate-heap pops in the enumeration trajectory.
    HeapPops,
    /// Enumerations cut short by the early-stop rule.
    EarlyStops,
    /// Planner per-thread scratch growths (reallocation events).
    PlannerScratchGrow,
    /// Sum of unclaimed-cell queue depths sampled at each pool claim.
    PoolQueueDepthSum,
    /// Number of pool queue-depth samples (divide into the sum).
    PoolQueueDepthSamples,
    /// Span guards dropped out of order or after truncation.
    UnbalancedSpans,
    /// Spans discarded because the per-thread stack was full.
    StackOverflows,
    /// Closed span records evicted from rings (per-thread + merged).
    RingDrops,
    /// Serve plan-cache lookups answered from the cache (no replan).
    PlanCacheHit,
    /// Serve plan-cache lookups that missed and forced a replan.
    PlanCacheMiss,
    /// Replans that reused at least one cached latency model
    /// (only the delta jobs were re-modelled).
    ReplanIncremental,
    /// Replans that rebuilt every latency model (cold or invalidated).
    ReplanFull,
    /// Jobs admitted by the serve loop.
    ServeAdmitted,
    /// Jobs rejected by serve admission control (bounded queue,
    /// unplannable profile, or duplicate id).
    ServeRejected,
    /// Malformed wire lines absorbed by the serve loop (structured
    /// reject or counted skip, never a crash).
    ServeMalformed,
    /// Queued jobs whose rack anchor was dropped by the §7 failure
    /// fallback (re-anchored in the post-failure replan).
    ServeReanchored,
    /// Dispatch timers deferred with backoff because the target rack
    /// set was effectively dead.
    ServeDispatchRetry,
    /// Fabric recomputes that re-solved only the dirty bottleneck
    /// components (the incremental path).
    RecomputeIncremental,
    /// Fabric recomputes that ran the full eager solve because the
    /// allocator has no incremental form at all.
    RecomputeFullEager,
    /// Coflow-local recomputes that degenerated to a full pass because
    /// the dirtied priority boundary covered the whole order (capacity
    /// change, cold cache, or an oversized dirty set).
    RecomputeFullBoundary,
    /// Sum of dirty-set sizes (candidate flows re-solved) across
    /// incremental recomputes.
    FabricDirtyFlowsSum,
    /// Number of dirty-set samples (divide into the sum for the mean
    /// dirty-set size).
    FabricDirtyFlowsSamples,
    /// Current element footprint of the Varys allocator scratch
    /// (incremental cache included); reported as a running gauge — each
    /// growth adds the delta, so the sum reads as the latest footprint.
    VarysScratchElems,
}

impl ProbeCounter {
    /// Every counter, in stable report order.
    pub const ALL: [ProbeCounter; 29] = [
        ProbeCounter::RecomputeFlowStart,
        ProbeCounter::RecomputeFlowCancel,
        ProbeCounter::RecomputeBackground,
        ProbeCounter::RecomputeCompletion,
        ProbeCounter::MaxMinRounds,
        ProbeCounter::FabricScratchGrow,
        ProbeCounter::HeapPops,
        ProbeCounter::EarlyStops,
        ProbeCounter::PlannerScratchGrow,
        ProbeCounter::PoolQueueDepthSum,
        ProbeCounter::PoolQueueDepthSamples,
        ProbeCounter::UnbalancedSpans,
        ProbeCounter::StackOverflows,
        ProbeCounter::RingDrops,
        ProbeCounter::PlanCacheHit,
        ProbeCounter::PlanCacheMiss,
        ProbeCounter::ReplanIncremental,
        ProbeCounter::ReplanFull,
        ProbeCounter::ServeAdmitted,
        ProbeCounter::ServeRejected,
        ProbeCounter::ServeMalformed,
        ProbeCounter::ServeReanchored,
        ProbeCounter::ServeDispatchRetry,
        ProbeCounter::RecomputeIncremental,
        ProbeCounter::RecomputeFullEager,
        ProbeCounter::RecomputeFullBoundary,
        ProbeCounter::FabricDirtyFlowsSum,
        ProbeCounter::FabricDirtyFlowsSamples,
        ProbeCounter::VarysScratchElems,
    ];

    /// Stable dotted label used in expositions and reports.
    pub fn label(self) -> &'static str {
        match self {
            ProbeCounter::RecomputeFlowStart => "recompute.flow_start",
            ProbeCounter::RecomputeFlowCancel => "recompute.flow_cancel",
            ProbeCounter::RecomputeBackground => "recompute.background",
            ProbeCounter::RecomputeCompletion => "recompute.completion",
            ProbeCounter::MaxMinRounds => "maxmin.rounds",
            ProbeCounter::FabricScratchGrow => "fabric.scratch_grows",
            ProbeCounter::HeapPops => "planner.heap_pops",
            ProbeCounter::EarlyStops => "planner.early_stops",
            ProbeCounter::PlannerScratchGrow => "planner.scratch_grows",
            ProbeCounter::PoolQueueDepthSum => "sweep.queue_depth_sum",
            ProbeCounter::PoolQueueDepthSamples => "sweep.queue_depth_samples",
            ProbeCounter::UnbalancedSpans => "probe.unbalanced_spans",
            ProbeCounter::StackOverflows => "probe.stack_overflows",
            ProbeCounter::RingDrops => "probe.ring_drops",
            ProbeCounter::PlanCacheHit => "serve.cache_hits",
            ProbeCounter::PlanCacheMiss => "serve.cache_misses",
            ProbeCounter::ReplanIncremental => "serve.replan_incremental",
            ProbeCounter::ReplanFull => "serve.replan_full",
            ProbeCounter::ServeAdmitted => "serve.admitted",
            ProbeCounter::ServeRejected => "serve.rejected",
            ProbeCounter::ServeMalformed => "serve.malformed",
            ProbeCounter::ServeReanchored => "serve.reanchored",
            ProbeCounter::ServeDispatchRetry => "serve.dispatch_retries",
            ProbeCounter::RecomputeIncremental => "fabric.recompute_incremental",
            ProbeCounter::RecomputeFullEager => "fabric.recompute_full_eager",
            ProbeCounter::RecomputeFullBoundary => "fabric.recompute_full_boundary",
            ProbeCounter::FabricDirtyFlowsSum => "fabric.dirty_flows_sum",
            ProbeCounter::FabricDirtyFlowsSamples => "fabric.dirty_flows_samples",
            ProbeCounter::VarysScratchElems => "fabric.varys_scratch_elems",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

const NKINDS: usize = SpanKind::ALL.len();
const NCOUNTERS: usize = ProbeCounter::ALL.len();

/// Maximum span nesting per thread; deeper spans are counted
/// (`probe.stack_overflows`) and discarded.
pub const MAX_DEPTH: usize = 64;

/// Closed-span records retained per thread before the ring wraps.
pub const THREAD_RING: usize = 4096;

/// Closed-span records retained process-wide in the merged accumulator.
pub const MERGED_RING: usize = 16384;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether probes are currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns probing on or off process-wide. Spans opened while enabled
/// still record on drop after a disable (harmless by design).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables probes when the `CORRAL_PROBE` environment variable is set
/// to anything other than empty or `0`.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("CORRAL_PROBE") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
}

/// Host-time epoch shared by all threads so ring records line up on one
/// timeline. Initialized before any span can start, so every span start
/// is at or after it.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// One closed span, as retained in the rings (host time, ns since the
/// process probe epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// What was measured.
    pub kind: SpanKind,
    /// Start, nanoseconds since the probe epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u8,
}

#[derive(Clone, Copy)]
struct Frame {
    kind: SpanKind,
    start: Instant,
    gen: u64,
}

struct SpanAgg {
    count: u64,
    total_ns: u64,
    hist: LogHistogram,
}

impl SpanAgg {
    fn new() -> Self {
        SpanAgg {
            count: 0,
            total_ns: 0,
            hist: LogHistogram::new(),
        }
    }
}

struct ThreadProbe {
    stack: Vec<Frame>,
    next_gen: u64,
    spans: Vec<SpanAgg>,
    counters: [u64; NCOUNTERS],
    ring: Vec<SpanRecord>,
    ring_next: usize,
    used: bool,
}

impl ThreadProbe {
    fn new() -> Self {
        // Pin the epoch before any frame's start so offsets never
        // underflow.
        let _ = epoch();
        ThreadProbe {
            stack: Vec::with_capacity(MAX_DEPTH),
            next_gen: 1,
            spans: (0..NKINDS).map(|_| SpanAgg::new()).collect(),
            counters: [0; NCOUNTERS],
            ring: Vec::with_capacity(THREAD_RING),
            ring_next: 0,
            used: false,
        }
    }

    fn open(&mut self, kind: SpanKind, now: Instant) -> (u32, u64) {
        self.used = true;
        if self.stack.len() >= MAX_DEPTH {
            self.counters[ProbeCounter::StackOverflows.index()] += 1;
            return (u32::MAX, 0);
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        let slot = self.stack.len() as u32;
        self.stack.push(Frame {
            kind,
            start: now,
            gen,
        });
        (slot, gen)
    }

    fn close(&mut self, slot: u32, gen: u64, now: Instant) {
        let slot = slot as usize;
        if self.stack.len() <= slot || self.stack[slot].gen != gen {
            // Our frame is gone: an enclosing guard already truncated
            // past it. Record the imbalance, never touch other frames.
            self.counters[ProbeCounter::UnbalancedSpans.index()] += 1;
            return;
        }
        let extra = self.stack.len() - slot - 1;
        if extra > 0 {
            // Inner guards were leaked (e.g. dropped out of order):
            // discard their frames rather than guess their durations.
            self.counters[ProbeCounter::UnbalancedSpans.index()] += extra as u64;
        }
        let frame = self.stack[slot];
        self.stack.truncate(slot);
        let dur_ns = now.saturating_duration_since(frame.start).as_nanos() as u64;
        let agg = &mut self.spans[frame.kind.index()];
        agg.count += 1;
        agg.total_ns += dur_ns;
        agg.hist.record(dur_ns as f64 / 1e9);
        let rec = SpanRecord {
            kind: frame.kind,
            start_ns: frame.start.saturating_duration_since(epoch()).as_nanos() as u64,
            dur_ns,
            depth: slot as u8,
        };
        if self.ring.len() < THREAD_RING {
            self.ring.push(rec);
        } else {
            self.ring[self.ring_next] = rec;
            self.counters[ProbeCounter::RingDrops.index()] += 1;
        }
        self.ring_next = (self.ring_next + 1) % THREAD_RING;
    }

    fn add(&mut self, c: ProbeCounter, by: u64) {
        self.used = true;
        self.counters[c.index()] += by;
    }

    /// Moves everything recorded so far into the global accumulator and
    /// resets this thread's aggregates. Open frames survive so spans in
    /// flight still record when their guards drop.
    fn drain_into_global(&mut self) {
        if !self.used {
            return;
        }
        let mut guard = global().lock().unwrap();
        let g = guard.get_or_insert_with(GlobalProbe::new);
        g.threads += 1;
        for (i, agg) in self.spans.iter_mut().enumerate() {
            g.spans[i].count += agg.count;
            g.spans[i].total_ns += agg.total_ns;
            g.spans[i].hist.merge(&agg.hist);
            *agg = SpanAgg::new();
        }
        for (i, c) in self.counters.iter_mut().enumerate() {
            g.counters[i] += *c;
            *c = 0;
        }
        for rec in self.ring.drain(..) {
            if g.ring.len() < MERGED_RING {
                g.ring.push(rec);
            } else {
                g.counters[ProbeCounter::RingDrops.index()] += 1;
            }
        }
        self.ring_next = 0;
        self.used = false;
    }
}

impl Drop for ThreadProbe {
    fn drop(&mut self) {
        self.drain_into_global();
    }
}

thread_local! {
    static TLS: RefCell<ThreadProbe> = RefCell::new(ThreadProbe::new());
}

struct GlobalProbe {
    spans: Vec<SpanAgg>,
    counters: [u64; NCOUNTERS],
    ring: Vec<SpanRecord>,
    threads: u64,
}

impl GlobalProbe {
    fn new() -> Self {
        GlobalProbe {
            spans: (0..NKINDS).map(|_| SpanAgg::new()).collect(),
            counters: [0; NCOUNTERS],
            ring: Vec::new(),
            threads: 0,
        }
    }
}

fn global() -> &'static Mutex<Option<GlobalProbe>> {
    static GLOBAL: Mutex<Option<GlobalProbe>> = Mutex::new(None);
    &GLOBAL
}

/// RAII guard for one timed section; records on drop.
#[must_use = "a probe span measures until it is dropped"]
pub struct Span {
    slot: u32,
    gen: u64,
}

/// Opens a scoped span of `kind` on the current thread. Inert (and
/// thread-local-free) when probing is disabled.
#[inline]
pub fn span(kind: SpanKind) -> Span {
    if !enabled() {
        return Span {
            slot: u32::MAX,
            gen: 0,
        };
    }
    let now = Instant::now();
    let (slot, gen) = TLS.with(|t| t.borrow_mut().open(kind, now));
    Span { slot, gen }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.slot == u32::MAX {
            return;
        }
        let now = Instant::now();
        // try_with: the guard may drop during thread teardown after the
        // TLS slot is gone; losing that one span is fine.
        let _ = TLS.try_with(|t| t.borrow_mut().close(self.slot, self.gen, now));
    }
}

/// Adds `by` to a cause counter on the current thread. No-op when
/// probing is disabled.
#[inline]
pub fn count(c: ProbeCounter, by: u64) {
    if !enabled() || by == 0 {
        return;
    }
    let _ = TLS.try_with(|t| t.borrow_mut().add(c, by));
}

/// Samples the sweep pool's unclaimed-cell queue depth (sum + sample
/// count, so reports can show the mean backlog).
#[inline]
pub fn queue_depth(depth: usize) {
    if !enabled() {
        return;
    }
    let _ = TLS.try_with(|t| {
        let mut t = t.borrow_mut();
        t.add(ProbeCounter::PoolQueueDepthSum, depth as u64);
        t.add(ProbeCounter::PoolQueueDepthSamples, 1);
    });
}

/// Merges the current thread's probe data into the global accumulator.
///
/// Worker threads must call this at the end of their closure, *before*
/// the spawning thread joins them: the TLS-destructor merge also runs at
/// thread exit as a backstop, but thread teardown is not synchronized
/// with `join`/`scope` completion, so data merged only by the destructor
/// may land after the coordinator has already read its [`report`]. The
/// coordinating thread itself is flushed by [`report`].
pub fn flush_thread() {
    let _ = TLS.try_with(|t| t.borrow_mut().drain_into_global());
}

/// Clears the current thread's and the global accumulator's probe data.
/// Call between measurement phases, after any worker pools have joined
/// (other live threads' unflushed data is not reachable from here).
pub fn reset() {
    let _ = TLS.try_with(|t| {
        let mut t = t.borrow_mut();
        for agg in t.spans.iter_mut() {
            *agg = SpanAgg::new();
        }
        t.counters = [0; NCOUNTERS];
        t.ring.clear();
        t.ring_next = 0;
        t.used = false;
    });
    *global().lock().unwrap() = None;
}

/// Aggregated wall-time statistics for one span kind.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Stable dotted label ([`SpanKind::label`]).
    pub label: &'static str,
    /// Spans closed.
    pub count: u64,
    /// Total wall-clock across all spans, seconds.
    pub total_s: f64,
    /// Median span duration, seconds.
    pub p50_s: f64,
    /// 90th percentile span duration, seconds.
    pub p90_s: f64,
    /// 99th percentile span duration, seconds.
    pub p99_s: f64,
    /// Largest observed span duration, seconds.
    pub max_s: f64,
}

/// A snapshot of everything the probe layer recorded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbeReport {
    /// Per-kind span statistics (only kinds with at least one span).
    pub spans: Vec<SpanStat>,
    /// Cause counters, in [`ProbeCounter::ALL`] order (zeros included).
    pub counters: Vec<(&'static str, u64)>,
    /// Most recent closed spans across all threads, by start time.
    pub recent: Vec<SpanRecord>,
    /// Span records lost to ring wrap (thread rings + merged ring).
    pub dropped: u64,
    /// Threads that contributed probe data.
    pub threads: u64,
}

/// Snapshots the merged probe data (flushing the current thread first).
/// Non-destructive; call [`reset`] to start a fresh measurement phase.
pub fn report() -> ProbeReport {
    flush_thread();
    let guard = global().lock().unwrap();
    let Some(g) = guard.as_ref() else {
        return ProbeReport::default();
    };
    let mut spans = Vec::new();
    for kind in SpanKind::ALL {
        let agg = &g.spans[kind.index()];
        if agg.count == 0 {
            continue;
        }
        spans.push(SpanStat {
            label: kind.label(),
            count: agg.count,
            total_s: agg.total_ns as f64 / 1e9,
            p50_s: agg.hist.p50().unwrap_or(0.0),
            p90_s: agg.hist.p90().unwrap_or(0.0),
            p99_s: agg.hist.p99().unwrap_or(0.0),
            max_s: agg.hist.max().unwrap_or(0.0),
        });
    }
    let counters: Vec<(&'static str, u64)> = ProbeCounter::ALL
        .iter()
        .map(|c| (c.label(), g.counters[c.index()]))
        .collect();
    let mut recent = g.ring.clone();
    recent.sort_by_key(|r| (r.start_ns, r.dur_ns));
    ProbeReport {
        spans,
        counters,
        recent,
        dropped: g.counters[ProbeCounter::RingDrops.index()],
        threads: g.threads,
    }
}

impl ProbeReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.iter().all(|&(_, v)| v == 0)
    }

    /// Value of one cause counter (0 when absent).
    pub fn counter(&self, c: ProbeCounter) -> u64 {
        self.counters
            .iter()
            .find(|&&(l, _)| l == c.label())
            .map_or(0, |&(_, v)| v)
    }

    /// Statistics for one span kind, when any spans of it closed.
    pub fn span_stat(&self, kind: SpanKind) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.label == kind.label())
    }

    /// Renders the snapshot as a Prometheus text exposition: span
    /// latency summaries (`corral_probe_span_seconds`) and cause
    /// counters (`corral_probe_events_total`).
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# corral-probe: simulator self-profile (host wall-clock)\n");
        out.push_str("# TYPE corral_probe_span_seconds summary\n");
        for s in &self.spans {
            for (q, v) in [("0.5", s.p50_s), ("0.9", s.p90_s), ("0.99", s.p99_s)] {
                out.push_str(&format!(
                    "corral_probe_span_seconds{{span=\"{}\",quantile=\"{}\"}} {:e}\n",
                    s.label, q, v
                ));
            }
            out.push_str(&format!(
                "corral_probe_span_seconds_sum{{span=\"{}\"}} {:e}\n",
                s.label, s.total_s
            ));
            out.push_str(&format!(
                "corral_probe_span_seconds_count{{span=\"{}\"}} {}\n",
                s.label, s.count
            ));
        }
        out.push_str("# TYPE corral_probe_events_total counter\n");
        for &(label, v) in &self.counters {
            out.push_str(&format!(
                "corral_probe_events_total{{event=\"{label}\"}} {v}\n"
            ));
        }
        out.push_str(&format!("corral_probe_threads {}\n", self.threads));
        out.push_str(&format!(
            "corral_probe_ring_dropped_total {}\n",
            self.dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The enable flag and the global accumulator are process-wide;
    // serialize probe tests so they can't observe each other.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fresh() -> std::sync::MutexGuard<'static, ()> {
        let g = lock();
        set_enabled(true);
        reset();
        g
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _s = span(SpanKind::FabricRecompute);
            count(ProbeCounter::HeapPops, 5);
        }
        assert!(report().is_empty());
    }

    #[test]
    fn nested_spans_aggregate_per_kind() {
        let _g = fresh();
        {
            let _outer = span(SpanKind::Provision);
            for _ in 0..3 {
                let _inner = span(SpanKind::CandidateScore);
            }
            count(ProbeCounter::HeapPops, 7);
        }
        let r = report();
        set_enabled(false);
        let prov = r.span_stat(SpanKind::Provision).unwrap();
        let score = r.span_stat(SpanKind::CandidateScore).unwrap();
        assert_eq!(prov.count, 1);
        assert_eq!(score.count, 3);
        assert!(prov.total_s >= score.total_s);
        assert_eq!(r.counter(ProbeCounter::HeapPops), 7);
        assert_eq!(r.counter(ProbeCounter::UnbalancedSpans), 0);
        // Ring kept all four records, innermost first by nesting depth.
        assert_eq!(r.recent.len(), 4);
        assert_eq!(r.dropped, 0);
        // p50 <= p99 and both within [0, max].
        assert!(score.p50_s <= score.p99_s);
        assert!(score.p99_s <= score.max_s + 1e-12);
    }

    #[test]
    fn out_of_order_drops_cannot_corrupt_the_stack() {
        let _g = fresh();
        let a = span(SpanKind::FabricRecompute);
        let b = span(SpanKind::FabricMaxMin);
        // Dropping the outer guard first truncates the inner frame...
        drop(a);
        // ...so the inner guard finds its frame gone and backs off.
        drop(b);
        // The stack is empty again: a new span opens at depth 0 and
        // records normally.
        {
            let _c = span(SpanKind::EngineEvent);
        }
        let r = report();
        set_enabled(false);
        assert_eq!(r.span_stat(SpanKind::FabricRecompute).unwrap().count, 1);
        assert!(r.span_stat(SpanKind::FabricMaxMin).is_none());
        let c = r.span_stat(SpanKind::EngineEvent).unwrap();
        assert_eq!(c.count, 1);
        let depth0: Vec<_> = r
            .recent
            .iter()
            .filter(|rec| rec.kind == SpanKind::EngineEvent)
            .collect();
        assert_eq!(depth0[0].depth, 0, "stack did not rewind to depth 0");
        assert_eq!(r.counter(ProbeCounter::UnbalancedSpans), 2);
    }

    #[test]
    fn stack_overflow_is_counted_not_fatal() {
        let _g = fresh();
        let mut guards: Vec<Span> = (0..MAX_DEPTH + 5).map(|_| span(SpanKind::Export)).collect();
        // Unwind innermost-first, as scopes would.
        while let Some(g) = guards.pop() {
            drop(g);
        }
        let r = report();
        set_enabled(false);
        assert_eq!(r.counter(ProbeCounter::StackOverflows), 5);
        assert_eq!(r.counter(ProbeCounter::UnbalancedSpans), 0);
        assert_eq!(
            r.span_stat(SpanKind::Export).unwrap().count,
            MAX_DEPTH as u64
        );
    }

    #[test]
    fn worker_threads_merge_on_exit() {
        let _g = fresh();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    {
                        let _sp = span(SpanKind::SweepCell);
                        count(ProbeCounter::MaxMinRounds, 10);
                    }
                    // Explicit flush: TLS-destructor merging races the
                    // scope join (teardown is not ordered before it).
                    flush_thread();
                });
            }
        });
        let r = report();
        set_enabled(false);
        assert_eq!(r.span_stat(SpanKind::SweepCell).unwrap().count, 3);
        assert_eq!(r.counter(ProbeCounter::MaxMinRounds), 30);
        assert_eq!(r.threads, 3);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let _g = fresh();
        {
            let _s = span(SpanKind::PlanDecision);
        }
        count(ProbeCounter::RecomputeFlowStart, 2);
        let text = report().prometheus();
        set_enabled(false);
        assert!(text.contains("# TYPE corral_probe_span_seconds summary"));
        assert!(text.contains("corral_probe_span_seconds{span=\"planner.plan\",quantile=\"0.5\"}"));
        assert!(text.contains("corral_probe_span_seconds_count{span=\"planner.plan\"} 1"));
        assert!(text.contains("corral_probe_events_total{event=\"recompute.flow_start\"} 2"));
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn reset_clears_everything() {
        let _g = fresh();
        {
            let _s = span(SpanKind::Export);
        }
        assert!(!report().is_empty());
        reset();
        assert!(report().is_empty());
        set_enabled(false);
    }

    #[test]
    fn queue_depth_records_sum_and_samples() {
        let _g = fresh();
        queue_depth(3);
        queue_depth(1);
        let r = report();
        set_enabled(false);
        assert_eq!(r.counter(ProbeCounter::PoolQueueDepthSum), 4);
        assert_eq!(r.counter(ProbeCounter::PoolQueueDepthSamples), 2);
    }
}
