//! # corral-trace
//!
//! Structured observability for the Corral simulator stack: a zero-dep
//! event sink, a metrics registry, and exporters.
//!
//! * [`event::TraceEvent`] — the vocabulary: task lifecycle, network
//!   flows, scheduler/planner decisions, background-traffic epochs;
//! * [`tracer::Tracer`] — the sink trait, with [`NullTracer`] (free),
//!   [`MemTracer`] (ring buffer) and [`JsonlTracer`] (streaming JSONL);
//! * [`metrics::MetricsRegistry`] — counters, sim-time-weighted gauges
//!   and log-linear [`histogram::LogHistogram`]s (p50/p90/p99);
//! * [`counters::CounterSet`] — shared *atomic* counters for
//!   cross-thread progress (the sweep engine's live cell counts);
//! * [`probe`] — *corral-probe*, host-side self-profiling of the
//!   simulator's own hot paths (RAII spans, cause counters, latency
//!   histograms), strictly outside the deterministic sim-trace stream;
//! * exporters — JSONL (via [`JsonlTracer`]), Chrome/Perfetto
//!   [`perfetto::chrome_trace`] (with an optional probe track via
//!   [`perfetto::chrome_trace_with_probe`]), the Prometheus-style
//!   [`probe::ProbeReport::prometheus`] text, and the plain-text
//!   [`summary::RunSummary`].
//!
//! The crate deliberately depends on nothing (not even the model crate):
//! events carry raw ids and `f64` seconds, so every layer of the stack —
//! `simnet`, `cluster`, `core`, the CLI and `viz` — can use it without
//! dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod probe;
pub mod summary;
pub mod tracer;

pub use counters::CounterSet;
pub use event::{FlowClass, LocalityLevel, TraceEvent};
pub use histogram::LogHistogram;
pub use metrics::{MetricsRegistry, TimeWeightedGauge};
pub use perfetto::{chrome_trace, chrome_trace_with_probe};
pub use probe::{ProbeCounter, ProbeReport, SpanKind};
pub use summary::{LocalityCounts, Percentiles, PlanningCost, RunSummary};
pub use tracer::{
    FanoutTracer, JsonlTracer, MemTracer, NullTracer, SharedTracer, TimedEvent, Tracer,
};
