//! The structured event vocabulary emitted by the simulator stack.
//!
//! Events carry raw ids (`u32`/`u64`) rather than the model's newtypes so
//! this crate stays dependency-free; the instrumented crates unwrap their
//! ids at the call site. Times are seconds of simulation time and ride
//! alongside the event in [`crate::tracer::TimedEvent`].

use crate::json;

/// How good a spot the scheduler found for a task relative to its
/// preferred (data-local) machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalityLevel {
    /// Placed on a machine holding the task's input.
    Machine,
    /// Placed in a rack holding the task's input.
    Rack,
    /// Placed away from all preferred machines.
    Remote,
    /// The task had no placement preference (e.g. reduce stages).
    Unconstrained,
}

impl LocalityLevel {
    /// Stable lowercase label used in JSONL and summaries.
    pub fn label(self) -> &'static str {
        match self {
            LocalityLevel::Machine => "machine",
            LocalityLevel::Rack => "rack",
            LocalityLevel::Remote => "remote",
            LocalityLevel::Unconstrained => "unconstrained",
        }
    }
}

/// The class of a network flow (mirrors `corral-simnet`'s `FlowKind`
/// without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// DFS input read into a map task.
    InputRead,
    /// Intermediate (shuffle) bytes between stages.
    Shuffle,
    /// Output write toward the DFS.
    OutputWrite,
    /// Ingest of fresh data into the cluster.
    Ingest,
    /// Modeled background traffic.
    Background,
}

impl FlowClass {
    /// Stable lowercase label used in JSONL.
    pub fn label(self) -> &'static str {
        match self {
            FlowClass::InputRead => "input_read",
            FlowClass::Shuffle => "shuffle",
            FlowClass::OutputWrite => "output_write",
            FlowClass::Ingest => "ingest",
            FlowClass::Background => "background",
        }
    }
}

/// One structured simulator event. See the module docs for conventions.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A job entered the system.
    JobArrived {
        /// Job id.
        job: u32,
    },
    /// A job's last task finished.
    JobFinished {
        /// Job id.
        job: u32,
        /// Arrival-to-completion time in seconds.
        completion_s: f64,
    },
    /// A task was assigned to a slot.
    TaskScheduled {
        /// Job id.
        job: u32,
        /// Stage id within the job.
        stage: u32,
        /// Task index within the stage.
        index: usize,
        /// Machine the task landed on.
        machine: u32,
        /// Achieved locality relative to the stage's preferred machines.
        locality: LocalityLevel,
        /// Seconds the task's stage sat runnable before this assignment.
        queue_delay_s: f64,
    },
    /// A task finished fetching input and began computing.
    TaskComputeStart {
        /// Job id.
        job: u32,
        /// Stage id within the job.
        stage: u32,
        /// Task index within the stage.
        index: usize,
        /// Machine the task runs on.
        machine: u32,
    },
    /// A task finished computing and began writing output.
    TaskWriteStart {
        /// Job id.
        job: u32,
        /// Stage id within the job.
        stage: u32,
        /// Task index within the stage.
        index: usize,
        /// Machine the task runs on.
        machine: u32,
    },
    /// A task attempt completed successfully.
    TaskFinished {
        /// Job id.
        job: u32,
        /// Stage id within the job.
        stage: u32,
        /// Task index within the stage.
        index: usize,
        /// Machine the task ran on.
        machine: u32,
        /// When the attempt was scheduled (s).
        scheduled_s: f64,
        /// When compute began (s), if it got that far.
        compute_started_s: Option<f64>,
        /// When the output write began (s), if it got that far.
        write_started_s: Option<f64>,
    },
    /// A task attempt was killed (failure, speculation loser, …).
    TaskKilled {
        /// Job id.
        job: u32,
        /// Stage id within the job.
        stage: u32,
        /// Task index within the stage.
        index: usize,
        /// Machine the attempt ran on.
        machine: u32,
        /// When the attempt was scheduled (s).
        scheduled_s: f64,
    },
    /// A network flow was admitted into the fabric.
    FlowStarted {
        /// Fabric-assigned flow id.
        flow: u64,
        /// Source machine (the destination itself for ingress flows).
        src: u32,
        /// Destination machine.
        dst: u32,
        /// Flow volume in bytes.
        bytes: f64,
        /// What the flow carries.
        class: FlowClass,
        /// Owning job, when the flow belongs to one.
        job: Option<u32>,
    },
    /// A network flow drained completely.
    FlowFinished {
        /// Fabric-assigned flow id.
        flow: u64,
        /// Flow volume in bytes.
        bytes: f64,
    },
    /// Delay scheduling skipped a job's task on a machine while waiting
    /// for a local slot.
    SchedulerWait {
        /// Job id.
        job: u32,
        /// Consecutive waits so far for this job.
        waits: u32,
        /// Machine whose slot was declined.
        machine: u32,
    },
    /// The offline planner produced (or refreshed) a plan.
    PlanComputed {
        /// Number of jobs covered by the plan.
        jobs: usize,
        /// Objective the planner optimized.
        objective: &'static str,
        /// Candidate allocations the provisioning loop scored. (Planner
        /// wall-clock is deliberately *not* in the event: traces are
        /// byte-identical across same-seed runs, so host time cannot
        /// appear here — it is reported via `RunSummary::planning`.)
        candidates: u64,
    },
    /// The planner assigned a job its rack set and priority.
    PlannerAssigned {
        /// Job id.
        job: u32,
        /// Number of racks in the job's rack set.
        racks: usize,
        /// Plan priority (lower runs first).
        priority: u32,
    },
    /// The running engine adopted an updated plan mid-flight.
    Replanned {
        /// Jobs whose rack sets changed.
        jobs_updated: usize,
    },
    /// Background traffic on a rack's uplink changed level.
    BackgroundEpoch {
        /// Rack id.
        rack: u32,
        /// New background level in Gbit/s.
        gbps: f64,
    },
    /// Ingest flows for a job's input started.
    IngestStarted {
        /// Job id.
        job: u32,
        /// Number of ingest flows created.
        flows: usize,
    },
    /// A machine failed; its tasks died with it.
    MachineFailed {
        /// Machine id.
        machine: u32,
    },
    /// A failed machine rejoined the cluster.
    MachineRepaired {
        /// Machine id.
        machine: u32,
    },
}

impl TraceEvent {
    /// Stable snake_case tag identifying the variant in JSONL.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::JobArrived { .. } => "job_arrived",
            TraceEvent::JobFinished { .. } => "job_finished",
            TraceEvent::TaskScheduled { .. } => "task_scheduled",
            TraceEvent::TaskComputeStart { .. } => "task_compute_start",
            TraceEvent::TaskWriteStart { .. } => "task_write_start",
            TraceEvent::TaskFinished { .. } => "task_finished",
            TraceEvent::TaskKilled { .. } => "task_killed",
            TraceEvent::FlowStarted { .. } => "flow_started",
            TraceEvent::FlowFinished { .. } => "flow_finished",
            TraceEvent::SchedulerWait { .. } => "scheduler_wait",
            TraceEvent::PlanComputed { .. } => "plan_computed",
            TraceEvent::PlannerAssigned { .. } => "planner_assigned",
            TraceEvent::Replanned { .. } => "replanned",
            TraceEvent::BackgroundEpoch { .. } => "background_epoch",
            TraceEvent::IngestStarted { .. } => "ingest_started",
            TraceEvent::MachineFailed { .. } => "machine_failed",
            TraceEvent::MachineRepaired { .. } => "machine_repaired",
        }
    }

    /// Serializes the event as one JSON object `{"t":…,"ev":…,…}`
    /// appended to `out` (no trailing newline).
    pub fn write_json(&self, t: f64, out: &mut String) {
        out.push('{');
        json::push_key(out, "t");
        json::push_f64(out, t);
        json::field_str(out, "ev", self.tag());
        match self {
            TraceEvent::JobArrived { job } => {
                json::field_u64(out, "job", u64::from(*job));
            }
            TraceEvent::JobFinished { job, completion_s } => {
                json::field_u64(out, "job", u64::from(*job));
                json::field_f64(out, "completion_s", *completion_s);
            }
            TraceEvent::TaskScheduled {
                job,
                stage,
                index,
                machine,
                locality,
                queue_delay_s,
            } => {
                json::field_u64(out, "job", u64::from(*job));
                json::field_u64(out, "stage", u64::from(*stage));
                json::field_usize(out, "index", *index);
                json::field_u64(out, "machine", u64::from(*machine));
                json::field_str(out, "locality", locality.label());
                json::field_f64(out, "queue_delay_s", *queue_delay_s);
            }
            TraceEvent::TaskComputeStart {
                job,
                stage,
                index,
                machine,
            }
            | TraceEvent::TaskWriteStart {
                job,
                stage,
                index,
                machine,
            } => {
                json::field_u64(out, "job", u64::from(*job));
                json::field_u64(out, "stage", u64::from(*stage));
                json::field_usize(out, "index", *index);
                json::field_u64(out, "machine", u64::from(*machine));
            }
            TraceEvent::TaskFinished {
                job,
                stage,
                index,
                machine,
                scheduled_s,
                compute_started_s,
                write_started_s,
            } => {
                json::field_u64(out, "job", u64::from(*job));
                json::field_u64(out, "stage", u64::from(*stage));
                json::field_usize(out, "index", *index);
                json::field_u64(out, "machine", u64::from(*machine));
                json::field_f64(out, "scheduled_s", *scheduled_s);
                json::field_opt_f64(out, "compute_started_s", *compute_started_s);
                json::field_opt_f64(out, "write_started_s", *write_started_s);
            }
            TraceEvent::TaskKilled {
                job,
                stage,
                index,
                machine,
                scheduled_s,
            } => {
                json::field_u64(out, "job", u64::from(*job));
                json::field_u64(out, "stage", u64::from(*stage));
                json::field_usize(out, "index", *index);
                json::field_u64(out, "machine", u64::from(*machine));
                json::field_f64(out, "scheduled_s", *scheduled_s);
            }
            TraceEvent::FlowStarted {
                flow,
                src,
                dst,
                bytes,
                class,
                job,
            } => {
                json::field_u64(out, "flow", *flow);
                json::field_u64(out, "src", u64::from(*src));
                json::field_u64(out, "dst", u64::from(*dst));
                json::field_f64(out, "bytes", *bytes);
                json::field_str(out, "class", class.label());
                if let Some(job) = job {
                    json::field_u64(out, "job", u64::from(*job));
                }
            }
            TraceEvent::FlowFinished { flow, bytes } => {
                json::field_u64(out, "flow", *flow);
                json::field_f64(out, "bytes", *bytes);
            }
            TraceEvent::SchedulerWait {
                job,
                waits,
                machine,
            } => {
                json::field_u64(out, "job", u64::from(*job));
                json::field_u64(out, "waits", u64::from(*waits));
                json::field_u64(out, "machine", u64::from(*machine));
            }
            TraceEvent::PlanComputed {
                jobs,
                objective,
                candidates,
            } => {
                json::field_usize(out, "jobs", *jobs);
                json::field_str(out, "objective", objective);
                json::field_u64(out, "candidates", *candidates);
            }
            TraceEvent::PlannerAssigned {
                job,
                racks,
                priority,
            } => {
                json::field_u64(out, "job", u64::from(*job));
                json::field_usize(out, "racks", *racks);
                json::field_u64(out, "priority", u64::from(*priority));
            }
            TraceEvent::Replanned { jobs_updated } => {
                json::field_usize(out, "jobs_updated", *jobs_updated);
            }
            TraceEvent::BackgroundEpoch { rack, gbps } => {
                json::field_u64(out, "rack", u64::from(*rack));
                json::field_f64(out, "gbps", *gbps);
            }
            TraceEvent::IngestStarted { job, flows } => {
                json::field_u64(out, "job", u64::from(*job));
                json::field_usize(out, "flows", *flows);
            }
            TraceEvent::MachineFailed { machine } | TraceEvent::MachineRepaired { machine } => {
                json::field_u64(out, "machine", u64::from(*machine));
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_line_shape() {
        let ev = TraceEvent::TaskScheduled {
            job: 3,
            stage: 1,
            index: 9,
            machine: 42,
            locality: LocalityLevel::Rack,
            queue_delay_s: 0.25,
        };
        let mut s = String::new();
        ev.write_json(12.5, &mut s);
        assert_eq!(
            s,
            "{\"t\":12.5,\"ev\":\"task_scheduled\",\"job\":3,\"stage\":1,\"index\":9,\
             \"machine\":42,\"locality\":\"rack\",\"queue_delay_s\":0.25}"
        );
    }

    #[test]
    fn optional_fields_render_null() {
        let ev = TraceEvent::TaskFinished {
            job: 0,
            stage: 0,
            index: 0,
            machine: 1,
            scheduled_s: 1.0,
            compute_started_s: None,
            write_started_s: Some(4.0),
        };
        let mut s = String::new();
        ev.write_json(5.0, &mut s);
        assert!(s.contains("\"compute_started_s\":null"));
        assert!(s.contains("\"write_started_s\":4"));
    }

    #[test]
    fn every_variant_has_a_distinct_tag() {
        let evs = [
            TraceEvent::JobArrived { job: 0 },
            TraceEvent::FlowFinished {
                flow: 0,
                bytes: 0.0,
            },
            TraceEvent::Replanned { jobs_updated: 0 },
        ];
        let tags: Vec<_> = evs.iter().map(|e| e.tag()).collect();
        assert_eq!(tags, vec!["job_arrived", "flow_finished", "replanned"]);
    }
}
