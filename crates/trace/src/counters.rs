//! Shared atomic counters for cross-thread progress reporting.
//!
//! [`MetricsRegistry`](crate::metrics::MetricsRegistry) is deliberately
//! `&mut`-owned: one simulator run, one single-threaded engine, one
//! registry. A *sweep* of many runs executing concurrently needs the
//! opposite shape — a set of counters that many worker threads bump
//! through a shared reference while a reporter thread reads them live.
//! [`CounterSet`] is that shape: a fixed, `&'static str`-keyed family of
//! [`AtomicU64`]s registered up front (so the hot path is one relaxed
//! atomic add, no locking, no allocation) with a deterministic sorted
//! snapshot for rendering.
//!
//! The set is intentionally not a general metrics system: no gauges, no
//! histograms, no labels — those stay per-run in `MetricsRegistry`. This
//! is the minimal cross-thread surface a progress display needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed family of named atomic counters, shareable across threads.
///
/// Keys are declared at construction; incrementing an undeclared key is a
/// programming error and panics (in every build — a progress counter that
/// silently vanishes is worse than a crash in the harness).
#[derive(Debug)]
pub struct CounterSet {
    // Sorted by name at construction so lookups can binary-search and
    // snapshots iterate deterministically.
    counters: Vec<(&'static str, AtomicU64)>,
}

impl CounterSet {
    /// A set holding one zeroed counter per name in `names`
    /// (duplicates collapse).
    pub fn new(names: &[&'static str]) -> Self {
        let mut sorted: Vec<&'static str> = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        CounterSet {
            counters: sorted.into_iter().map(|n| (n, AtomicU64::new(0))).collect(),
        }
    }

    fn slot(&self, name: &str) -> &AtomicU64 {
        match self.counters.binary_search_by_key(&name, |(n, _)| n) {
            Ok(i) => &self.counters[i].1,
            Err(_) => panic!("counter {name:?} was not declared in this CounterSet"),
        }
    }

    /// Adds `by` to counter `name`.
    pub fn add(&self, name: &str, by: u64) {
        self.slot(name).fetch_add(by, Ordering::Relaxed);
    }

    /// Adds 1 to counter `name`.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name`.
    pub fn get(&self, name: &str) -> u64 {
        self.slot(name).load(Ordering::Relaxed)
    }

    /// All `(name, value)` pairs, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .iter()
            .map(|(n, v)| (*n, v.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_accumulate_and_snapshot_is_sorted() {
        let c = CounterSet::new(&["b.done", "a.total", "a.total"]);
        c.add("a.total", 10);
        c.inc("b.done");
        c.inc("b.done");
        assert_eq!(c.get("a.total"), 10);
        assert_eq!(c.get("b.done"), 2);
        assert_eq!(c.snapshot(), vec![("a.total", 10), ("b.done", 2)]);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_counter_panics() {
        CounterSet::new(&["known"]).inc("unknown");
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let c = Arc::new(CounterSet::new(&["n"]));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc("n");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get("n"), 8000);
    }
}
