//! A small metrics registry: named counters, sim-time-weighted gauges,
//! and [`LogHistogram`]s, all behind `&mut` (the engine owns its
//! registry; nothing here needs sharing). Keys are `&'static str` so the
//! hot path never allocates; iteration order is the `BTreeMap`'s sorted
//! order, making text dumps deterministic.

use std::collections::BTreeMap;

use crate::histogram::LogHistogram;
use crate::json;

/// A gauge integrated over simulation time: `set(t, v)` closes the
/// previous level at `t`, so `time_avg(end)` is the exact time-weighted
/// mean of the step function.
#[derive(Debug, Clone, Default)]
pub struct TimeWeightedGauge {
    started_at: Option<f64>,
    last_t: f64,
    last_v: f64,
    integral: f64,
    min: f64,
    max: f64,
}

impl TimeWeightedGauge {
    /// Sets the gauge to `v` at time `t` (times must be non-decreasing).
    pub fn set(&mut self, t: f64, v: f64) {
        match self.started_at {
            None => {
                self.started_at = Some(t);
                self.min = v;
                self.max = v;
            }
            Some(_) => {
                let dt = (t - self.last_t).max(0.0);
                self.integral += self.last_v * dt;
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
        }
        self.last_t = t;
        self.last_v = v;
    }

    /// Adds `delta` to the current level at time `t`.
    pub fn add(&mut self, t: f64, delta: f64) {
        let v = self.last_v + delta;
        self.set(t, v);
    }

    /// The current level.
    pub fn value(&self) -> f64 {
        self.last_v
    }

    /// Time-weighted mean over `[first_set, end_t]`, or `None` if the
    /// gauge was never set or the window is empty.
    pub fn time_avg(&self, end_t: f64) -> Option<f64> {
        let start = self.started_at?;
        let span = end_t - start;
        if span <= 0.0 {
            return Some(self.last_v);
        }
        let tail = (end_t - self.last_t).max(0.0);
        Some((self.integral + self.last_v * tail) / span)
    }

    /// Smallest level ever set.
    pub fn min(&self) -> Option<f64> {
        self.started_at.map(|_| self.min)
    }

    /// Largest level ever set.
    pub fn max(&self) -> Option<f64> {
        self.started_at.map(|_| self.max)
    }
}

/// Named counters, gauges and histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, TimeWeightedGauge>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Reads counter `name` (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v` at sim time `t`.
    pub fn gauge_set(&mut self, name: &'static str, t: f64, v: f64) {
        self.gauges.entry(name).or_default().set(t, v);
    }

    /// Adds `delta` to gauge `name` at sim time `t`.
    pub fn gauge_add(&mut self, name: &'static str, t: f64, delta: f64) {
        self.gauges.entry(name).or_default().add(t, delta);
    }

    /// Reads gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<&TimeWeightedGauge> {
        self.gauges.get(name)
    }

    /// Records `v` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Reads histogram `name`, if it has ever been observed into.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Deterministic plain-text dump (sorted by metric name), one metric
    /// per line — used by debug output and tests.
    pub fn render_text(&self, end_t: f64) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!(
                "gauge {name} value {} time_avg {}\n",
                g.value(),
                g.time_avg(end_t).unwrap_or(0.0),
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name} count {} mean {} p50 {} p90 {} p99 {}\n",
                h.count(),
                h.mean().unwrap_or(0.0),
                h.p50().unwrap_or(0.0),
                h.p90().unwrap_or(0.0),
                h.p99().unwrap_or(0.0),
            ));
        }
        out
    }

    /// Deterministic JSON object mapping metric names to values (the
    /// machine-readable sibling of [`MetricsRegistry::render_text`]).
    pub fn render_json(&self, end_t: f64) -> String {
        let mut out = String::new();
        out.push('{');
        out.push_str("\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, name);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, name);
            out.push('{');
            json::push_key(&mut out, "value");
            json::push_f64(&mut out, g.value());
            json::field_opt_f64(&mut out, "time_avg", g.time_avg(end_t));
            out.push('}');
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(&mut out, name);
            out.push('{');
            json::push_key(&mut out, "count");
            out.push_str(&h.count().to_string());
            json::field_opt_f64(&mut out, "mean", h.mean());
            json::field_opt_f64(&mut out, "p50", h.p50());
            json::field_opt_f64(&mut out, "p90", h.p90());
            json::field_opt_f64(&mut out, "p99", h.p99());
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.inc("tasks", 1);
        r.inc("tasks", 2);
        assert_eq!(r.counter("tasks"), 3);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn gauge_time_average_is_exact_for_steps() {
        let mut g = TimeWeightedGauge::default();
        g.set(0.0, 2.0); // level 2 over [0, 10)
        g.set(10.0, 4.0); // level 4 over [10, 20)
        assert_eq!(g.time_avg(20.0), Some(3.0));
        assert_eq!(g.min(), Some(2.0));
        assert_eq!(g.max(), Some(4.0));
        assert_eq!(g.value(), 4.0);
    }

    #[test]
    fn gauge_add_tracks_occupancy() {
        let mut r = MetricsRegistry::new();
        r.gauge_add("busy", 0.0, 1.0);
        r.gauge_add("busy", 5.0, 1.0);
        r.gauge_add("busy", 10.0, -2.0);
        // 1 over [0,5), 2 over [5,10), 0 after: avg over [0,10] = 1.5.
        let avg = r.gauge("busy").unwrap().time_avg(10.0).unwrap();
        assert!((avg - 1.5).abs() < 1e-12);
    }

    #[test]
    fn text_dump_is_sorted_and_complete() {
        let mut r = MetricsRegistry::new();
        r.inc("b_counter", 1);
        r.inc("a_counter", 1);
        r.observe("lat", 2.0);
        r.gauge_set("load", 0.0, 1.0);
        let text = r.render_text(1.0);
        let a = text.find("a_counter").unwrap();
        let b = text.find("b_counter").unwrap();
        assert!(a < b);
        assert!(text.contains("histogram lat count 1"));
        assert!(text.contains("gauge load"));
        let js = r.render_json(1.0);
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"a_counter\":1"));
    }
}
