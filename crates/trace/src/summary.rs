//! End-of-run plain-text report: the quantities the Corral paper argues
//! about (utilization, locality hit rates, queueing delay, cross-rack
//! traffic), printable with `--summary` and embedded in `RunReport`.

use std::fmt;

use crate::histogram::LogHistogram;

/// p50/p90/p99 of one histogram, precomputed for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Extracts percentiles from a histogram, `None` when it is empty.
    pub fn from_histogram(h: &LogHistogram) -> Option<Percentiles> {
        Some(Percentiles {
            p50: h.p50()?,
            p90: h.p90()?,
            p99: h.p99()?,
        })
    }
}

/// Tasks scheduled at each locality level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityCounts {
    /// Landed on a machine holding their input.
    pub machine: u64,
    /// Landed in a rack holding their input.
    pub rack: u64,
    /// Landed away from every preferred machine.
    pub remote: u64,
    /// Had no placement preference.
    pub unconstrained: u64,
}

impl LocalityCounts {
    /// Tasks that had a preference (the denominator for hit rates).
    pub fn constrained(&self) -> u64 {
        self.machine + self.rack + self.remote
    }

    /// Fraction of constrained tasks that ran machine-local.
    pub fn machine_rate(&self) -> f64 {
        rate(self.machine, self.constrained())
    }

    /// Fraction of constrained tasks that ran machine- or rack-local.
    pub fn rack_or_better_rate(&self) -> f64 {
        rate(self.machine + self.rack, self.constrained())
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Cost of computing the offline plan for a run — host wall-clock, not
/// simulated time. Filled in by the CLI (which is what observes planning
/// happen), never by the engine: the engine's summary must stay a pure
/// function of the simulated run so byte-equality tests across identical
/// runs keep holding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanningCost {
    /// Planner wall-clock in seconds.
    pub wall_s: f64,
    /// Candidate allocations the provisioning loop scored.
    pub candidates: u64,
}

/// The end-of-run report printed by `corral-sim simulate --summary`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Scheduler label ("yarn-cs", "corral", …).
    pub scheduler: String,
    /// Batch makespan in seconds.
    pub makespan_s: f64,
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that finished inside the horizon.
    pub jobs_finished: usize,
    /// Task attempts that completed.
    pub tasks_finished: u64,
    /// Task attempts that were killed.
    pub tasks_killed: u64,
    /// Busy-slot-seconds over total slot-seconds, `0..=1`.
    pub slot_utilization: f64,
    /// Tasks by achieved locality level.
    pub locality: LocalityCounts,
    /// Queueing delay (stage runnable → task scheduled), if any tasks ran.
    pub queue_delay_s: Option<Percentiles>,
    /// Task durations (scheduled → finished), if any tasks finished.
    pub task_duration_s: Option<Percentiles>,
    /// Fraction of network bytes that crossed the core.
    pub cross_rack_fraction: f64,
    /// Mean utilization of edge (machine) links, `0..=1`.
    pub edge_utilization: f64,
    /// Mean utilization of core (rack uplink) links, `0..=1`.
    pub core_utilization: f64,
    /// Flows admitted into the fabric.
    pub flows_started: u64,
    /// Flows that drained completely.
    pub flows_completed: u64,
    /// Bytes moved over the network (excludes machine-local transfers).
    pub network_bytes: f64,
    /// Bytes that crossed the rack-to-core boundary.
    pub cross_rack_bytes: f64,
    /// Planning cost, when the invoking CLI measured it (`None` for
    /// unplanned schedulers and for summaries built by the engine alone).
    pub planning: Option<PlanningCost>,
    /// Events evicted from a bounded trace ring (`MemTracer`), when the
    /// invoking CLI used one. Like [`RunSummary::planning`] this is
    /// stamped by the CLI, never by the engine: ring pressure is a host
    /// artifact, not part of the simulated run. Non-zero means any
    /// downstream trace analysis saw a truncated stream.
    pub trace_drops: Option<u64>,
}

fn pct(x: f64) -> f64 {
    100.0 * x
}

fn fmt_pctl(f: &mut fmt::Formatter<'_>, name: &str, p: &Option<Percentiles>) -> fmt::Result {
    match p {
        Some(p) => writeln!(
            f,
            "  {name:<22} p50 {:>9.3}s  p90 {:>9.3}s  p99 {:>9.3}s",
            p.p50, p.p90, p.p99
        ),
        None => writeln!(f, "  {name:<22} (no samples)"),
    }
}

impl fmt::Display for RunSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "run summary [{}]", self.scheduler)?;
        writeln!(
            f,
            "  makespan               {:.1}s   jobs {}/{} finished",
            self.makespan_s, self.jobs_finished, self.jobs
        )?;
        writeln!(
            f,
            "  tasks                  {} finished, {} killed",
            self.tasks_finished, self.tasks_killed
        )?;
        writeln!(
            f,
            "  slot utilization       {:.1}%",
            pct(self.slot_utilization)
        )?;
        writeln!(
            f,
            "  locality               machine {:.1}%  ≤rack {:.1}%  ({} machine / {} rack / {} remote / {} unconstrained)",
            pct(self.locality.machine_rate()),
            pct(self.locality.rack_or_better_rate()),
            self.locality.machine,
            self.locality.rack,
            self.locality.remote,
            self.locality.unconstrained,
        )?;
        fmt_pctl(f, "queueing delay", &self.queue_delay_s)?;
        fmt_pctl(f, "task duration", &self.task_duration_s)?;
        writeln!(
            f,
            "  network                {:.2} GB moved, {:.1}% cross-rack ({:.2} GB)",
            self.network_bytes / 1e9,
            pct(self.cross_rack_fraction),
            self.cross_rack_bytes / 1e9,
        )?;
        writeln!(
            f,
            "  link utilization       edge {:.1}%  core {:.1}%",
            pct(self.edge_utilization),
            pct(self.core_utilization)
        )?;
        writeln!(
            f,
            "  flows                  {} started, {} completed",
            self.flows_started, self.flows_completed
        )?;
        if let Some(p) = &self.planning {
            writeln!(
                f,
                "  planning               {:.3}s wall ({} candidates)",
                p.wall_s, p.candidates
            )?;
        }
        if let Some(d) = self.trace_drops {
            if d > 0 {
                writeln!(
                    f,
                    "  trace ring             {d} events dropped (truncated!)"
                )?;
            } else {
                writeln!(f, "  trace ring             0 events dropped")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            scheduler: "corral".into(),
            makespan_s: 1234.5,
            jobs: 10,
            jobs_finished: 10,
            tasks_finished: 400,
            tasks_killed: 3,
            slot_utilization: 0.62,
            locality: LocalityCounts {
                machine: 300,
                rack: 50,
                remote: 10,
                unconstrained: 43,
            },
            queue_delay_s: Some(Percentiles {
                p50: 0.5,
                p90: 2.0,
                p99: 9.0,
            }),
            task_duration_s: None,
            cross_rack_fraction: 0.25,
            edge_utilization: 0.4,
            core_utilization: 0.7,
            flows_started: 1200,
            flows_completed: 1200,
            network_bytes: 5e9,
            cross_rack_bytes: 1.25e9,
            planning: Some(PlanningCost {
                wall_s: 0.042,
                candidates: 1261,
            }),
            trace_drops: Some(17),
        }
    }

    #[test]
    fn locality_rates() {
        let l = summary().locality;
        assert_eq!(l.constrained(), 360);
        assert!((l.machine_rate() - 300.0 / 360.0).abs() < 1e-12);
        assert!((l.rack_or_better_rate() - 350.0 / 360.0).abs() < 1e-12);
        let empty = LocalityCounts::default();
        assert_eq!(empty.machine_rate(), 0.0);
    }

    #[test]
    fn display_mentions_headline_numbers() {
        let text = summary().to_string();
        assert!(text.contains("run summary [corral]"));
        assert!(text.contains("makespan               1234.5s"));
        assert!(text.contains("slot utilization       62.0%"));
        assert!(text.contains("25.0% cross-rack"));
        assert!(text.contains("queueing delay"));
        assert!(text.contains("(no samples)"));
        assert!(text.contains("1200 started, 1200 completed"));
        assert!(text.contains("planning               0.042s wall (1261 candidates)"));
        assert!(text.contains("trace ring             17 events dropped (truncated!)"));
    }

    #[test]
    fn trace_drops_line_is_quiet_when_unmeasured() {
        let mut s = summary();
        s.trace_drops = None;
        assert!(!s.to_string().contains("trace ring"));
        s.trace_drops = Some(0);
        assert!(s
            .to_string()
            .contains("trace ring             0 events dropped"));
    }
}
